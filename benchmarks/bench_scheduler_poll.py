"""Micro-benchmark: the scheduler's queue-poll path at 1k queued jobs.

The `_schedule_pass` scan is the hot loop behind every submit, finish,
requeue, and node repair.  This benchmark queues 1000 single-node jobs on a
small cluster, drains them, and asserts the invariant the optimization must
preserve: jobs start in exact FIFO submission order (no backfill reordering
occurs for a homogeneous workload), with every job completing.
"""

from __future__ import annotations

import pytest

from repro.hpc import BatchScheduler, Cluster, JobRequest, JobState
from repro.sim import SimulationEnvironment

N_JOBS = 1000


def _drain(n_jobs: int = N_JOBS, *, n_nodes: int = 8, backfill: bool = True):
    env = SimulationEnvironment()
    sched = BatchScheduler(env, Cluster("bench", n_nodes), backfill=backfill)
    jobs = [
        sched.submit(
            JobRequest(name=f"j{i:04d}", n_nodes=1, walltime=10.0, duration=0.01)
        )
        for i in range(n_jobs)
    ]
    env.run_until(100.0)
    return jobs


def _assert_fifo(jobs) -> None:
    assert all(job.state is JobState.COMPLETED for job in jobs)
    starts = [(job.started_at, job.job_id) for job in jobs]
    assert starts == sorted(starts), "jobs must start in FIFO submission order"


def test_queue_drain_1k_jobs(benchmark):
    jobs = benchmark.pedantic(_drain, rounds=3, iterations=1)
    _assert_fifo(jobs)


def test_strict_fifo_drain_1k_jobs(benchmark):
    jobs = benchmark.pedantic(
        lambda: _drain(backfill=False), rounds=3, iterations=1
    )
    _assert_fifo(jobs)


@pytest.mark.parametrize("backfill", [True, False])
def test_mixed_width_start_order_preserved(backfill):
    """Backfill may only reorder around *blocked* jobs, never peers that fit."""
    env = SimulationEnvironment()
    sched = BatchScheduler(env, Cluster("bench", 4), backfill=backfill)
    wide = sched.submit(JobRequest(name="wide", n_nodes=4, walltime=10.0, duration=1.0))
    narrow = [
        sched.submit(JobRequest(name=f"n{i}", n_nodes=1, walltime=10.0, duration=0.5))
        for i in range(8)
    ]
    env.run_until(50.0)
    assert wide.state is JobState.COMPLETED
    assert all(job.state is JobState.COMPLETED for job in narrow)
    starts = [(job.started_at, job.job_id) for job in narrow]
    assert starts == sorted(starts)

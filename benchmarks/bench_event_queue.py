"""Event-queue benchmark: one million schedule/fire/cancel operations.

Two hot paths were optimized from O(n)-per-read scans to O(1) /
O(n)-total bookkeeping:

* ``SimulationEnvironment.pending_count`` — previously a full heap scan
  per read; service schedulers and drivers poll it every quantum, so at
  a million pending events the scan dominated the pump.  It is now a
  maintained counter (incremented on schedule, decremented on fire or
  cancel).
* ``HpcScheduler.all_jobs`` — previously re-sorted the job index on
  every listing call even though zero-padded sequential job ids make
  insertion order the sorted order.

This benchmark schedules 1M events (every 16th one cancelled before its
turn), polls ``pending_count`` throughout the drain, and records
events/sec plus the poll cost into the ``event_queue_1m`` section of
``BENCH_perf.json``.
"""

from __future__ import annotations

import time

from repro.sim import SimulationEnvironment

N_EVENTS = 1_000_000
CANCEL_STRIDE = 16
POLLS = 1_000


def _build(n_events: int):
    env = SimulationEnvironment()
    cancelled = 0
    for i in range(n_events):
        event = env.schedule_at(float(i % 1024), lambda: None, label="tick")
        if i % CANCEL_STRIDE == 0:
            event.cancel()
            cancelled += 1
    return env, cancelled


def test_event_queue_1m(save_artifact, update_bench_report):
    t0 = time.perf_counter()
    env, cancelled = _build(N_EVENTS)
    t_scheduled = time.perf_counter()

    expected_pending = N_EVENTS - cancelled
    assert env.pending_count == expected_pending

    # Poll pending_count the way a service pump does — this read was the
    # O(n) scan before the maintained counter.
    t_poll0 = time.perf_counter()
    for _ in range(POLLS):
        assert env.pending_count == expected_pending
    poll_s = time.perf_counter() - t_poll0

    t_drain0 = time.perf_counter()
    fired = env.run()
    t_done = time.perf_counter()

    assert fired == expected_pending
    assert env.pending_count == 0
    assert env.events_fired == expected_pending

    schedule_s = t_scheduled - t0
    drain_s = t_done - t_drain0
    events_per_sec = N_EVENTS / (schedule_s + drain_s)

    lines = [
        "Event queue: 1M schedule/fire/cancel",
        "====================================",
        f"events scheduled:      {N_EVENTS} ({cancelled} cancelled)",
        f"schedule phase:        {schedule_s:6.2f} s",
        f"drain phase:           {drain_s:6.2f} s",
        f"throughput:            {events_per_sec:10.0f} events/s",
        f"pending_count polls:   {POLLS} in {poll_s * 1e3:.2f} ms "
        f"({poll_s / POLLS * 1e9:.0f} ns/read at 1M pending)",
    ]
    save_artifact("event_queue_1m", "\n".join(lines))

    update_bench_report(
        "event_queue_1m",
        {
            "benchmark": "simulation event queue, 1M events",
            "workload": {
                "events": N_EVENTS,
                "cancelled": cancelled,
                "cancel_stride": CANCEL_STRIDE,
            },
            "schedule_wall_s": round(schedule_s, 3),
            "drain_wall_s": round(drain_s, 3),
            "events_per_sec": round(events_per_sec, 1),
            "pending_count_read_ns": round(poll_s / POLLS * 1e9, 1),
            "note": (
                "pending_count is a maintained counter; the pre-optimization "
                "read was an O(n) heap scan per poll"
            ),
        },
    )

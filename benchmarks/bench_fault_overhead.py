"""Fault-hook overhead: resilience instrumentation must be ~free when idle.

Every service operation now consults ``env.faults`` (and, with a plan
armed, polls the injector).  This benchmark verifies the design target that
a production run with **no** fault plan pays under 5% for carrying the
hooks, by measuring the hook fast path over long timing windows (stable
even on noisy machines) and relating it to the measured cost of a real
service operation.  A head-to-head wall-clock comparison is also reported
for context, but not asserted on: run-to-run noise on shared hardware
swamps a single-digit-percent effect.
"""

from __future__ import annotations

import time

from repro.faults import FaultPlan, FaultSpec
from repro.globus.auth import AuthService
from repro.globus.collections import StorageService
from repro.globus.transfer import TransferService
from repro.sim import SimulationEnvironment

#: Iterations for the hook micro-timings (one long window beats many short).
HOOK_ITERS = 200_000

#: Transfers per workload run; each pays up to 3 hook sites
#: (auth validate, transfer, transfer.corrupt).
N_TRANSFERS = 2_000
HOOKS_PER_OP = 3


def _hook_cost_no_plan() -> float:
    """Seconds per hook on the fast path (no plan installed)."""
    env = SimulationEnvironment()
    t0 = time.perf_counter()
    for _ in range(HOOK_ITERS):
        faults = env.faults
        if faults is not None:  # pragma: no cover - never taken here
            faults.poll("transfer")
    return (time.perf_counter() - t0) / HOOK_ITERS


def _poll_cost_empty_plan() -> float:
    """Seconds per injector poll with an armed-but-empty plan."""
    env = SimulationEnvironment()
    faults = env.install_fault_plan(FaultPlan())
    t0 = time.perf_counter()
    for _ in range(HOOK_ITERS):
        faults.poll("transfer", label="bench")
    return (time.perf_counter() - t0) / HOOK_ITERS


def _transfer_workload(plan) -> float:
    """Wall seconds for N_TRANSFERS 1 KiB transfers through the full stack."""
    env = SimulationEnvironment()
    if plan is not None:
        env.install_fault_plan(plan)
    auth = AuthService(env)
    storage = StorageService(auth, env)
    transfer = TransferService(auth, storage, env)
    identity = auth.register_identity("bench")
    token = auth.issue_token(identity, ["transfer"], lifetime=1e6)
    src = storage.create_collection("src", token)
    storage.create_collection("dst", token)
    src.put(token, "a", "x" * 1024)
    t0 = time.perf_counter()
    for i in range(N_TRANSFERS):
        transfer.submit(token, "src:a", f"dst:{i}")
    env.run()
    return time.perf_counter() - t0


def test_no_fault_overhead_under_5_percent(save_artifact):
    """The design target: hooks cost <5% of a service operation when idle."""
    hook = min(_hook_cost_no_plan() for _ in range(3))
    poll = min(_poll_cost_empty_plan() for _ in range(3))
    # Conservative per-op cost: the *fastest* observed run (a cheaper op
    # makes the relative hook cost look larger, never smaller).
    per_op = min(_transfer_workload(None) for _ in range(3)) / N_TRANSFERS

    overhead_no_plan = HOOKS_PER_OP * hook / per_op
    overhead_empty_plan = HOOKS_PER_OP * poll / per_op

    # Context only (noisy): armed low-rate plan through the full stack.
    chaos_plan = FaultPlan(specs=(FaultSpec(site="transfer", rate=0.01),), seed=1)
    wall_plain = _transfer_workload(None)
    wall_chaos = _transfer_workload(chaos_plan)

    lines = [
        "Fault-injection hook overhead",
        "=============================",
        f"hook fast path (no plan):      {hook * 1e9:8.1f} ns",
        f"injector poll (empty plan):    {poll * 1e9:8.1f} ns",
        f"transfer operation:            {per_op * 1e6:8.2f} us",
        f"est. overhead, no plan:        {overhead_no_plan:8.2%}  (target < 5%)",
        f"est. overhead, empty plan:     {overhead_empty_plan:8.2%}",
        "",
        "wall-clock context (unasserted; noisy on shared machines):",
        f"  {N_TRANSFERS} transfers, no plan:      {wall_plain:6.3f} s",
        f"  {N_TRANSFERS} transfers, 1% faults:    {wall_chaos:6.3f} s",
    ]
    save_artifact("fault_overhead", "\n".join(lines))

    assert overhead_no_plan < 0.05
    assert overhead_empty_plan < 0.10


def test_injected_faults_are_absorbed_by_retries(save_artifact):
    """Ablation row: with retries on, a 1% fault rate changes outcomes, not
    results — every transfer still succeeds."""
    from repro.common.retry import RetryPolicy
    from repro.globus.transfer import TransferStatus

    env = SimulationEnvironment()
    env.install_fault_plan(
        FaultPlan(specs=(FaultSpec(site="transfer", rate=0.01),), seed=2)
    )
    auth = AuthService(env)
    storage = StorageService(auth, env)
    transfer = TransferService(
        auth, storage, env, retry=RetryPolicy(max_attempts=4, base_delay=0.001)
    )
    identity = auth.register_identity("bench")
    token = auth.issue_token(identity, ["transfer"], lifetime=1e6)
    src = storage.create_collection("src", token)
    storage.create_collection("dst", token)
    src.put(token, "a", "x" * 1024)
    tasks = [transfer.submit(token, "src:a", f"dst:{i}") for i in range(500)]
    env.run()

    succeeded = sum(t.status is TransferStatus.SUCCEEDED for t in tasks)
    save_artifact(
        "fault_absorption",
        f"500 transfers @ 1% fault rate: {succeeded} succeeded, "
        f"{transfer.retries_performed} retries, "
        f"{env.faults.total_injected} faults injected",
    )
    assert succeeded == 500
    assert env.faults.total_injected > 0

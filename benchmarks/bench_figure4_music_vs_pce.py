"""Figure 4: MUSIC vs PCE first-order Sobol index convergence (fixed seed).

Regenerates the paper's headline GSA comparison: per-parameter index
estimates as a function of sample size for the MUSIC active-learning
algorithm (teal in the paper) and the degree-3 PCE baseline (magenta),
against a large-Saltelli reference.  The *shape* claim checked here is the
paper's: MUSIC stabilizes with fewer samples than the one-shot PCE.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gsa.music import MusicConfig, MusicGSA
from repro.models.parameters import GSA_PARAMETER_SPACE
from repro.workflows.figures import render_figure4
from repro.workflows.music_gsa import make_qoi, run_music_vs_pce

BUDGET = 160
MUSIC_CONFIG = MusicConfig(
    n_initial=30, refit_every=10, surrogate_mc=512, n_candidates=128
)


@pytest.fixture(scope="module")
def figure4_data():
    return run_music_vs_pce(
        seed=0,
        budget=BUDGET,
        music_config=MUSIC_CONFIG,
        reference_n=1024,
        use_emews=True,
    )


def test_figure4_regenerate(benchmark, save_artifact, save_svg, figure4_data):
    data = figure4_data
    save_artifact("figure4", render_figure4(data))
    from repro.workflows.figures import figure4_svg

    save_svg("figure4", figure4_svg(data))
    benchmark(lambda: render_figure4(data))

    # Who wins: MUSIC stabilizes earlier than PCE (the paper's claim).
    stab = data.stabilization(tol=0.05)
    assert stab["music"]["n_stable"] < stab["pce"]["n_stable"]
    # Both methods end near the reference.
    errors = data.final_errors()
    assert errors["music"] < 0.1
    assert errors["pce"] < 0.15
    # Parameter story: ts dominant, phd inert for an admissions QoI.
    assert data.reference[0] == data.reference.max()
    assert abs(data.reference[4]) < 0.05


def test_music_iteration_kernel(benchmark):
    """One MUSIC acquisition step (propose + evaluate + tell) at n~60."""
    qoi = make_qoi(0)
    music = MusicGSA(GSA_PARAMETER_SPACE, MUSIC_CONFIG, seed=0)
    design = music.initial_design()
    music.tell(design, qoi(design))
    for _ in range(30):
        point = music.propose()
        music.tell(point, qoi(point))

    def one_step():
        point = music.propose()
        music.tell(point, qoi(point))
        return point

    point = benchmark.pedantic(one_step, rounds=5, iterations=1)
    assert point.shape == (1, 5)


def test_pce_fit_kernel(benchmark):
    """One degree-3 PCE fit + analytic indices at n=150 (the one-shot cost)."""
    from repro.gsa.pce import PCEModel

    rng = np.random.default_rng(0)
    x = rng.random((150, 5))
    qoi = make_qoi(0)
    y = qoi(GSA_PARAMETER_SPACE.scale(x))

    def fit():
        return PCEModel(dim=5, degree=3).fit(x, y).first_order()

    indices = benchmark(fit)
    assert indices.shape == (5,)

"""Infrastructure micro-benchmarks: the platform layers under the science.

Not tied to one paper figure; these keep the substrate costs visible —
task-database throughput on both backends, discrete-event loop throughput,
AERO trigger propagation, and provenance graph construction — so that
regressions in the plumbing can't silently distort the workflow results.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.aero.provenance import version_graph
from repro.emews import EmewsService, as_completed
from repro.emews.db import TaskDatabase
from repro.emews.sqlite_db import SqliteTaskDatabase
from repro.sim import SimulationEnvironment


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_task_db_submit_pop_complete_throughput(benchmark, backend):
    """One full task lifecycle through the database, batched x200."""

    def lifecycle():
        db = TaskDatabase() if backend == "memory" else SqliteTaskDatabase()
        ids = [db.submit("bench", "t", {"i": i}) for i in range(200)]
        while (task := db.pop_task("t", "w")) is not None:
            db.complete_task(task.task_id, task.payload_obj())
        return db.counts()["complete"]

    completed = benchmark.pedantic(lifecycle, rounds=3, iterations=1)
    assert completed == 200


def test_threaded_pool_throughput(benchmark):
    """End-to-end task throughput with 4 worker threads (trivial payloads)."""

    def run():
        svc = EmewsService()
        svc.start_local_pool("t", lambda p: p, n_workers=4)
        queue = svc.make_queue("bench")
        futures = queue.submit_tasks("t", [{"i": i} for i in range(300)])
        for future in as_completed(futures, timeout=60):
            pass
        svc.finalize(queue)
        return len(futures)

    count = benchmark.pedantic(run, rounds=2, iterations=1)
    assert count == 300


def test_event_loop_throughput(benchmark):
    """Raw discrete-event dispatch rate (schedule + fire 50k events)."""

    def run():
        env = SimulationEnvironment()
        for i in range(50_000):
            env.schedule(i * 1e-6, lambda: None)
        env.run()
        return env.events_fired

    fired = benchmark.pedantic(run, rounds=3, iterations=1)
    assert fired == 50_000


def test_timer_cascade_throughput(benchmark):
    """A year of daily timers across 20 flows (the AERO polling load)."""
    from repro.globus.auth import AuthService
    from repro.globus.timers import TimerService

    def run():
        env = SimulationEnvironment()
        auth = AuthService(env)
        ident = auth.register_identity("bench")
        token = auth.issue_token(ident, ["timers"], lifetime=1000.0)
        timers = TimerService(auth, env)
        counter = [0]
        for k in range(20):
            timers.create_timer(
                token,
                lambda: counter.__setitem__(0, counter[0] + 1),
                interval=1.0,
                max_firings=365,
            )
        env.run()
        return counter[0]

    fired = benchmark.pedantic(run, rounds=2, iterations=1)
    assert fired == 20 * 365


def test_provenance_graph_scaling(benchmark):
    """Version-graph construction over a thousand-version metadata DB."""
    from repro.aero.metadata import MetadataDatabase

    env = SimulationEnvironment()
    db = MetadataDatabase(env)
    upstream = db.register_data("raw", "bench")
    for _ in range(100):
        db.add_version(upstream.data_id, checksum="c", size=1, uri="c:p", created_by="f")
    derived = [db.register_data(f"out-{i}", "bench") for i in range(10)]
    for obj in derived:
        for version in range(1, 101):
            db.add_version(
                obj.data_id,
                checksum="c",
                size=1,
                uri="c:p",
                created_by="f",
                derived_from=[(upstream.data_id, version)],
            )

    graph = benchmark(lambda: version_graph(db))
    assert graph.number_of_nodes() == 1100
    assert nx.is_directed_acyclic_graph(graph)

"""Ablation A7: Shapley effects vs Sobol first/total order on MetaRVM.

Extension following the paper's Sobol reference (Owen 2014, *Sobol' Indices
and Shapley Value*): Shapley effects split interaction variance fairly
between participating inputs, closing the first-vs-total-order gap.  On the
MetaRVM QoI the transmission/severity interactions (e.g. ts × psh) are
exactly where the two Sobol orders diverge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.tabulate import format_table
from repro.gsa.shapley import shapley_effects
from repro.gsa.sobol import sobol_indices
from repro.models.parameters import GSA_PARAMETER_SPACE
from repro.workflows.music_gsa import make_qoi

SEED = 0
N = 512


@pytest.fixture(scope="module")
def attributions():
    qoi = make_qoi(SEED)
    unit_fn = lambda x_unit: qoi(GSA_PARAMETER_SPACE.scale(x_unit))
    sobol = sobol_indices(unit_fn, GSA_PARAMETER_SPACE.dim, N, seed=SEED)
    shapley = shapley_effects(unit_fn, GSA_PARAMETER_SPACE.dim, n=N, seed=SEED)
    return sobol, shapley


def test_ablation_shapley_regenerate(benchmark, save_artifact, attributions):
    sobol, shapley = attributions
    rows = []
    for j, name in enumerate(GSA_PARAMETER_SPACE.names):
        rows.append(
            [name, sobol["first"][j], sobol["total"][j], shapley[j]]
        )
    rows.append(
        ["SUM", float(sobol["first"].sum()), float(sobol["total"].sum()), float(shapley.sum())]
    )
    text = format_table(
        ["parameter", "Sobol first", "Sobol total", "Shapley"],
        rows,
        title=f"A7: variance attributions on the MetaRVM QoI (n={N})",
        digits=3,
    )
    save_artifact("ablation_shapley", text)
    benchmark(lambda: float(shapley.sum()))

    # Shapley effects sum to 1 exactly (the efficiency axiom)
    assert shapley.sum() == pytest.approx(1.0, abs=1e-9)
    # each Shapley effect sits between the (noisy) first and total indices
    for j in range(5):
        low = min(sobol["first"][j], sobol["total"][j]) - 0.05
        high = max(sobol["first"][j], sobol["total"][j]) + 0.05
        assert low <= shapley[j] <= high
    # the ranking story matches: ts dominant, phd inert
    assert np.argmax(shapley) == 0
    assert abs(shapley[4]) < 0.05


def test_shapley_kernel(benchmark):
    """Full 2^5-subset Shapley table on the vectorized simulator."""
    qoi = make_qoi(SEED)
    unit_fn = lambda x_unit: qoi(GSA_PARAMETER_SPACE.scale(x_unit))

    effects = benchmark.pedantic(
        lambda: shapley_effects(unit_fn, 5, n=128, seed=1), rounds=2, iterations=1
    )
    assert effects.shape == (5,)

"""Figure 1: the automated multi-source wastewater workflow.

Regenerates the workflow *structure* (4 ingestion flows → 4 R(t) analysis
flows → 1 ALL-policy aggregation flow, metadata-only AERO server, BYO
storage and compute) and benchmarks the event-driven automation itself:
how fast the platform plays out a day of polling/triggering, and the
end-to-end trigger-chain latency.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.aero.provenance import flow_graph
from repro.workflows.figures import render_figure1
from repro.workflows.wastewater_rt import run_wastewater_workflow


@pytest.fixture(scope="module")
def workflow_result():
    return run_wastewater_workflow(
        data_start_day=100.0,
        sim_days=8.0,
        goldstein_iterations=500,
        seed=3,
    )


def test_figure1_regenerate(benchmark, save_artifact, save_svg, workflow_result):
    result = workflow_result
    summary = result.flow_graph_summary()
    # the paper's Figure 1 shape
    assert summary["flow"] == 9
    assert summary["source"] == 4
    flows = [result.client.get_flow(name) for name in result.client.flow_names()]
    graph = flow_graph(flows)
    assert nx.is_directed_acyclic_graph(graph)
    ancestors = nx.ancestors(graph, "flow:aggregate-rt")
    assert sum(1 for a in ancestors if a.startswith("flow:rt-")) == 4
    assert sum(1 for a in ancestors if a.startswith("flow:ingest-")) == 4

    save_artifact("figure1", render_figure1(result))
    from repro.workflows.figures import figure1_svg

    save_svg("figure1", figure1_svg(result))
    benchmark(lambda: flow_graph(flows))


def test_event_driven_day_throughput(benchmark):
    """Cost of simulating one day of full platform operation (polls,
    transfers, scheduler passes, trigger propagation) with the analysis cost
    set to near-zero so the benchmark isolates the automation machinery."""

    def one_run():
        return run_wastewater_workflow(
            data_start_day=100.0,
            sim_days=4.0,
            goldstein_iterations=300,
            seed=5,
        )

    result = benchmark.pedantic(one_run, rounds=1, iterations=1)
    assert result.aggregation_runs >= 1


def test_trigger_chain_latency(benchmark, workflow_result):
    """Simulated latency from a data update to the finished analysis is
    dominated by the analysis job itself (automation overhead is small)."""
    result = workflow_result
    runs = result.client.runs("rt-obrien")
    finished = [r for r in runs if r.completed_at is not None]
    assert finished
    latencies = benchmark(lambda: [r.completed_at - r.started_at for r in finished])
    # analysis cost is ~0.006 sim-days at 500 iterations; the full chain
    # (staging + queue + run + publish) stays under half a simulated hour
    assert max(latencies) < 0.05

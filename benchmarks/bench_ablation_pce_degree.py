"""Ablation A5: PCE degree sweep.

"We chose a degree 3 PCE as it performed the best among the PCE degrees we
examined." (§3.3)  This ablation reproduces that selection: fit degrees 1-5
on the same CRN MetaRVM data at a moderate sample size and compare index
error against the Saltelli reference.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import qmc

from repro.common.tabulate import format_table
from repro.gsa.pce import PCEModel
from repro.models.parameters import GSA_PARAMETER_SPACE
from repro.workflows.music_gsa import make_qoi, reference_indices

SEED = 0
N_SAMPLES = 180
DEGREES = (1, 2, 3, 4, 5)


@pytest.fixture(scope="module")
def sweep():
    qoi = make_qoi(SEED)
    reference = reference_indices(SEED, n=1024)
    sampler = qmc.Sobol(d=5, scramble=True, seed=SEED)
    x_unit = sampler.random(256)[:N_SAMPLES]
    y = qoi(GSA_PARAMETER_SPACE.scale(x_unit))
    outcomes = {}
    for degree in DEGREES:
        model = PCEModel(dim=5, degree=degree).fit(x_unit, y)
        outcomes[degree] = {
            "error": float(np.max(np.abs(model.first_order() - reference))),
            "terms": model.n_terms,
            "condition": model.condition_number,
        }
    return outcomes, reference


def test_ablation_pce_degree_regenerate(benchmark, save_artifact, sweep):
    outcomes, _ = sweep
    rows = [
        [degree, o["terms"], o["error"], o["condition"]]
        for degree, o in outcomes.items()
    ]
    text = format_table(
        ["degree", "basis terms", f"max |S - ref| at n={N_SAMPLES}", "condition"],
        rows,
        title="A5: PCE degree selection",
        digits=3,
    )
    save_artifact("ablation_pce_degree", text)
    benchmark(lambda: min(outcomes, key=lambda d: outcomes[d]["error"]))

    errors = {d: o["error"] for d, o in outcomes.items()}
    # degree-1 misses curvature; very high degrees overfit at this n — the
    # best compromise sits in the middle, as the paper found
    best = min(errors, key=errors.get)
    assert best in (2, 3)
    assert errors[best] < errors[1]
    assert errors[best] <= errors[5]


@pytest.mark.parametrize("degree", (1, 3, 5))
def test_pce_degree_fit_kernel(benchmark, degree, sweep):
    qoi = make_qoi(SEED)
    sampler = qmc.Sobol(d=5, scramble=True, seed=SEED)
    x_unit = sampler.random(256)[:N_SAMPLES]
    y = qoi(GSA_PARAMETER_SPACE.scale(x_unit))

    indices = benchmark(lambda: PCEModel(dim=5, degree=degree).fit(x_unit, y).first_order())
    assert indices.shape == (5,)

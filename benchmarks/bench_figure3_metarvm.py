"""Figure 3: the MetaRVM compartments, transitions, and parameters.

Regenerates the compartment/transition structure and benchmarks the model
itself: single stochastic runs and the vectorized batch evaluator that the
GSA experiments depend on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.rng import generator_from_seed
from repro.models.metarvm import COMPARTMENTS, MetaRVM, MetaRVMConfig, transition_graph
from repro.models.parameters import GSA_PARAMETER_SPACE, MetaRVMParams
from repro.workflows.figures import render_figure3


def test_figure3_regenerate(benchmark, save_artifact):
    graph = transition_graph()
    # the paper's structure: 9 compartments, 13 transitions, D absorbing
    assert set(graph.nodes) == set(COMPARTMENTS)
    assert graph.number_of_edges() == 13
    assert graph.out_degree("D") == 0
    assert graph.edges["S", "E"]["parameters"] == "ts"
    save_artifact("figure3", render_figure3())
    benchmark(transition_graph)


def test_single_run_kernel(benchmark):
    model = MetaRVM(MetaRVMConfig())

    result = benchmark(lambda: model.run(MetaRVMParams(), seed=1))
    totals = result.trajectories[0].sum(axis=1)
    assert np.allclose(totals, np.asarray(model.config.population, float))


def test_batch_evaluation_kernel(benchmark):
    """256 parameter sets, common random numbers, one vectorized call."""
    model = MetaRVM(MetaRVMConfig())
    design = GSA_PARAMETER_SPACE.sample(256, generator_from_seed(0))

    y = benchmark(lambda: model.total_hospitalizations(design, seed=1))
    assert y.shape == (256,)
    assert y.min() >= 0

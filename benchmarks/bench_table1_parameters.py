"""Table 1: MetaRVM model parameters and ranges for GSA.

Regenerates the paper's Table 1 from :data:`GSA_PARAMETER_SPACE` and
benchmarks the parameter-space machinery the GSA stack leans on (scaling a
large design between the unit cube and natural units).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.rng import generator_from_seed
from repro.models.parameters import GSA_PARAMETER_SPACE, table1_rows
from repro.workflows.figures import render_table1


def test_table1_regenerate(benchmark, save_artifact):
    rows = table1_rows()
    assert [r[0] for r in rows] == ["ts", "tv", "pea", "psh", "phd"]
    assert rows[0][2] == "(0.1, 0.9)"
    assert rows[4][2] == "(0, 0.3)"
    save_artifact("table1", render_table1())
    benchmark(render_table1)


def test_parameter_space_scaling_throughput(benchmark):
    rng = generator_from_seed(0)
    unit = rng.random((100_000, GSA_PARAMETER_SPACE.dim))

    def roundtrip():
        natural = GSA_PARAMETER_SPACE.scale(unit)
        return GSA_PARAMETER_SPACE.unscale(natural)

    back = benchmark(roundtrip)
    assert np.allclose(back, unit)

"""Figure 2: per-plant R(t) estimates + population-weighted ensemble.

Regenerates the figure's content — four Goldstein estimates with 95% bands
and the ensemble panel — and benchmarks the expensive kernel (one Goldstein
MCMC analysis), the step the paper offloads to a batch-scheduled Globus
Compute endpoint.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.wastewater import SyntheticIWSS
from repro.rt import GoldsteinConfig, estimate_rt_goldstein
from repro.rt.ensemble import mean_band_width, population_weighted_ensemble
from repro.workflows.figures import render_figure2
from repro.workflows.wastewater_rt import run_wastewater_workflow


@pytest.fixture(scope="module")
def workflow_result():
    return run_wastewater_workflow(
        data_start_day=110.0,
        sim_days=6.0,
        goldstein_iterations=1500,
        seed=17,
    )


def test_figure2_regenerate(benchmark, save_artifact, save_svg, workflow_result):
    result = workflow_result
    assert len(result.plant_estimates) == 4
    # shape claims of the figure: every estimate tracks the truth, and the
    # ensemble band is narrower than the typical individual band
    for plant, metrics in result.plant_metrics().items():
        assert metrics["mae"] < 0.3, plant
    individual = np.mean(
        [mean_band_width(e) for e in result.plant_estimates.values()]
    )
    assert mean_band_width(result.ensemble) < individual
    save_artifact("figure2", render_figure2(result))
    from repro.workflows.figures import figure2_svg

    save_svg("figure2", figure2_svg(result))
    benchmark(lambda: render_figure2(result))


def test_goldstein_analysis_kernel(benchmark):
    """The per-plant R(t) estimation the workflow queues as a batch job."""
    iwss = SyntheticIWSS(n_days=120)
    observations = iwss.dataset("obrien").concentrations
    config = GoldsteinConfig(n_iterations=800)

    estimate = benchmark.pedantic(
        lambda: estimate_rt_goldstein(observations, config=config, seed=1),
        rounds=3,
        iterations=1,
    )
    assert estimate.n_days > 100


def test_ensemble_pooling_kernel(benchmark):
    """Sample-wise population-weighted pooling of four posteriors."""
    iwss = SyntheticIWSS(n_days=120)
    config = GoldsteinConfig(n_iterations=600)
    estimates = {
        name: estimate_rt_goldstein(
            iwss.dataset(name).concentrations, config=config, seed=2
        )
        for name in iwss.plant_names()
    }
    weights = iwss.population_weights()

    ensemble = benchmark(lambda: population_weighted_ensemble(estimates, weights))
    assert ensemble.n_days > 100

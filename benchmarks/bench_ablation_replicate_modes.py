"""Ablation A8: per-replicate GSA vs mean-response GSA (§3.1.2).

The paper's methodological choice: "GSA is often performed on the mean
response, calculated across multiple replicates ... As a result, we seek to
distinguish between two types of uncertainties: aleatoric ... and epistemic
... we conduct separate GSAs on individual replicates."  This ablation
quantifies the difference: indices from the replicate-averaged QoI sit
inside (near the center of) the per-replicate index spread, and the
information the paper's approach adds — the spread itself — is invisible to
the mean-response analysis.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.rng import replicate_seed
from repro.common.tabulate import format_table
from repro.gsa.sobol import first_order_indices, saltelli_design
from repro.models.parameters import GSA_PARAMETER_SPACE
from repro.workflows.music_gsa import make_mean_qoi, make_qoi

ROOT_SEED = 42
N_REPLICATES = 8
N = 512


def _indices(qoi) -> np.ndarray:
    design = saltelli_design(N, GSA_PARAMETER_SPACE.dim, seed=ROOT_SEED)
    y = qoi(GSA_PARAMETER_SPACE.scale(design.all_points))
    return first_order_indices(*design.split(y))


@pytest.fixture(scope="module")
def modes():
    seeds = [replicate_seed(ROOT_SEED, k) for k in range(N_REPLICATES)]
    per_replicate = np.stack([_indices(make_qoi(seed)) for seed in seeds])
    mean_response = _indices(make_mean_qoi(seeds))
    return per_replicate, mean_response


def test_ablation_replicate_modes_regenerate(benchmark, save_artifact, modes):
    per_replicate, mean_response = modes
    rows = []
    for j, name in enumerate(GSA_PARAMETER_SPACE.names):
        rows.append(
            [
                name,
                float(per_replicate[:, j].min()),
                float(per_replicate[:, j].mean()),
                float(per_replicate[:, j].max()),
                float(mean_response[j]),
            ]
        )
    text = format_table(
        ["parameter", "per-rep min", "per-rep mean", "per-rep max", "mean-response"],
        rows,
        title=(
            f"A8: per-replicate GSA ({N_REPLICATES} replicates) vs "
            "mean-response GSA"
        ),
        digits=3,
    )
    save_artifact("ablation_replicate_modes", text)
    benchmark(lambda: per_replicate.mean(axis=0))

    # mean-response indices sit within (a hair of) the replicate envelope
    for j in range(GSA_PARAMETER_SPACE.dim):
        low = per_replicate[:, j].min() - 0.03
        high = per_replicate[:, j].max() + 0.03
        assert low <= mean_response[j] <= high
    # and the per-replicate spread is real information the mean hides
    spread = per_replicate.max(axis=0) - per_replicate.min(axis=0)
    assert spread.max() > 0.01


def test_mean_qoi_kernel(benchmark):
    seeds = [replicate_seed(ROOT_SEED, k) for k in range(4)]
    qoi = make_mean_qoi(seeds)
    design = GSA_PARAMETER_SPACE.sample(64, np.random.default_rng(0))

    y = benchmark.pedantic(lambda: qoi(design), rounds=2, iterations=1)
    assert y.shape == (64,)

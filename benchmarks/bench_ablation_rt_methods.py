"""Ablation A3: Goldstein (wastewater) vs Cori (cases) R(t) estimation.

Quantifies §2.1's cost/benefit: the Goldstein method is orders of magnitude
more expensive (hence the HPC offload) but works from passive wastewater
surveillance alone; the standard Cori method is nearly free but requires a
case data stream that post-mandate surveillance no longer provides.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.common.rng import generator_from_seed
from repro.common.tabulate import format_table
from repro.models.seir import discretized_gamma
from repro.models.wastewater import SyntheticIWSS
from repro.rt import GoldsteinConfig, estimate_rt_cori, estimate_rt_goldstein

GEN = discretized_gamma(6.0, 3.0, 21)


@pytest.fixture(scope="module")
def iwss():
    return SyntheticIWSS(n_days=120, seed=21)


@pytest.fixture(scope="module")
def comparison(iwss):
    dataset = iwss.dataset("obrien")
    rng = generator_from_seed(5)

    t0 = time.perf_counter()
    cori = estimate_rt_cori(dataset.true_incidence, GEN)
    t_cori = time.perf_counter() - t0

    from repro.models.surveillance import POST_MANDATE, observe_cases

    degraded = observe_cases(dataset.true_incidence, POST_MANDATE, rng)
    t0 = time.perf_counter()
    cori_degraded = estimate_rt_cori(degraded, GEN)
    t_degraded = time.perf_counter() - t0

    t0 = time.perf_counter()
    goldstein = estimate_rt_goldstein(
        dataset.concentrations, config=GoldsteinConfig(n_iterations=3000), seed=1
    )
    t_goldstein = time.perf_counter() - t0

    return {
        "cori-perfect-cases": (cori, t_cori),
        "cori-degraded-cases": (cori_degraded, t_degraded),
        "goldstein-wastewater": (goldstein, t_goldstein),
    }, dataset.true_rt


def test_ablation_rt_methods_regenerate(benchmark, save_artifact, comparison):
    estimates, truth = comparison
    rows = []
    for name, (estimate, runtime) in estimates.items():
        rows.append(
            [
                name,
                estimate.mae_against(truth),
                float(np.mean(estimate.band_width())),
                runtime,
            ]
        )
    text = format_table(
        ["method", "MAE vs truth", "mean band width", "runtime (s)"],
        rows,
        title="A3: R(t) estimation methods",
        digits=3,
    )
    save_artifact("ablation_rt_methods", text)
    benchmark(lambda: estimates["goldstein-wastewater"][0].mae_against(truth))

    goldstein, t_goldstein = estimates["goldstein-wastewater"]
    cori, t_cori = estimates["cori-perfect-cases"]
    # cost shape: Goldstein is orders of magnitude more expensive
    assert t_goldstein > 50 * t_cori
    # benefit shape: from wastewater alone it still tracks the truth
    assert goldstein.mae_against(truth) < 0.2


def test_cori_kernel(benchmark, iwss):
    incidence = iwss.dataset("obrien").true_incidence

    estimate = benchmark(lambda: estimate_rt_cori(incidence, GEN))
    assert estimate.n_days > 100


def test_goldstein_kernel(benchmark, iwss):
    observations = iwss.dataset("obrien").concentrations
    config = GoldsteinConfig(n_iterations=600)

    estimate = benchmark.pedantic(
        lambda: estimate_rt_goldstein(observations, config=config, seed=1),
        rounds=3,
        iterations=1,
    )
    assert estimate.n_days > 100

"""Ablation A2: acquisition functions for active-learning GSA.

The paper chooses the MUSIC criterion (EIGF with the D1 D-function) over
"more common acquisition functions like EI and UCB, which focus on
minimizing prediction error in global surrogate prediction".  This ablation
runs the same active-learning loop with each acquisition on the same
CRN MetaRVM surface and compares final index error against the Saltelli
reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.tabulate import format_table
from repro.gsa.music import ACQUISITIONS, MusicConfig, MusicGSA
from repro.models.parameters import GSA_PARAMETER_SPACE
from repro.workflows.music_gsa import make_qoi, reference_indices

BUDGET = 90
SEED = 0


@pytest.fixture(scope="module")
def results():
    qoi = make_qoi(SEED)
    reference = reference_indices(SEED, n=1024)
    outcomes = {}
    for acquisition in ACQUISITIONS:
        music = MusicGSA(
            GSA_PARAMETER_SPACE,
            MusicConfig(
                n_initial=30,
                acquisition=acquisition,
                refit_every=10,
                surrogate_mc=512,
                n_candidates=128,
            ),
            seed=SEED,
        )
        design = music.initial_design()
        music.tell(design, qoi(design))
        while music.n_evaluations < BUDGET:
            point = music.propose()
            music.tell(point, qoi(point))
        outcomes[acquisition] = float(
            np.max(np.abs(music.first_order() - reference))
        )
    return outcomes, reference


def test_ablation_acquisition_regenerate(benchmark, save_artifact, results):
    outcomes, reference = results
    rows = [[name, err] for name, err in sorted(outcomes.items(), key=lambda kv: kv[1])]
    text = format_table(
        ["acquisition", f"max |S - ref| after {BUDGET} evals"],
        rows,
        title="A2: acquisition strategies for Sobol-index convergence",
        digits=3,
    )
    save_artifact("ablation_acquisition", text)
    benchmark(lambda: min(outcomes, key=outcomes.get))

    # the goal-directed criteria must be competitive on index error
    assert outcomes["music"] < 0.12
    assert outcomes["eigf"] < 0.15
    # EI is optimization-oriented: it piles samples near the maximum, which
    # is the wrong objective for GSA — it must not be the best strategy here
    best = min(outcomes, key=outcomes.get)
    assert best != "ei"


def test_acquisition_scoring_kernel(benchmark):
    """Scoring a 256-candidate pool with the MUSIC criterion at n=90."""
    from repro.gsa.acquisition import music_scores
    from repro.common.rng import generator_from_seed

    qoi = make_qoi(SEED)
    music = MusicGSA(
        GSA_PARAMETER_SPACE, MusicConfig(n_initial=90, surrogate_mc=256), seed=1
    )
    design = music.initial_design()
    music.tell(design, qoi(design))
    rng = generator_from_seed(0)
    candidates = rng.random((256, 5))

    scores = benchmark(
        lambda: music_scores(
            music.surrogate, candidates, music._x_unit, music._y, rng=rng
        )
    )
    assert scores.shape == (256,)

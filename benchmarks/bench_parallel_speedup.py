"""Headline perf benchmark: deterministic parallel + memoized evaluation.

Three measurements, written to the ``parallel_memo`` section of
``BENCH_perf.json`` at the repo root:

1. **Workflow speedup** — the Figure 5/§3.2 workload: eight interleaved
   MUSIC-GSA replicate instances sharing one EMEWS task queue.  Serial
   (one-at-a-time evaluation) vs. the deterministic batch pool with eight
   workers, whose quiescence coalescing merges the replicates' concurrent
   submissions into single vectorized MetaRVM calls.  The acceptance bar is
   a >= 2x wall-clock speedup with *bitwise identical* sensitivity curves.
2. **Memoization** — a warm rerun of the same workload through a shared
   :class:`~repro.perf.MemoCache`; every evaluator task is served from
   cache, again bitwise identical.
3. **GP incremental update** — ``GaussianProcess.add_points`` (rank-update
   of the stored Cholesky factor) vs. a full refit at n = 256 training
   points (acceptance bar >= 3x), with the fixed-hyperparameter full
   refactorization also reported as the stricter baseline.

Run with ``pytest benchmarks/bench_parallel_speedup.py -s``.
"""

from __future__ import annotations

import copy
import time

import numpy as np

from repro.gsa.gp import GaussianProcess
from repro.gsa.music import MusicConfig
from repro.perf import MemoCache
from repro.workflows.music_gsa import run_replicate_gsa

#: The Figure 5 workload scaled to benchmark in ~1 minute: 8 replicates x
#: 48-point budget, vectorizable MetaRVM surrogate evaluations.
WORKLOAD = dict(
    n_replicates=8,
    budget=48,
    root_seed=7,
    music_config=MusicConfig(
        n_initial=16, n_candidates=8, surrogate_mc=64, refit_every=16
    ),
)


def _curve_bytes(data):
    return {
        k: np.stack([v for _, v in curve]).tobytes()
        for k, curve in data.replicate_curves.items()
    }


def _timed(**kwargs):
    start = time.perf_counter()
    data = run_replicate_gsa(**WORKLOAD, **kwargs)
    return time.perf_counter() - start, data


def _gp_update_timings(n: int = 256, dim: int = 4, repeats: int = 30):
    """Time incorporating one new point into a fitted GP at ``n`` points.

    Three strategies: the incremental O(n²) ``add_points`` rank update;
    a full O(n³) refactorization at fixed hyperparameters (the internal
    fallback path); and a full refit (``fit()``, which re-optimizes the
    hyperparameters — what the MUSIC loop did on every ``tell`` before
    the incremental update existed).
    """
    rng = np.random.default_rng(0)
    x = rng.uniform(size=(n, dim))
    y = np.sin(x).sum(axis=1) + 0.01 * rng.standard_normal(n)
    gp = GaussianProcess(dim).fit(x, y)

    x_new = rng.uniform(size=(1, dim))
    y_new = np.sin(x_new).sum(axis=1)

    incremental = []
    for _ in range(repeats):
        trial = copy.deepcopy(gp)
        start = time.perf_counter()
        trial.add_points(x_new, y_new)
        incremental.append(time.perf_counter() - start)
        assert trial.update_stats["incremental_updates"] == 1

    refactor = []
    for _ in range(repeats):
        trial = copy.deepcopy(gp)
        trial._x = np.vstack([trial._x, x_new])
        trial._y_raw = np.concatenate([trial._y_raw, y_new])
        trial._y_mean = float(trial._y_raw.mean())
        trial._y_std = float(trial._y_raw.std()) or 1.0
        trial._y_std_vec = (trial._y_raw - trial._y_mean) / trial._y_std
        start = time.perf_counter()
        trial._refactor()
        refactor.append(time.perf_counter() - start)

    refit = []
    for _ in range(3):
        trial = copy.deepcopy(gp)
        x_all = np.vstack([trial._x, x_new])
        y_all = np.concatenate([trial._y_raw, y_new])
        start = time.perf_counter()
        trial.fit(x_all, y_all)
        refit.append(time.perf_counter() - start)

    return (
        float(np.median(incremental)),
        float(np.median(refactor)),
        float(np.median(refit)),
    )


def test_parallel_and_memo_speedup(save_artifact, update_bench_report):
    t_serial, serial = _timed(n_workers=1)
    t_parallel, parallel = _timed(parallel=True, n_workers=8)

    cache = MemoCache()
    t_cold, cold = _timed(parallel=True, n_workers=8, memo_cache=cache)
    t_warm, warm = _timed(parallel=True, n_workers=8, memo_cache=cache)

    reference = _curve_bytes(serial)
    bitwise = dict(
        parallel=_curve_bytes(parallel) == reference,
        memo_cold=_curve_bytes(cold) == reference,
        memo_warm=_curve_bytes(warm) == reference,
    )
    assert all(bitwise.values()), f"bitwise identity violated: {bitwise}"

    speedup = t_serial / t_parallel
    warm_hits = warm.perf_report["memo_hits"]
    warm_tasks = warm.perf_report["pool_tasks_processed"]
    hit_rate = warm_hits / max(warm_tasks, 1)
    assert speedup >= 2.0, f"parallel speedup {speedup:.2f}x below the 2x bar"
    assert warm_hits >= warm_tasks, "warm run must be fully cache-served"

    t_inc, t_refactor, t_refit = _gp_update_timings()
    gp_speedup = t_refit / t_inc
    assert gp_speedup >= 3.0, f"GP add_points {gp_speedup:.2f}x below the 3x bar"
    assert t_inc < t_refactor, "rank update must beat the full refactorization"

    report = {
        "benchmark": "figure5_replicate_gsa_8x48",
        "workload": {
            "n_replicates": WORKLOAD["n_replicates"],
            "budget": WORKLOAD["budget"],
            "root_seed": WORKLOAD["root_seed"],
            "n_workers": 8,
        },
        "serial_seconds": round(t_serial, 3),
        "parallel_seconds": round(t_parallel, 3),
        "parallel_speedup": round(speedup, 2),
        "memo_cold_seconds": round(t_cold, 3),
        "memo_warm_seconds": round(t_warm, 3),
        "memo_warm_speedup_vs_serial": round(t_serial / t_warm, 2),
        "memo_warm_hit_rate": round(hit_rate, 3),
        "bitwise_identical": bitwise,
        "pool_batches": parallel.perf_report.get("pool_batches_processed"),
        "pool_tasks": parallel.perf_report.get("pool_tasks_processed"),
        "gp_add_points_n256": {
            "incremental_ms": round(t_inc * 1e3, 3),
            "full_refactor_ms": round(t_refactor * 1e3, 3),
            "full_refit_ms": round(t_refit * 1e3, 3),
            "speedup_vs_full_refit": round(gp_speedup, 2),
            "speedup_vs_full_refactor": round(t_refactor / t_inc, 2),
        },
    }
    update_bench_report("parallel_memo", report)

    lines = [
        "Parallel evaluation + memoization (Figure 5 workload, 8 replicates)",
        "-" * 68,
        f"serial           {t_serial:8.2f} s",
        f"parallel (8w)    {t_parallel:8.2f} s   {speedup:5.2f}x   "
        f"bitwise={bitwise['parallel']}",
        f"memo cold        {t_cold:8.2f} s           bitwise={bitwise['memo_cold']}",
        f"memo warm        {t_warm:8.2f} s   "
        f"{t_serial / t_warm:5.2f}x   hit rate {hit_rate:.0%}",
        f"batches          {report['pool_batches']} for {report['pool_tasks']} tasks",
        "",
        "GP add_points @ n=256:"
        f" incremental {t_inc * 1e3:.3f} ms"
        f" vs refactor {t_refactor * 1e3:.3f} ms"
        f" ({t_refactor / t_inc:.2f}x)"
        f" vs refit {t_refit * 1e3:.1f} ms ({gp_speedup:.0f}x)",
    ]
    save_artifact("bench_parallel_speedup", "\n".join(lines))

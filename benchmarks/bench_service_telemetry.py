"""Live telemetry on a 1k-run gateway burst: overhead and artifacts.

Two arms over the identical saturation workload of
``bench_service_throughput`` (1k warm-memo wastewater submissions across
four tenants):

* **events off** — an :class:`~repro.obs.Observability` bundle whose
  event bus is disabled, so every gateway emit short-circuits on one
  boolean;
* **events on** — full live telemetry: event bus, SLO engine with the
  default service objectives, flight recorder, and a live ``repro top``
  model all subscribed.

The acceptance target is that full telemetry costs **under 5%** of the
burst's wall-clock window (each arm measured twice, fastest window kept,
arms interleaved so drift hits both).  The events-on arm's telemetry is
exported for CI upload: the complete event log, the SLO report, a
flight-recorder snapshot, and the final rendered ``repro top`` frame.

Results land in the ``service_telemetry`` section of ``BENCH_perf.json``
(the ``obs_events_overhead`` field is the asserted ratio).
"""

from __future__ import annotations

import time

from repro.obs import EventBus, Observability, TopModel, render_top
from repro.perf import MemoCache
from repro.service import COMPLETED, RunGateway, SubmitRequest, TenantConfig
from repro.workflows.wastewater_rt import WastewaterRunConfig, run_wastewater_workflow

N_RUNS = 1000
SHARDS = 12
SEEDS = tuple(range(9300, 9308))
TENANTS = [
    TenantConfig("epi", weight=4.0, max_queued=300, max_running=6),
    TenantConfig("gsa", weight=2.0, max_queued=300, max_running=6),
    TenantConfig("ops", weight=1.0, max_queued=300, max_running=4),
    TenantConfig("edu", weight=1.0, max_queued=300, max_running=4),
]


def bench_config(seed: int) -> WastewaterRunConfig:
    return WastewaterRunConfig(sim_days=1.1, goldstein_iterations=100, seed=seed)


def _burst(memo, obs) -> float:
    """One full saturation burst; returns its wall-clock window."""
    gateway = RunGateway(TENANTS, shards=SHARDS, memo_cache=memo, observability=obs)
    tenant_names = [t.name for t in TENANTS]
    t0 = time.perf_counter()
    for i in range(N_RUNS):
        gateway.submit(
            SubmitRequest(
                tenant=tenant_names[i % len(tenant_names)],
                config=bench_config(SEEDS[i % len(SEEDS)]),
                priority=i % 3,
            )
        )
    gateway.drain(max_ticks=1_000_000)
    window = time.perf_counter() - t0
    assert gateway.scheduler.counts_by_state() == {COMPLETED: N_RUNS}
    gateway.close()
    return window


def _events_off_obs() -> Observability:
    return Observability(events=EventBus(enabled=False))


def _events_on_obs():
    obs = Observability()
    recorder, engine = obs.install_telemetry()
    model = TopModel().attach(obs.events)
    return obs, recorder, engine, model


def test_telemetry_overhead_1k_burst(
    save_artifact, artifact_dir, update_bench_report
):
    memo = MemoCache()
    for seed in SEEDS:  # warm the shared cache outside the windows
        run_wastewater_workflow(bench_config(seed), memo_cache=memo)

    off_windows = []
    on_windows = []
    telemetry = None
    for _ in range(2):  # interleave arms so machine drift hits both
        off_windows.append(_burst(memo, _events_off_obs()))
        telemetry = _events_on_obs()
        on_windows.append(_burst(memo, telemetry[0]))
    off = min(off_windows)
    on = min(on_windows)
    overhead = on / off - 1.0

    obs, recorder, engine, model = telemetry
    n_events = len(obs.events)
    assert n_events >= 3 * N_RUNS  # admit + dispatch + finish at minimum
    assert model.tenants["epi"]["completed"] == N_RUNS / 4

    # CI artifacts: the full log, the SLO report, a recorder snapshot,
    # and the operator's final dashboard frame.
    (artifact_dir / "service_event_log.jsonl").write_text(obs.events.to_jsonl())
    (artifact_dir / "service_slo_report.json").write_text(engine.report_json())
    (artifact_dir / "service_flight_recorder.jsonl").write_text(recorder.dump())
    top_frame = render_top(model, engine.report())
    (artifact_dir / "service_top_frame.txt").write_text(top_frame + "\n")

    lines = [
        "Live telemetry overhead (1k-run saturation burst)",
        "=================================================",
        f"submissions:        {N_RUNS} across {len(TENANTS)} tenants, "
        f"{SHARDS} shards",
        f"events off window:  {off:7.2f} s  (runs {off_windows})",
        f"events on window:   {on:7.2f} s  (runs {on_windows})",
        f"overhead:           {overhead:7.3%}  (target < 5%)",
        f"events emitted:     {n_events}",
        f"alerts fired:       {len(engine.alert_log)}",
        f"recorder dumps:     {len(recorder.dumps)}",
        "",
        top_frame,
    ]
    save_artifact("service_telemetry", "\n".join(lines))

    update_bench_report(
        "service_telemetry",
        {
            "benchmark": "live telemetry on the 1k-run gateway burst",
            "workload": {
                "runs": N_RUNS,
                "tenants": len(TENANTS),
                "shards": SHARDS,
                "memo": "warm shared cache",
            },
            "events_off_window_s": round(off, 3),
            "events_on_window_s": round(on, 3),
            "obs_events_overhead": round(overhead, 6),
            "events_emitted": n_events,
            "alerts_fired": len(engine.alert_log),
            "recorder_dumps": len(recorder.dumps),
            "target": "< 5% events-on overhead",
        },
    )

    assert overhead < 0.05

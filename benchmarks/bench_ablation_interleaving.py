"""Ablation A1: interleaved vs sequential MUSIC instances (§3.2).

Quantifies the paper's scheduling argument with exact discrete-event
accounting: sequential execution leaves the worker pool idle through every
instance's one-at-a-time refinement phase; interleaving overlaps them.
"""

from __future__ import annotations

import pytest

from repro.common.tabulate import format_table
from repro.workflows.utilization import compare_scheduling_modes, run_utilization_study

WORKLOAD = dict(n_instances=10, n_initial=30, n_steps=170, n_slots=32, task_duration=0.001)


@pytest.fixture(scope="module")
def comparison():
    return compare_scheduling_modes(**WORKLOAD)


def test_ablation_interleaving_regenerate(benchmark, save_artifact, comparison):
    seq = comparison["sequential"]
    inter = comparison["interleaved"]
    rows = [
        [r.mode, r.makespan, r.utilization, r.tasks_evaluated, r.slot_days_wasted]
        for r in (seq, inter)
    ]
    text = format_table(
        ["mode", "makespan (days)", "utilization", "tasks", "idle slot-days"],
        rows,
        title="A1: interleaved vs sequential MUSIC instances "
        f"({WORKLOAD['n_instances']} instances, {WORKLOAD['n_slots']} slots)",
    )
    speedup = seq.makespan / inter.makespan
    text += f"\n\ninterleaving speedup: {speedup:.2f}x"
    save_artifact("ablation_interleaving", text)
    benchmark(lambda: seq.makespan / inter.makespan)

    # the paper's claim, quantitatively: interleaving wins decisively
    assert inter.makespan < seq.makespan / 4
    assert inter.utilization > 3 * seq.utilization
    # identical work was done in both modes
    assert seq.tasks_evaluated == inter.tasks_evaluated


def test_sequential_simulation_kernel(benchmark):
    result = benchmark.pedantic(
        lambda: run_utilization_study(interleaved=False, **WORKLOAD),
        rounds=2,
        iterations=1,
    )
    assert result.tasks_evaluated == 10 * (30 + 170)


def test_interleaved_simulation_kernel(benchmark):
    result = benchmark.pedantic(
        lambda: run_utilization_study(interleaved=True, **WORKLOAD),
        rounds=2,
        iterations=1,
    )
    assert result.tasks_evaluated == 10 * (30 + 170)


def test_speedup_scales_with_instances(benchmark, save_artifact):
    """More instances => more overlap to exploit (up to the slot count).

    Includes the 100-instance point: "the workflow itself has separately
    been scaled to 100 replicate experiments as well" (§3.2).
    """
    rows = []
    for n_instances in (2, 5, 10, 20, 50, 100):
        results = compare_scheduling_modes(
            n_instances=n_instances, n_initial=30, n_steps=100,
            n_slots=32, task_duration=0.001,
        )
        speedup = results["sequential"].makespan / results["interleaved"].makespan
        rows.append([n_instances, round(speedup, 2)])
    text = format_table(["instances", "interleaving speedup"], rows)
    save_artifact("ablation_interleaving_scaling", text)
    benchmark(lambda: sorted(r[1] for r in rows))
    speedups = [r[1] for r in rows]
    assert speedups == sorted(speedups)

"""Ablation A9: GSA-informed dimension reduction for calibration.

§3.1.1: GSA "helps identify the most influential parameters, facilitates
dimensional reduction to aid in model calibration efforts".  This ablation
instantiates that claim: calibrate MetaRVM to a synthetic admission curve
(a) over the full 5-parameter Table 1 space, and (b) over only the
parameters the GSA found influential (ts, pea, psh — fixing tv and phd,
which the Figure 4 reference shows carry ~0 and exactly-0 first-order
variance).  Same evaluation budget; the reduced problem must fit at least
as well.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.tabulate import format_table
from repro.gsa.calibration import (
    CalibrationConfig,
    admissions_curve_distance,
    calibrate,
)
from repro.models.metarvm import MetaRVM, MetaRVMConfig
from repro.models.parameters import GSA_PARAMETER_SPACE, ParameterSpace

MODEL = MetaRVM(
    MetaRVMConfig(
        n_days=60,
        population=(40_000, 40_000),
        initial_infections=(40, 40),
        initial_vaccinated_fraction=0.4,
    )
)
TRUTH = np.array([0.45, 0.2, 0.55, 0.25, 0.1])  # ts tv pea psh phd
BUDGET = 70

#: Reduced space: the GSA-influential parameters only.
REDUCED_SPACE = ParameterSpace(
    [("ts", (0.1, 0.9)), ("pea", (0.4, 0.9)), ("psh", (0.1, 0.4))]
)


def _expand_reduced(x_reduced: np.ndarray) -> np.ndarray:
    """Lift reduced points back to the full 5-parameter space, with the
    inert parameters fixed at their nominal values."""
    x_reduced = np.atleast_2d(x_reduced)
    full = np.empty((x_reduced.shape[0], 5))
    full[:, 0] = x_reduced[:, 0]  # ts
    full[:, 1] = 0.2  # tv nominal
    full[:, 2] = x_reduced[:, 1]  # pea
    full[:, 3] = x_reduced[:, 2]  # psh
    full[:, 4] = 0.1  # phd nominal
    return full


@pytest.fixture(scope="module")
def comparison():
    observed = (
        MODEL.run_batch(TRUTH[None, :], seed=7, stochastic=True)
        .hospital_admissions.sum(axis=2)[0]
    )
    full_distance = admissions_curve_distance(observed, MODEL)
    full = calibrate(
        full_distance,
        GSA_PARAMETER_SPACE,
        budget=BUDGET,
        config=CalibrationConfig(n_initial=30),
        seed=0,
    )
    reduced = calibrate(
        lambda x: full_distance(_expand_reduced(x)),
        REDUCED_SPACE,
        budget=BUDGET,
        config=CalibrationConfig(n_initial=30),
        seed=0,
    )
    return full, reduced


def test_ablation_calibration_regenerate(benchmark, save_artifact, comparison):
    full, reduced = comparison
    rows = [
        ["full 5-parameter space", 5, full.best_distance, full.n_evaluations],
        ["GSA-reduced (ts, pea, psh)", 3, reduced.best_distance, reduced.n_evaluations],
    ]
    text = format_table(
        ["calibration space", "dim", "best normalized RMSE", "evaluations"],
        rows,
        title="A9: GSA-informed dimension reduction for calibration "
        f"(budget {BUDGET})",
        digits=3,
    )
    ratio = full.best_distance / max(reduced.best_distance, 1e-12)
    text += f"\n\nfull/reduced final-distance ratio: {ratio:.2f}"
    save_artifact("ablation_calibration", text)
    benchmark(lambda: full.best_distance / reduced.best_distance)

    # Both fits are good; the reduced problem is at least as good with the
    # same budget (the paper's dimensional-reduction rationale).
    assert reduced.best_distance < 0.4
    assert reduced.best_distance <= full.best_distance * 1.25
    # Both crushed the initial-design best (the surrogate loop works).
    assert full.improvement_over_initial() > 1.0
    assert reduced.improvement_over_initial() >= 1.0


def test_calibration_step_kernel(benchmark):
    """One EI propose+tell cycle at n~50 (the calibration inner loop)."""
    observed = (
        MODEL.run_batch(TRUTH[None, :], seed=7, stochastic=True)
        .hospital_admissions.sum(axis=2)[0]
    )
    distance = admissions_curve_distance(observed, MODEL)
    from repro.gsa.calibration import SurrogateCalibrator

    cal = SurrogateCalibrator(GSA_PARAMETER_SPACE, CalibrationConfig(n_initial=30), seed=1)
    design = cal.initial_design()
    cal.tell(design, distance(design))
    for _ in range(20):
        point = cal.propose()
        cal.tell(point, distance(point))

    def step():
        point = cal.propose()
        cal.tell(point, distance(point))

    benchmark.pedantic(step, rounds=5, iterations=1)
    assert cal.n_evaluations >= 55

"""Run-gateway throughput: 1k+ concurrent runs over shared shards.

The ``repro.service`` gateway multiplexes many simultaneous runs over a
fixed pool of simulated-hardware shards via cooperative quantum stepping.
This benchmark saturates a four-tenant gateway with ``N_RUNS`` wastewater
submissions (warm shared memo cache, so per-run compute is the warm-path
cost rather than the cold half-second) and measures, for a gang-batching
**off** arm and a gang-batching **on** arm over the same workload:

* **sustained runs/sec** — completions divided by the wall-clock window
  from first submit to last completion, and
* **p50/p99 submit→first-result latency** — per submission, wall time
  from ``submit()`` returning to the first pump after which the
  submission is observed terminal.  All submissions are enqueued up
  front, so tail latency here *is* the queueing delay at saturation —
  the multi-tenant worst case, not the unloaded RTT.

Correctness is asserted alongside speed: sampled run outputs must be
bitwise identical to the standalone workflow entry point in both arms,
and the completion order must be identical between arms (gang batching
may not perturb the schedule).  A separate cold mini-burst exercises the
fusion path itself — cold estimates parked and flushed as one stacked
MCMC block — and exports the gang-size histogram as a CI artifact.

Wall-clock timestamps appear only in this benchmark; nothing inside
``repro.service`` reads a wall clock (scheduling runs on the virtual
tick, which is what keeps schedules replay-deterministic).

Results land in the ``service_throughput`` section of ``BENCH_perf.json``;
the per-tenant span tree (tenant roots with one run span per submission)
is exported as a Chrome trace to ``benchmarks/output/`` for CI upload.
"""

from __future__ import annotations

import json
import time

from repro.obs import Observability, chrome_trace_json
from repro.obs.metrics import Histogram
from repro.perf import MemoCache
from repro.service import (
    COMPLETED,
    GangPolicy,
    RunGateway,
    SubmitRequest,
    TenantConfig,
)
from repro.workflows.wastewater_rt import WastewaterRunConfig, run_wastewater_workflow

#: Total submissions — the acceptance floor is 1k+ concurrent runs.
N_RUNS = 1000

#: Shared simulated-hardware shards the scheduler multiplexes over.
SHARDS = 12

#: Distinct warm-path configs cycled across the burst.
SEEDS = tuple(range(9300, 9308))

#: PR-6 sustained throughput on this workload (gang batching did not
#: exist yet); the gang-on arm must sustain at least 3x this.
PR6_BASELINE_RUNS_PER_SEC = 10.9

#: Four tenants with 4:2:1:1 fair-share weights, queues sized so the
#: whole burst is admitted up front (true saturation, no backpressure).
TENANTS = [
    TenantConfig("epi", weight=4.0, max_queued=300, max_running=6),
    TenantConfig("gsa", weight=2.0, max_queued=300, max_running=6),
    TenantConfig("ops", weight=1.0, max_queued=300, max_running=4),
    TenantConfig("edu", weight=1.0, max_queued=300, max_running=4),
]


def bench_config(seed: int) -> WastewaterRunConfig:
    return WastewaterRunConfig(sim_days=1.1, goldstein_iterations=100, seed=seed)


#: Geometric bucket edges (seconds) for the submit→first-result latency
#: histogram; quantiles interpolate within these edges (1 ms .. ~2 min).
LATENCY_BOUNDS = tuple(0.001 * (2**i) for i in range(18))


def _run_burst(memo, gang, baselines):
    """One saturation burst; returns the stats dict for its arm."""
    obs = Observability()
    gateway = RunGateway(
        TENANTS, shards=SHARDS, memo_cache=memo, observability=obs, gang=gang
    )

    tenant_names = [t.name for t in TENANTS]
    submit_wall: dict[str, float] = {}
    finish_wall: dict[str, float] = {}
    ticket_seed: dict[str, int] = {}

    t_first_submit = time.perf_counter()
    for i in range(N_RUNS):
        seed = SEEDS[i % len(SEEDS)]
        receipt = gateway.submit(
            SubmitRequest(
                tenant=tenant_names[i % len(tenant_names)],
                config=bench_config(seed),
                priority=i % 3,
            )
        )
        submit_wall[receipt.ticket] = time.perf_counter()
        ticket_seed[receipt.ticket] = seed
    t_submitted = time.perf_counter()

    # Pump to completion, stamping each submission the first time it shows
    # up in the completion order (the pump that finished it just returned).
    seen = 0
    pumps = 0
    order = gateway.scheduler.completion_order
    while gateway.scheduler.has_work():
        gateway.pump()
        pumps += 1
        now = time.perf_counter()
        while seen < len(order):
            finish_wall[order[seen]] = now
            seen += 1
    t_done = time.perf_counter()

    counts = gateway.scheduler.counts_by_state()
    assert counts == {COMPLETED: N_RUNS}
    assert len(finish_wall) == N_RUNS

    # Sampled bitwise identity: every 97th completion vs its standalone
    # baseline (same bytes as run_wastewater_workflow's ensemble JSON).
    for ticket in list(order)[::97]:
        output = gateway.result(ticket).output
        assert output["ensemble"] == baselines[ticket_seed[ticket]], (
            f"{ticket} output diverged from standalone baseline"
        )
    gateway.close()

    window = t_done - t_first_submit
    latency = Histogram("submit_to_first_result_s", bounds=LATENCY_BOUNDS)
    worst = 0.0
    for ticket in finish_wall:
        value = finish_wall[ticket] - submit_wall[ticket]
        latency.observe(value)
        worst = max(worst, value)
    return {
        "obs": obs,
        "completion_order": list(order),
        "submit_s": t_submitted - t_first_submit,
        "window_wall_s": window,
        "runs_per_sec": N_RUNS / window,
        "p50": latency.quantile(0.50),
        "p99": latency.quantile(0.99),
        "max": worst,
        "pumps": pumps,
        "quanta": obs.service_view()["quanta"],
    }


def _cold_fusion_burst(artifact_dir):
    """Small cold burst that actually parks+flushes fused MCMC blocks.

    The 1k-run arms execute against a warm memo (analyze-level hits), so
    gang *formation* happens every tick but no estimator payloads park.
    This burst runs cold, where fusion pays: concurrent runs' estimates
    flush as one stacked block.  Exports the gang-size histogram.
    """
    obs = Observability()
    gateway = RunGateway(
        [TenantConfig("epi", weight=2.0, max_queued=16, max_running=8)],
        shards=8,
        observability=obs,
        gang=GangPolicy(max_gang=8),
    )
    for seed in range(9400, 9406):
        gateway.submit(
            SubmitRequest(tenant="epi", config=bench_config(seed))
        )
    t0 = time.perf_counter()
    gateway.drain(max_ticks=100000)
    cold_window = time.perf_counter() - t0
    assert gateway.scheduler.counts_by_state() == {COMPLETED: 6}
    gateway.close()

    gang_view = obs.service_view()["gang"]
    assert gang_view["gangs"] > 0
    assert gang_view["fused_payloads"] > 0, "cold burst never fused a flush"
    histogram_path = artifact_dir / "gang_size_histogram.json"
    histogram_path.write_text(json.dumps(gang_view, indent=2) + "\n")
    return gang_view, cold_window, histogram_path


def test_service_throughput_1k_runs(save_artifact, artifact_dir, update_bench_report):
    memo = MemoCache()
    baselines = {}
    for seed in SEEDS:  # warm the shared cache once, outside the window
        result = run_wastewater_workflow(bench_config(seed), memo_cache=memo)
        baselines[seed] = result.ensemble.to_json(include_samples=True)

    off = _run_burst(memo, gang=None, baselines=baselines)
    on = _run_burst(memo, gang=GangPolicy(max_gang=8), baselines=baselines)

    # Gang batching must not perturb the schedule: identical completion
    # order, submission for submission, with gangs on and off.
    assert on["completion_order"] == off["completion_order"]

    gang_view, cold_window, histogram_path = _cold_fusion_burst(artifact_dir)

    trace_path = artifact_dir / "service_tenant_trace.json"
    trace_path.write_text(chrome_trace_json(on["obs"].tracer, zero_wall=True) + "\n")

    speedup_vs_pr6 = on["runs_per_sec"] / PR6_BASELINE_RUNS_PER_SEC
    lines = [
        "Run-gateway throughput (warm memo, saturation burst)",
        "====================================================",
        f"submissions:             {N_RUNS} across {len(TENANTS)} tenants",
        f"shards:                  {SHARDS}",
        "",
        f"gang off:                {off['runs_per_sec']:6.1f} runs/s "
        f"(window {off['window_wall_s']:.2f} s, pumps {off['pumps']})",
        f"gang on (max_gang=8):    {on['runs_per_sec']:6.1f} runs/s "
        f"(window {on['window_wall_s']:.2f} s, pumps {on['pumps']})",
        f"vs PR-6 baseline:        {speedup_vs_pr6:6.2f}x "
        f"({PR6_BASELINE_RUNS_PER_SEC} runs/s)",
        f"latency p50/p99/max:     {on['p50']:5.2f} / {on['p99']:5.2f} / "
        f"{on['max']:5.2f} s (gang on)",
        f"completion order:        identical across arms ({N_RUNS} runs)",
        "",
        f"cold fusion burst:       6 runs in {cold_window:.2f} s, "
        f"{gang_view['gangs']} gangs, fill ratio {gang_view['fill_ratio']}",
        f"fused/solo payloads:     {gang_view['fused_payloads']} / "
        f"{gang_view['solo_payloads']}",
        f"gang-size histogram:     {histogram_path.name}",
        f"per-tenant trace:        {trace_path.name}",
    ]
    save_artifact("service_throughput", "\n".join(lines))

    def arm_payload(arm):
        return {
            "window_wall_s": round(arm["window_wall_s"], 3),
            "sustained_runs_per_sec": round(arm["runs_per_sec"], 2),
            "submit_to_first_result_s": {
                "p50": round(arm["p50"], 4),
                "p99": round(arm["p99"], 4),
                "max": round(arm["max"], 4),
            },
            "pumps": arm["pumps"],
            "quanta": arm["quanta"],
        }

    update_bench_report(
        "service_throughput",
        {
            "benchmark": "multi-tenant run gateway, 1k-run saturation burst",
            "workload": {
                "runs": N_RUNS,
                "tenants": len(TENANTS),
                "shards": SHARDS,
                "sim_days": 1.1,
                "goldstein_iterations": 100,
                "memo": "warm shared cache",
            },
            "gang_off": arm_payload(off),
            "gang_on": arm_payload(on),
            "pr6_baseline_runs_per_sec": PR6_BASELINE_RUNS_PER_SEC,
            "speedup_vs_pr6": round(speedup_vs_pr6, 2),
            "completion_order_identical": True,
            "cold_fusion_burst": {
                "runs": 6,
                "window_wall_s": round(cold_window, 3),
                "gang": gang_view,
            },
            "note": (
                "all submissions enqueued up front; p99 latency is the "
                "queueing delay at saturation; sampled outputs asserted "
                "bitwise identical to standalone in both arms"
            ),
        },
    )

    # Acceptance: the gang-on arm must sustain at least 3x the PR-6
    # baseline on the same 1k-run four-tenant burst.
    assert on["runs_per_sec"] >= 3.0 * PR6_BASELINE_RUNS_PER_SEC

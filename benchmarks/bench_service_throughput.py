"""Run-gateway throughput: 1k+ concurrent runs over shared shards.

The ``repro.service`` gateway multiplexes many simultaneous runs over a
fixed pool of simulated-hardware shards via cooperative quantum stepping.
This benchmark saturates a four-tenant gateway with ``N_RUNS`` wastewater
submissions (warm shared memo cache, so per-run compute is the ~70 ms
warm-path cost rather than the cold half-second) and measures:

* **sustained runs/sec** — completions divided by the wall-clock window
  from first submit to last completion, and
* **p50/p99 submit→first-result latency** — per submission, wall time
  from ``submit()`` returning to the first pump after which the
  submission is observed terminal.  All submissions are enqueued up
  front, so tail latency here *is* the queueing delay at saturation —
  the multi-tenant worst case, not the unloaded RTT.

Wall-clock timestamps appear only in this benchmark; nothing inside
``repro.service`` reads a wall clock (scheduling runs on the virtual
tick, which is what keeps schedules replay-deterministic).

Results land in the ``service_throughput`` section of ``BENCH_perf.json``;
the per-tenant span tree (tenant roots with one run span per submission)
is exported as a Chrome trace to ``benchmarks/output/`` for CI upload.
"""

from __future__ import annotations

import time

from repro.obs import Observability, chrome_trace_json
from repro.perf import MemoCache
from repro.service import COMPLETED, RunGateway, SubmitRequest, TenantConfig
from repro.workflows.wastewater_rt import WastewaterRunConfig, run_wastewater_workflow

#: Total submissions — the acceptance floor is 1k+ concurrent runs.
N_RUNS = 1000

#: Shared simulated-hardware shards the scheduler multiplexes over.
SHARDS = 12

#: Distinct warm-path configs cycled across the burst.
SEEDS = tuple(range(9300, 9308))

#: Four tenants with 4:2:1:1 fair-share weights, queues sized so the
#: whole burst is admitted up front (true saturation, no backpressure).
TENANTS = [
    TenantConfig("epi", weight=4.0, max_queued=300, max_running=6),
    TenantConfig("gsa", weight=2.0, max_queued=300, max_running=6),
    TenantConfig("ops", weight=1.0, max_queued=300, max_running=4),
    TenantConfig("edu", weight=1.0, max_queued=300, max_running=4),
]


def bench_config(seed: int) -> WastewaterRunConfig:
    return WastewaterRunConfig(sim_days=1.1, goldstein_iterations=100, seed=seed)


def _percentile(sorted_values, q: float) -> float:
    idx = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[idx]


def test_service_throughput_1k_runs(save_artifact, artifact_dir, update_bench_report):
    memo = MemoCache()
    for seed in SEEDS:  # warm the shared cache once, outside the window
        run_wastewater_workflow(bench_config(seed), memo_cache=memo)

    obs = Observability()
    gateway = RunGateway(
        TENANTS, shards=SHARDS, memo_cache=memo, observability=obs
    )

    tenant_names = [t.name for t in TENANTS]
    submit_wall: dict[str, float] = {}
    finish_wall: dict[str, float] = {}

    t_first_submit = time.perf_counter()
    for i in range(N_RUNS):
        receipt = gateway.submit(
            SubmitRequest(
                tenant=tenant_names[i % len(tenant_names)],
                config=bench_config(SEEDS[i % len(SEEDS)]),
                priority=i % 3,
            )
        )
        submit_wall[receipt.ticket] = time.perf_counter()
    t_submitted = time.perf_counter()

    # Pump to completion, stamping each submission the first time it shows
    # up in the completion order (the pump that finished it just returned).
    seen = 0
    pumps = 0
    order = gateway.scheduler.completion_order
    while gateway.scheduler.has_work():
        gateway.pump()
        pumps += 1
        now = time.perf_counter()
        while seen < len(order):
            finish_wall[order[seen]] = now
            seen += 1
    t_done = time.perf_counter()
    gateway.close()

    counts = gateway.scheduler.counts_by_state()
    assert counts == {COMPLETED: N_RUNS}
    assert len(finish_wall) == N_RUNS

    window = t_done - t_first_submit
    runs_per_sec = N_RUNS / window
    latencies = sorted(
        finish_wall[ticket] - submit_wall[ticket] for ticket in finish_wall
    )
    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)

    view = obs.service_view()
    trace_path = artifact_dir / "service_tenant_trace.json"
    trace_path.write_text(chrome_trace_json(obs.tracer, zero_wall=True) + "\n")

    lines = [
        "Run-gateway throughput (warm memo, saturation burst)",
        "====================================================",
        f"submissions:             {N_RUNS} across {len(TENANTS)} tenants",
        f"shards / pumps:          {SHARDS} / {pumps}",
        f"submit phase:            {t_submitted - t_first_submit:6.2f} s",
        f"total window:            {window:6.2f} s",
        f"sustained throughput:    {runs_per_sec:6.1f} runs/s",
        f"latency p50 / p99 / max: {p50:5.2f} / {p99:5.2f} / {latencies[-1]:5.2f} s",
        f"quanta stepped:          {view['quanta']}",
        f"per-tenant trace:        {trace_path.name}",
    ]
    save_artifact("service_throughput", "\n".join(lines))

    update_bench_report(
        "service_throughput",
        {
            "benchmark": "multi-tenant run gateway, 1k-run saturation burst",
            "workload": {
                "runs": N_RUNS,
                "tenants": len(TENANTS),
                "shards": SHARDS,
                "sim_days": 1.1,
                "goldstein_iterations": 100,
                "memo": "warm shared cache",
            },
            "window_wall_s": round(window, 3),
            "sustained_runs_per_sec": round(runs_per_sec, 2),
            "submit_to_first_result_s": {
                "p50": round(p50, 4),
                "p99": round(p99, 4),
                "max": round(latencies[-1], 4),
            },
            "scheduler": {
                "pumps": pumps,
                "quanta": view["quanta"],
                "completed": view["completed"],
            },
            "note": (
                "all submissions enqueued up front; p99 latency is the "
                "queueing delay at saturation"
            ),
        },
    )

    # Floor, not a target: warm runs are ~70 ms, so even serial execution
    # over the shard pool clears a few runs per second.
    assert runs_per_sec > 2.0

"""Checkpointing overhead: journaling a run must cost <5% of the workload.

The ``repro.state`` runtime journals every completed compute task, timer
firing, and flow step as the run executes.  The acceptance target is that a
fully journaled run of the vectorized R(t) workflow — the repo's benchmark
workload since the multi-chain MCMC PR — pays **under 5%** wall-clock over
an unjournaled run, for either store backend.

Method: ``REPS`` alternating runs of the wastewater workflow with no store,
an in-memory store, and a fresh on-disk JSONL store (fresh per rep, so no
run ever replays a journal hit — this measures pure record overhead, the
worst case).  The minimum wall per mode is compared; minima are the
standard noise-robust statistic for this suite (see bench_obs_overhead).

Results land in the ``checkpoint_overhead`` section of ``BENCH_perf.json``;
a sample journal from the on-disk run is copied to ``benchmarks/output/``
for the CI artifact upload.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from repro.state import InMemoryRunStore, JsonlRunStore
from repro.workflows.wastewater_rt import WastewaterRunConfig, run_wastewater_workflow

#: Alternating repetitions per mode (min-of-REPS is the statistic).
REPS = 3

#: The vectorized R(t) benchmark workload, journaled end to end.
CONFIG = WastewaterRunConfig(
    sim_days=6.0, goldstein_iterations=400, seed=7, vectorized_rt=True
)


def _run_once(run_store) -> tuple[float, object]:
    t0 = time.perf_counter()
    result = run_wastewater_workflow(CONFIG, run_store=run_store)
    return time.perf_counter() - t0, result


def test_checkpoint_overhead_under_5_percent(save_artifact, update_bench_report):
    walls: dict[str, list[float]] = {"none": [], "memory": [], "jsonl": []}
    records = 0
    sample_journal: Path | None = None
    jsonl_roots: list[Path] = []

    for _ in range(REPS):
        wall, _ = _run_once(None)
        walls["none"].append(wall)

        wall, result = _run_once(InMemoryRunStore())
        walls["memory"].append(wall)
        records = result.state_report["state_journal_records"]

        root = Path(tempfile.mkdtemp(prefix="bench-ckpt-"))
        jsonl_roots.append(root)
        store = JsonlRunStore(root)
        wall, result = _run_once(store)
        walls["jsonl"].append(wall)
        sample_journal = (
            root / result.run_id / JsonlRunStore.JOURNAL_NAME
        )

    base = min(walls["none"])
    overhead_memory = min(walls["memory"]) / base - 1.0
    overhead_jsonl = min(walls["jsonl"]) / base - 1.0

    # CI artifact: one complete journal from a journaled benchmark run.
    out_dir = Path(__file__).parent / "output"
    out_dir.mkdir(exist_ok=True)
    assert sample_journal is not None and sample_journal.exists()
    shutil.copyfile(sample_journal, out_dir / "sample_run_journal.jsonl")
    for root in jsonl_roots:
        shutil.rmtree(root, ignore_errors=True)

    lines = [
        "Checkpointing overhead (vectorized R(t) workload)",
        "=================================================",
        f"journal records per run:     {records}",
        f"no store       (min of {REPS}): {base:6.3f} s",
        f"in-memory store (min of {REPS}): {min(walls['memory']):6.3f} s"
        f"  ({overhead_memory:+.2%})",
        f"JSONL store     (min of {REPS}): {min(walls['jsonl']):6.3f} s"
        f"  ({overhead_jsonl:+.2%})",
        "",
        "target: < 5% for either backend",
    ]
    save_artifact("checkpoint_overhead", "\n".join(lines))

    update_bench_report(
        "checkpoint_overhead",
        {
            "benchmark": "run-journal overhead on the vectorized R(t) workflow",
            "workload": {
                "sim_days": CONFIG.sim_days,
                "goldstein_iterations": CONFIG.goldstein_iterations,
                "vectorized_rt": True,
            },
            "journal_records_per_run": records,
            "wall_s_min": {
                "no_store": round(base, 4),
                "memory_store": round(min(walls["memory"]), 4),
                "jsonl_store": round(min(walls["jsonl"]), 4),
            },
            "overhead": {
                "memory_store": round(overhead_memory, 6),
                "jsonl_store": round(overhead_jsonl, 6),
            },
            "target": "< 5% overhead, either backend",
        },
    )

    assert overhead_memory < 0.05
    assert overhead_jsonl < 0.05

"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures: the rendered
text is printed (visible with ``-s``) and also written to
``benchmarks/output/<name>.txt`` so artifacts survive output capture.
"""

from __future__ import annotations

import json
import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    """Directory the rendered tables/figures are written to."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def save_artifact(artifact_dir):
    """Write rendered text to the artifact directory and echo it."""

    def save(name: str, text: str) -> str:
        path = artifact_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name} -> {path}]")
        print(text)
        return text

    return save


@pytest.fixture(scope="session")
def update_bench_report():
    """Merge one benchmark's section into ``BENCH_perf.json``.

    Each perf benchmark owns a top-level section; merging (rather than
    overwriting the whole file) lets the quick-bench CI job run the
    benchmarks in any order or subset without clobbering earlier results.
    """

    def update(section: str, payload: dict) -> None:
        path = REPO_ROOT / "BENCH_perf.json"
        try:
            report = json.loads(path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            report = {}
        if "benchmark" in report:
            # Legacy flat layout (the parallel/memo report at top level):
            # fold it into its section before adding new ones.
            report = {"parallel_memo": report}
        report[section] = payload
        path.write_text(json.dumps(report, indent=2) + "\n")

    return update


@pytest.fixture(scope="session")
def save_svg(artifact_dir):
    """Write an SVG figure to the artifact directory."""

    def save(name: str, svg: str) -> str:
        path = artifact_dir / f"{name}.svg"
        path.write_text(svg)
        print(f"\n[{name} -> {path}]")
        return svg

    return save

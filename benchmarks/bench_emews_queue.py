"""EMEWS task-queue benchmark: 100k tasks through the lazy-deletion heap.

The queue used to be a per-type *sorted list*: ``set_priority`` was a
remove-then-bisect O(n) splice, and a bulk re-prioritization of k tasks
cost O(k·n).  Steering issues exactly that workload — every decision
re-ranks a window and cancels a slice — so the queue was rewritten as a
lazy-deletion binary heap: pushes are O(log n), ``set_priority`` /
``cancel`` drop a tombstone and push a fresh entry (O(log n)), and stale
entries are skipped (and periodically compacted) on pop.

This benchmark drives the mixed workload at 100k tasks — submit, bulk
``update_priorities``, bulk ``cancel_queued``, then drain — asserts the
pop order still honors priority-then-FIFO, and records per-phase
throughput into the ``emews_queue_100k`` section of ``BENCH_perf.json``.
"""

from __future__ import annotations

import time

from repro.emews.db import TaskDatabase, TaskState

N_TASKS = 100_000
RERANK_STRIDE = 2  # every other task gets a new priority, in one bulk call
CANCEL_STRIDE = 8  # every 8th task is cancelled before its turn
N_PRIORITIES = 7


def test_emews_queue_100k(save_artifact, update_bench_report):
    db = TaskDatabase()

    t0 = time.perf_counter()
    task_ids = [
        db.submit("bench", "point", {"i": i}, priority=i % N_PRIORITIES)
        for i in range(N_TASKS)
    ]
    t_submitted = time.perf_counter()
    assert db.queue_length("point") == N_TASKS

    # One atomic bulk re-prioritization — the steering decision shape.
    new_priorities = {
        tid: (i * 31) % N_PRIORITIES
        for i, tid in enumerate(task_ids)
        if i % RERANK_STRIDE == 0
    }
    t_rerank0 = time.perf_counter()
    rerank_outcome = db.update_priorities(new_priorities)
    t_reranked = time.perf_counter()
    assert all(rerank_outcome.values())

    cancel_ids = [tid for i, tid in enumerate(task_ids) if i % CANCEL_STRIDE == 0]
    t_cancel0 = time.perf_counter()
    cancel_outcome = db.cancel_queued(cancel_ids, reason="bench")
    t_cancelled = time.perf_counter()
    assert all(cancel_outcome.values())
    expected_live = N_TASKS - len(cancel_ids)
    assert db.queue_length("point") == expected_live

    # Drain everything, checking the priority-then-FIFO contract as we go:
    # priorities never increase, and within a priority level the per-push
    # sequence numbers (fresh on submit AND on re-prioritization) make
    # claim order exactly submission-of-current-priority order.
    t_drain0 = time.perf_counter()
    popped = 0
    last_priority = None
    while True:
        task = db.pop_task("point", "bench-worker")
        if task is None:
            break
        if last_priority is not None:
            assert task.priority <= last_priority
        last_priority = task.priority
        popped += 1
    t_done = time.perf_counter()

    assert popped == expected_live
    assert db.queue_length("point") == 0
    cancelled = sum(
        1 for tid in cancel_ids if db.get_task(tid).state == TaskState.CANCELLED
    )
    assert cancelled == len(cancel_ids)

    submit_s = t_submitted - t0
    rerank_s = t_reranked - t_rerank0
    cancel_s = t_cancelled - t_cancel0
    drain_s = t_done - t_drain0
    total_ops = N_TASKS + len(new_priorities) + len(cancel_ids) + popped
    ops_per_sec = total_ops / (submit_s + rerank_s + cancel_s + drain_s)

    lines = [
        "EMEWS task queue: 100k-task mixed workload",
        "==========================================",
        f"tasks submitted:       {N_TASKS} ({len(cancel_ids)} later cancelled)",
        f"submit phase:          {submit_s:6.2f} s "
        f"({N_TASKS / submit_s:10.0f} tasks/s)",
        f"bulk re-prioritize:    {rerank_s * 1e3:6.1f} ms for "
        f"{len(new_priorities)} tasks in one update_priorities call",
        f"bulk cancel:           {cancel_s * 1e3:6.1f} ms for "
        f"{len(cancel_ids)} tasks in one cancel_queued call",
        f"drain phase:           {drain_s:6.2f} s "
        f"({popped / drain_s:10.0f} pops/s, priority+FIFO order verified)",
        f"overall throughput:    {ops_per_sec:10.0f} ops/s",
    ]
    save_artifact("emews_queue_100k", "\n".join(lines))

    update_bench_report(
        "emews_queue_100k",
        {
            "benchmark": "EMEWS lazy-deletion heap, 100k-task mixed workload",
            "workload": {
                "tasks": N_TASKS,
                "bulk_reranked": len(new_priorities),
                "bulk_cancelled": len(cancel_ids),
                "priorities": N_PRIORITIES,
            },
            "submit_wall_s": round(submit_s, 3),
            "bulk_rerank_wall_s": round(rerank_s, 4),
            "bulk_cancel_wall_s": round(cancel_s, 4),
            "drain_wall_s": round(drain_s, 3),
            "ops_per_sec": round(ops_per_sec, 1),
            "note": (
                "queue is a lazy-deletion heap: re-prioritize/cancel drop "
                "tombstones at O(log n) instead of splicing a sorted list "
                "at O(n) per task"
            ),
        },
    )

"""Figure 5: first-order Sobol indices across stochastic replicates.

Regenerates the paper's aleatoric-variability study: the GSA run
independently on replicates of MetaRVM, each with a unique random stream,
interleaved through EMEWS futures.  Benchmarks the full interleaved
multi-instance workflow.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gsa.music import MusicConfig
from repro.workflows.figures import render_figure5
from repro.workflows.music_gsa import run_replicate_gsa

N_REPLICATES = 6
BUDGET = 70
MUSIC_CONFIG = MusicConfig(
    n_initial=25, refit_every=10, surrogate_mc=384, n_candidates=96
)


@pytest.fixture(scope="module")
def figure5_data():
    return run_replicate_gsa(
        n_replicates=N_REPLICATES,
        budget=BUDGET,
        root_seed=42,
        music_config=MUSIC_CONFIG,
        n_workers=4,
    )


def test_figure5_regenerate(benchmark, save_artifact, save_svg, figure5_data):
    data = figure5_data
    save_artifact("figure5", render_figure5(data))
    from repro.workflows.figures import figure5_svg

    save_svg("figure5", figure5_svg(data))
    benchmark(lambda: render_figure5(data))

    finals = data.final_indices()
    assert finals.shape == (N_REPLICATES, 5)
    # Every replicate agrees on the dominant parameter (ts)...
    assert np.all(np.argmax(finals, axis=1) == 0)
    # ...but replicates genuinely differ (aleatoric spread, the figure's point)
    spread = data.cross_replicate_spread()
    assert spread["ts"][1] - spread["ts"][0] > 0.005
    # every replicate used a unique random stream
    assert len(set(data.replicate_seeds.values())) == N_REPLICATES
    assert data.tasks_evaluated == N_REPLICATES * BUDGET


def test_interleaved_replicate_workflow(benchmark):
    """Wall-clock cost of a reduced interleaved replicate study."""

    def run():
        return run_replicate_gsa(
            n_replicates=3,
            budget=35,
            root_seed=7,
            music_config=MusicConfig(
                n_initial=20, refit_every=10, surrogate_mc=256, n_candidates=64
            ),
            n_workers=4,
        )

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    assert data.tasks_evaluated == 3 * 35

"""Acquisition-driven steering: evals-to-convergence, steering on vs off.

The scenario models the paper's ME→HPC loop on a wide machine: to keep 8
evaluation slots busy, the MUSIC instance must hold a deep (48-point)
window of proposals in flight — and a deep window means every evaluated
point was proposed against a surrogate that is up to 48 results stale.
The steered run re-scores the queued window as results stream back,
cancels the half with the least acquisition value (budget reclaimed), and
re-spends the reclaimed budget later against fresher surrogate states,
one proposal per told result.

Both arms run the *same* windowed lookahead loop under the deterministic
:class:`~repro.emews.SteppedWorkerPool` (claims in priority order,
completes in task order, one quantum at a time), differing only in
``steer_every`` — the honest ablation at equal pipeline depth.  The
figure of merit is :func:`~repro.gsa.steering.evals_to_convergence`: the
smallest evaluation count after which the first-order Sobol estimates of
the Ishigami function stay within ``TOL`` of the analytic indices.

Asserts a ≥ 25% mean reduction over the fixed seed set, zero wasted
evaluations (every cancel lands before a claim under the stepped pool),
and bitwise-identical decision journals across a re-run.  Emits the
``gsa_steering`` section of ``BENCH_perf.json`` plus two artifacts:
per-seed convergence curves (``gsa_steering_convergence.txt``) and the
canonical decision journal (``gsa_steering_decisions.json``).
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.emews.api import TaskQueue
from repro.emews.db import TaskDatabase
from repro.emews.worker_pool import SteppedWorkerPool
from repro.gsa.music import MusicConfig, MusicGSA
from repro.gsa.steering import (
    SteeringConfig,
    SteeringPolicy,
    SteeringReport,
    evals_to_convergence,
    run_stepped,
    steered_music_coroutine,
)
from repro.gsa.testfunctions import ISHIGAMI_FIRST_ORDER, ishigami
from repro.models.parameters import ParameterSpace

SEEDS = (1, 2, 3, 4, 5)
BUDGET = 256
N_SLOTS = 8
TOL = 0.05
MIN_REDUCTION_PCT = 25.0

SPACE = ParameterSpace([("x1", (0.0, 1.0)), ("x2", (0.0, 1.0)), ("x3", (0.0, 1.0))])
MUSIC = MusicConfig(
    n_initial=16,
    acquisition="eigf",
    n_candidates=128,
    surrogate_mc=512,
    refit_every=4,
)
STEERING = SteeringConfig(
    steer_every=1,
    lookahead=48,
    cancel_fraction=0.5,
    min_keep=2,
    rank_by="fifo",
    cancel_guard=N_SLOTS,
)
BASELINE = SteeringConfig(steer_every=0, lookahead=STEERING.lookahead)


def _evaluator(payload):
    point = np.asarray(payload["point"], dtype=float)[None, :]
    return {"hospitalizations": float(ishigami(point)[0])}


def _run(seed: int, steering: SteeringConfig):
    music = MusicGSA(SPACE, MUSIC, seed=seed)
    db = TaskDatabase()
    queue = TaskQueue(db, f"steer-bench-{seed}")
    pool = SteppedWorkerPool(db, "metarvm", _evaluator, n_slots=N_SLOTS)
    policy = SteeringPolicy(music, steering)
    report = SteeringReport()
    coroutine = steered_music_coroutine(
        music, queue, seed, BUDGET, steering, policy=policy, report=report
    )
    run_stepped([coroutine], pool)
    history = [(entry.n_evaluations, entry.first_order) for entry in music.history]
    converged_at = evals_to_convergence(history, ISHIGAMI_FIRST_ORDER, tol=TOL)
    return min(float(converged_at), float(BUDGET)), history, report, policy


def _curve_lines(seed: int, label: str, history) -> list:
    lines = [f"seed {seed} [{label}]"]
    for n, values in history:
        err = float(np.max(np.abs(np.asarray(values) - ISHIGAMI_FIRST_ORDER)))
        lines.append(f"  n={n:4d}  max_abs_err={err:.4f}")
    return lines


def test_steering_reduces_evals_to_convergence(
    save_artifact, update_bench_report, artifact_dir
):
    t0 = time.perf_counter()
    per_seed = []
    curve_lines = []
    journals = {}
    histories_on = {}
    for seed in SEEDS:
        off, hist_off, _, _ = _run(seed, BASELINE)
        on, hist_on, report, policy = _run(seed, STEERING)
        histories_on[seed] = hist_on
        # Under the stepped pool every decided cancel lands before a claim:
        # the reclaimed budget is real, nothing is evaluated then discarded.
        assert report.wasted_evals == 0
        assert report.reclaimed_evals > 0
        per_seed.append(
            {
                "seed": seed,
                "evals_to_convergence_off": off,
                "evals_to_convergence_on": on,
                "reclaimed_evals": report.reclaimed_evals,
                "decisions": report.decisions,
            }
        )
        curve_lines += _curve_lines(seed, "steer off", hist_off)
        curve_lines += _curve_lines(seed, "steer on", hist_on)
        journals[seed] = policy.decision_journal()

    # Bitwise determinism: repeat one steered arm and compare journals.
    _, hist_again, _, policy_again = _run(SEEDS[0], STEERING)
    assert json.dumps(policy_again.decision_journal()) == json.dumps(
        journals[SEEDS[0]]
    )
    first = histories_on[SEEDS[0]]
    assert len(hist_again) == len(first)
    assert all(
        a[0] == b[0] and np.array_equal(a[1], b[1])
        for a, b in zip(hist_again, first)
    )

    off_mean = float(np.mean([row["evals_to_convergence_off"] for row in per_seed]))
    on_mean = float(np.mean([row["evals_to_convergence_on"] for row in per_seed]))
    reduction_pct = 100.0 * (off_mean - on_mean) / off_mean
    wall_s = time.perf_counter() - t0

    lines = [
        "GSA steering: model evaluations to converged Sobol indices",
        "==========================================================",
        f"scenario:             Ishigami / EIGF, budget {BUDGET}, "
        f"{N_SLOTS} slots, lookahead {STEERING.lookahead}, tol {TOL}",
        f"steering:             every result, cancel {STEERING.cancel_fraction:.0%}"
        f" of the window, guard {STEERING.cancel_guard}",
        "",
        "seed   steer off   steer on   reclaimed   decisions",
    ]
    for row in per_seed:
        lines.append(
            f"{row['seed']:4d}   {row['evals_to_convergence_off']:9.0f}"
            f"   {row['evals_to_convergence_on']:8.0f}"
            f"   {row['reclaimed_evals']:9d}   {row['decisions']:9d}"
        )
    lines += [
        "",
        f"mean evals to convergence:  {off_mean:.1f} -> {on_mean:.1f}"
        f"  ({reduction_pct:.1f}% fewer)",
        f"wasted evaluations:         0 (stepped pool: cancels always land)",
        f"wall time:                  {wall_s:.1f} s",
    ]
    save_artifact("gsa_steering", "\n".join(lines))
    save_artifact("gsa_steering_convergence", "\n".join(curve_lines))
    (artifact_dir / "gsa_steering_decisions.json").write_text(
        json.dumps({str(seed): journal for seed, journal in journals.items()}, indent=2)
        + "\n"
    )

    update_bench_report(
        "gsa_steering",
        {
            "benchmark": (
                "acquisition-driven steering: evals to converged Sobol indices"
            ),
            "workload": {
                "testfunction": "ishigami",
                "acquisition": MUSIC.acquisition,
                "budget": BUDGET,
                "n_slots": N_SLOTS,
                "lookahead": STEERING.lookahead,
                "tolerance": TOL,
                "seeds": list(SEEDS),
            },
            "steering": STEERING.to_jsonable(),
            "per_seed": per_seed,
            "evals_to_convergence_off_mean": round(off_mean, 1),
            "evals_to_convergence_on_mean": round(on_mean, 1),
            "reduction_pct": round(reduction_pct, 1),
            "wall_s": round(wall_s, 1),
            "note": (
                "deep-lookahead baseline evaluates proposals up to 48 results "
                "stale; steering cancels the low-acquisition half and re-spends "
                "the reclaimed budget one proposal per told result"
            ),
        },
    )

    assert reduction_pct >= MIN_REDUCTION_PCT, (
        f"steering reduced mean evals-to-convergence by only "
        f"{reduction_pct:.1f}% (< {MIN_REDUCTION_PCT}% floor): "
        f"off {off_mean:.1f} vs on {on_mean:.1f}"
    )

"""Vectorized multi-chain MCMC benchmark: the wastewater R(t) hot path.

The Figure-2 ensemble workload — all four Chicago plants' Goldstein
estimates — timed three ways, written to the ``rt_vectorized`` section of
``BENCH_perf.json``:

1. **scalar** — one :class:`~repro.rt.mcmc.AdaptiveMetropolis` chain at a
   time, per plant (the pre-vectorization execution strategy);
2. **vectorized** — each plant's chains advanced as one
   :class:`~repro.rt.mcmc.VectorizedAdaptiveMetropolis` block;
3. **cross-plant batch** — every plant's chains stacked into a *single*
   sampler invocation (:func:`~repro.rt.goldstein.estimate_rt_goldstein_batch`),
   plus a warm rerun through a shared :class:`~repro.perf.MemoCache`.

Acceptance bars: the cross-plant batch is >= 5x faster than the scalar
path with *bitwise identical* estimates (multi-chain, and separately in
single-chain mode, where the published Figure 2 curves live), and the
vectorized sampler's split-R̂ on a well-behaved benchmark posterior is
below 1.05.  The slow-mixing wastewater posterior's own split-R̂ is
reported informationally.

Run with ``pytest benchmarks/bench_rt_vectorized.py -s``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.models.wastewater import SyntheticIWSS
from repro.perf import MemoCache
from repro.rt import (
    GoldsteinConfig,
    VectorizedAdaptiveMetropolis,
    estimate_rt_goldstein,
    estimate_rt_goldstein_batch,
)

#: The Figure 2 ensemble workload scaled to benchmark in ~10 seconds:
#: four plants x four chains x 500 iterations over 150 days of data.
N_DAYS = 150
N_ITERATIONS = 500
N_CHAINS = 4
SEED = 7


def _observations():
    iwss = SyntheticIWSS(n_days=N_DAYS, seed=SEED)
    return {p.name: iwss.dataset(p.name).concentrations for p in iwss.plants}


def _sample_bytes(estimates):
    return {name: est.samples.tobytes() for name, est in estimates.items()}


def _gaussian_split_r_hat() -> float:
    """Split-R̂ of the vectorized sampler on a well-behaved posterior.

    The wastewater posterior mixes too slowly for a short benchmark run to
    converge, so the < 1.05 convergence bar is checked where it is
    meaningful: a standard Gaussian, four chains, overdispersed starts.
    """
    dim = 4
    lp = lambda block: -0.5 * np.einsum("bi,bi->b", block, block)
    rngs = [np.random.default_rng(s) for s in np.random.SeedSequence(SEED).spawn(4)]
    x0 = np.stack([(k - 1.5) * np.ones(dim) for k in range(4)])
    block = VectorizedAdaptiveMetropolis(lp, dim=dim).run(x0, 6000, rngs)
    return block.max_split_r_hat()


def test_vectorized_rt_speedup(save_artifact, update_bench_report):
    observations = _observations()
    cfg = GoldsteinConfig(n_iterations=N_ITERATIONS, n_chains=N_CHAINS)

    start = time.perf_counter()
    scalar = {
        name: estimate_rt_goldstein(series, config=cfg, seed=SEED, vectorized=False)
        for name, series in observations.items()
    }
    t_scalar = time.perf_counter() - start

    start = time.perf_counter()
    vectorized = {
        name: estimate_rt_goldstein(series, config=cfg, seed=SEED, vectorized=True)
        for name, series in observations.items()
    }
    t_vectorized = time.perf_counter() - start

    start = time.perf_counter()
    batched = estimate_rt_goldstein_batch(observations, config=cfg, seed=SEED)
    t_batched = time.perf_counter() - start

    cache = MemoCache()
    estimate_rt_goldstein_batch(observations, config=cfg, seed=SEED, cache=cache)
    start = time.perf_counter()
    warm = estimate_rt_goldstein_batch(observations, config=cfg, seed=SEED, cache=cache)
    t_warm = time.perf_counter() - start

    # Single-chain mode: the published Figure 2 curves.
    cfg1 = GoldsteinConfig(n_iterations=N_ITERATIONS)
    single_scalar = {
        name: estimate_rt_goldstein(series, config=cfg1, seed=SEED, vectorized=False)
        for name, series in observations.items()
    }
    single_vector = estimate_rt_goldstein_batch(observations, config=cfg1, seed=SEED)

    reference = _sample_bytes(scalar)
    bitwise = dict(
        vectorized=_sample_bytes(vectorized) == reference,
        cross_plant_batch=_sample_bytes(batched) == reference,
        memo_warm=_sample_bytes(warm) == reference,
        single_chain_mode=_sample_bytes(single_vector) == _sample_bytes(single_scalar),
    )
    assert all(bitwise.values()), f"bitwise identity violated: {bitwise}"

    speedup_vectorized = t_scalar / t_vectorized
    speedup_batched = t_scalar / t_batched
    assert speedup_batched >= 5.0, (
        f"cross-plant batch speedup {speedup_batched:.2f}x below the 5x bar"
    )

    gaussian_r_hat = _gaussian_split_r_hat()
    assert gaussian_r_hat < 1.05, (
        f"benchmark-posterior split-R-hat {gaussian_r_hat:.3f} >= 1.05"
    )
    wastewater_r_hat = max(est.meta["max_r_hat"] for est in batched.values())

    report = {
        "benchmark": "figure2_rt_ensemble_4plants",
        "workload": {
            "n_plants": len(observations),
            "n_days": N_DAYS,
            "n_iterations": N_ITERATIONS,
            "n_chains": N_CHAINS,
            "seed": SEED,
        },
        "scalar_seconds": round(t_scalar, 3),
        "vectorized_seconds": round(t_vectorized, 3),
        "cross_plant_batch_seconds": round(t_batched, 3),
        "memo_warm_seconds": round(t_warm, 3),
        "vectorized_speedup": round(speedup_vectorized, 2),
        "cross_plant_batch_speedup": round(speedup_batched, 2),
        "bitwise_identical": bitwise,
        "split_r_hat": {
            "gaussian_benchmark_posterior": round(gaussian_r_hat, 4),
            "wastewater_max_informational": round(wastewater_r_hat, 4),
        },
    }
    update_bench_report("rt_vectorized", report)

    lines = [
        "Vectorized multi-chain R(t) (Figure 2 workload, 4 plants x 4 chains)",
        "-" * 68,
        f"scalar chains       {t_scalar:8.2f} s",
        f"vectorized blocks   {t_vectorized:8.2f} s   {speedup_vectorized:5.2f}x   "
        f"bitwise={bitwise['vectorized']}",
        f"cross-plant batch   {t_batched:8.2f} s   {speedup_batched:5.2f}x   "
        f"bitwise={bitwise['cross_plant_batch']}",
        f"memo warm           {t_warm:8.2f} s           "
        f"bitwise={bitwise['memo_warm']}",
        f"single-chain mode bitwise={bitwise['single_chain_mode']}",
        "",
        f"split-R-hat: gaussian benchmark {gaussian_r_hat:.4f} (< 1.05), "
        f"wastewater max {wastewater_r_hat:.2f} (informational)",
    ]
    save_artifact("bench_rt_vectorized", "\n".join(lines))

"""Ablation A6: ensemble pooling strategies.

§2.1: "we pool estimates across multiple wastewater sources and use a
population-weighted ensemble average to improve the R(t) signal to noise."
This ablation measures that signal-to-noise improvement — band width and
error of individual estimates vs. unweighted vs. population-weighted
ensembles — against the known regional truth.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.tabulate import format_table
from repro.common.timeseries import TimeSeries
from repro.models.wastewater import SyntheticIWSS
from repro.rt import GoldsteinConfig, estimate_rt_goldstein
from repro.rt.ensemble import mean_band_width, population_weighted_ensemble


@pytest.fixture(scope="module")
def setup():
    iwss = SyntheticIWSS(n_days=120, seed=31)
    config = GoldsteinConfig(n_iterations=1500)
    estimates = {
        name: estimate_rt_goldstein(
            iwss.dataset(name).concentrations, config=config, seed=4
        )
        for name in iwss.plant_names()
    }
    pop_weights = iwss.population_weights()
    flat_weights = {name: 1.0 for name in estimates}
    weighted = population_weighted_ensemble(estimates, pop_weights)
    unweighted = population_weighted_ensemble(estimates, flat_weights)

    grid = weighted.times
    truth_values = np.zeros_like(grid)
    for name, weight in pop_weights.items():
        truth_values += weight * iwss.dataset(name).true_rt.interpolate_to(grid).values
    truth = TimeSeries(grid, truth_values, name="regional-truth")
    return iwss, estimates, weighted, unweighted, truth


def test_ablation_ensemble_regenerate(benchmark, save_artifact, setup):
    iwss, estimates, weighted, unweighted, truth = setup
    rows = []
    for name, estimate in estimates.items():
        rows.append(
            [name, mean_band_width(estimate), estimate.mae_against(truth)]
        )
    rows.append(["ensemble (unweighted)", mean_band_width(unweighted), unweighted.mae_against(truth)])
    rows.append(["ensemble (pop-weighted)", mean_band_width(weighted), weighted.mae_against(truth)])
    text = format_table(
        ["source", "mean 95% band width", "MAE vs regional truth"],
        rows,
        title="A6: pooling strategies for the R(t) ensemble",
        digits=3,
    )
    save_artifact("ablation_ensemble", text)
    benchmark(lambda: mean_band_width(weighted))

    # the signal-to-noise claim: pooling narrows the band
    individual_widths = [mean_band_width(e) for e in estimates.values()]
    assert mean_band_width(weighted) < np.mean(individual_widths)
    assert mean_band_width(unweighted) < np.mean(individual_widths)


def test_pooling_kernel(benchmark, setup):
    _, estimates, _, _, _ = setup
    weights = {name: 1.0 for name in estimates}

    ensemble = benchmark(lambda: population_weighted_ensemble(estimates, weights))
    assert ensemble.n_days > 100

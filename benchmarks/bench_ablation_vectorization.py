"""Ablation A4: vectorized batch MetaRVM vs per-run loop.

The HPC-Python guideline this library is built on: the Saltelli reference
and PCE designs need thousands of model evaluations, which the batch
evaluator runs as one vectorized numpy program over (batch × groups)
arrays.  This ablation measures the speedup over looping single runs, and
asserts the two paths agree exactly under common random numbers.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.common.rng import generator_from_seed
from repro.common.tabulate import format_table
from repro.models.metarvm import MetaRVM, MetaRVMConfig
from repro.models.parameters import GSA_PARAMETER_SPACE

MODEL = MetaRVM(MetaRVMConfig())
DESIGN = GSA_PARAMETER_SPACE.sample(128, generator_from_seed(0))


def loop_evaluate(design: np.ndarray, seed: int) -> np.ndarray:
    """The naive path: one run_batch call per parameter set."""
    return np.array(
        [MODEL.total_hospitalizations(row[None, :], seed=seed)[0] for row in design]
    )


def test_vectorized_matches_loop_exactly(benchmark):
    """Common random numbers make both paths bit-identical."""
    y_loop = loop_evaluate(DESIGN[:16], seed=3)
    y_vec = benchmark.pedantic(
        lambda: MODEL.total_hospitalizations(DESIGN[:16], seed=3), rounds=2, iterations=1
    )
    assert np.array_equal(y_loop, y_vec)


def test_ablation_vectorization_regenerate(benchmark, save_artifact):
    t0 = time.perf_counter()
    loop_evaluate(DESIGN, seed=1)
    t_loop = time.perf_counter() - t0
    t0 = time.perf_counter()
    MODEL.total_hospitalizations(DESIGN, seed=1)
    t_vec = time.perf_counter() - t0
    text = format_table(
        ["path", "runtime (s)", "evals/s"],
        [
            ["per-run loop", t_loop, len(DESIGN) / t_loop],
            ["vectorized batch", t_vec, len(DESIGN) / t_vec],
        ],
        title=f"A4: MetaRVM evaluation paths ({len(DESIGN)} parameter sets)",
        digits=3,
    )
    text += f"\n\nvectorization speedup: {t_loop / t_vec:.1f}x"
    save_artifact("ablation_vectorization", text)
    benchmark(lambda: t_loop / t_vec)
    assert t_vec < t_loop / 3


def test_loop_kernel(benchmark):
    y = benchmark.pedantic(lambda: loop_evaluate(DESIGN[:32], seed=1), rounds=2, iterations=1)
    assert y.shape == (32,)


def test_vectorized_kernel(benchmark):
    y = benchmark(lambda: MODEL.total_hospitalizations(DESIGN, seed=1))
    assert y.shape == (128,)

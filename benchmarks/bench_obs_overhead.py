"""Observability overhead: tracing must be ~free when not installed.

Every service operation now consults ``env.obs`` (one attribute, ``None``
on an uninstrumented run), and components carry ``self._obs is None``
checks on their hot paths.  This benchmark verifies the design target that
an uninstrumented run pays **under 2%** for carrying the hooks, measured
against the ``bench_rt_vectorized`` workload (the repo's R(t) hot path),
by timing the hook fast path over long windows — stable even on noisy
machines — and relating it to the measured workload cost.  Head-to-head
wall-clock comparisons of instrumented vs. plain workflow runs are also
reported for context, but not asserted on: run-to-run noise on shared
hardware swamps a single-digit-percent effect.

Results land in the ``obs_overhead`` section of ``BENCH_perf.json``; the
exported Chrome trace and Gantt SVG of the instrumented run are written to
``benchmarks/output/`` for the CI artifact upload.
"""

from __future__ import annotations

import json
import time

from repro.models.wastewater import SyntheticIWSS
from repro.obs import (
    EventBus,
    Observability,
    Tracer,
    chrome_trace_json,
    profile_summary,
    trace_gantt_svg,
)
from repro.perf import MemoCache
from repro.rt import GoldsteinConfig, estimate_rt_goldstein_batch
from repro.sim import SimulationEnvironment
from repro.workflows.wastewater_rt import run_wastewater_workflow

#: Iterations for the hook micro-timings (one long window beats many short).
HOOK_ITERS = 200_000

#: The bench_rt_vectorized workload, same constants: four plants' chains
#: batched through one sampler invocation.
N_DAYS = 150
N_ITERATIONS = 500
N_CHAINS = 4
SEED = 7

#: Generous over-estimate of obs hook sites one batch R(t) run crosses
#: (the real count is a few dozen: memo lookups, one executor map, and the
#: platform services when driven through a workflow).
HOOKS_PER_RT_RUN = 10_000

#: Generous over-estimate of structured events one run emits (measured
#: service bursts emit ~13 per run: admit, dispatch, finish, checkpoints).
EVENTS_PER_RT_RUN = 1_000


def _hook_cost_uninstrumented() -> float:
    """Seconds per ``env.obs is None`` check (the universal fast path)."""
    env = SimulationEnvironment()
    t0 = time.perf_counter()
    for _ in range(HOOK_ITERS):
        obs = env.obs
        if obs is not None:  # pragma: no cover - never taken here
            obs.inc("bench")
    return (time.perf_counter() - t0) / HOOK_ITERS


def _disabled_span_cost() -> float:
    """Seconds per begin/end pair on a disabled tracer."""
    tracer = Tracer(enabled=False)
    t0 = time.perf_counter()
    for _ in range(HOOK_ITERS):
        tracer.end(tracer.begin("bench", "bench"))
    return (time.perf_counter() - t0) / HOOK_ITERS


def _counter_inc_cost() -> float:
    """Seconds per live counter increment (enabled-path context)."""
    obs = Observability()
    t0 = time.perf_counter()
    for _ in range(HOOK_ITERS):
        obs.inc("bench")
    return (time.perf_counter() - t0) / HOOK_ITERS


def _disabled_emit_cost() -> float:
    """Seconds per emit on a disabled bus (one boolean short-circuit)."""
    bus = EventBus(enabled=False)
    t0 = time.perf_counter()
    for _ in range(HOOK_ITERS):
        bus.emit("state.kill", "bench", reason="bench")
    return (time.perf_counter() - t0) / HOOK_ITERS


def _enabled_emit_cost() -> float:
    """Seconds per live emit (validate, stamp, append, deliver to no one)."""
    bus = EventBus()
    t0 = time.perf_counter()
    for _ in range(HOOK_ITERS):
        bus.emit("state.kill", "bench", reason="bench")
    return (time.perf_counter() - t0) / HOOK_ITERS


def _rt_batch_wall() -> float:
    """Wall seconds for the bench_rt_vectorized cross-plant batch."""
    iwss = SyntheticIWSS(n_days=N_DAYS, seed=SEED)
    observations = {
        p.name: iwss.dataset(p.name).concentrations for p in iwss.plants
    }
    config = GoldsteinConfig(n_iterations=N_ITERATIONS, n_chains=N_CHAINS)
    t0 = time.perf_counter()
    estimate_rt_goldstein_batch(observations, config=config, seed=SEED, cache=MemoCache())
    return time.perf_counter() - t0


def _workflow_wall(observability) -> float:
    t0 = time.perf_counter()
    run_wastewater_workflow(
        sim_days=4.0,
        goldstein_iterations=150,
        seed=SEED,
        observability=observability,
    )
    return time.perf_counter() - t0


def test_disabled_overhead_under_2_percent(save_artifact, update_bench_report):
    """The design target: hooks cost <2% of the R(t) workload when idle."""
    hook = min(_hook_cost_uninstrumented() for _ in range(3))
    disabled_span = min(_disabled_span_cost() for _ in range(3))
    counter_inc = min(_counter_inc_cost() for _ in range(3))
    # Conservative workload cost: the *fastest* observed run (a cheaper
    # workload makes the relative hook cost look larger, never smaller).
    rt_wall = min(_rt_batch_wall() for _ in range(2))

    overhead_hooks = HOOKS_PER_RT_RUN * hook / rt_wall
    overhead_disabled = HOOKS_PER_RT_RUN * disabled_span / rt_wall

    # Context only (noisy): head-to-head instrumented workflow runs.
    wall_plain = _workflow_wall(None)
    wall_disabled = _workflow_wall(Observability(enabled=False))
    wall_enabled = _workflow_wall(Observability())

    lines = [
        "Observability hook overhead",
        "===========================",
        f"env.obs fast path (uninstrumented): {hook * 1e9:8.1f} ns",
        f"disabled-tracer begin/end pair:     {disabled_span * 1e9:8.1f} ns",
        f"live counter increment:             {counter_inc * 1e9:8.1f} ns",
        f"R(t) batch workload:                {rt_wall:8.3f} s",
        f"est. overhead, {HOOKS_PER_RT_RUN} null hooks/run:  {overhead_hooks:8.3%}  (target < 2%)",
        f"est. overhead, disabled tracer:     {overhead_disabled:8.3%}  (target < 2%)",
        "",
        "wall-clock context (unasserted; noisy on shared machines):",
        f"  wastewater 4d, no obs:        {wall_plain:6.3f} s",
        f"  wastewater 4d, disabled obs:  {wall_disabled:6.3f} s",
        f"  wastewater 4d, enabled obs:   {wall_enabled:6.3f} s",
    ]
    save_artifact("obs_overhead", "\n".join(lines))

    update_bench_report(
        "obs_overhead",
        {
            "benchmark": "observability hook overhead vs bench_rt_vectorized",
            "hook_fast_path_ns": round(hook * 1e9, 2),
            "disabled_span_pair_ns": round(disabled_span * 1e9, 2),
            "counter_inc_ns": round(counter_inc * 1e9, 2),
            "rt_batch_wall_s": round(rt_wall, 4),
            "assumed_hooks_per_run": HOOKS_PER_RT_RUN,
            "est_overhead_null_hooks": round(overhead_hooks, 6),
            "est_overhead_disabled_tracer": round(overhead_disabled, 6),
            "target": "< 2% disabled overhead",
            "context_wall_s": {
                "wastewater_no_obs": round(wall_plain, 3),
                "wastewater_disabled_obs": round(wall_disabled, 3),
                "wastewater_enabled_obs": round(wall_enabled, 3),
            },
        },
    )

    assert overhead_hooks < 0.02
    assert overhead_disabled < 0.02


def test_events_overhead(save_artifact, update_bench_report):
    """The structured event log: disabled emits <2%, enabled emits <5%.

    Same micro-timing methodology as the hook benchmark: per-emit cost
    over a long window, related to the fastest observed R(t) workload with
    a generous over-estimate of emits per run.  (The end-to-end 1k-run
    burst arm lives in ``bench_service_telemetry.py``.)
    """
    disabled_emit = min(_disabled_emit_cost() for _ in range(3))
    enabled_emit = min(_enabled_emit_cost() for _ in range(3))
    rt_wall = min(_rt_batch_wall() for _ in range(2))

    overhead_disabled = HOOKS_PER_RT_RUN * disabled_emit / rt_wall
    overhead_enabled = EVENTS_PER_RT_RUN * enabled_emit / rt_wall

    lines = [
        "Structured event log overhead",
        "=============================",
        f"disabled-bus emit:                  {disabled_emit * 1e9:8.1f} ns",
        f"enabled-bus emit:                   {enabled_emit * 1e9:8.1f} ns",
        f"R(t) batch workload:                {rt_wall:8.3f} s",
        f"est. overhead, {HOOKS_PER_RT_RUN} disabled emits: {overhead_disabled:8.3%}  (target < 2%)",
        f"est. overhead, {EVENTS_PER_RT_RUN} enabled emits:   {overhead_enabled:8.3%}  (target < 5%)",
    ]
    save_artifact("obs_events_overhead", "\n".join(lines))

    update_bench_report(
        "obs_events_overhead",
        {
            "benchmark": "structured event log emit cost vs bench_rt_vectorized",
            "disabled_emit_ns": round(disabled_emit * 1e9, 2),
            "enabled_emit_ns": round(enabled_emit * 1e9, 2),
            "rt_batch_wall_s": round(rt_wall, 4),
            "assumed_disabled_emits_per_run": HOOKS_PER_RT_RUN,
            "assumed_enabled_emits_per_run": EVENTS_PER_RT_RUN,
            "est_overhead_disabled_emits": round(overhead_disabled, 6),
            "est_overhead_enabled_emits": round(overhead_enabled, 6),
            "target": "< 2% disabled, < 5% enabled",
        },
    )

    assert overhead_disabled < 0.02
    assert overhead_enabled < 0.05


def test_export_trace_artifacts(save_artifact, save_svg, artifact_dir):
    """Export the instrumented wastewater run's trace + Gantt for CI."""
    obs = Observability()
    run_wastewater_workflow(
        sim_days=6.0, goldstein_iterations=200, seed=SEED, observability=obs
    )
    trace = chrome_trace_json(obs.tracer)
    doc = json.loads(trace)
    assert doc["traceEvents"]

    path = artifact_dir / "wastewater_trace.json"
    path.write_text(trace + "\n")
    print(f"\n[wastewater_trace -> {path}]")
    save_svg("wastewater_gantt", trace_gantt_svg(obs.tracer, title="Wastewater R(t) workflow timeline"))
    save_artifact("obs_profile", profile_summary(obs.tracer))

"""Tests for intervention schedules and their effect on MetaRVM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.models.interventions import InterventionSchedule, lockdown_scenario
from repro.models.metarvm import MetaRVM, MetaRVMConfig
from repro.models.parameters import MetaRVMParams


class TestSchedule:
    def test_baseline_is_one(self):
        schedule = InterventionSchedule()
        assert schedule.multiplier(0) == 1.0
        assert np.all(schedule.multiplier_array(10) == 1.0)

    def test_phases_apply_in_order(self):
        schedule = InterventionSchedule(phases=((10, 0.5), (20, 1.2)))
        assert schedule.multiplier(5) == 1.0
        assert schedule.multiplier(10) == 0.5
        assert schedule.multiplier(19.9) == 0.5
        assert schedule.multiplier(20) == 1.2

    def test_multiplier_array_matches_scalar(self):
        schedule = InterventionSchedule(phases=((3, 0.7), (7, 0.9)))
        arr = schedule.multiplier_array(12)
        assert np.allclose(arr, [schedule.multiplier(d) for d in range(12)])

    def test_unsorted_starts_rejected(self):
        with pytest.raises(ValidationError):
            InterventionSchedule(phases=((10, 0.5), (5, 1.0)))

    def test_duplicate_starts_rejected(self):
        with pytest.raises(ValidationError):
            InterventionSchedule(phases=((10, 0.5), (10, 1.0)))

    def test_negative_multiplier_rejected(self):
        with pytest.raises(ValidationError):
            InterventionSchedule(phases=((10, -0.5),))

    def test_serialization_roundtrip(self):
        schedule = InterventionSchedule(phases=((10, 0.5), (20, 1.2)))
        assert InterventionSchedule.from_dict(schedule.to_dict()) == schedule

    def test_lockdown_scenario(self):
        schedule = lockdown_scenario(start=30, duration=30, strength=0.7)
        assert schedule.multiplier(29) == 1.0
        assert schedule.multiplier(45) == pytest.approx(0.3)
        assert schedule.multiplier(61) == 1.0
        with pytest.raises(ValidationError):
            lockdown_scenario(strength=1.5)
        with pytest.raises(ValidationError):
            lockdown_scenario(duration=0.0)


class TestMetaRVMWithInterventions:
    def test_lockdown_reduces_hospitalizations(self):
        base = MetaRVM(MetaRVMConfig()).run(MetaRVMParams(), seed=1)
        locked = MetaRVM(
            MetaRVMConfig(intervention=lockdown_scenario(20, 40, 0.7))
        ).run(MetaRVMParams(), seed=1)
        assert (
            locked.total_hospitalizations()[0] < 0.5 * base.total_hospitalizations()[0]
        )

    def test_null_intervention_matches_baseline(self):
        base = MetaRVM(MetaRVMConfig()).run(MetaRVMParams(), seed=2)
        null = MetaRVM(
            MetaRVMConfig(intervention=InterventionSchedule())
        ).run(MetaRVMParams(), seed=2)
        assert np.array_equal(base.trajectories, null.trajectories)

    def test_stronger_lockdown_fewer_infections(self):
        results = []
        for strength in (0.2, 0.5, 0.8):
            model = MetaRVM(
                MetaRVMConfig(intervention=lockdown_scenario(15, 60, strength))
            )
            results.append(
                model.run(MetaRVMParams(), seed=3).new_infections.sum()
            )
        assert results[0] > results[1] > results[2]

    def test_population_still_conserved(self):
        model = MetaRVM(MetaRVMConfig(intervention=lockdown_scenario(10, 30, 0.9)))
        result = model.run(MetaRVMParams(), seed=4)
        totals = result.trajectories[0].sum(axis=1)
        assert np.allclose(totals, np.asarray(model.config.population, float))

    def test_batch_evaluation_respects_intervention(self):
        point = np.array([[0.5, 0.2, 0.6, 0.2, 0.1]])
        base = MetaRVM(MetaRVMConfig()).total_hospitalizations(point, seed=5)
        locked = MetaRVM(
            MetaRVMConfig(intervention=lockdown_scenario(20, 50, 0.8))
        ).total_hospitalizations(point, seed=5)
        assert locked[0] < base[0]

"""Tests for parameter spaces and the MetaRVM parameter set."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ValidationError
from repro.models.parameters import (
    GSA_PARAMETER_SPACE,
    MetaRVMParams,
    ParameterSpace,
    table1_rows,
)


class TestParameterSpace:
    def test_table1_matches_paper(self):
        rows = table1_rows()
        assert [r[0] for r in rows] == ["ts", "tv", "pea", "psh", "phd"]
        bounds = dict(zip(GSA_PARAMETER_SPACE.names, GSA_PARAMETER_SPACE.bounds.tolist()))
        assert bounds["ts"] == [0.1, 0.9]
        assert bounds["tv"] == [0.01, 0.5]
        assert bounds["pea"] == [0.4, 0.9]
        assert bounds["psh"] == [0.1, 0.4]
        assert bounds["phd"] == [0.0, 0.3]
        assert GSA_PARAMETER_SPACE.description("pea") == "Proportion of asymptomatic cases"

    def test_scale_unscale_roundtrip(self):
        space = GSA_PARAMETER_SPACE
        rng = np.random.default_rng(0)
        unit = rng.random((20, space.dim))
        natural = space.scale(unit)
        assert np.allclose(space.unscale(natural), unit)

    def test_scale_corners(self):
        space = ParameterSpace([("a", (2.0, 4.0)), ("b", (-1.0, 1.0))])
        assert np.allclose(space.scale([[0, 0]]), [[2.0, -1.0]])
        assert np.allclose(space.scale([[1, 1]]), [[4.0, 1.0]])

    def test_out_of_cube_rejected(self):
        with pytest.raises(ValidationError):
            GSA_PARAMETER_SPACE.scale([[1.5, 0, 0, 0, 0]])

    def test_out_of_space_rejected(self):
        with pytest.raises(ValidationError):
            GSA_PARAMETER_SPACE.unscale([[0.95, 0.2, 0.5, 0.2, 0.1]])  # ts above 0.9

    def test_sample_within_bounds(self):
        rng = np.random.default_rng(1)
        sample = GSA_PARAMETER_SPACE.sample(50, rng)
        low = GSA_PARAMETER_SPACE.bounds[:, 0]
        high = GSA_PARAMETER_SPACE.bounds[:, 1]
        assert np.all(sample >= low) and np.all(sample <= high)

    def test_to_dicts_from_dict_roundtrip(self):
        rng = np.random.default_rng(2)
        sample = GSA_PARAMETER_SPACE.sample(3, rng)
        dicts = GSA_PARAMETER_SPACE.to_dicts(sample)
        assert len(dicts) == 3
        back = np.stack([GSA_PARAMETER_SPACE.from_dict(d) for d in dicts])
        assert np.allclose(back, sample)

    def test_from_dict_missing_key(self):
        with pytest.raises(ValidationError):
            GSA_PARAMETER_SPACE.from_dict({"ts": 0.5})

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            ParameterSpace([("a", (0, 1)), ("a", (0, 1))])

    def test_bad_interval_rejected(self):
        with pytest.raises(ValidationError):
            ParameterSpace([("a", (1, 0))])

    def test_contains(self):
        assert "ts" in GSA_PARAMETER_SPACE
        assert "zz" not in GSA_PARAMETER_SPACE

    @given(st.integers(min_value=1, max_value=50))
    def test_scale_preserves_shape(self, n):
        rng = np.random.default_rng(n)
        unit = rng.random((n, 5))
        assert GSA_PARAMETER_SPACE.scale(unit).shape == (n, 5)


class TestMetaRVMParams:
    def test_defaults_valid(self):
        params = MetaRVMParams()
        assert params.psh == 0.2

    def test_probability_validated(self):
        with pytest.raises(ValidationError):
            MetaRVMParams(pea=1.5)
        with pytest.raises(ValidationError):
            MetaRVMParams(phd=-0.1)

    def test_durations_validated(self):
        with pytest.raises(ValidationError):
            MetaRVMParams(de=0.0)

    def test_rates_validated(self):
        with pytest.raises(ValidationError):
            MetaRVMParams(ts=-0.5)

    def test_with_updates(self):
        params = MetaRVMParams().with_updates(ts=0.7)
        assert params.ts == 0.7
        with pytest.raises(ValidationError):
            MetaRVMParams().with_updates(nonsense=1.0)
        with pytest.raises(ValidationError):
            MetaRVMParams().with_updates(pea=2.0)

    def test_with_gsa_values_array(self):
        point = np.array([0.5, 0.3, 0.6, 0.2, 0.1])
        params = MetaRVMParams().with_gsa_values(point)
        assert params.ts == 0.5 and params.phd == 0.1
        # non-GSA parameters keep their nominal values
        assert params.de == MetaRVMParams().de

    def test_with_gsa_values_mapping(self):
        params = MetaRVMParams().with_gsa_values(
            {"ts": 0.2, "tv": 0.1, "pea": 0.5, "psh": 0.3, "phd": 0.05}
        )
        assert params.psh == 0.3

    def test_with_gsa_values_wrong_size(self):
        with pytest.raises(ValidationError):
            MetaRVMParams().with_gsa_values(np.array([0.5, 0.3]))

    def test_as_dict_roundtrip(self):
        params = MetaRVMParams(ts=0.33)
        rebuilt = MetaRVMParams(**params.as_dict())
        assert rebuilt == params

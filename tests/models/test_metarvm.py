"""Tests for the MetaRVM metapopulation model."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.models.metarvm import (
    COMPARTMENTS,
    MetaRVM,
    MetaRVMConfig,
    _crn_binomial,
    transition_graph,
)
from repro.models.parameters import GSA_PARAMETER_SPACE, MetaRVMParams


@pytest.fixture(scope="module")
def model():
    return MetaRVM(MetaRVMConfig(n_days=60))


class TestConfig:
    def test_defaults(self):
        config = MetaRVMConfig()
        assert config.n_groups == 4
        assert config.total_population == 250_000

    def test_validation(self):
        with pytest.raises(ValidationError):
            MetaRVMConfig(population=(0, 100))
        with pytest.raises(ValidationError):
            MetaRVMConfig(population=(100,), initial_infections=(200,))
        with pytest.raises(ValidationError):
            MetaRVMConfig(initial_vaccinated_fraction=1.5)
        with pytest.raises(ValidationError):
            MetaRVMConfig(n_days=0)

    def test_custom_mixing_validated(self):
        with pytest.raises(ValidationError):
            MetaRVMConfig(mixing=np.ones((4, 4)))


class TestCrnBinomial:
    def test_bounds(self):
        rng = np.random.default_rng(0)
        n = rng.integers(0, 1000, size=500).astype(float)
        p = rng.random(500)
        u = rng.random(500)
        draws = _crn_binomial(n, p, u)
        assert np.all(draws >= 0) and np.all(draws <= n)

    def test_extreme_probabilities(self):
        u = np.full(4, 0.5)
        assert np.all(_crn_binomial(np.array([10.0] * 4), np.zeros(4), u) == 0)
        assert np.all(_crn_binomial(np.array([10.0] * 4), np.ones(4), u) == 10)

    def test_zero_count(self):
        assert _crn_binomial(np.zeros(3), np.full(3, 0.5), np.full(3, 0.9)).sum() == 0

    def test_monotone_in_u(self):
        """Common-random-number property: draws monotone in the uniform."""
        n = np.full(50, 200.0)
        p = np.full(50, 0.3)
        u = np.linspace(0.01, 0.99, 50)
        draws = _crn_binomial(n, p, u)
        assert np.all(np.diff(draws) >= 0)

    def test_large_count_matches_binomial_moments(self):
        rng = np.random.default_rng(1)
        u = rng.random(20_000)
        draws = _crn_binomial(np.full(20_000, 5000.0), np.full(20_000, 0.2), u)
        assert abs(draws.mean() - 1000.0) < 5.0
        assert abs(draws.std() - np.sqrt(5000 * 0.2 * 0.8)) < 1.0

    def test_small_count_matches_binomial_distribution(self):
        rng = np.random.default_rng(2)
        u = rng.random(50_000)
        draws = _crn_binomial(np.full(50_000, 5.0), np.full(50_000, 0.3), u)
        # exact-ppf branch: compare full distribution to scipy
        from scipy import stats

        expected = stats.binom.pmf(np.arange(6), 5, 0.3)
        observed = np.bincount(draws.astype(int), minlength=6)[:6] / 50_000
        assert np.allclose(observed, expected, atol=0.01)


class TestSingleRun:
    def test_population_conserved(self, model):
        result = model.run(MetaRVMParams(), seed=1)
        totals = result.trajectories[0].sum(axis=1)
        pop = np.asarray(model.config.population, dtype=float)
        assert np.allclose(totals, pop)

    def test_deterministic_given_seed(self, model):
        a = model.run(MetaRVMParams(), seed=5)
        b = model.run(MetaRVMParams(), seed=5)
        assert np.array_equal(a.trajectories, b.trajectories)

    def test_different_seeds_differ(self, model):
        a = model.run(MetaRVMParams(), seed=1)
        b = model.run(MetaRVMParams(), seed=2)
        assert not np.array_equal(a.trajectories, b.trajectories)

    def test_counts_non_negative(self, model):
        result = model.run(MetaRVMParams(), seed=3)
        assert result.trajectories.min() >= 0

    def test_deaths_monotone(self, model):
        result = model.run(MetaRVMParams(), seed=4)
        deaths = result.compartment("D")
        assert np.all(np.diff(deaths) >= 0)

    def test_flows_consistent_with_stocks(self, model):
        """Cumulative deaths flow equals the final D compartment."""
        result = model.run(MetaRVMParams(), seed=6)
        assert np.isclose(result.total_deaths()[0], result.compartment("D")[-1])

    def test_qoi_positive_for_epidemic(self, model):
        result = model.run(MetaRVMParams(ts=0.6), seed=1)
        assert result.total_hospitalizations()[0] > 0

    def test_no_transmission_no_hospitalizations_beyond_seeds(self, model):
        """With ts=tv=0 only the initial infections can progress."""
        result = model.run(MetaRVMParams(ts=0.0, tv=0.0), seed=1)
        initial = sum(model.config.initial_infections)
        assert result.new_infections.sum() == 0
        assert result.total_hospitalizations()[0] <= initial

    def test_deterministic_mode_conserves_and_is_smooth(self, model):
        result = model.run(MetaRVMParams(), seed=0, stochastic=False)
        totals = result.trajectories[0].sum(axis=1)
        assert np.allclose(totals, np.asarray(model.config.population, float))
        # expected-value mode is seed-independent
        result2 = model.run(MetaRVMParams(), seed=99, stochastic=False)
        assert np.allclose(result.trajectories, result2.trajectories)

    def test_stochastic_mean_near_deterministic(self):
        model = MetaRVM(MetaRVMConfig(n_days=40))
        det = model.run(MetaRVMParams(), stochastic=False).total_hospitalizations()[0]
        stoch = np.mean(
            [model.run(MetaRVMParams(), seed=s).total_hospitalizations()[0] for s in range(8)]
        )
        assert abs(stoch - det) / max(det, 1.0) < 0.25

    def test_compartment_accessor_validates(self, model):
        result = model.run(MetaRVMParams(), seed=1)
        with pytest.raises(ValidationError):
            result.compartment("X")

    def test_result_summaries(self, model):
        result = model.run(MetaRVMParams(), seed=1)
        assert 0.0 <= result.attack_rate()[0] <= 1.5  # reinfections can exceed 1
        assert result.peak_hospital_occupancy()[0] >= 0


class TestBatch:
    def test_batch_matches_single_run_with_common_noise(self, model):
        """A batch row equals the single run at the same parameters/seed."""
        point = np.array([[0.5, 0.2, 0.6, 0.2, 0.1]])
        params = MetaRVMParams().with_gsa_values(point[0])
        single = model.run(params, seed=11)
        batch = model.run_batch(point, seed=11)
        assert np.allclose(single.trajectories, batch.trajectories)

    def test_common_noise_rows_identical_for_identical_params(self, model):
        point = np.array([0.5, 0.2, 0.6, 0.2, 0.1])
        batch = model.run_batch(np.stack([point, point]), seed=3, common_noise=True)
        assert np.allclose(batch.trajectories[0], batch.trajectories[1])

    def test_independent_noise_rows_differ(self, model):
        point = np.array([0.5, 0.2, 0.6, 0.2, 0.1])
        batch = model.run_batch(np.stack([point, point]), seed=3, common_noise=False)
        assert not np.allclose(batch.trajectories[0], batch.trajectories[1])

    def test_crn_smoothness(self, model):
        """Nearby parameter points give nearby outputs under common noise."""
        base = np.array([0.5, 0.2, 0.6, 0.2, 0.1])
        bumped = base.copy()
        bumped[0] += 1e-3
        y = model.total_hospitalizations(np.stack([base, bumped]), seed=7)
        assert abs(y[1] - y[0]) / max(y[0], 1.0) < 0.05

    def test_batch_population_conserved(self, model):
        rng = np.random.default_rng(0)
        x = GSA_PARAMETER_SPACE.sample(16, rng)
        result = model.run_batch(x, seed=5)
        pop = np.asarray(model.config.population, dtype=float)
        totals = result.trajectories.sum(axis=2)  # (batch, days, g)
        assert np.allclose(totals, pop[None, None, :])

    def test_wrong_column_count_rejected(self, model):
        with pytest.raises(ValidationError):
            model.run_batch(np.zeros((3, 4)))

    def test_qoi_monotone_in_psh_on_average(self, model):
        """More hospitalization probability => more hospitalizations (CRN)."""
        low = np.array([0.5, 0.2, 0.6, 0.12, 0.1])
        high = np.array([0.5, 0.2, 0.6, 0.38, 0.1])
        y = model.total_hospitalizations(np.stack([low, high]), seed=9)
        assert y[1] > y[0]

    def test_phd_does_not_affect_admissions(self, model):
        """The QoI is admissions; death probability acts after admission."""
        a = np.array([0.5, 0.2, 0.6, 0.2, 0.0])
        b = np.array([0.5, 0.2, 0.6, 0.2, 0.3])
        y = model.total_hospitalizations(np.stack([a, b]), seed=9)
        assert np.isclose(y[0], y[1], rtol=0.02)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_any_seed_conserves_population(self, seed):
        model = MetaRVM(MetaRVMConfig(n_days=20, population=(5000, 5000), initial_infections=(5, 5)))
        result = model.run(MetaRVMParams(), seed=seed)
        totals = result.trajectories[0].sum(axis=1)
        assert np.allclose(totals, 5000.0)
        assert result.trajectories.min() >= 0


class TestTransitionGraph:
    def test_matches_figure3(self):
        graph = transition_graph()
        assert set(graph.nodes) == set(COMPARTMENTS)
        assert graph.number_of_edges() == 13
        # the paper's transitions
        for edge in [
            ("S", "E"), ("V", "E"), ("S", "V"), ("V", "S"),
            ("E", "Ia"), ("E", "Ip"), ("Ia", "R"), ("Ip", "Is"),
            ("Is", "R"), ("Is", "H"), ("H", "R"), ("H", "D"), ("R", "S"),
        ]:
            assert graph.has_edge(*edge), edge

    def test_d_is_absorbing(self):
        graph = transition_graph()
        assert graph.out_degree("D") == 0

    def test_edges_labeled_with_parameters(self):
        graph = transition_graph()
        assert graph.edges["S", "E"]["parameters"] == "ts"
        assert "psh" in graph.edges["Is", "H"]["parameters"]

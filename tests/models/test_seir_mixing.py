"""Tests for the SEIR substrate and mixing matrices."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.common.rng import generator_from_seed
from repro.models.mixing import (
    age_structured_mixing,
    assortative_mixing,
    uniform_mixing,
    validate_mixing,
)
from repro.models.seir import (
    SEIRParams,
    case_reproduction_number,
    discretized_gamma,
    renewal_incidence,
    seir_deterministic,
    seir_stochastic,
)


class TestMixing:
    @pytest.mark.parametrize("maker", [uniform_mixing, assortative_mixing, age_structured_mixing])
    def test_rows_sum_to_one(self, maker):
        matrix = maker(4)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        validate_mixing(matrix, 4)

    def test_assortativity_extremes(self):
        assert np.allclose(assortative_mixing(3, 0.0), uniform_mixing(3))
        iso = assortative_mixing(3, 1.0)
        assert np.allclose(iso, np.eye(3))

    def test_age_structure_decays_off_diagonal(self):
        matrix = age_structured_mixing(4, 0.0)
        assert matrix[0, 1] > matrix[0, 3]

    def test_validate_rejects_bad(self):
        with pytest.raises(ValidationError):
            validate_mixing(np.ones((2, 2)), 2)  # rows sum to 2
        with pytest.raises(ValidationError):
            validate_mixing(np.eye(3), 2)  # wrong shape
        bad = np.array([[1.5, -0.5], [0.5, 0.5]])
        with pytest.raises(ValidationError):
            validate_mixing(bad, 2)


class TestSEIR:
    def test_deterministic_conserves_population(self):
        out = seir_deterministic(SEIRParams(), 10_000, 10, 60)
        total = out["S"] + out["E"] + out["I"] + out["R"]
        assert np.allclose(total, 10_000)

    def test_epidemic_grows_when_r0_above_one(self):
        params = SEIRParams(beta=0.5, di=5.0)  # R0 = 2.5
        out = seir_deterministic(params, 100_000, 10, 120)
        assert out["R"][-1] > 100_000 * 0.5  # major epidemic

    def test_no_epidemic_when_r0_below_one(self):
        params = SEIRParams(beta=0.1, di=5.0)  # R0 = 0.5
        out = seir_deterministic(params, 100_000, 10, 120)
        assert out["R"][-1] < 100_000 * 0.01

    def test_stochastic_conserves_population(self):
        rng = generator_from_seed(0)
        out = seir_stochastic(SEIRParams(), 10_000, 10, 60, rng)
        total = out["S"] + out["E"] + out["I"] + out["R"]
        assert np.all(total == 10_000)

    def test_stochastic_deterministic_given_seed(self):
        a = seir_stochastic(SEIRParams(), 5000, 5, 30, generator_from_seed(7))
        b = seir_stochastic(SEIRParams(), 5000, 5, 30, generator_from_seed(7))
        assert np.array_equal(a["I"], b["I"])

    def test_stochastic_mean_tracks_deterministic(self):
        params = SEIRParams(beta=0.4)
        det = seir_deterministic(params, 50_000, 50, 60, steps_per_day=1)
        finals = [
            seir_stochastic(params, 50_000, 50, 60, generator_from_seed(s))["R"][-1]
            for s in range(10)
        ]
        assert abs(np.mean(finals) - det["R"][-1]) / det["R"][-1] < 0.2

    def test_validation(self):
        with pytest.raises(ValidationError):
            seir_deterministic(SEIRParams(), 100, 200, 10)
        with pytest.raises(ValidationError):
            SEIRParams(de=-1)


class TestDiscretizedGamma:
    def test_pmf_properties(self):
        pmf = discretized_gamma(6.0, 3.0, 21)
        assert pmf.shape == (21,)
        assert np.all(pmf >= 0)
        assert np.isclose(pmf.sum(), 1.0)

    def test_mean_approximates_target(self):
        pmf = discretized_gamma(6.0, 3.0, 40)
        mean = np.sum(np.arange(1, 41) * pmf)
        assert abs(mean - 6.5) < 0.5  # interval mass centers at mean + 0.5

    def test_validation(self):
        with pytest.raises(ValidationError):
            discretized_gamma(-1.0, 1.0, 10)


class TestRenewal:
    def test_constant_r_one_keeps_incidence_flat(self):
        gen = discretized_gamma(5.0, 2.0, 15)
        incidence = renewal_incidence(np.ones(80), gen, seed_incidence=100.0)
        # After the seeding transient the level is constant (R = 1).
        assert np.ptp(incidence[40:]) < 0.01 * incidence[-1]
        assert 80.0 < incidence[-1] <= 100.0

    def test_r_above_one_grows(self):
        gen = discretized_gamma(5.0, 2.0, 15)
        incidence = renewal_incidence(np.full(60, 1.5), gen, seed_incidence=100.0)
        assert incidence[-1] > incidence[20] > 100.0

    def test_r_below_one_decays(self):
        gen = discretized_gamma(5.0, 2.0, 15)
        incidence = renewal_incidence(np.full(60, 0.6), gen, seed_incidence=100.0)
        assert incidence[-1] < 20.0

    def test_inversion_recovers_rt(self):
        """case_reproduction_number inverts renewal_incidence exactly
        (deterministic mode)."""
        gen = discretized_gamma(5.0, 2.0, 15)
        rt_true = np.concatenate([np.full(30, 1.3), np.full(30, 0.8)])
        incidence = renewal_incidence(rt_true, gen, seed_incidence=50.0)
        recovered = case_reproduction_number(incidence, gen)
        assert np.allclose(recovered[10:], rt_true[10:], rtol=1e-8)

    def test_poisson_mode_reproducible(self):
        gen = discretized_gamma(5.0, 2.0, 15)
        rt = np.full(40, 1.2)
        a = renewal_incidence(rt, gen, rng=generator_from_seed(3))
        b = renewal_incidence(rt, gen, rng=generator_from_seed(3))
        assert np.array_equal(a, b)

    def test_negative_rt_rejected(self):
        gen = discretized_gamma(5.0, 2.0, 15)
        with pytest.raises(ValidationError):
            renewal_incidence(np.array([-1.0, 1.0]), gen)

    def test_bad_pmf_rejected(self):
        with pytest.raises(ValidationError):
            renewal_incidence(np.ones(10), np.array([0.5, 0.2]))  # sums to 0.7

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.3, max_value=2.0))
    def test_incidence_never_negative(self, r):
        gen = discretized_gamma(5.0, 2.0, 15)
        incidence = renewal_incidence(np.full(50, r), gen)
        assert np.all(incidence >= 0)

"""Scientific property tests: the models must behave like epidemiology.

These go beyond bookkeeping invariants (conservation, determinism) to the
qualitative behaviours an epidemiologist would sanity-check before trusting
any downstream analysis.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.rng import generator_from_seed
from repro.models.metarvm import MetaRVM, MetaRVMConfig
from repro.models.mixing import assortative_mixing
from repro.models.parameters import MetaRVMParams
from repro.models.seir import SEIRParams, seir_deterministic


class TestEpidemicThreshold:
    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=1.3, max_value=4.0))
    def test_supercritical_seir_always_takes_off(self, r0):
        params = SEIRParams(beta=r0 / 5.0, di=5.0)
        out = seir_deterministic(params, 1_000_000, 100, 365)
        final_fraction = out["R"][-1] / 1_000_000
        assert final_fraction > 0.2

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=0.1, max_value=0.85))
    def test_subcritical_seir_always_dies_out(self, r0):
        params = SEIRParams(beta=r0 / 5.0, di=5.0)
        out = seir_deterministic(params, 1_000_000, 100, 365)
        assert out["R"][-1] / 1_000_000 < 0.05

    def test_final_size_increases_with_r0(self):
        finals = []
        for r0 in (1.2, 1.6, 2.0, 3.0):
            out = seir_deterministic(SEIRParams(beta=r0 / 5.0, di=5.0), 100_000, 50, 400)
            finals.append(out["R"][-1])
        assert finals == sorted(finals)


class TestMetaRVMDoseResponse:
    """Monotone responses to single-parameter changes (CRN, so exact)."""

    MODEL = MetaRVM(MetaRVMConfig(n_days=60))
    BASE = np.array([0.5, 0.2, 0.6, 0.2, 0.1])

    def _qoi_at(self, **overrides):
        names = ["ts", "tv", "pea", "psh", "phd"]
        point = self.BASE.copy()
        for key, value in overrides.items():
            point[names.index(key)] = value
        return float(self.MODEL.total_hospitalizations(point[None, :], seed=5)[0])

    def test_transmission_increases_hospitalizations(self):
        values = [self._qoi_at(ts=v) for v in (0.2, 0.4, 0.6, 0.8)]
        assert values == sorted(values)

    def test_asymptomatic_fraction_decreases_hospitalizations(self):
        """More asymptomatic cases => fewer people ever reach Is => fewer
        admissions."""
        values = [self._qoi_at(pea=v) for v in (0.4, 0.6, 0.8)]
        assert values == sorted(values, reverse=True)

    def test_hospitalization_fraction_increases_admissions(self):
        values = [self._qoi_at(psh=v) for v in (0.1, 0.25, 0.4)]
        assert values == sorted(values)


class TestVaccination:
    def test_more_initial_vaccination_fewer_infections(self):
        point = np.array([[0.5, 0.1, 0.6, 0.2, 0.1]])
        totals = []
        for fraction in (0.0, 0.3, 0.6):
            model = MetaRVM(MetaRVMConfig(n_days=60, initial_vaccinated_fraction=fraction))
            result = model.run_batch(point, seed=3)
            totals.append(float(result.new_infections.sum()))
        assert totals == sorted(totals, reverse=True)

    def test_vaccine_protection_requires_lower_tv(self):
        """If tv >= ts, vaccination confers no protection (sanity on the
        parameterization): infections should not be materially fewer."""
        model = MetaRVM(MetaRVMConfig(n_days=60, initial_vaccinated_fraction=0.5))
        protected = model.run_batch(np.array([[0.5, 0.05, 0.6, 0.2, 0.1]]), seed=3)
        unprotected = model.run_batch(np.array([[0.5, 0.5, 0.6, 0.2, 0.1]]), seed=3)
        assert protected.new_infections.sum() < unprotected.new_infections.sum()


class TestMixingStructure:
    def test_isolated_groups_do_not_infect_each_other(self):
        """With identity mixing and seeds only in group 0, groups 1..3 see
        zero infections."""
        config = MetaRVMConfig(
            n_days=60,
            population=(50_000, 50_000, 50_000, 50_000),
            initial_infections=(50, 0, 0, 0),
            mixing=np.eye(4),
            initial_vaccinated_fraction=0.0,
        )
        model = MetaRVM(config)
        result = model.run(MetaRVMParams(vax_rate=0.0), seed=2)
        per_group_infections = result.new_infections[0].sum(axis=0)
        assert per_group_infections[0] > 0
        assert np.all(per_group_infections[1:] == 0)

    def test_mixing_spreads_epidemic_across_groups(self):
        config = MetaRVMConfig(
            n_days=60,
            population=(50_000, 50_000, 50_000, 50_000),
            initial_infections=(50, 0, 0, 0),
            mixing=assortative_mixing(4, 0.5),
            initial_vaccinated_fraction=0.0,
        )
        result = MetaRVM(config).run(MetaRVMParams(), seed=2)
        per_group_infections = result.new_infections[0].sum(axis=0)
        assert np.all(per_group_infections > 0)

    def test_seeded_group_peaks_first(self):
        """With strong assortativity, the seeded group's symptomatic peak
        precedes the others'."""
        config = MetaRVMConfig(
            n_days=90,
            population=(80_000, 80_000),
            initial_infections=(80, 0),
            mixing=assortative_mixing(2, 0.9),
            initial_vaccinated_fraction=0.0,
        )
        result = MetaRVM(config).run(MetaRVMParams(ts=0.6), seed=4, stochastic=False)
        is_idx = 5  # Is compartment
        peak_seeded = int(np.argmax(result.trajectories[0, :, is_idx, 0]))
        peak_other = int(np.argmax(result.trajectories[0, :, is_idx, 1]))
        assert peak_seeded < peak_other


class TestReinfection:
    def test_fast_waning_immunity_sustains_transmission(self):
        """Short dr (quick return to S) yields more cumulative infections
        than near-permanent immunity, all else equal."""
        point_base = MetaRVMParams(ts=0.6, dr=20.0)
        point_perm = MetaRVMParams(ts=0.6, dr=100_000.0)
        model = MetaRVM(MetaRVMConfig(n_days=90))
        fast = model.run(point_base, seed=6).new_infections.sum()
        slow = model.run(point_perm, seed=6).new_infections.sum()
        assert fast > slow

"""Tests for the surveillance observation models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.common.rng import generator_from_seed
from repro.models.seir import discretized_gamma, renewal_incidence
from repro.models.surveillance import (
    MANDATE_ERA,
    POST_MANDATE,
    SurveillanceScenario,
    effective_case_count,
    observe_cases,
    observe_hospital_admissions,
)

INCIDENCE = renewal_incidence(
    np.full(100, 1.2), discretized_gamma(6.0, 3.0, 21), seed_incidence=500.0
)


class TestScenario:
    def test_presets_ordered_by_quality(self):
        assert MANDATE_ERA.reporting_fraction > POST_MANDATE.reporting_fraction
        assert MANDATE_ERA.weekday_amplitude < POST_MANDATE.weekday_amplitude

    def test_validation(self):
        with pytest.raises(ValidationError):
            SurveillanceScenario(reporting_fraction=1.5)
        with pytest.raises(ValidationError):
            SurveillanceScenario(weekday_amplitude=1.0)
        with pytest.raises(ValidationError):
            SurveillanceScenario(delay_mean=0.0)
        with pytest.raises(ValidationError):
            SurveillanceScenario(reporting_decay=0.5)


class TestObserveCases:
    def test_expectation_mode_smooth_and_scaled(self):
        observed = observe_cases(INCIDENCE, MANDATE_ERA)
        # roughly reporting_fraction of delayed incidence
        ratio = observed.sum() / INCIDENCE.sum()
        assert 0.3 < ratio < 0.6

    def test_post_mandate_reports_far_fewer(self):
        mandate = observe_cases(INCIDENCE, MANDATE_ERA)
        post = observe_cases(INCIDENCE, POST_MANDATE)
        assert effective_case_count(post) < 0.5 * effective_case_count(mandate)

    def test_reporting_decay_erodes_tail(self):
        decaying = SurveillanceScenario(
            reporting_fraction=0.3, reporting_decay=0.02, weekday_amplitude=0.0
        )
        stable = SurveillanceScenario(
            reporting_fraction=0.3, reporting_decay=0.0, weekday_amplitude=0.0
        )
        flat = np.full(100, 1000.0)
        tail_ratio = observe_cases(flat, decaying)[-1] / observe_cases(flat, stable)[-1]
        assert tail_ratio < 0.3

    def test_weekday_artifacts_present(self):
        scenario = SurveillanceScenario(
            reporting_fraction=0.3, weekday_amplitude=0.35
        )
        observed = observe_cases(np.full(70, 1000.0), scenario)
        steady = observed[30:]
        # strong within-week modulation
        assert steady.max() / steady.min() > 1.3

    def test_delay_shifts_peak_later(self):
        observed = observe_cases(INCIDENCE, MANDATE_ERA)
        assert int(np.argmax(observed)) >= int(np.argmax(INCIDENCE))

    def test_stochastic_mode_reproducible_and_integer(self):
        a = observe_cases(INCIDENCE, POST_MANDATE, generator_from_seed(4))
        b = observe_cases(INCIDENCE, POST_MANDATE, generator_from_seed(4))
        assert np.array_equal(a, b)
        assert np.all(a == np.round(a))

    def test_negative_incidence_rejected(self):
        with pytest.raises(ValidationError):
            observe_cases(np.array([-1.0, 2.0]), MANDATE_ERA)


class TestObserveHospitalAdmissions:
    def test_scaled_and_delayed(self):
        admissions = observe_hospital_admissions(INCIDENCE, severity_fraction=0.05)
        assert 0.03 < admissions.sum() / INCIDENCE.sum() < 0.06
        assert int(np.argmax(admissions)) >= int(np.argmax(INCIDENCE))

    def test_zero_severity_rejected(self):
        with pytest.raises(ValidationError):
            observe_hospital_admissions(INCIDENCE, severity_fraction=0.0)

    def test_stochastic_mode(self):
        a = observe_hospital_admissions(INCIDENCE, rng=generator_from_seed(1))
        b = observe_hospital_admissions(INCIDENCE, rng=generator_from_seed(1))
        assert np.array_equal(a, b)


class TestCoriOnDegradedStreams:
    def test_estimation_degrades_with_surveillance_quality(self):
        """The paper's motivating gradient: worse surveillance, worse R(t)."""
        from repro.common.timeseries import TimeSeries
        from repro.rt import estimate_rt_cori

        gen = discretized_gamma(6.0, 3.0, 21)
        rt_true = np.concatenate([np.full(60, 1.3), np.full(60, 0.8)])
        incidence = renewal_incidence(rt_true, gen, seed_incidence=2000.0)
        truth = TimeSeries(np.arange(120.0), rt_true)
        rng = generator_from_seed(7)

        maes = []
        for scenario in (MANDATE_ERA, POST_MANDATE):
            observed = observe_cases(incidence, scenario, rng)
            estimate = estimate_rt_cori(observed, gen)
            maes.append(estimate.mae_against(truth))
        assert maes[1] > maes[0]

"""Tests for the synthetic wastewater surveillance generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import NotFoundError, ValidationError
from repro.common.timeseries import TimeSeries
from repro.models.wastewater import (
    CHICAGO_PLANTS,
    SyntheticIWSS,
    WastewaterPlant,
    default_rt_scenario,
    shedding_kernel,
)


@pytest.fixture(scope="module")
def iwss():
    return SyntheticIWSS(n_days=120, seed=99)


class TestPlants:
    def test_paper_plants_present(self):
        names = {p.name for p in CHICAGO_PLANTS}
        assert names == {"obrien", "calumet", "stickney-south", "stickney-north"}

    def test_plant_validation(self):
        with pytest.raises(ValidationError):
            WastewaterPlant("", population=100)
        with pytest.raises(ValidationError):
            WastewaterPlant("x", population=100, missing_rate=1.0)


class TestScenario:
    def test_rt_scenario_crosses_one(self):
        rt = default_rt_scenario(150)
        above = rt > 1.0
        crossings = np.sum(above[1:] != above[:-1])
        assert crossings >= 2  # wave, control, rebound

    def test_rt_positive(self):
        assert default_rt_scenario(100).min() > 0

    def test_shedding_kernel_is_pmf(self):
        kernel = shedding_kernel()
        assert np.isclose(kernel.sum(), 1.0)
        assert np.all(kernel >= 0)
        # peaks after about a week
        assert 4 <= np.argmax(kernel) <= 12


class TestGeneration:
    def test_deterministic_given_seed(self):
        a = SyntheticIWSS(n_days=60, seed=1).dataset("obrien")
        b = SyntheticIWSS(n_days=60, seed=1).dataset("obrien")
        assert np.array_equal(a.true_incidence, b.true_incidence)
        assert np.allclose(
            a.concentrations.values, b.concentrations.values, equal_nan=True
        )

    def test_seeds_change_data(self):
        a = SyntheticIWSS(n_days=60, seed=1).dataset("obrien")
        b = SyntheticIWSS(n_days=60, seed=2).dataset("obrien")
        assert not np.allclose(
            a.concentrations.values, b.concentrations.values, equal_nan=True
        )

    def test_plants_have_distinct_signals(self, iwss):
        a = iwss.dataset("obrien").concentrations.values
        b = iwss.dataset("calumet").concentrations.values
        assert not np.allclose(a, b, equal_nan=True)

    def test_concentrations_positive_where_observed(self, iwss):
        values = iwss.dataset("obrien").concentrations.values
        finite = values[np.isfinite(values)]
        assert np.all(finite > 0)

    def test_some_samples_missing(self, iwss):
        values = iwss.dataset("stickney-south").concentrations.values
        assert np.any(~np.isfinite(values))

    def test_concentration_tracks_incidence_shape(self, iwss):
        """The (noise-free) peak of concentration lags the incidence peak."""
        ds = iwss.dataset("obrien")
        incidence_peak = int(np.argmax(ds.true_incidence))
        smooth = ds.concentrations.dropna().rolling_mean(5)
        conc_peak = float(smooth.times[np.argmax(smooth.values)])
        # shedding delays the peak; observation noise jitters it
        assert -10 <= conc_peak - incidence_peak <= 30

    def test_unknown_plant(self, iwss):
        with pytest.raises(NotFoundError):
            iwss.dataset("ghost")

    def test_duplicate_plant_names_rejected(self):
        plant = WastewaterPlant("dup", population=1000)
        with pytest.raises(ValidationError):
            SyntheticIWSS(plants=[plant, plant], n_days=30)


class TestFeed:
    def test_feed_grows_with_time(self, iwss):
        early = iwss.csv_feed("obrien", 30)
        late = iwss.csv_feed("obrien", 60)
        assert len(late) > len(early)
        assert late.startswith(early[: len(early) - 1])  # prefix property

    def test_feed_is_deterministic_function_of_day(self, iwss):
        assert iwss.csv_feed("obrien", 45) == iwss.csv_feed("obrien", 45)

    def test_feed_constant_between_samples(self, iwss):
        """Checksum-based change detection: no new sample, no change."""
        assert iwss.csv_feed("obrien", 10.0) == iwss.csv_feed("obrien", 10.9)

    def test_feed_parses_as_timeseries(self, iwss):
        series = TimeSeries.from_csv(iwss.csv_feed("calumet", 50))
        assert series.end <= 50

    def test_observations_until(self, iwss):
        series = iwss.observations_until("obrien", 40)
        assert series.end <= 40


class TestWeights:
    def test_weights_normalized(self, iwss):
        weights = iwss.population_weights()
        assert np.isclose(sum(weights.values()), 1.0)
        assert weights["obrien"] == max(weights.values())  # largest population

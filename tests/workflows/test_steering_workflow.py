"""Workflow-level steering determinism: kill/resume and fault-plan identity.

The steered EMEWS loop must honor the same headline guarantee as the
un-steered one (see ``tests/state/test_resume_matrix.py``): kill the run
anywhere, resume from the journal, and every output — including the
steering decision journal itself — is bitwise identical to an
uninterrupted run.  Likewise, evaluator faults that are retried to
success must not perturb a single decision: decisions are a pure function
of told result *content*, and a retry recomputes the identical result.

Counters like ``wasted_evals`` are deliberately *not* compared across
runs here: under the real threaded pool a decided cancel can race an
in-flight claim, and which side wins only moves an eval between the
reclaimed/wasted ledgers — the revoked result is discarded either way,
so the Sobol trajectory and the decisions stay identical.
"""

from __future__ import annotations

import pytest

from repro.common.errors import WorkflowKilledError
from repro.gsa.steering import SteeringConfig
from repro.state import InMemoryRunStore, JsonlRunStore, KillSwitch
from repro.workflows.music_gsa import MusicGsaRunConfig, run_music_gsa

pytestmark = pytest.mark.chaos

STEERING = SteeringConfig(
    steer_every=1,
    lookahead=10,
    cancel_fraction=0.5,
    min_keep=2,
    cancel_guard=4,
    rank_by="fifo",
)
STEER_CONFIG = MusicGsaRunConfig(
    seed=3, budget=60, reference_n=256, steering=STEERING
)
FAULTY_STEER_CONFIG = MusicGsaRunConfig(
    seed=3,
    budget=60,
    reference_n=256,
    steering=STEERING,
    fault_rate=0.15,
    fault_seed=7,
)


def make_store(kind, tmp_path):
    if kind == "memory":
        return InMemoryRunStore()
    return JsonlRunStore(tmp_path / "runs")


def steered_output(data):
    """Everything the determinism contract covers, in hashable form."""
    return (
        [(n, arr.tobytes()) for n, arr in data.music_curve],
        [(n, arr.tobytes()) for n, arr in data.pce_curve],
        data.reference.tobytes(),
        data.steering_decisions,
    )


@pytest.fixture(scope="module")
def steered_baseline():
    data = run_music_gsa(STEER_CONFIG)
    assert data.steering_report["steering_decisions"] > 0
    assert data.steering_decisions, "steered run must journal its decisions"
    return steered_output(data)


class TestSteeredDeterminism:
    def test_repeat_run_is_bitwise_identical(self, steered_baseline):
        again = run_music_gsa(STEER_CONFIG)
        assert steered_output(again) == steered_baseline

    def test_faulted_run_matches_fault_free(self, steered_baseline):
        """Retried evaluator faults recompute identical results, so every
        steering decision — and the whole Sobol trajectory — is unchanged."""
        data = run_music_gsa(FAULTY_STEER_CONFIG)
        assert data.resilience_report["evaluator_faults_injected"] > 0
        assert steered_output(data) == steered_baseline


class TestSteeredResumeMatrix:
    @pytest.mark.parametrize("backend", ["memory", "jsonl"])
    @pytest.mark.parametrize("kill_after", [10, 30])
    def test_killed_then_resumed_is_bitwise_identical(
        self, kill_after, backend, tmp_path, steered_baseline
    ):
        store = make_store(backend, tmp_path)
        with pytest.raises(WorkflowKilledError) as excinfo:
            run_music_gsa(
                STEER_CONFIG,
                run_store=store,
                kill_switch=KillSwitch(after_records=kill_after),
            )
        run_id = excinfo.value.run_id
        assert store.open_run(run_id).status == "killed"

        # Resume: the steering config travels in the journal snapshot; the
        # write-ahead decision journal replays the pre-kill decisions and
        # re-derives the rest, landing on the same trajectory.
        resumed = run_music_gsa(run_store=store, resume_from=run_id)
        assert steered_output(resumed) == steered_baseline
        assert store.open_run(run_id).status == "completed"
        assert resumed.state_report["state_replay_hits"] > 0

    def test_killed_faulted_then_resumed_is_bitwise_identical(
        self, tmp_path, steered_baseline
    ):
        """The full gauntlet: faults firing AND a mid-run kill."""
        store = make_store("jsonl", tmp_path)
        with pytest.raises(WorkflowKilledError) as excinfo:
            run_music_gsa(
                FAULTY_STEER_CONFIG,
                run_store=store,
                kill_switch=KillSwitch(after_records=20),
            )
        resumed = run_music_gsa(run_store=store, resume_from=excinfo.value.run_id)
        assert resumed.resilience_report["evaluator_faults_injected"] > 0
        assert steered_output(resumed) == steered_baseline

    def test_double_resume_is_idempotent(self, tmp_path, steered_baseline):
        """Outputs and the decision journal are exactly idempotent.  The
        task-result cache may *grow* across resumes: a decided cancel can
        lose the claim race to a worker (replay makes workers near-instant),
        and the raced evaluation journals its — discarded — result.  That is
        the reclaimed/wasted ledger showing through; nothing replayable
        changes, so we pin decisions and outputs, not raw record counts."""
        store = make_store("memory", tmp_path)
        with pytest.raises(WorkflowKilledError) as excinfo:
            run_music_gsa(
                STEER_CONFIG,
                run_store=store,
                kill_switch=KillSwitch(after_records=20),
            )
        run_id = excinfo.value.run_id

        def journal_kinds():
            journal = store.open_run(run_id).journal
            steer = [
                (r.key, r.payload) for r in journal.records("steer.decision")
            ]
            other = [
                (r.kind, r.key, r.payload)
                for r in journal.records()
                if r.kind not in ("steer.decision", "task.result")
            ]
            return steer, other, len(journal.records("task.result"))

        first = run_music_gsa(run_store=store, resume_from=run_id)
        steer1, other1, n_tasks1 = journal_kinds()
        second = run_music_gsa(run_store=store, resume_from=run_id)
        steer2, other2, n_tasks2 = journal_kinds()
        assert steered_output(first) == steered_output(second) == steered_baseline
        assert steer1 == steer2
        assert other1 == other2
        assert n_tasks2 >= n_tasks1

    def test_steering_config_roundtrips_through_journal(self, tmp_path):
        store = make_store("jsonl", tmp_path)
        with pytest.raises(WorkflowKilledError) as excinfo:
            run_music_gsa(
                STEER_CONFIG,
                run_store=store,
                kill_switch=KillSwitch(after_records=10),
            )
        run_id = excinfo.value.run_id
        snapshot = store.open_run(run_id).config
        rebuilt = MusicGsaRunConfig.from_jsonable(snapshot)
        assert rebuilt.steering == STEERING

"""Tests for the interleaved-vs-sequential utilization study."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.workflows.utilization import (
    compare_scheduling_modes,
    run_utilization_study,
)


class TestSingleMode:
    def test_all_tasks_complete(self):
        result = run_utilization_study(
            n_instances=3, n_initial=5, n_steps=4, n_slots=8, interleaved=True
        )
        assert result.tasks_evaluated == 3 * (5 + 4)
        assert result.mode == "interleaved"
        assert result.makespan > 0
        assert 0 < result.utilization <= 1

    def test_sequential_mode_serializes_instances(self):
        """Sequential makespan ~= n_instances * single-instance makespan."""
        single = run_utilization_study(
            n_instances=1, n_initial=8, n_steps=10, n_slots=8, interleaved=False
        )
        sequential = run_utilization_study(
            n_instances=4, n_initial=8, n_steps=10, n_slots=8, interleaved=False
        )
        assert sequential.makespan == pytest.approx(4 * single.makespan, rel=0.01)

    def test_interleaved_never_slower_than_sequential(self):
        results = compare_scheduling_modes(
            n_instances=4, n_initial=6, n_steps=8, n_slots=8
        )
        assert results["interleaved"].makespan <= results["sequential"].makespan

    def test_single_slot_removes_the_advantage(self):
        """With one worker slot there is no parallelism to reclaim."""
        results = compare_scheduling_modes(
            n_instances=3, n_initial=4, n_steps=3, n_slots=1
        )
        assert results["interleaved"].makespan == pytest.approx(
            results["sequential"].makespan, rel=1e-6
        )

    def test_zero_steps_pure_batches(self):
        result = run_utilization_study(
            n_instances=2, n_initial=6, n_steps=0, n_slots=4, interleaved=True
        )
        assert result.tasks_evaluated == 12

    def test_validation(self):
        with pytest.raises(ValidationError):
            run_utilization_study(n_instances=0)
        with pytest.raises(ValidationError):
            run_utilization_study(task_duration=0.0)

    def test_slot_days_wasted(self):
        result = run_utilization_study(
            n_instances=2, n_initial=4, n_steps=4, n_slots=8, interleaved=False
        )
        assert result.slot_days_wasted >= 0


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),   # instances
    st.integers(min_value=1, max_value=10),  # initial batch
    st.integers(min_value=0, max_value=6),   # sequential steps
    st.integers(min_value=1, max_value=12),  # slots
)
def test_conservation_and_bounds(n_instances, n_initial, n_steps, n_slots):
    """Both modes evaluate identical work; utilization stays in (0, 1];
    makespan is bounded below by total-work / slots and by the critical
    path of one instance."""
    duration = 0.01
    results = compare_scheduling_modes(
        n_instances=n_instances,
        n_initial=n_initial,
        n_steps=n_steps,
        n_slots=n_slots,
        task_duration=duration,
    )
    total_tasks = n_instances * (n_initial + n_steps)
    lower_work = total_tasks * duration / n_slots
    # one instance's critical path: ceil(batch/slots) waves + n_steps singles
    import math

    critical = (math.ceil(n_initial / n_slots) + n_steps) * duration
    for result in results.values():
        assert result.tasks_evaluated == total_tasks
        assert 0.0 < result.utilization <= 1.0 + 1e-9
        assert result.makespan >= lower_work - 1e-9
        assert result.makespan >= critical - 1e-9
    assert results["interleaved"].makespan <= results["sequential"].makespan + 1e-9

"""Integration tests for the full wastewater R(t) workflow (use case 1)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.aero.provenance import flow_graph, version_graph
from repro.rt.ensemble import mean_band_width
from repro.workflows.wastewater_rt import run_wastewater_workflow


@pytest.fixture(scope="module")
def result():
    """One reduced-size end-to-end run shared by the assertions below."""
    return run_wastewater_workflow(
        data_start_day=100.0,
        sim_days=6.0,
        goldstein_iterations=600,
        seed=11,
    )


class TestAutomation:
    def test_every_plant_was_ingested_and_analyzed(self, result):
        for plant in result.iwss.plant_names():
            assert result.ingestion_update_counts[plant] >= 1
            assert result.analysis_run_counts[plant] >= 1

    def test_aggregation_triggered_by_all_policy(self, result):
        assert result.aggregation_runs >= 1
        # ALL policy: aggregation cannot outrun the slowest analysis chain
        assert result.aggregation_runs <= min(result.analysis_run_counts.values())

    def test_analyses_retriggered_on_updates(self, result):
        """Daily polling over 6 days with 2-day sampling => several runs."""
        assert max(result.analysis_run_counts.values()) >= 2

    def test_expensive_analyses_ran_as_batch_jobs(self, result):
        scheduler = result.platform.endpoint_bundle("bebop-compute").scheduler
        jobs = scheduler.all_jobs()
        assert len(jobs) == sum(result.analysis_run_counts.values())
        assert all(job.done for job in jobs)

    def test_transfers_moved_real_bytes(self, result):
        assert result.platform.transfer.bytes_moved > 0

    def test_metadata_never_holds_data(self, result):
        """Spot the core AERO property: versions carry URIs, not content."""
        for obj in result.platform.metadata.all_objects():
            for version in result.platform.metadata.versions(obj.data_id):
                assert ":" in version.uri
                assert version.checksum


class TestFigure1Structure:
    def test_flow_graph_shape(self, result):
        summary = result.flow_graph_summary()
        assert summary["flow"] == 9  # 4 ingest + 4 rt + 1 aggregate
        assert summary["source"] == 4

    def test_aggregation_depends_on_all_four_plants(self, result):
        flows = [result.client.get_flow(name) for name in result.client.flow_names()]
        graph = flow_graph(flows)
        ancestors = nx.ancestors(graph, "flow:aggregate-rt")
        for plant in result.iwss.plant_names():
            assert f"flow:rt-{plant}" in ancestors
            assert f"flow:ingest-{plant}" in ancestors

    def test_version_provenance_acyclic_and_rooted(self, result):
        graph = version_graph(result.platform.metadata)
        assert nx.is_directed_acyclic_graph(graph)
        ensemble_nodes = [
            node for node, data in graph.nodes(data=True)
            if data["name"] == "aggregate-rt/ensemble"
        ]
        assert ensemble_nodes
        ancestors = nx.ancestors(graph, ensemble_nodes[-1])
        raw_names = {
            graph.nodes[a]["name"] for a in ancestors
        }
        for plant in result.iwss.plant_names():
            assert f"ingest-{plant}/raw" in raw_names


class TestFigure2Outputs:
    def test_four_estimates_plus_ensemble(self, result):
        assert set(result.plant_estimates) == set(result.iwss.plant_names())
        assert result.ensemble.n_days > 50

    def test_estimates_track_truth_direction(self, result):
        """Even at reduced MCMC length the wave shape must be recovered."""
        for plant, metrics in result.plant_metrics().items():
            assert metrics["mae"] < 0.35, plant

    def test_ensemble_improves_signal_to_noise(self, result):
        widths = [
            float(np.mean(est.band_width()))
            for est in result.plant_estimates.values()
        ]
        assert np.mean(result.ensemble.band_width()) < np.mean(widths)

    def test_artifacts_fetchable_by_stakeholders(self, result):
        plot = result.client.fetch_content(result.output_ids["aggregate/plot"])
        assert "R(t)" in plot
        table = result.client.fetch_content(result.output_ids["obrien/table"])
        assert table.startswith("day,median,lower,upper")

    def test_ensemble_metrics_finite(self, result):
        metrics = result.ensemble_metrics()
        assert 0.0 <= metrics["coverage"] <= 1.0
        assert metrics["mae"] < 0.5


class TestRendering:
    def test_figure1_and_2_render_from_live_result(self, result):
        from repro.workflows.figures import render_figure1, render_figure2

        fig1 = render_figure1(result)
        assert "Flow DAG" in fig1
        assert "aggregation runs" in fig1
        fig2 = render_figure2(result)
        assert "ENSEMBLE" in fig2
        for plant in result.iwss.plant_names():
            assert plant in fig2


class TestOutlookExtension:
    def test_outlook_flow_chains_from_ensemble(self):
        """A fourth workflow stage consumes the ensemble (depth-3 chaining)."""
        result = run_wastewater_workflow(
            sim_days=4.0, goldstein_iterations=400, seed=29, include_outlook=True
        )
        summary = result.client.fetch_content(result.output_ids["outlook/summary"])
        assert "R(now)" in summary and "P(R > 1" in summary
        table = result.client.fetch_content(result.output_ids["outlook/outlook"])
        header, first = table.splitlines()[:2]
        assert header == "days_ahead,median,lower,upper,p_above_one"
        fields = first.split(",")
        assert fields[0] == "1"
        assert 0.0 <= float(fields[4]) <= 1.0
        # the outlook ran at least as part of each aggregation cycle
        outlook_runs = len(result.client.runs("rt-outlook"))
        assert 1 <= outlook_runs <= result.aggregation_runs
        # provenance: the outlook descends from all raw feeds
        import networkx as nx
        from repro.aero.provenance import version_graph

        graph = version_graph(result.platform.metadata)
        outlook_nodes = [
            node for node, data in graph.nodes(data=True)
            if data["name"] == "rt-outlook/summary"
        ]
        ancestors = nx.ancestors(graph, outlook_nodes[-1])
        names = {graph.nodes[a]["name"] for a in ancestors}
        for plant in result.iwss.plant_names():
            assert f"ingest-{plant}/raw" in names

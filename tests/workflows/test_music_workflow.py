"""Integration tests for the MUSIC GSA workflow (use case 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gsa.music import MusicConfig
from repro.models.metarvm import MetaRVMConfig
from repro.workflows.music_gsa import (
    make_qoi,
    metarvm_task_evaluator,
    reference_indices,
    run_music_vs_pce,
    run_replicate_gsa,
    stabilization_sample_size,
)

SMALL_MODEL = MetaRVMConfig(
    n_days=40,
    population=(20_000, 20_000),
    initial_infections=(20, 20),
    initial_vaccinated_fraction=0.4,
)
SMALL_MUSIC = MusicConfig(n_initial=20, refit_every=10, surrogate_mc=256, n_candidates=64)


class TestQoIAndEvaluator:
    def test_qoi_deterministic_given_seed(self):
        qoi = make_qoi(seed=3, model_config=SMALL_MODEL)
        point = np.array([[0.5, 0.2, 0.6, 0.2, 0.1]])
        assert qoi(point)[0] == qoi(point)[0]

    def test_evaluator_matches_qoi(self):
        qoi = make_qoi(seed=3, model_config=SMALL_MODEL)
        evaluate = metarvm_task_evaluator(model_config=SMALL_MODEL)
        point = [0.5, 0.2, 0.6, 0.2, 0.1]
        direct = float(qoi(np.array([point]))[0])
        via_task = evaluate({"point": point, "seed": 3})["hospitalizations"]
        assert direct == via_task

    def test_evaluator_result_is_json_safe(self):
        import json

        evaluate = metarvm_task_evaluator(model_config=SMALL_MODEL)
        out = evaluate({"point": [0.5, 0.2, 0.6, 0.2, 0.1], "seed": 1})
        json.dumps(out)

    def test_reference_indices_sensible(self):
        ref = reference_indices(0, n=512, model_config=SMALL_MODEL)
        assert ref.shape == (5,)
        # transmission rate dominates; death probability is inert for
        # an admissions QoI
        assert ref[0] == ref.max()
        assert abs(ref[4]) < 0.05


class TestStabilization:
    def test_basic(self):
        ref = np.array([0.5])
        curve = [
            (10, np.array([0.9])),
            (20, np.array([0.52])),
            (30, np.array([0.49])),
        ]
        assert stabilization_sample_size(curve, ref) == 20

    def test_never_stable(self):
        curve = [(10, np.array([0.9])), (20, np.array([0.8]))]
        assert stabilization_sample_size(curve, np.array([0.1])) == np.inf

    def test_relapse_resets(self):
        ref = np.array([0.5])
        curve = [
            (10, np.array([0.51])),
            (20, np.array([0.9])),  # relapse
            (30, np.array([0.5])),
        ]
        assert stabilization_sample_size(curve, ref) == 30


@pytest.fixture(scope="module")
def figure4():
    return run_music_vs_pce(
        seed=1,
        budget=60,
        music_config=SMALL_MUSIC,
        reference_n=512,
        model_config=SMALL_MODEL,
        use_emews=True,
        n_workers=2,
    )


class TestFigure4:
    def test_curves_cover_budget(self, figure4):
        assert figure4.music_curve[0][0] == SMALL_MUSIC.n_initial
        assert figure4.music_curve[-1][0] == 60
        assert figure4.pce_curve[-1][0] == 60

    def test_music_converges_toward_reference(self, figure4):
        final_err = np.max(np.abs(figure4.music_curve[-1][1] - figure4.reference))
        assert final_err < 0.15

    def test_pce_final_also_reasonable(self, figure4):
        final_err = np.max(np.abs(figure4.pce_curve[-1][1] - figure4.reference))
        assert final_err < 0.25

    def test_emews_and_direct_paths_agree(self):
        """The same experiment through EMEWS and in-process must match:
        the task database is transport, not arithmetic."""
        direct = run_music_vs_pce(
            seed=2, budget=45, music_config=SMALL_MUSIC,
            reference_n=256, model_config=SMALL_MODEL, use_emews=False,
        )
        via_emews = run_music_vs_pce(
            seed=2, budget=45, music_config=SMALL_MUSIC,
            reference_n=256, model_config=SMALL_MODEL, use_emews=True, n_workers=3,
        )
        assert np.allclose(
            direct.music_curve[-1][1], via_emews.music_curve[-1][1], atol=1e-9
        )
        assert np.allclose(direct.reference, via_emews.reference)

    def test_stabilization_readable(self, figure4):
        stab = figure4.stabilization(tol=0.1)
        assert "music" in stab and "pce" in stab


@pytest.fixture(scope="module")
def figure5():
    return run_replicate_gsa(
        n_replicates=3,
        budget=40,
        root_seed=7,
        music_config=SMALL_MUSIC,
        model_config=SMALL_MODEL,
        n_workers=3,
    )


class TestFigure5:
    def test_each_replicate_has_a_curve(self, figure5):
        assert set(figure5.replicate_curves) == {0, 1, 2}
        for curve in figure5.replicate_curves.values():
            assert curve[-1][0] == 40

    def test_replicates_used_distinct_seeds(self, figure5):
        assert len(set(figure5.replicate_seeds.values())) == 3

    def test_replicates_differ_but_agree_on_ranking(self, figure5):
        finals = figure5.final_indices()
        # aleatoric spread: replicates differ
        assert not np.allclose(finals[0], finals[1])
        # ts dominates in every replicate
        assert np.all(np.argmax(finals, axis=1) == 0)

    def test_all_tasks_accounted(self, figure5):
        assert figure5.tasks_evaluated == 3 * 40

    def test_spread_table(self, figure5):
        spread = figure5.cross_replicate_spread()
        assert set(spread) == {"ts", "tv", "pea", "psh", "phd"}
        for low, high in spread.values():
            assert low <= high

    def test_sequential_mode_gives_same_estimates(self):
        seq = run_replicate_gsa(
            n_replicates=2, budget=30, root_seed=9,
            music_config=SMALL_MUSIC, model_config=SMALL_MODEL,
            n_workers=2, interleaved=False,
        )
        inter = run_replicate_gsa(
            n_replicates=2, budget=30, root_seed=9,
            music_config=SMALL_MUSIC, model_config=SMALL_MODEL,
            n_workers=2, interleaved=True,
        )
        assert np.allclose(seq.final_indices(), inter.final_indices(), atol=1e-9)

"""Smoke tests for the figure/table rendering layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workflows.figures import (
    render_figure3,
    render_figure4,
    render_figure5,
    render_table1,
)
from repro.workflows.music_gsa import Figure4Data, Figure5Data


class TestStaticRenders:
    def test_table1_contains_all_rows(self):
        text = render_table1()
        for name in ("ts", "tv", "pea", "psh", "phd"):
            assert name in text
        assert "(0.1, 0.9)" in text
        assert text.startswith("Table 1")

    def test_figure3_lists_all_transitions(self):
        text = render_figure3()
        assert text.count("\n") >= 14  # header + 13 edges
        for compartment in ("Ia", "Ip", "Is", "H", "D"):
            assert compartment in text


def make_figure4():
    names = ["ts", "tv", "pea", "psh", "phd"]
    ref = np.array([0.4, 0.05, 0.2, 0.15, 0.0])
    music = [(30 + i, ref + 0.1 / (i + 1)) for i in range(5)]
    pce = [(20 + i, ref + 0.2 / (i + 1)) for i in range(8)]
    return Figure4Data(
        parameter_names=names,
        music_curve=music,
        pce_curve=pce,
        reference=ref,
        seed=0,
        pce_degree=3,
    )


class TestFigure4Render:
    def test_contains_all_sections(self):
        text = render_figure4(make_figure4(), every=2)
        assert "Reference" in text
        assert "MUSIC" in text
        assert "PCE (degree 3" in text
        assert "Stabilization sample size" in text

    def test_stabilization_methods_consistent(self):
        data = make_figure4()
        stab = data.stabilization(tol=0.0501)
        # music curve enters tolerance at 0.1/(i+1) <= 0.05 => i>=1 => n=31
        assert stab["music"]["n_stable"] == 31

    def test_final_errors(self):
        errors = make_figure4().final_errors()
        assert errors["music"] == pytest.approx(0.1 / 5)
        assert errors["pce"] == pytest.approx(0.2 / 8)


class TestFigure5Render:
    def test_contains_replicates_and_spread(self):
        names = ["ts", "tv", "pea", "psh", "phd"]
        curves = {
            k: [(20, np.full(5, 0.1 * (k + 1))), (40, np.full(5, 0.2 * (k + 1)))]
            for k in range(3)
        }
        data = Figure5Data(
            parameter_names=names,
            replicate_curves=curves,
            replicate_seeds={k: 100 + k for k in range(3)},
            driver_stats={"cycles": 10, "switches": 30},
            tasks_evaluated=120,
        )
        text = render_figure5(data)
        assert "replicate-0" in text and "replicate-2" in text
        assert "min" in text and "max" in text
        finals = data.final_indices()
        assert finals.shape == (3, 5)
        spread = data.cross_replicate_spread()
        assert spread["ts"] == (pytest.approx(0.2), pytest.approx(0.6))


class TestSvgFigures:
    def test_figure4_svg_valid(self):
        import xml.etree.ElementTree as ET

        from repro.workflows.figures import figure4_svg

        svg = figure4_svg(make_figure4())
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        assert "MUSIC" in svg and "PCE" in svg
        assert svg.count("<svg") == 6  # outer + 5 facets

    def test_figure5_svg_valid(self):
        import xml.etree.ElementTree as ET

        from repro.workflows.figures import figure5_svg
        from repro.workflows.music_gsa import Figure5Data

        curves = {
            k: [(20, np.full(5, 0.1 * (k + 1))), (40, np.full(5, 0.2 * (k + 1)))]
            for k in range(3)
        }
        data = Figure5Data(
            parameter_names=["ts", "tv", "pea", "psh", "phd"],
            replicate_curves=curves,
            replicate_seeds={k: k for k in range(3)},
            driver_stats={},
            tasks_evaluated=0,
        )
        ET.fromstring(figure5_svg(data))

"""Multi-facility execution: flows distributed across multiple clusters.

OSPREY's first goal — "integrated, algorithm-driven multi-facility HPC
workflows" — is inherited infrastructure here: nothing in AERO binds a
deployment to a single compute facility.  These tests run one workflow
whose analysis flows are split across two independent batch clusters and
check that triggering, provenance, and aggregation are facility-agnostic.
"""

from __future__ import annotations

import pytest

from repro.aero import AeroClient, AeroPlatform, StaticSource, TriggerPolicy
from repro.aero.flows import RunStatus
from repro.globus.compute import simulated_cost


@pytest.fixture
def two_facility_platform():
    platform = AeroPlatform()
    identity, token = platform.create_user("researcher")
    platform.add_storage_collection("eagle", token)
    platform.add_login_endpoint("login")
    platform.add_cluster_endpoint("bebop", n_nodes=2, walltime=0.5)
    platform.add_cluster_endpoint("improv", n_nodes=2, walltime=0.5)
    return platform, AeroClient(platform, identity, token)


def test_analyses_split_across_facilities(two_facility_platform):
    platform, client = two_facility_platform
    sources = {name: StaticSource(f"https://feed/{name}", f"{name}-v1") for name in "abcd"}
    analysis_ids = {}

    @simulated_cost(0.05)
    def analyze(inputs):
        return {"out": f"analyzed {sorted(inputs)[0]}"}

    for i, (name, source) in enumerate(sorted(sources.items())):
        ingest_ids = client.register_ingestion_flow(
            f"ingest-{name}",
            source=source,
            function=lambda raw: {"clean": raw.upper()},
            endpoint="login",
            storage="eagle",
            outputs=["clean"],
        )
        facility = "bebop" if i % 2 == 0 else "improv"
        out = client.register_analysis_flow(
            f"rt-{name}",
            inputs={"clean": ingest_ids["clean"]},
            function=analyze,
            endpoint=facility,
            storage="eagle",
            outputs=["out"],
        )
        analysis_ids[name] = out["out"]

    agg_ids = client.register_analysis_flow(
        "aggregate",
        inputs=analysis_ids,
        function=lambda inputs: {"combined": "+".join(sorted(inputs))},
        endpoint="login",
        storage="eagle",
        outputs=["combined"],
        policy=TriggerPolicy.ALL,
    )
    platform.env.run_until(2.0)

    # both facilities actually ran jobs
    bebop = platform.endpoint_bundle("bebop").scheduler
    improv = platform.endpoint_bundle("improv").scheduler
    assert len(bebop.all_jobs()) == 2
    assert len(improv.all_jobs()) == 2
    # the cross-facility aggregation fired once all four completed
    assert client.fetch_content(agg_ids["combined"]) == "a+b+c+d"
    runs = client.runs("aggregate")
    assert runs[0].status is RunStatus.SUCCEEDED


def test_facility_outage_only_stalls_its_flows(two_facility_platform):
    """A saturated facility delays its own analyses; the other proceeds."""
    platform, client = two_facility_platform

    # Saturate improv with a long-running blocker on every node.
    from repro.hpc import JobRequest

    improv = platform.endpoint_bundle("improv").scheduler
    for _ in range(2):
        improv.submit(
            JobRequest(name="blocker", n_nodes=1, walltime=10.0, duration=3.0)
        )

    @simulated_cost(0.01)
    def analyze(inputs):
        return {"out": "done"}

    outs = {}
    for name, facility in (("fast", "bebop"), ("slow", "improv")):
        ingest_ids = client.register_ingestion_flow(
            f"ingest-{name}",
            source=StaticSource(f"u-{name}", "data"),
            function=lambda raw: {"clean": raw},
            endpoint="login",
            storage="eagle",
            outputs=["clean"],
        )
        outs[name] = client.register_analysis_flow(
            f"rt-{name}",
            inputs={"clean": ingest_ids["clean"]},
            function=analyze,
            endpoint=facility,
            storage="eagle",
            outputs=["out"],
        )

    platform.env.run_until(1.0)
    # bebop-side analysis finished; improv-side is still queued behind blockers
    assert platform.metadata.latest(outs["fast"]["out"]) is not None
    assert platform.metadata.latest(outs["slow"]["out"]) is None
    platform.env.run_until(4.0)
    assert platform.metadata.latest(outs["slow"]["out"]) is not None

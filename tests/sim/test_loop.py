"""Tests for the discrete-event loop."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import EventBudgetError, SimulationError, ValidationError
from repro.sim import SimulationEnvironment


class TestScheduling:
    def test_events_fire_in_time_order(self, env):
        fired = []
        env.schedule(2.0, lambda: fired.append("b"))
        env.schedule(1.0, lambda: fired.append("a"))
        env.schedule(3.0, lambda: fired.append("c"))
        env.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self, env):
        fired = []
        for i in range(10):
            env.schedule(1.0, lambda i=i: fired.append(i))
        env.run()
        assert fired == list(range(10))

    def test_clock_advances_to_event_time(self, env):
        seen = []
        env.schedule(2.5, lambda: seen.append(env.now))
        env.run()
        assert seen == [2.5]
        assert env.now == 2.5

    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            env.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self, env):
        env.schedule(1.0, lambda: None)
        env.run()
        with pytest.raises(SimulationError):
            env.schedule_at(0.5, lambda: None)

    def test_non_callable_rejected(self, env):
        with pytest.raises(ValidationError):
            env.schedule(1.0, "nope")  # type: ignore[arg-type]

    def test_callback_can_schedule_more_events(self, env):
        fired = []

        def first():
            fired.append("first")
            env.schedule(1.0, lambda: fired.append("second"))

        env.schedule(1.0, first)
        env.run()
        assert fired == ["first", "second"]

    def test_zero_delay_event_fires_same_run(self, env):
        fired = []
        env.schedule(1.0, lambda: env.schedule(0.0, lambda: fired.append(env.now)))
        env.run()
        assert fired == [1.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, env):
        fired = []
        event = env.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        env.run()
        assert fired == []
        assert event.cancelled and not event.fired

    def test_cancel_after_fire_raises(self, env):
        event = env.schedule(1.0, lambda: None)
        env.run()
        with pytest.raises(SimulationError):
            event.cancel()

    def test_pending_count_skips_cancelled(self, env):
        keep = env.schedule(1.0, lambda: None)
        drop = env.schedule(2.0, lambda: None)
        drop.cancel()
        assert env.pending_count == 1


class TestRunUntil:
    def test_run_until_stops_at_boundary(self, env):
        fired = []
        env.schedule(1.0, lambda: fired.append(1))
        env.schedule(5.0, lambda: fired.append(5))
        env.run_until(2.0)
        assert fired == [1]
        assert env.now == 2.0
        env.run_until(6.0)
        assert fired == [1, 5]

    def test_boundary_event_fires(self, env):
        fired = []
        env.schedule(2.0, lambda: fired.append(2))
        env.run_until(2.0)
        assert fired == [2]

    def test_run_until_past_raises(self, env):
        env.run_until(5.0)
        with pytest.raises(SimulationError):
            env.run_until(1.0)

    def test_event_budget_guards_runaway(self, env):
        def reschedule():
            env.schedule(0.1, reschedule)

        env.schedule(0.1, reschedule)
        with pytest.raises(SimulationError):
            env.run(max_events=100)

    def test_event_budget_raises_never_stops_silently(self, env):
        """Regression: an exhausted budget must raise EventBudgetError (a
        SimulationError) with work still pending — a truncated run can never
        masquerade as a drained queue."""

        def reschedule():
            env.schedule(0.1, reschedule)

        env.schedule(0.1, reschedule)
        with pytest.raises(EventBudgetError, match="budget exhausted"):
            env.run(max_events=50)
        assert issubclass(EventBudgetError, SimulationError)
        assert env.pending_count > 0  # the unrun work is still visible

    def test_sufficient_budget_returns_events_fired(self, env):
        for i in range(5):
            env.schedule(float(i + 1), lambda: None)
        assert env.run(max_events=100) == 5

    def test_not_reentrant(self, env):
        def nested():
            env.run()

        env.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            env.run()


class TestStepAndPeek:
    def test_step_fires_one(self, env):
        fired = []
        env.schedule(1.0, lambda: fired.append(1))
        env.schedule(2.0, lambda: fired.append(2))
        assert env.step()
        assert fired == [1]
        assert env.peek_time() == 2.0

    def test_step_empty_returns_false(self, env):
        assert not env.step()
        assert env.peek_time() is None


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=40,
    )
)
def test_events_always_fire_in_nondecreasing_time(delays):
    env = SimulationEnvironment()
    times = []
    for delay in delays:
        env.schedule(delay, lambda: times.append(env.now))
    env.run()
    assert times == sorted(times)
    assert len(times) == len(delays)


@given(
    st.lists(
        st.one_of(
            st.tuples(
                st.just("schedule"),
                st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            ),
            st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=60)),
            st.tuples(st.just("step")),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_pending_count_matches_brute_force_scan(ops):
    """The maintained counter agrees with a full heap scan at every point.

    ``pending_count`` was an O(n) scan per read and is now a counter
    maintained on schedule/fire/cancel; this property pins the two to
    each other under randomized interleavings of all three transitions
    (including double cancels, which must not double-decrement).
    """
    env = SimulationEnvironment()
    events = []
    for op in ops:
        if op[0] == "schedule":
            events.append(env.schedule(op[1], lambda: None))
        elif op[0] == "cancel":
            if events and not events[op[1] % len(events)].fired:
                target = events[op[1] % len(events)]
                target.cancel()
                target.cancel()  # idempotent: one decrement only
        else:
            env.step()
        brute_force = sum(1 for entry in env._heap if entry.event.pending)
        assert env.pending_count == brute_force
    env.run()
    assert env.pending_count == 0

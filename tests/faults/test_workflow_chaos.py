"""End-to-end chaos: whole workflows under fault plans.

The headline property (satellite of the paper's "runs unattended" claim):
as long as every injected fault stays below the retry budgets, the
wastewater workflow's final R(t) product is *bitwise identical* to the
fault-free run — resilience changes the timeline, never the science.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import (
    InjectedFaultError,
    RetryExhaustedError,
    StateError,
)
from repro.common.retry import ResilienceConfig, RetryPolicy
from repro.common.rng import RngRegistry
from repro.emews import EmewsService, ResilientEvaluator
from repro.faults import FaultPlan, FaultSpec
from repro.workflows.wastewater_rt import run_wastewater_workflow

pytestmark = pytest.mark.chaos

#: Reduced-size wastewater configuration shared by the chaos runs below.
SMALL = dict(data_start_day=100.0, sim_days=4.0, goldstein_iterations=250, seed=11)

#: Sites safe to randomize below budget: all are absorbed by service retries
#: (a timer fault would skip a data poll and change what was ingested, and an
#: auth fault can strike outside any retry scope, so neither belongs here).
RECOVERABLE_SITES = ("transfer", "transfer.corrupt", "compute", "flows.step")


def random_plan(k: int) -> FaultPlan:
    """The k-th seeded random fault plan (moderate rates, below budgets)."""
    rng = RngRegistry([4242, k]).stream("plan")
    specs = tuple(
        FaultSpec(site=site, rate=0.02 + 0.03 * float(rng.random()))
        for site in RECOVERABLE_SITES
    )
    return FaultPlan(specs=specs, seed=1000 + k)


class TestWastewaterUnderChaos:
    @pytest.fixture(scope="class")
    def baseline(self):
        return run_wastewater_workflow(**SMALL)

    def test_fault_free_run_reports_all_zero(self, baseline):
        assert all(v == 0 for v in baseline.resilience_report.values())

    def test_final_rt_identical_under_20_random_plans(self, baseline):
        """Property: recovered faults never change the scientific output."""
        base_median = np.asarray(baseline.ensemble.median)
        total_faults = 0
        for k in range(20):
            result = run_wastewater_workflow(**SMALL, fault_plan=random_plan(k))
            report = result.resilience_report
            total_faults += report["faults_injected"]
            assert np.array_equal(
                np.asarray(result.ensemble.median), base_median
            ), f"plan {k} changed the final R(t)"
            # every injected operation fault was absorbed by some retry layer
            recoveries = (
                report["transfer_retries"]
                + report["flow_step_retries"]
                + report["compute_retries"]
            )
            assert recoveries >= report["transfer_corruptions_detected"]
        # the suite actually exercised chaos, not 20 quiet runs
        assert total_faults > 0

    def test_chaos_run_is_reproducible(self):
        """Same plan, same workflow => same fault counts and same output."""
        a = run_wastewater_workflow(**SMALL, fault_plan=random_plan(3))
        b = run_wastewater_workflow(**SMALL, fault_plan=random_plan(3))
        assert a.resilience_report == b.resilience_report
        assert np.array_equal(
            np.asarray(a.ensemble.median), np.asarray(b.ensemble.median)
        )

    def test_fault_plan_without_resilience_enables_defaults(self):
        result = run_wastewater_workflow(**SMALL, fault_plan=random_plan(0))
        assert result.resilience_report["faults_injected"] > 0

    def test_above_budget_faults_surface_as_failures(self):
        """Certain transfer faults exhaust every budget: ingestion can never
        land data, so the workflow ends with no ensemble to report."""
        plan = FaultPlan(specs=(FaultSpec(site="transfer", rate=1.0),), seed=5)
        resilience = ResilienceConfig(
            transfer_retry=RetryPolicy(max_attempts=2, base_delay=0.001),
            flow_max_retries=1,
        )
        with pytest.raises(StateError):
            run_wastewater_workflow(**SMALL, fault_plan=plan, resilience=resilience)


class TestResilientEvaluator:
    def payloads(self, n):
        return [{"point": [float(i)] * 3, "seed": i} for i in range(n)]

    def test_fault_free_passthrough(self):
        wrapper = ResilientEvaluator(lambda p: p["seed"] * 2)
        assert wrapper({"seed": 21}) == 42
        assert wrapper.counters() == {
            "evaluator_calls": 1,
            "evaluator_faults_injected": 0,
            "evaluator_retries": 0,
            "evaluator_exhaustions": 0,
        }

    def test_decisions_are_payload_keyed_not_order_keyed(self):
        """The same payloads in any order draw the same faults — this is
        what keeps threaded chaos runs reproducible."""

        def run(order):
            wrapper = ResilientEvaluator(
                lambda p: 1.0, fault_rate=0.3, fault_seed=9
            )
            for payload in order:
                wrapper(payload)
            return wrapper.counters()["evaluator_faults_injected"]

        payloads = self.payloads(40)
        forward = run(payloads)
        backward = run(list(reversed(payloads)))
        assert forward == backward
        assert forward > 0

    def test_recovers_below_budget(self):
        wrapper = ResilientEvaluator(
            lambda p: "ok",
            fault_rate=0.5,
            fault_seed=1,
            retry=RetryPolicy(max_attempts=10),
        )
        for payload in self.payloads(20):
            assert wrapper(payload) == "ok"
        counters = wrapper.counters()
        assert counters["evaluator_faults_injected"] > 0
        assert counters["evaluator_retries"] == counters["evaluator_faults_injected"]
        assert counters["evaluator_exhaustions"] == 0

    def test_certain_faults_exhaust_budget_with_typed_error(self):
        wrapper = ResilientEvaluator(
            lambda p: "ok", fault_rate=1.0, retry=RetryPolicy(max_attempts=3)
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            wrapper({"seed": 0})
        assert isinstance(excinfo.value.last_error, InjectedFaultError)
        assert wrapper.counters()["evaluator_exhaustions"] == 1

    def test_invalid_rate_rejected(self):
        with pytest.raises(Exception):
            ResilientEvaluator(lambda p: 1, fault_rate=1.5)

    def test_exhaustion_fails_the_emews_task_cleanly(self):
        """Through a real threaded pool: a budget-exhausted evaluator turns
        into a FAILED task the submitter observes as a typed StateError."""
        service = EmewsService()
        queue = service.make_queue("chaos-emews")
        wrapper = ResilientEvaluator(
            lambda p: {"v": 1}, fault_rate=1.0, retry=RetryPolicy(max_attempts=2)
        )
        service.start_local_pool("chaos", wrapper, n_workers=2, name="chaos-pool")
        futures = queue.submit_tasks("chaos", [{"i": 0}, {"i": 1}])
        with pytest.raises(StateError, match="failed"):
            for future in futures:
                future.result(timeout=10.0)
        service.finalize(queue)
        assert wrapper.counters()["evaluator_exhaustions"] == 2

"""Unit tests for retry policies, backoff, and the circuit breaker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import (
    CircuitOpenError,
    ConfigurationError,
    InjectedFaultError,
    RetryExhaustedError,
    TransientServiceError,
    ValidationError,
)
from repro.common.retry import (
    CircuitBreaker,
    ResilienceConfig,
    RetryPolicy,
    call_with_retries,
)

pytestmark = pytest.mark.chaos


class TestRetryPolicy:
    def test_exponential_schedule(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.01, multiplier=2.0)
        assert [policy.delay(a) for a in (1, 2, 3)] == [0.01, 0.02, 0.04]

    def test_max_delay_caps_backoff(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=10.0, max_delay=0.5)
        assert policy.delay(4) == 0.5

    def test_jitter_is_deterministic_per_stream(self):
        policy = RetryPolicy(base_delay=0.01, jitter=0.5)
        a = [policy.delay(1, rng=np.random.default_rng(7)) for _ in range(3)]
        b = [policy.delay(1, rng=np.random.default_rng(7)) for _ in range(3)]
        assert a[0] == b[0]
        # jitter stays within the +/- 50% envelope
        for d in a:
            assert 0.005 <= d <= 0.015

    def test_no_rng_means_exact_delay(self):
        policy = RetryPolicy(base_delay=0.01, jitter=0.9)
        assert policy.delay(1) == 0.01

    def test_retryable_is_transient_only(self):
        policy = RetryPolicy()
        assert policy.retryable(InjectedFaultError("x"))
        assert policy.retryable(TransientServiceError("x"))
        assert not policy.retryable(ValidationError("x"))
        assert not policy.retryable(RetryExhaustedError("x"))

    def test_max_retries_property(self):
        assert RetryPolicy(max_attempts=4).max_retries == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -0.1},
            {"multiplier": 0.5},
            {"base_delay": 0.2, "max_delay": 0.1},
            {"jitter": 1.0},
            {"jitter": -0.1},
            {"retry_on": ()},
        ],
    )
    def test_invalid_settings_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_invalid_attempt_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().delay(0)


class TestCallWithRetries:
    def test_recovers_below_budget(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise InjectedFaultError("transient")
            return "ok"

        retried = []
        result = call_with_retries(
            flaky,
            RetryPolicy(max_attempts=4),
            on_retry=lambda attempt, exc: retried.append(attempt),
        )
        assert result == "ok"
        assert len(calls) == 3
        assert retried == [1, 2]

    def test_exhaustion_raises_typed_error_with_cause(self):
        def always_fails():
            raise InjectedFaultError("still down")

        with pytest.raises(RetryExhaustedError) as excinfo:
            call_with_retries(always_fails, RetryPolicy(max_attempts=3))
        assert "3 attempts" in str(excinfo.value)
        assert isinstance(excinfo.value.last_error, InjectedFaultError)

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def bug():
            calls.append(1)
            raise ValidationError("a real bug")

        with pytest.raises(ValidationError):
            call_with_retries(bug, RetryPolicy(max_attempts=5))
        assert len(calls) == 1

    def test_exhaustion_is_not_itself_retryable(self):
        """No nested retry loops: the budget error is terminal."""
        assert not RetryPolicy().retryable(RetryExhaustedError("done"))


class TestCircuitBreaker:
    def make(self, clock, **kwargs):
        defaults = dict(failure_threshold=3, reset_timeout=1.0)
        defaults.update(kwargs)
        return CircuitBreaker(clock=clock, **defaults)

    def test_opens_after_threshold(self):
        breaker = self.make(lambda: 0.0)
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.rejections == 1
        with pytest.raises(CircuitOpenError):
            breaker.check()

    def test_success_resets_failure_count(self):
        breaker = self.make(lambda: 0.0)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_success_closes(self):
        now = [0.0]
        breaker = self.make(lambda: now[0])
        for _ in range(3):
            breaker.record_failure()
        now[0] = 1.5  # past the reset timeout
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_failure_reopens(self):
        now = [0.0]
        breaker = self.make(lambda: now[0])
        for _ in range(3):
            breaker.record_failure()
        now[0] = 1.5
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2

    def test_invalid_settings_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make(lambda: 0.0, failure_threshold=0)
        with pytest.raises(ConfigurationError):
            self.make(lambda: 0.0, reset_timeout=0.0)


class TestResilienceConfig:
    def test_defaults_describe(self):
        config = ResilienceConfig()
        summary = config.describe()
        assert summary["transfer_max_attempts"] == 4.0
        assert summary["compute_max_attempts"] == 4.0
        assert summary["flow_step_max_attempts"] == 3.0
        assert summary["scheduler_max_requeues"] == 2.0

    def test_policies_can_be_disabled(self):
        config = ResilienceConfig(
            transfer_retry=None, compute_retry=None, flow_step_retry=None
        )
        assert config.describe()["transfer_max_attempts"] == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"flow_max_retries": -1},
            {"flow_retry_delay": -0.1},
            {"scheduler_max_requeues": -1},
        ],
    )
    def test_invalid_settings_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(**kwargs)

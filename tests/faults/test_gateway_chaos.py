"""Gateway chaos: kill the service mid-burst, recover every submission.

The service-level analogue of the resume matrix.  A scripted
:class:`~repro.state.KillSwitch` takes the *gateway itself* down partway
through a submission burst (the kill fires on a service-journal append, so
the record that admitted the submission is already durable).  Recovery
must then complete every accepted submission with outputs bitwise
identical to standalone runs, appending zero duplicate journal records —
and per-run fault plans must compose: a run killed by a ``state.journal``
fault inside the gateway surfaces as a failed submission whose journaled
run ``repro runs resume`` finishes bitwise-identically.

Marked ``chaos``: in tier 1, deselect with ``-m 'not chaos'``.
"""

from __future__ import annotations

import json

import pytest

from repro.common.errors import WorkflowKilledError
from repro.faults import FaultPlan, FaultSpec
from repro.perf import MemoCache
from repro.service import (
    CANCELLED,
    COMPLETED,
    FAILED,
    RunGateway,
    SubmitRequest,
    TenantConfig,
)
from repro.state import JsonlRunStore, KillSwitch
from repro.workflows import WastewaterRunConfig, run_wastewater_workflow

pytestmark = pytest.mark.chaos

BURST_SEEDS = tuple(range(9100, 9108))


def small_config(seed: int) -> WastewaterRunConfig:
    return WastewaterRunConfig(sim_days=1.1, goldstein_iterations=100, seed=seed)


def ensemble_json(result) -> str:
    return json.dumps(result.ensemble.to_json(include_samples=True), sort_keys=True)


@pytest.fixture(scope="module")
def memo() -> MemoCache:
    return MemoCache()


@pytest.fixture(scope="module")
def baselines(memo):
    """Standalone per-seed outputs (warming the module's memo cache)."""
    return {
        seed: ensemble_json(run_wastewater_workflow(small_config(seed), memo_cache=memo))
        for seed in BURST_SEEDS
    }


def burst_tenants():
    return [
        TenantConfig("acme", weight=2.0, max_queued=32, max_running=2),
        TenantConfig("beta", weight=1.0, max_queued=32, max_running=2),
    ]


def journal_census(store):
    """(run_id -> record count, total) across every run in the store."""
    counts = {
        s.run_id: len(store.open_run(s.run_id).journal) for s in store.list_runs()
    }
    return counts, sum(counts.values())


class TestMidBurstGatewayKill:
    def test_recovery_completes_every_accepted_submission(
        self, tmp_path, memo, baselines
    ):
        store = JsonlRunStore(tmp_path / "runs")
        gateway = RunGateway(
            burst_tenants(),
            shards=2,
            run_store=store,
            memo_cache=memo,
            kill_switch=KillSwitch(after_records=7),
        )
        service_id = gateway.service_run_id
        seed_of = {}
        with pytest.raises(WorkflowKilledError):
            for i, seed in enumerate(BURST_SEEDS):
                tenant = ("acme", "beta")[i % 2]
                receipt = gateway.submit(
                    SubmitRequest(tenant=tenant, config=small_config(seed))
                )
                seed_of[receipt.ticket] = seed
                gateway.pump()

        # The accepted set is what the journal says, not what the dead
        # gateway's memory said: the kill can fire on the very append that
        # admitted a submission, after the record landed.
        service_journal = store.open_run(service_id).journal
        accepted = [r.key for r in service_journal.records("service.submit")]
        assert 0 < len(accepted) < len(BURST_SEEDS)
        assert store.open_run(service_id).status == "killed"
        # Submissions that went terminal before the kill carry a done
        # record; recovery resurrects exactly the rest.
        done = {
            r.key: r.payload for r in service_journal.records("service.done")
        }
        pending = [t for t in accepted if t not in done]
        assert pending, "the kill should strand at least one submission"

        recovered = RunGateway.recover(store, service_id, memo_cache=memo)
        statuses = {s.ticket: s for s in recovered.list_runs()}
        assert sorted(statuses) == sorted(pending)
        recovered.drain(max_ticks=5000)
        for ticket in pending:
            result = recovered.result(ticket)
            assert result.state == COMPLETED
            seed = seed_of[ticket]
            assert (
                json.dumps(result.output["ensemble"], sort_keys=True)
                == baselines[seed]
            )
        for payload in done.values():
            assert payload["state"] == COMPLETED
            assert store.open_run(payload["run_id"]).status == "completed"

        # Zero duplicated journal records: every (kind, key) is unique per
        # journal by construction; prove nothing re-appended by recovering
        # (and re-draining) a second time with no growth anywhere.
        census_one, total_one = journal_census(store)
        again = RunGateway.recover(store, service_id, memo_cache=memo)
        # Everything is terminal now: nothing to resurrect, nothing to run,
        # and — the idempotency claim — nothing appended anywhere.
        assert again.list_runs() == []
        assert again.drain(max_ticks=10) == 0
        census_two, total_two = journal_census(store)
        assert census_two == census_one
        assert total_two == total_one

    def test_submissions_done_before_the_kill_are_not_rerun(self, tmp_path, memo):
        store = JsonlRunStore(tmp_path / "runs")
        gateway = RunGateway(
            burst_tenants(),
            shards=2,
            run_store=store,
            memo_cache=memo,
            kill_switch=KillSwitch(after_records=30),
        )
        service_id = gateway.service_run_id
        first = gateway.submit(
            SubmitRequest(tenant="acme", config=small_config(9100))
        ).ticket
        gateway.drain(max_ticks=100)
        assert gateway.result(first).state == COMPLETED
        done_records = len(
            store.open_run(service_id).journal.records("service.done")
        )
        assert done_records == 1

        recovered = RunGateway.recover(store, service_id, memo_cache=memo)
        # The completed ticket is terminal in the journal, so recovery has
        # nothing to re-enqueue and the drain is a no-op.
        assert recovered.list_runs() == []
        assert recovered.drain(max_ticks=10) == 0


NOISY_KILL_CONFIG = WastewaterRunConfig(
    sim_days=4.0, goldstein_iterations=250, seed=17
)
NOISE_SPECS = [FaultSpec(site="transfer", at_time=1.5)]
KILL_SPECS = NOISE_SPECS + [FaultSpec(site="state.journal", at_time=2.0)]


class TestPerRunFaultsInsideGateway:
    def test_journal_fault_fails_submission_resumable_standalone(self, tmp_path):
        baseline = ensemble_json(
            run_wastewater_workflow(
                NOISY_KILL_CONFIG, fault_plan=FaultPlan(list(NOISE_SPECS))
            )
        )
        store = JsonlRunStore(tmp_path / "runs")
        gateway = RunGateway(
            [TenantConfig("acme", max_queued=8, max_running=1)],
            shards=1,
            run_store=store,
            fault_plan=FaultPlan(list(KILL_SPECS)),
        )
        ticket = gateway.submit(
            SubmitRequest(tenant="acme", config=NOISY_KILL_CONFIG)
        ).ticket
        gateway.drain(max_ticks=100)
        status = gateway.status(ticket)
        assert status.state == FAILED
        assert "killed" in status.error
        assert status.run_id is not None
        assert store.open_run(status.run_id).status == "killed"

        # Outside the gateway, the journaled run resumes to the noisy
        # baseline bitwise (the scripted kill is suppressed on resume, the
        # noise re-fires deterministically).
        resumed = run_wastewater_workflow(
            run_store=store,
            resume_from=status.run_id,
            fault_plan=FaultPlan(list(KILL_SPECS)),
        )
        assert ensemble_json(resumed) == baseline
        assert store.open_run(status.run_id).status == "completed"


class TestCliResumeOfGatewayRuns:
    def test_runs_resume_finishes_a_gateway_cancelled_run(
        self, tmp_path, memo, baselines, capsys
    ):
        from repro.cli import main

        store_dir = tmp_path / "runs"
        store = JsonlRunStore(store_dir)
        gateway = RunGateway(
            [TenantConfig("acme", max_queued=8, max_running=1)],
            shards=1,
            run_store=store,
            memo_cache=memo,
        )
        ticket = gateway.submit(
            SubmitRequest(tenant="acme", config=small_config(9101))
        ).ticket
        gateway.pump()
        resp = gateway.cancel(ticket)
        assert resp.state == CANCELLED and resp.run_id is not None
        assert store.open_run(resp.run_id).status == "killed"

        assert main(["runs", "resume", resp.run_id, "--store", str(store_dir)]) == 0
        assert "completed" in capsys.readouterr().out
        assert JsonlRunStore(store_dir).open_run(resp.run_id).status == "completed"

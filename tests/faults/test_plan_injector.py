"""Unit tests for fault plans and the injector armed on an environment."""

from __future__ import annotations

import pytest

from repro.common.errors import (
    ConfigurationError,
    InjectedFaultError,
    SimulationError,
)
from repro.faults import FaultPlan, FaultSpec
from repro.faults.plan import ACTION_SITES, KNOWN_SITES, OPERATION_SITES
from repro.sim import SimulationEnvironment

pytestmark = pytest.mark.chaos


class TestFaultSpec:
    def test_sites_partition(self):
        assert KNOWN_SITES == OPERATION_SITES | ACTION_SITES
        assert not OPERATION_SITES & ACTION_SITES

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"site": "nope", "rate": 0.5},
            {"site": "transfer"},  # inert: no rate, no at_time
            {"site": "transfer", "rate": 1.5},
            {"site": "node.crash"},  # action site without at_time
            {"site": "node.crash", "rate": 0.5, "at_time": 1.0},
            {"site": "transfer", "rate": 0.5, "max_faults": 0},
            {"site": "node.crash", "at_time": 1.0, "duration": 0.0},
            {"site": "transfer", "at_time": -1.0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultSpec(**kwargs)

    def test_scripted_flag(self):
        assert FaultSpec(site="timer", at_time=2.0).scripted
        assert not FaultSpec(site="timer", rate=0.1).scripted


class TestFaultPlan:
    def test_specs_coerced_to_tuple(self):
        plan = FaultPlan(specs=[FaultSpec(site="transfer", rate=0.1)])
        assert isinstance(plan.specs, tuple)
        assert not plan.empty

    def test_empty_plan(self):
        assert FaultPlan().empty

    def test_non_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(specs=["not a spec"])  # type: ignore[list-item]

    def test_for_site_filters_in_order(self):
        a = FaultSpec(site="transfer", rate=0.1)
        b = FaultSpec(site="compute", rate=0.2)
        c = FaultSpec(site="transfer", rate=0.3)
        assert FaultPlan(specs=(a, b, c)).for_site("transfer") == (a, c)


class TestInjector:
    def test_no_plan_means_no_injector(self):
        assert SimulationEnvironment().faults is None

    def test_only_one_plan_per_environment(self):
        env = SimulationEnvironment()
        env.install_fault_plan(FaultPlan())
        with pytest.raises(SimulationError):
            env.install_fault_plan(FaultPlan())

    def test_certain_rate_always_fires(self):
        env = SimulationEnvironment()
        faults = env.install_fault_plan(
            FaultPlan(specs=(FaultSpec(site="transfer", rate=1.0),))
        )
        for _ in range(5):
            assert isinstance(faults.poll("transfer"), InjectedFaultError)
        assert faults.counts == {"transfer": 5}
        assert faults.total_injected == 5

    def test_check_raises(self):
        env = SimulationEnvironment()
        faults = env.install_fault_plan(
            FaultPlan(specs=(FaultSpec(site="auth", rate=1.0, detail="outage"),))
        )
        with pytest.raises(InjectedFaultError, match="outage"):
            faults.check("auth", label="validate")

    def test_unlisted_site_never_fires(self):
        env = SimulationEnvironment()
        faults = env.install_fault_plan(
            FaultPlan(specs=(FaultSpec(site="transfer", rate=1.0),))
        )
        assert faults.poll("compute") is None

    def test_max_faults_budget(self):
        env = SimulationEnvironment()
        faults = env.install_fault_plan(
            FaultPlan(specs=(FaultSpec(site="compute", rate=1.0, max_faults=2),))
        )
        hits = [faults.poll("compute") for _ in range(5)]
        assert [h is not None for h in hits] == [True, True, False, False, False]

    def test_label_substring_targets_one_stream(self):
        env = SimulationEnvironment()
        faults = env.install_fault_plan(
            FaultPlan(
                specs=(
                    FaultSpec(site="transfer", rate=1.0, label_substring="stickney"),
                )
            )
        )
        assert faults.poll("transfer", label="obrien:day3") is None
        assert faults.poll("transfer", label="stickney:day3") is not None

    def test_probabilistic_sequence_is_reproducible(self):
        def decisions(seed):
            env = SimulationEnvironment()
            faults = env.install_fault_plan(
                FaultPlan(specs=(FaultSpec(site="transfer", rate=0.3),), seed=seed)
            )
            return [faults.poll("transfer") is not None for _ in range(200)]

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)
        assert any(decisions(7))
        assert not all(decisions(7))

    def test_scripted_operation_fault_arms_once_at_time(self):
        env = SimulationEnvironment()
        faults = env.install_fault_plan(
            FaultPlan(specs=(FaultSpec(site="timer", at_time=3.0),))
        )
        outcomes = []
        for day in (1.0, 2.0, 4.0, 5.0):
            env.schedule_at(day, lambda: outcomes.append(faults.poll("timer")))
        env.run()
        # armed at t=3: the first poll after that instant fails, then clean
        assert [o is not None for o in outcomes] == [False, False, True, False]

    def test_action_site_requires_registration(self):
        env = SimulationEnvironment()
        faults = env.install_fault_plan(FaultPlan())
        with pytest.raises(SimulationError):
            faults.register_target("transfer", lambda spec: True)

    def test_action_fault_delivered_to_owning_handler(self):
        env = SimulationEnvironment()
        spec = FaultSpec(site="node.crash", at_time=2.0, target="bebop")
        faults = env.install_fault_plan(FaultPlan(specs=(spec,)))
        delivered = []
        faults.register_target("node.crash", lambda s: False)  # not the owner
        faults.register_target("node.crash", lambda s: delivered.append(s) or True)
        env.run()
        assert delivered == [spec]
        assert faults.counts == {"node.crash": 1}
        assert faults.undelivered() == []

    def test_action_fault_without_owner_is_recorded(self):
        env = SimulationEnvironment()
        spec = FaultSpec(site="node.crash", at_time=2.0)
        faults = env.install_fault_plan(FaultPlan(specs=(spec,)))
        env.run()
        assert faults.undelivered() == [spec]
        assert faults.total_injected == 0

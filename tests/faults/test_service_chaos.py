"""Scripted single-fault chaos tests, one per simulated service.

Each scenario asserts both halves of the resilience contract: the service
*recovers* when a retry/requeue budget is available, and fails *cleanly with
a typed error* when the budget is exhausted.
"""

from __future__ import annotations

import pytest

from repro.common.errors import (
    AuthorizationError,
    CircuitOpenError,
    InjectedFaultError,
    NodeCrashError,
    TokenExpiredError,
    TransferCorruptionError,
    TransientServiceError,
)
from repro.common.retry import CircuitBreaker, RetryPolicy
from repro.faults import FaultPlan, FaultSpec
from repro.globus.auth import AuthService
from repro.globus.collections import StorageService
from repro.globus.compute import (
    ComputeService,
    GlobusComputeEngine,
    LoginNodeEngine,
    RetryingEngine,
    TaskStatus,
)
from repro.globus.flows import FlowsService, RunStatus
from repro.globus.timers import TimerService
from repro.globus.transfer import TransferService, TransferStatus
from repro.hpc import BatchScheduler, Cluster, JobRequest, JobState
from repro.sim import SimulationEnvironment

pytestmark = pytest.mark.chaos

RETRY = RetryPolicy(max_attempts=3, base_delay=0.001)


def make_env(*specs, seed=0):
    env = SimulationEnvironment()
    env.install_fault_plan(FaultPlan(specs=specs, seed=seed))
    return env


def make_user(env):
    auth = AuthService(env)
    identity = auth.register_identity("chaos-tester")
    token = auth.issue_token(
        identity,
        ["transfer", "compute", "flows", "timers", "aero"],
        lifetime=10_000.0,
    )
    return auth, token


class TestAuthChaos:
    def test_injected_expiry_is_typed_and_transient(self):
        env = make_env(FaultSpec(site="auth", rate=1.0, max_faults=1))
        auth, token = make_user(env)
        with pytest.raises(TokenExpiredError) as excinfo:
            auth.validate(token, "transfer")
        # doubly classified: an auth failure AND retryable
        assert isinstance(excinfo.value, AuthorizationError)
        assert isinstance(excinfo.value, TransientServiceError)
        assert RETRY.retryable(excinfo.value)
        # the fault was one-shot: the next validation succeeds
        assert auth.validate(token, "transfer").username == "chaos-tester"


class TestTransferChaos:
    def setup_transfer(self, env, auth, token, **kwargs):
        storage = StorageService(auth, env)
        transfer = TransferService(auth, storage, env, **kwargs)
        src = storage.create_collection("src", token)
        dst = storage.create_collection("dst", token)
        src.put(token, "a.txt", "payload")
        return transfer, dst

    def test_outage_recovered_under_retry(self):
        env = make_env(FaultSpec(site="transfer", at_time=0.0))
        auth, token = make_user(env)
        transfer, dst = self.setup_transfer(env, auth, token, retry=RETRY)
        task = transfer.submit(token, "src:a.txt", "dst:b.txt")
        env.run()
        assert task.status is TransferStatus.SUCCEEDED
        assert task.attempts == 2
        assert task.retries == 1
        assert transfer.retries_performed == 1
        assert dst.get_text(token, "b.txt") == "payload"

    def test_corruption_detected_and_resent(self):
        env = make_env(FaultSpec(site="transfer.corrupt", at_time=0.0))
        auth, token = make_user(env)
        transfer, dst = self.setup_transfer(env, auth, token, retry=RETRY)
        task = transfer.submit(token, "src:a.txt", "dst:b.txt")
        env.run()
        assert task.status is TransferStatus.SUCCEEDED
        assert transfer.corruptions_detected == 1
        # the retry re-sent the pristine snapshot, not the corrupted wire copy
        assert dst.get_text(token, "b.txt") == "payload"

    def test_budget_exhaustion_fails_with_typed_error(self):
        env = make_env(FaultSpec(site="transfer", rate=1.0))
        auth, token = make_user(env)
        transfer, dst = self.setup_transfer(env, auth, token, retry=RETRY)
        task = transfer.submit(token, "src:a.txt", "dst:b.txt")
        env.run()
        assert task.status is TransferStatus.FAILED
        assert task.attempts == RETRY.max_attempts
        assert isinstance(task.exception, InjectedFaultError)
        assert "3 attempt(s)" in task.error
        assert not dst.exists(token, "b.txt")

    def test_no_retry_policy_fails_on_first_fault(self):
        env = make_env(FaultSpec(site="transfer.corrupt", at_time=0.0))
        auth, token = make_user(env)
        transfer, _ = self.setup_transfer(env, auth, token)
        task = transfer.submit(token, "src:a.txt", "dst:b.txt")
        env.run()
        assert task.status is TransferStatus.FAILED
        assert isinstance(task.exception, TransferCorruptionError)

    def test_breaker_rejects_after_persistent_failure(self):
        env = make_env(FaultSpec(site="transfer", rate=1.0))
        auth, token = make_user(env)
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout=5.0, clock=lambda: env.now
        )
        transfer, _ = self.setup_transfer(env, auth, token, breaker=breaker)
        for i in range(3):
            transfer.submit(token, "src:a.txt", f"dst:b{i}.txt")
            env.run()
        with pytest.raises(CircuitOpenError):
            transfer.submit(token, "src:a.txt", "dst:late.txt")


class TestComputeChaos:
    def setup_endpoint(self, env, auth, token, *, retry=None):
        compute = ComputeService(auth, env)
        engine = LoginNodeEngine(env, max_concurrent=2)
        if retry is not None:
            engine = RetryingEngine(engine, env, retry)
        endpoint = compute.create_endpoint("login", engine)
        fid = compute.register_function(token, lambda x: x * 2, name="double")
        return endpoint, engine, fid

    def test_task_failure_recovered_under_retry(self):
        env = make_env(FaultSpec(site="compute", at_time=0.0))
        auth, token = make_user(env)
        endpoint, engine, fid = self.setup_endpoint(env, auth, token, retry=RETRY)
        future = endpoint.submit(token, fid, 21)
        env.run()
        assert future.status is TaskStatus.SUCCEEDED
        assert future.result() == 42
        assert future.attempts == 2
        assert engine.retries_performed == 1

    def test_budget_exhaustion_fails_with_typed_error(self):
        env = make_env(FaultSpec(site="compute", rate=1.0))
        auth, token = make_user(env)
        endpoint, engine, fid = self.setup_endpoint(env, auth, token, retry=RETRY)
        future = endpoint.submit(token, fid, 21)
        env.run()
        assert future.status is TaskStatus.FAILED
        assert future.attempts == RETRY.max_attempts
        assert isinstance(future.exception, InjectedFaultError)

    def test_without_retry_single_fault_fails_task(self):
        env = make_env(FaultSpec(site="compute", at_time=0.0))
        auth, token = make_user(env)
        endpoint, _, fid = self.setup_endpoint(env, auth, token)
        future = endpoint.submit(token, fid, 21)
        env.run()
        assert future.status is TaskStatus.FAILED
        assert future.attempts == 1


class TestTimerChaos:
    def test_missed_firing_skips_callback_but_keeps_phase(self):
        env = make_env(FaultSpec(site="timer", at_time=1.5))
        auth, token = make_user(env)
        timers = TimerService(auth, env)
        ticks = []
        timer = timers.create_timer(
            token, lambda: ticks.append(env.now), interval=1.0, max_firings=4
        )
        env.run()
        # t=2 firing is lost; the schedule keeps phase and the miss does not
        # consume one of the timer's max_firings slots
        assert ticks == [0.0, 1.0, 3.0, 4.0]
        assert timer.missed_firings == 1
        assert timer.firings == 4
        assert timers.total_missed_firings() == 1


class TestFlowsChaos:
    def test_step_fault_retried_within_run(self):
        # one-shot certain fault: scripted specs arm through sim events, but
        # run_flow executes synchronously before the loop runs
        env = make_env(FaultSpec(site="flows.step", rate=1.0, max_faults=1))
        auth, token = make_user(env)
        flows = FlowsService(auth, env, step_retry=RETRY)
        flow = flows.register_flow(token, "pipeline", [("work", lambda ctx: {"x": 1})])
        run = flows.run_flow(token, flow)
        assert run.status is RunStatus.SUCCEEDED
        assert run.step_log[0].attempts == 2
        assert run.step_log[0].retries == 1
        assert flows.step_retries_performed == 1

    def test_step_budget_exhaustion_fails_run(self):
        env = make_env(FaultSpec(site="flows.step", rate=1.0))
        auth, token = make_user(env)
        flows = FlowsService(auth, env, step_retry=RETRY)
        flow = flows.register_flow(token, "pipeline", [("work", lambda ctx: None)])
        run = flows.run_flow(token, flow)
        assert run.status is RunStatus.FAILED
        assert run.step_log[0].attempts == RETRY.max_attempts
        assert "InjectedFaultError" in run.error


class TestSchedulerChaos:
    def submit_job(self, sched, *, duration=2.0, walltime=10.0):
        return sched.submit(
            JobRequest(
                name="chaos-job",
                n_nodes=1,
                walltime=walltime,
                duration=duration,
                payload=lambda job: "done",
            )
        )

    def test_node_crash_mid_job_requeues_and_completes(self):
        env = make_env(FaultSpec(site="node.crash", at_time=1.0, duration=0.5))
        sched = BatchScheduler(env, Cluster("bebop", 1), max_requeues=2)
        job = self.submit_job(sched, duration=2.0)
        env.run()
        assert job.state is JobState.COMPLETED
        assert job.result == "done"
        assert job.requeues == 1
        assert sched.requeues_performed == 1
        # the crashed node was repaired and is usable again
        assert sched.cluster.n_up() == 1
        assert sched.cluster.n_free() == 1

    def test_crash_beyond_requeue_budget_fails_typed(self):
        env = make_env(FaultSpec(site="node.crash", at_time=1.0, duration=0.5))
        sched = BatchScheduler(env, Cluster("bebop", 1), max_requeues=0)
        job = self.submit_job(sched, duration=2.0)
        env.run()
        assert job.state is JobState.FAILED
        assert isinstance(job.exception, NodeCrashError)
        assert job.requeues == 0

    def test_targeted_crash_hits_named_node(self):
        env = make_env(
            FaultSpec(
                site="node.crash", at_time=1.0, target="bebop-node-0001", duration=0.5
            )
        )
        sched = BatchScheduler(env, Cluster("bebop", 2), max_requeues=1)
        env.run()
        assert env.faults.counts == {"node.crash": 1}
        assert sched.cluster.n_up() == 2  # repaired after the outage window

    def test_job_site_fault_interrupts_mid_run(self):
        env = make_env(FaultSpec(site="job", rate=1.0, max_faults=1))
        sched = BatchScheduler(env, Cluster("bebop", 1), max_requeues=1)
        job = self.submit_job(sched, duration=2.0)
        env.run()
        assert job.state is JobState.COMPLETED
        assert job.requeues == 1

"""Chaos reconciliation: telemetry counters vs the structured event log.

Across the same 20 seeded random fault plans the workflow chaos suite
uses, the counters and the event stream must reconcile *exactly*:

* gateway side — admissions with ``run.admit``, queue-full rejections
  with ``run.reject``, cancels/failures/completions with ``run.finish``,
  dispatches with ``run.dispatch``;
* workflow side — injected faults with ``fault.inject`` and transfer
  retries with ``retry.attempt`` (outcome ``retried``).

The counters and the events are written at the same sites but through
different machinery — agreement means neither path drops or double-counts
under fault pressure.

Marked ``chaos``: in tier 1, deselect with ``-m 'not chaos'``.
"""

from __future__ import annotations

import pytest

from repro.common.errors import QueueFullError
from repro.common.retry import ResilienceConfig
from repro.common.rng import RngRegistry
from repro.faults import FaultPlan, FaultSpec
from repro.obs import Observability
from repro.perf import MemoCache
from repro.service import RunGateway, SubmitRequest, TenantConfig
from repro.workflows import WastewaterRunConfig, run_wastewater_workflow

pytestmark = pytest.mark.chaos

#: Sites whose faults a configured retry/requeue budget absorbs.
RECOVERABLE_SITES = ("transfer", "transfer.corrupt", "compute", "flows.step")

BURST_SEEDS = (9300, 9301, 9302, 9303)


def random_plan(k: int) -> FaultPlan:
    """The k-th seeded random fault plan (same family as workflow chaos)."""
    rng = RngRegistry([4242, k]).stream("plan")
    specs = tuple(
        FaultSpec(site=site, rate=0.02 + 0.03 * float(rng.random()))
        for site in RECOVERABLE_SITES
    )
    return FaultPlan(specs=specs, seed=1000 + k)


def small_config(seed: int) -> WastewaterRunConfig:
    return WastewaterRunConfig(sim_days=1.1, goldstein_iterations=100, seed=seed)


@pytest.fixture(scope="module")
def memo() -> MemoCache:
    cache = MemoCache()
    for seed in BURST_SEEDS:
        run_wastewater_workflow(small_config(seed), memo_cache=cache)
    return cache


def faulted_burst(memo, k: int):
    """One small gateway burst under plan k, with queue pressure + a cancel."""
    obs = Observability()
    gw = RunGateway(
        [
            TenantConfig("acme", weight=2.0, max_queued=2, max_running=1),
            TenantConfig("beta", weight=1.0, max_queued=2, max_running=1),
        ],
        shards=2,
        memo_cache=memo,
        fault_plan=random_plan(k),
        resilience=ResilienceConfig(),
        observability=obs,
    )
    tickets = []
    queue_full = 0
    for i, seed in enumerate(BURST_SEEDS):
        tenant = ("acme", "beta")[i % 2]
        try:
            tickets.append(
                gw.submit(SubmitRequest(tenant=tenant, config=small_config(seed)))
            )
        except QueueFullError:
            queue_full += 1
    # Overfill acme's queue so at least one rejection is guaranteed.
    for seed in (9304, 9305):
        try:
            gw.submit(SubmitRequest(tenant="acme", config=small_config(seed)))
        except QueueFullError:
            queue_full += 1
    gw.cancel(tickets[-1].ticket)
    gw.drain(max_ticks=2000)
    gw.close()
    assert queue_full > 0, "burst should provoke queue-full backpressure"
    return obs


def reconcile_gateway(obs):
    """Assert counter/event agreement on one finished gateway's telemetry."""
    view = obs.service_view()
    by_kind = {}
    for event in obs.events.events:
        by_kind.setdefault(event.kind, []).append(event)

    admits = by_kind.get("run.admit", [])
    rejects = by_kind.get("run.reject", [])
    finishes = by_kind.get("run.finish", [])
    assert view["admitted"] == len(admits)
    assert view["queue_rejects"] == len(
        [e for e in rejects if e.attrs["reason"] == "queue-full"]
    )
    assert view["admission_rejects"] == len(
        [e for e in rejects if e.attrs["reason"] != "queue-full"]
    )
    assert view["started"] == len(by_kind.get("run.dispatch", []))
    for state in ("completed", "cancelled", "failed"):
        assert view[state] == len(
            [e for e in finishes if e.attrs["state"] == state]
        ), state
    # Every admitted submission reached exactly one terminal event.
    assert len(finishes) == len(admits)
    assert sorted(e.key for e in finishes) == sorted(e.key for e in admits)
    # Gang machinery is off in this burst; the log must not claim otherwise.
    assert "gang.form" not in by_kind and "gang.flush" not in by_kind


def reconcile_workflow(k: int):
    """One cold faulted standalone run; injector/retry events vs counters."""
    obs = Observability()
    result = run_wastewater_workflow(
        small_config(9310), fault_plan=random_plan(k), observability=obs
    )
    report = result.resilience_report
    events = obs.events.events
    faults = [e for e in events if e.kind == "fault.inject"]
    assert len(faults) == report["faults_injected"]
    assert {e.attrs["site"] for e in faults} <= set(RECOVERABLE_SITES)
    transfer_retries = [
        e
        for e in events
        if e.kind == "retry.attempt" and e.attrs["outcome"] == "retried"
    ]
    assert len(transfer_retries) == report["transfer_retries"]
    return len(faults)


class TestCounterEventReconciliation:
    def test_20_random_plans_reconcile_exactly(self, memo):
        total_faults = 0
        for k in range(20):
            reconcile_gateway(faulted_burst(memo, k))
            total_faults += reconcile_workflow(k)
        # The suite as a whole must actually exercise fault pressure.
        assert total_faults > 0

    def test_reconciled_burst_is_deterministic_per_plan(self, memo):
        first = faulted_burst(memo, 3)
        second = faulted_burst(memo, 3)
        assert first.events.to_jsonl() == second.events.to_jsonl()
        assert first.service_view() == second.service_view()

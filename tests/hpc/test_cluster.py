"""Tests for cluster allocation invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import SchedulingError, ValidationError
from repro.hpc import Cluster


class TestCluster:
    def test_construction(self):
        cluster = Cluster("c", 4, cores_per_node=16)
        assert cluster.n_nodes == 4
        assert cluster.cores_per_node == 16
        assert cluster.total_cores == 64
        assert cluster.n_free() == 4

    def test_allocate_release(self):
        cluster = Cluster("c", 4)
        nodes = cluster.allocate("job-1", 2)
        assert len(nodes) == 2
        assert cluster.n_free() == 2
        assert cluster.holder_map() == {"job-1": 2}
        assert cluster.release("job-1") == 2
        assert cluster.n_free() == 4

    def test_over_allocation_rejected(self):
        cluster = Cluster("c", 2)
        cluster.allocate("a", 2)
        with pytest.raises(SchedulingError):
            cluster.allocate("b", 1)

    def test_release_without_allocation_rejected(self):
        cluster = Cluster("c", 2)
        with pytest.raises(SchedulingError):
            cluster.release("ghost")

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValidationError):
            Cluster("c", 0)
        cluster = Cluster("c", 1)
        with pytest.raises(ValidationError):
            cluster.allocate("a", 0)

    @given(st.lists(st.integers(min_value=1, max_value=4), max_size=20))
    def test_no_double_allocation_under_random_workload(self, requests):
        """Nodes are never double-allocated, free+held == total always."""
        cluster = Cluster("c", 8)
        held = {}
        for i, n in enumerate(requests):
            job = f"job-{i}"
            if cluster.n_free() >= n:
                cluster.allocate(job, n)
                held[job] = n
            elif held:
                # free the oldest job and retry
                oldest = next(iter(held))
                cluster.release(oldest)
                del held[oldest]
            assert cluster.n_free() + sum(held.values()) == 8
            assert cluster.holder_map() == held

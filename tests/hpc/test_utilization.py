"""Tests for utilization accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import StateError, ValidationError
from repro.hpc import UtilizationTracker


class TestTracker:
    def test_basic_integration(self):
        tracker = UtilizationTracker(2)
        tracker.add_interval(0.0, 1.0, 2)
        tracker.add_interval(1.0, 2.0, 1)
        assert tracker.busy_unit_time() == pytest.approx(3.0)
        assert tracker.utilization() == pytest.approx(3.0 / 4.0)

    def test_begin_end(self):
        tracker = UtilizationTracker(4)
        tracker.begin("a", 0.0, 2)
        tracker.end("a", 2.0)
        assert tracker.busy_unit_time() == pytest.approx(4.0)
        assert tracker.interval_count == 1

    def test_double_begin_rejected(self):
        tracker = UtilizationTracker(4)
        tracker.begin("a", 0.0, 1)
        with pytest.raises(StateError):
            tracker.begin("a", 1.0, 1)

    def test_end_without_begin_rejected(self):
        tracker = UtilizationTracker(4)
        with pytest.raises(StateError):
            tracker.end("a", 1.0)

    def test_units_beyond_capacity_rejected(self):
        tracker = UtilizationTracker(2)
        with pytest.raises(ValidationError):
            tracker.begin("a", 0.0, 3)

    def test_windowed_utilization(self):
        tracker = UtilizationTracker(1)
        tracker.add_interval(0.0, 4.0, 1)
        assert tracker.utilization(1.0, 3.0) == pytest.approx(1.0)
        assert tracker.utilization(3.0, 5.0) == pytest.approx(0.5)

    def test_empty_tracker(self):
        tracker = UtilizationTracker(2)
        assert tracker.busy_unit_time() == 0.0
        assert tracker.utilization() == 0.0
        with pytest.raises(StateError):
            tracker.span()

    def test_span(self):
        tracker = UtilizationTracker(2)
        tracker.add_interval(1.0, 2.0, 1)
        tracker.add_interval(3.0, 5.0, 1)
        assert tracker.span() == (1.0, 5.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=10),
                st.floats(min_value=0, max_value=5),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_single_unit_utilization_never_exceeds_one(self, intervals):
        """With capacity == concurrent units, utilization <= 1."""
        tracker = UtilizationTracker(len(intervals))
        for i, (start, length) in enumerate(intervals):
            tracker.add_interval(start, start + length, 1)
        assert 0.0 <= tracker.utilization() <= 1.0 + 1e-9

"""Tests for the batch scheduler."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import SchedulingError, StateError, ValidationError
from repro.hpc import BatchScheduler, Cluster, JobRequest, JobState
from repro.sim import SimulationEnvironment


@pytest.fixture
def sched(env):
    return BatchScheduler(env, Cluster("test", 4))


def request(name="j", nodes=1, walltime=10.0, duration=1.0, payload=None):
    return JobRequest(
        name=name, n_nodes=nodes, walltime=walltime, payload=payload, duration=duration
    )


class TestLifecycle:
    def test_job_runs_and_completes(self, sched, env):
        ran = []
        job = sched.submit(request(payload=lambda j: ran.append(env.now) or "out"))
        assert job.state is JobState.PENDING
        env.run()
        assert ran == [0.0]
        assert job.state is JobState.COMPLETED
        assert job.result == "out"
        assert job.completed_at == 1.0
        assert job.queue_wait == 0.0

    def test_queueing_when_full(self, sched, env):
        jobs = [sched.submit(request(name=f"j{i}", nodes=2, duration=1.0)) for i in range(4)]
        env.run()
        starts = [j.started_at for j in jobs]
        assert starts == [0.0, 0.0, 1.0, 1.0]

    def test_walltime_timeout(self, sched, env):
        job = sched.submit(request(walltime=0.5, duration=2.0))
        env.run()
        assert job.state is JobState.TIMEOUT
        assert job.completed_at == 0.5

    def test_payload_exception_fails_job(self, sched, env):
        def boom(job):
            raise RuntimeError("crash")

        job = sched.submit(request(payload=boom))
        env.run()
        assert job.state is JobState.FAILED
        assert "crash" in job.error
        # nodes were released
        assert sched.cluster.n_free() == 4

    def test_oversized_request_rejected(self, sched):
        with pytest.raises(SchedulingError):
            sched.submit(request(nodes=5))

    def test_cancel_pending(self, sched, env):
        blocker = sched.submit(request(nodes=4, duration=5.0))
        victim = sched.submit(request(nodes=1))
        env.run_until(1.0)
        sched.cancel(victim)
        assert victim.state is JobState.CANCELLED
        env.run()
        assert blocker.state is JobState.COMPLETED

    def test_cannot_cancel_running(self, sched, env):
        job = sched.submit(request(duration=5.0))
        env.run_until(1.0)
        with pytest.raises(StateError):
            sched.cancel(job)

    def test_service_job_runs_until_completed(self, sched, env):
        job = sched.submit(request(duration=None, walltime=100.0))
        env.run_until(5.0)
        assert job.state is JobState.RUNNING
        job.complete(result="stopped")
        env.run_until(6.0)
        assert job.state is JobState.COMPLETED
        assert job.result == "stopped"

    def test_service_job_hits_walltime(self, sched, env):
        job = sched.submit(request(duration=None, walltime=2.0))
        env.run()
        assert job.state is JobState.TIMEOUT

    def test_on_complete_callbacks(self, sched, env):
        seen = []
        job = sched.submit(request())
        job.on_complete.append(lambda j: seen.append(j.state))
        env.run()
        assert seen == [JobState.COMPLETED]

    def test_duration_callable(self, sched, env):
        job = sched.submit(request(duration=lambda j: 0.25))
        env.run()
        assert job.completed_at == 0.25


class TestBackfill:
    def test_backfill_lets_small_job_jump(self, env):
        sched = BatchScheduler(env, Cluster("c", 4), backfill=True)
        running = sched.submit(request(nodes=3, duration=2.0))
        big = sched.submit(request(nodes=4, duration=1.0))  # blocked
        small = sched.submit(request(nodes=1, duration=0.5))
        env.run()
        assert small.started_at == 0.0  # jumped the blocked big job
        assert big.started_at == 2.0

    def test_strict_fifo_blocks(self, env):
        sched = BatchScheduler(env, Cluster("c", 4), backfill=False)
        sched.submit(request(nodes=3, duration=2.0))
        big = sched.submit(request(nodes=4, duration=1.0))
        small = sched.submit(request(nodes=1, duration=0.5))
        env.run()
        assert big.started_at == 2.0
        assert small.started_at == 3.0  # waited behind the big job


class TestAccounting:
    def test_utilization_exact(self, env):
        sched = BatchScheduler(env, Cluster("c", 2))
        sched.submit(request(nodes=2, duration=1.0))
        sched.submit(request(nodes=1, duration=2.0))
        env.run()
        # busy node-days: 2*1 + 1*2 = 4 over 2 nodes * 3 days = 6
        assert sched.tracker.busy_unit_time() == pytest.approx(4.0)
        assert sched.tracker.utilization() == pytest.approx(4.0 / 6.0)

    def test_job_stats(self, sched, env):
        sched.submit(request(duration=1.0))
        sched.submit(request(duration=3.0))
        env.run()
        stats = sched.job_stats()
        assert stats["n_jobs"] == 2
        assert stats["n_finished"] == 2
        assert stats["mean_runtime"] == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            JobRequest(name="x", n_nodes=0, walltime=1.0)
        with pytest.raises(ValidationError):
            JobRequest(name="x", n_nodes=1, walltime=0.0)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=4),  # nodes
            st.floats(min_value=0.01, max_value=3.0),  # duration
            st.floats(min_value=0.0, max_value=2.0),  # submit delay
        ),
        min_size=1,
        max_size=15,
    )
)
def test_scheduler_invariants_random_workload(jobs):
    """All jobs finish; nodes are never oversubscribed; waits non-negative."""
    env = SimulationEnvironment()
    cluster = Cluster("c", 4)
    sched = BatchScheduler(env, cluster)
    submitted = []

    def submit_one(nodes, duration):
        submitted.append(
            sched.submit(JobRequest(name="r", n_nodes=nodes, walltime=100.0, duration=duration))
        )

    clock = 0.0
    for nodes, duration, delay in jobs:
        clock += delay
        env.schedule_at(clock, lambda n=nodes, d=duration: submit_one(n, d))
    env.run()
    assert len(submitted) == len(jobs)
    for job in submitted:
        assert job.state is JobState.COMPLETED
        assert job.queue_wait >= 0
    assert cluster.n_free() == 4
    assert sched.tracker.utilization() <= 1.0 + 1e-9


class TestJobListing:
    def test_all_jobs_submission_order_without_resort(self, sched, env):
        """``all_jobs`` relies on zero-padded ids making insertion order
        the sorted order — pin both halves of that claim."""
        jobs = [
            sched.submit(request(name=f"j{i}", duration=0.5)) for i in range(25)
        ]
        listed = sched.all_jobs()
        assert listed == jobs
        assert [j.job_id for j in listed] == sorted(j.job_id for j in listed)
        env.run()
        # Listing is stable across state transitions: completion must not
        # reorder (the index is append-only).
        assert sched.all_jobs() == jobs

    def test_all_jobs_interleaved_with_completions(self, sched, env):
        first = [sched.submit(request(name=f"a{i}", duration=0.1)) for i in range(4)]
        env.run()
        second = [sched.submit(request(name=f"b{i}", duration=0.1)) for i in range(4)]
        assert sched.all_jobs() == first + second

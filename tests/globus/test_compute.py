"""Tests for the simulated Globus Compute service."""

from __future__ import annotations

import pytest

from repro.common.errors import NotFoundError, StateError, ValidationError
from repro.globus.compute import (
    ComputeService,
    GlobusComputeEngine,
    LoginNodeEngine,
    TaskStatus,
    simulated_cost,
    task_cost,
)
from repro.hpc import BatchScheduler, Cluster


@pytest.fixture
def compute(auth, env):
    return ComputeService(auth, env)


@pytest.fixture
def login_endpoint(compute, env):
    return compute.create_endpoint("login", LoginNodeEngine(env, max_concurrent=2))


@pytest.fixture
def batch_endpoint(compute, env):
    cluster = Cluster("bebop", 2)
    scheduler = BatchScheduler(env, cluster)
    endpoint = compute.create_endpoint(
        "batch", GlobusComputeEngine(scheduler, walltime=1.0)
    )
    return endpoint, scheduler


class TestRegistry:
    def test_register_and_name(self, compute, user):
        _, token = user

        def my_fn():
            return 1

        fid = compute.register_function(token, my_fn)
        assert compute.get_function_name(fid) == "my_fn"

    def test_unknown_function(self, compute):
        with pytest.raises(NotFoundError):
            compute.get_function_name("fn-999999")

    def test_non_callable_rejected(self, compute, user):
        _, token = user
        with pytest.raises(ValidationError):
            compute.register_function(token, 42)  # type: ignore[arg-type]

    def test_duplicate_endpoint_rejected(self, compute, env):
        compute.create_endpoint("e", LoginNodeEngine(env))
        with pytest.raises(ValidationError):
            compute.create_endpoint("e", LoginNodeEngine(env))

    def test_get_endpoint(self, compute, env):
        endpoint = compute.create_endpoint("e2", LoginNodeEngine(env))
        assert compute.get_endpoint("e2") is endpoint
        with pytest.raises(NotFoundError):
            compute.get_endpoint("ghost")


class TestSimulatedCost:
    def test_fixed_cost(self):
        @simulated_cost(0.25)
        def fn():
            return None

        assert task_cost(fn, (), {}) == 0.25

    def test_callable_cost(self):
        @simulated_cost(lambda n: n * 0.1)
        def fn(n):
            return n

        assert task_cost(fn, (3,), {}) == pytest.approx(0.3)

    def test_default_cost_positive(self):
        def fn():
            return None

        assert task_cost(fn, (), {}) > 0

    def test_negative_cost_rejected(self):
        @simulated_cost(-1.0)
        def fn():
            return None

        with pytest.raises(ValidationError):
            task_cost(fn, (), {})


class TestLoginNodeEngine:
    def test_executes_and_returns(self, compute, login_endpoint, user, env):
        _, token = user
        fid = compute.register_function(token, lambda x: x + 1)
        future = login_endpoint.submit(token, fid, 41)
        env.run()
        assert future.status is TaskStatus.SUCCEEDED
        assert future.result() == 42

    def test_concurrency_bounded(self, compute, login_endpoint, user, env):
        _, token = user

        @simulated_cost(1.0)
        def slow():
            return "done"

        fid = compute.register_function(token, slow)
        futures = [login_endpoint.submit(token, fid) for _ in range(4)]
        env.run()
        # 4 tasks, 2 slots, 1 day each -> finish at t=1 (x2) and t=2 (x2).
        finish_times = sorted(f.completed_at for f in futures)
        assert finish_times == [1.0, 1.0, 2.0, 2.0]

    def test_failure_captured(self, compute, login_endpoint, user, env):
        _, token = user

        def boom():
            raise RuntimeError("kaput")

        fid = compute.register_function(token, boom)
        future = login_endpoint.submit(token, fid)
        env.run()
        assert future.status is TaskStatus.FAILED
        assert "kaput" in future.error
        with pytest.raises(StateError):
            future.result()

    def test_result_before_completion_raises(self, compute, login_endpoint, user):
        _, token = user
        fid = compute.register_function(token, lambda: 1)
        future = login_endpoint.submit(token, fid)
        with pytest.raises(StateError):
            future.result()


class TestGlobusComputeEngine:
    def test_task_becomes_scheduler_job(self, compute, batch_endpoint, user, env):
        endpoint, scheduler = batch_endpoint
        _, token = user
        fid = compute.register_function(token, lambda x: x * 2)
        future = endpoint.submit(token, fid, 5)
        env.run()
        assert future.result() == 10
        jobs = scheduler.all_jobs()
        assert len(jobs) == 1
        assert jobs[0].request.name.startswith("globus-compute:")

    def test_tasks_queue_when_cluster_full(self, compute, batch_endpoint, user, env):
        endpoint, scheduler = batch_endpoint  # 2 nodes
        _, token = user

        @simulated_cost(0.5)
        def slow(i):
            return i

        fid = compute.register_function(token, slow)
        futures = [endpoint.submit(token, fid, i) for i in range(4)]
        env.run()
        finish = sorted(f.completed_at for f in futures)
        assert finish == [0.5, 0.5, 1.0, 1.0]
        stats = scheduler.job_stats()
        assert stats["max_queue_wait"] == pytest.approx(0.5)

    def test_walltime_kills_task(self, compute, user, env):
        cluster = Cluster("tiny", 1)
        scheduler = BatchScheduler(env, cluster)
        service = compute  # reuse
        endpoint = service.create_endpoint(
            "strict", GlobusComputeEngine(scheduler, walltime=0.1)
        )
        _, token = user

        @simulated_cost(5.0)
        def too_slow():
            return "never seen"

        fid = service.register_function(token, too_slow)
        future = endpoint.submit(token, fid)
        env.run()
        assert future.status is TaskStatus.FAILED
        assert "walltime" in future.error

    def test_function_exception_fails_task(self, compute, batch_endpoint, user, env):
        endpoint, _ = batch_endpoint
        _, token = user

        def boom():
            raise ValueError("nope")

        fid = compute.register_function(token, boom)
        future = endpoint.submit(token, fid)
        env.run()
        assert future.status is TaskStatus.FAILED
        assert "nope" in future.error


class TestCallbacksAndCounts:
    def test_done_callback(self, compute, login_endpoint, user, env):
        _, token = user
        fid = compute.register_function(token, lambda: "x")
        future = login_endpoint.submit(token, fid)
        seen = []
        future.add_done_callback(lambda f: seen.append(f.result()))
        env.run()
        assert seen == ["x"]
        # registering after completion fires immediately
        future.add_done_callback(lambda f: seen.append("again"))
        assert seen == ["x", "again"]

    def test_task_counts(self, compute, login_endpoint, user, env):
        _, token = user
        fid = compute.register_function(token, lambda: 1)
        login_endpoint.submit(token, fid)
        login_endpoint.submit(token, fid)
        assert compute.task_counts() == {"login": 2}

"""Tests for the simulated Globus Auth service."""

from __future__ import annotations

import pytest

from repro.common.errors import AuthorizationError, NotFoundError, ValidationError
from repro.globus.auth import AuthService


class TestIdentities:
    def test_register_and_lookup(self, auth):
        ident = auth.register_identity("alice", "Alice A.")
        assert auth.get_identity(ident.identity_id) == ident
        assert auth.find_identity("alice") == ident

    def test_duplicate_username_rejected(self, auth):
        auth.register_identity("alice")
        with pytest.raises(ValidationError):
            auth.register_identity("alice")

    def test_unknown_lookups_raise(self, auth):
        with pytest.raises(NotFoundError):
            auth.get_identity("identity-999999")
        with pytest.raises(NotFoundError):
            auth.find_identity("nobody")

    def test_empty_username_rejected(self, auth):
        with pytest.raises(ValidationError):
            auth.register_identity("")


class TestTokens:
    def test_issue_and_validate(self, auth):
        ident = auth.register_identity("alice")
        token = auth.issue_token(ident, ["transfer"])
        assert auth.validate(token, "transfer") == ident

    def test_scope_enforced(self, auth):
        ident = auth.register_identity("alice")
        token = auth.issue_token(ident, ["transfer"])
        with pytest.raises(AuthorizationError):
            auth.validate(token, "compute")

    def test_unknown_scope_rejected_at_issue(self, auth):
        ident = auth.register_identity("alice")
        with pytest.raises(ValidationError):
            auth.issue_token(ident, ["root-access"])

    def test_empty_scopes_rejected(self, auth):
        ident = auth.register_identity("alice")
        with pytest.raises(ValidationError):
            auth.issue_token(ident, [])

    def test_expiry_on_simulated_clock(self, env, auth):
        ident = auth.register_identity("alice")
        token = auth.issue_token(ident, ["transfer"], lifetime=1.0)
        auth.validate(token, "transfer")
        env.run_until(2.0)
        with pytest.raises(AuthorizationError):
            auth.validate(token, "transfer")

    def test_refresh_restores_access(self, env, auth):
        ident = auth.register_identity("alice")
        token = auth.issue_token(ident, ["transfer"], lifetime=1.0)
        env.run_until(2.0)
        fresh = auth.refresh(token)
        assert auth.validate(fresh, "transfer") == ident

    def test_revoked_token_fails(self, auth):
        ident = auth.register_identity("alice")
        token = auth.issue_token(ident, ["transfer"])
        auth.revoke(token)
        with pytest.raises(AuthorizationError):
            auth.validate(token, "transfer")

    def test_forged_token_fails(self, auth):
        from repro.globus.auth import Token

        forged = Token(
            secret="deadbeef",
            identity_id="identity-000001",
            scopes=frozenset({"transfer"}),
            issued_at=0.0,
            expires_at=100.0,
        )
        with pytest.raises(AuthorizationError):
            auth.validate(forged, "transfer")

    def test_nonpositive_lifetime_rejected(self, auth):
        ident = auth.register_identity("alice")
        with pytest.raises(ValidationError):
            auth.issue_token(ident, ["transfer"], lifetime=0.0)

    def test_has_scope(self, auth):
        ident = auth.register_identity("alice")
        token = auth.issue_token(ident, ["transfer", "compute"])
        assert token.has_scope("compute")
        assert not token.has_scope("flows")

"""Tests for storage collections and permissions."""

from __future__ import annotations

import pytest

from repro.common.errors import AuthorizationError, NotFoundError, ValidationError
from repro.globus.collections import Permission


@pytest.fixture
def owned_collection(auth, storage, user):
    identity, token = user
    return storage.create_collection("eagle", token), token


class TestBasicIO:
    def test_put_get_roundtrip(self, owned_collection):
        collection, token = owned_collection
        collection.put(token, "a/b.txt", "hello")
        assert collection.get_text(token, "a/b.txt") == "hello"

    def test_stat_records_metadata(self, env, owned_collection):
        collection, token = owned_collection
        env.run_until(3.0)
        record = collection.put(token, "x", b"12345")
        assert record.size == 5
        assert record.modified_at == 3.0
        assert record.checksum == collection.stat(token, "x").checksum

    def test_missing_path_raises(self, owned_collection):
        collection, token = owned_collection
        with pytest.raises(NotFoundError):
            collection.get(token, "nope")

    def test_overwrite_replaces(self, owned_collection):
        collection, token = owned_collection
        collection.put(token, "x", "one")
        collection.put(token, "x", "two")
        assert collection.get_text(token, "x") == "two"

    def test_delete(self, owned_collection):
        collection, token = owned_collection
        collection.put(token, "x", "one")
        collection.delete(token, "x")
        assert not collection.exists(token, "x")
        with pytest.raises(NotFoundError):
            collection.delete(token, "x")

    def test_ls_glob(self, owned_collection):
        collection, token = owned_collection
        collection.put(token, "raw/a.csv", "1")
        collection.put(token, "raw/b.csv", "2")
        collection.put(token, "out/c.txt", "3")
        assert [r.path for r in collection.ls(token, "raw/*")] == [
            "raw/a.csv",
            "raw/b.csv",
        ]

    def test_total_bytes(self, owned_collection):
        collection, token = owned_collection
        collection.put(token, "a", b"123")
        collection.put(token, "b", b"4567")
        assert collection.total_bytes == 7


class TestPaths:
    @pytest.mark.parametrize("bad", ["", "/abs", "a/../b", ".."])
    def test_invalid_paths_rejected(self, owned_collection, bad):
        collection, token = owned_collection
        with pytest.raises(ValidationError):
            collection.put(token, bad, "x")

    def test_paths_normalized(self, owned_collection):
        collection, token = owned_collection
        collection.put(token, "a//b/./c", "x")
        assert collection.exists(token, "a/b/c")


class TestPermissions:
    def test_stranger_denied(self, auth, owned_collection):
        collection, _ = owned_collection
        stranger = auth.register_identity("mallory")
        stranger_token = auth.issue_token(stranger, ["transfer"])
        with pytest.raises(AuthorizationError):
            collection.get(stranger_token, "x")

    def test_read_grant_allows_read_not_write(self, auth, owned_collection):
        collection, owner_token = owned_collection
        collection.put(owner_token, "x", "data")
        reader = auth.register_identity("bob")
        reader_token = auth.issue_token(reader, ["transfer"])
        collection.grant(owner_token, reader, Permission.READ)
        assert collection.get_text(reader_token, "x") == "data"
        with pytest.raises(AuthorizationError):
            collection.put(reader_token, "y", "nope")

    def test_write_grant_allows_both(self, auth, owned_collection):
        collection, owner_token = owned_collection
        writer = auth.register_identity("carol")
        writer_token = auth.issue_token(writer, ["transfer"])
        collection.grant(owner_token, writer, Permission.WRITE)
        collection.put(writer_token, "y", "yes")
        assert collection.get_text(writer_token, "y") == "yes"

    def test_only_owner_can_grant(self, auth, owned_collection):
        collection, owner_token = owned_collection
        other = auth.register_identity("dave")
        other_token = auth.issue_token(other, ["transfer"])
        with pytest.raises(AuthorizationError):
            collection.grant(other_token, other, Permission.WRITE)

    def test_permissions_for(self, auth, owned_collection):
        collection, owner_token = owned_collection
        other = auth.register_identity("erin")
        assert collection.permissions_for(other) is None
        collection.grant(owner_token, other, Permission.READ)
        assert collection.permissions_for(other) is Permission.READ


class TestStorageService:
    def test_duplicate_name_rejected(self, storage, user):
        _, token = user
        storage.create_collection("c1", token)
        with pytest.raises(ValidationError):
            storage.create_collection("c1", token)

    def test_invalid_name_rejected(self, storage, user):
        _, token = user
        with pytest.raises(ValidationError):
            storage.create_collection("has:colon", token)

    def test_resolve_uri(self, storage, user):
        _, token = user
        collection = storage.create_collection("c2", token)
        resolved, path = storage.resolve_uri("c2:a/b")
        assert resolved is collection
        assert path == "a/b"
        assert storage.make_uri(collection, "a//b") == "c2:a/b"

    def test_malformed_uri(self, storage):
        with pytest.raises(ValidationError):
            storage.resolve_uri("no-colon-here")

    def test_unknown_collection(self, storage):
        with pytest.raises(NotFoundError):
            storage.get_collection("ghost")

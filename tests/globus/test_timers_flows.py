"""Tests for the timer and flows services."""

from __future__ import annotations

import pytest

from repro.common.errors import StateError, ValidationError
from repro.globus.flows import FlowsService, RunStatus
from repro.globus.timers import TimerService


@pytest.fixture
def timers(auth, env):
    return TimerService(auth, env)


@pytest.fixture
def flows(auth, env):
    return FlowsService(auth, env)


class TestTimers:
    def test_periodic_firing(self, timers, user, env):
        _, token = user
        ticks = []
        timers.create_timer(token, lambda: ticks.append(env.now), interval=1.0, max_firings=4)
        env.run()
        assert ticks == [0.0, 1.0, 2.0, 3.0]

    def test_start_delay(self, timers, user, env):
        _, token = user
        ticks = []
        timers.create_timer(
            token, lambda: ticks.append(env.now), interval=2.0, start_delay=1.5, max_firings=2
        )
        env.run()
        assert ticks == [1.5, 3.5]

    def test_cancel_stops_firing(self, timers, user, env):
        _, token = user
        ticks = []
        timer = timers.create_timer(token, lambda: ticks.append(env.now), interval=1.0)
        env.run_until(2.5)
        timer.cancel()
        env.run_until(10.0)
        assert len(ticks) == 3  # t=0, 1, 2
        assert not timer.active

    def test_unbounded_timer_keeps_firing(self, timers, user, env):
        _, token = user
        ticks = []
        timers.create_timer(token, lambda: ticks.append(1), interval=1.0)
        env.run_until(9.5)
        assert len(ticks) == 10

    def test_fire_now_counts_and_requires_active(self, timers, user, env):
        _, token = user
        ticks = []
        timer = timers.create_timer(token, lambda: ticks.append(1), interval=5.0, max_firings=1)
        timer.fire_now()
        assert ticks == [1]
        env.run()
        timer.cancel() if timer.active else None
        with pytest.raises(StateError):
            timer.fire_now()

    def test_validation(self, timers, user):
        _, token = user
        with pytest.raises(ValidationError):
            timers.create_timer(token, lambda: None, interval=0.0)
        with pytest.raises(ValidationError):
            timers.create_timer(token, lambda: None, interval=1.0, start_delay=-1.0)
        with pytest.raises(ValidationError):
            timers.create_timer(token, lambda: None, interval=1.0, max_firings=0)

    def test_cancel_all(self, timers, user, env):
        _, token = user
        for _ in range(3):
            timers.create_timer(token, lambda: None, interval=1.0)
        assert len(timers.active_timers()) == 3
        timers.cancel_all()
        assert timers.active_timers() == []

    def test_exception_in_callback_does_not_kill_schedule(self, timers, user, env):
        _, token = user
        calls = []

        def flaky():
            calls.append(env.now)
            if len(calls) == 1:
                raise RuntimeError("transient")

        timer = timers.create_timer(token, flaky, interval=1.0, max_firings=3)
        with pytest.raises(RuntimeError):
            env.run()
        # The next firing was still scheduled before the exception propagated.
        env.run()
        assert len(calls) == 3


class TestFlows:
    def test_steps_run_in_order_and_merge_context(self, flows, user):
        _, token = user
        flow = flows.register_flow(
            token,
            "demo",
            [
                ("one", lambda ctx: {"a": 1}),
                ("two", lambda ctx: {"b": ctx["a"] + 1}),
            ],
        )
        run = flows.run_flow(token, flow, {"seed": 0})
        assert run.status is RunStatus.SUCCEEDED
        assert run.context == {"seed": 0, "a": 1, "b": 2}
        assert [s.name for s in run.step_log] == ["one", "two"]

    def test_failure_stops_flow(self, flows, user):
        _, token = user

        def boom(ctx):
            raise ValueError("bad data")

        flow = flows.register_flow(
            token, "fails", [("ok", lambda ctx: {}), ("boom", boom), ("never", lambda ctx: {})]
        )
        run = flows.run_flow(token, flow)
        assert run.status is RunStatus.FAILED
        assert "bad data" in run.error
        assert [s.name for s in run.step_log] == ["ok", "boom"]

    def test_duplicate_step_names_rejected(self, flows, user):
        _, token = user
        with pytest.raises(ValidationError):
            flows.register_flow(token, "dup", [("a", lambda c: {}), ("a", lambda c: {})])

    def test_empty_flow_rejected(self, flows, user):
        _, token = user
        with pytest.raises(ValidationError):
            flows.register_flow(token, "empty", [])

    def test_run_bookkeeping(self, flows, user):
        _, token = user
        flow = flows.register_flow(token, "counted", [("a", lambda c: {})])
        flows.run_flow(token, flow)
        flows.run_flow(token, flow)
        assert len(flows.runs_for(flow)) == 2
        assert flows.run_counts() == {"counted": 2}

    def test_get_run(self, flows, user):
        _, token = user
        flow = flows.register_flow(token, "g", [("a", lambda c: {})])
        run = flows.run_flow(token, flow)
        assert flows.get_run(run.run_id) is run

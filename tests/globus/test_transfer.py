"""Tests for the asynchronous transfer service."""

from __future__ import annotations

import pytest

from repro.common.errors import StateError
from repro.globus.transfer import TransferService, TransferStatus


@pytest.fixture
def setup(auth, storage, transfer, user, env):
    _, token = user
    src = storage.create_collection("src", token)
    dst = storage.create_collection("dst", token)
    return src, dst, token


class TestTransfers:
    def test_basic_copy(self, setup, transfer, env):
        src, dst, token = setup
        src.put(token, "a.txt", "payload")
        task = transfer.submit(token, "src:a.txt", "dst:copied.txt")
        assert not task.done
        env.run()
        assert task.status is TransferStatus.SUCCEEDED
        assert dst.get_text(token, "copied.txt") == "payload"
        assert transfer.bytes_moved == len("payload")

    def test_copy_is_asynchronous(self, setup, transfer, env):
        src, dst, token = setup
        src.put(token, "a.txt", "payload")
        transfer.submit(token, "src:a.txt", "dst:b.txt")
        # Before the event loop runs, the destination must not exist yet.
        assert not dst.exists(token, "b.txt")

    def test_snapshot_semantics(self, setup, transfer, env):
        """The version at submission time is what arrives."""
        src, dst, token = setup
        src.put(token, "a.txt", "version-1")
        transfer.submit(token, "src:a.txt", "dst:b.txt")
        src.put(token, "a.txt", "version-2")
        env.run()
        assert dst.get_text(token, "b.txt") == "version-1"

    def test_missing_source_fails_task(self, setup, transfer, env):
        _, _, token = setup
        task = transfer.submit(token, "src:ghost", "dst:b.txt")
        assert task.status is TransferStatus.FAILED
        assert "does not exist" in task.error

    def test_latency_scales_with_size(self, auth, storage, user, env):
        _, token = user
        src = storage.create_collection("s2", token)
        dst = storage.create_collection("d2", token)
        slow = TransferService(
            auth, storage, env, bandwidth_bytes_per_day=10.0, base_latency_days=0.0
        )
        src.put(token, "big", b"x" * 20)  # 20 bytes at 10 B/day = 2 days
        done_at = []
        slow.submit(token, "s2:big", "d2:big", on_complete=lambda t: done_at.append(env.now))
        env.run()
        assert done_at == [2.0]

    def test_on_complete_callback(self, setup, transfer, env):
        src, dst, token = setup
        src.put(token, "a", "x")
        seen = []
        transfer.submit(token, "src:a", "dst:a", on_complete=lambda t: seen.append(t.status))
        env.run()
        assert seen == [TransferStatus.SUCCEEDED]

    def test_require_success(self, setup, transfer, env):
        src, dst, token = setup
        src.put(token, "a", "x")
        task = transfer.submit(token, "src:a", "dst:a")
        with pytest.raises(StateError):
            transfer.require_success(task)
        env.run()
        transfer.require_success(task)  # no raise

    def test_unauthorized_destination_fails(self, auth, setup, transfer, env):
        src, dst, token = setup
        src.put(token, "a", "x")
        other = auth.register_identity("outsider")
        other_token = auth.issue_token(other, ["transfer"])
        task = transfer.submit(other_token, "src:a", "dst:stolen")
        env.run()
        assert task.status is TransferStatus.FAILED

    def test_task_lookup(self, setup, transfer, env):
        src, dst, token = setup
        src.put(token, "a", "x")
        task = transfer.submit(token, "src:a", "dst:a")
        assert transfer.get_task(task.task_id) is task
        assert transfer.tasks() == [task]

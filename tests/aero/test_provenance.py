"""Tests for provenance graph construction."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.aero import AeroClient, AeroPlatform, StaticSource, TriggerPolicy
from repro.aero.provenance import flow_graph, lineage, summarize, version_graph


@pytest.fixture
def wired():
    """A miniature Figure-1-shaped workflow: 2 ingest -> 2 analyze -> 1 agg."""
    platform = AeroPlatform()
    identity, token = platform.create_user("researcher")
    platform.add_storage_collection("eagle", token)
    platform.add_login_endpoint("login")
    client = AeroClient(platform, identity, token)

    sources = [StaticSource(f"https://iwss/{name}", f"{name}-v1") for name in ("a", "b")]
    analysis_ids = {}
    for name, source in zip(("a", "b"), sources):
        ids = client.register_ingestion_flow(
            f"ingest-{name}",
            source=source,
            function=lambda raw: {"clean": raw.upper()},
            endpoint="login",
            storage="eagle",
            outputs=["clean"],
        )
        out = client.register_analysis_flow(
            f"rt-{name}",
            inputs={"clean": ids["clean"]},
            function=lambda inputs: {"rt": "rt-data"},
            endpoint="login",
            storage="eagle",
            outputs=["rt"],
        )
        analysis_ids[name] = out["rt"]
    agg = client.register_analysis_flow(
        "aggregate",
        inputs={name: data_id for name, data_id in analysis_ids.items()},
        function=lambda inputs: {"ensemble": "combined"},
        endpoint="login",
        storage="eagle",
        outputs=["ensemble"],
        policy=TriggerPolicy.ALL,
    )
    platform.env.run_until(2.0)
    flows = [client.get_flow(name) for name in client.flow_names()]
    return platform, client, flows, agg["ensemble"], sources


class TestFlowGraph:
    def test_structure(self, wired):
        platform, client, flows, _, _ = wired
        graph = flow_graph(flows)
        counts = summarize(graph)
        assert counts["flow"] == 5  # 2 ingest + 2 rt + 1 aggregate
        assert counts["source"] == 2
        assert nx.is_directed_acyclic_graph(graph)

    def test_aggregation_depends_on_both_analyses(self, wired):
        _, client, flows, _, _ = wired
        graph = flow_graph(flows)
        agg_node = "flow:aggregate"
        upstream = nx.ancestors(graph, agg_node)
        assert "flow:rt-a" in upstream
        assert "flow:rt-b" in upstream
        assert "flow:ingest-a" in upstream


class TestVersionGraph:
    def test_acyclic_and_complete(self, wired):
        platform, _, _, _, _ = wired
        graph = version_graph(platform.metadata)
        assert nx.is_directed_acyclic_graph(graph)
        # every registered version appears
        total_versions = sum(platform.metadata.version_counts().values())
        assert graph.number_of_nodes() == total_versions

    def test_lineage_traces_to_raw(self, wired):
        platform, client, _, ensemble_id, _ = wired
        version = client.latest_version(ensemble_id)
        chain = lineage(platform.metadata, ensemble_id, version.version)
        names = {platform.metadata.get_object(node.split("@")[0]).name for node in chain}
        # the ensemble's ancestry includes both raw feeds
        assert "ingest-a/raw" in names
        assert "ingest-b/raw" in names

    def test_lineage_of_unknown_node_is_empty(self, wired):
        platform, _, _, ensemble_id, _ = wired
        assert lineage(platform.metadata, ensemble_id, 999) == []

    def test_updates_extend_lineage(self, wired):
        platform, client, _, ensemble_id, sources = wired
        for source in sources:
            source.set_content(source.url + "-v2")
        platform.env.run_until(4.0)
        versions = client.versions(ensemble_id)
        assert len(versions) == 2
        graph = version_graph(platform.metadata)
        assert nx.is_directed_acyclic_graph(graph)

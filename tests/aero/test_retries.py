"""Failure-injection tests for AERO retry policies."""

from __future__ import annotations

import pytest

from repro.aero import AeroClient, AeroPlatform, StaticSource
from repro.aero.flows import RunStatus


@pytest.fixture
def platform():
    return AeroPlatform()


@pytest.fixture
def client(platform):
    identity, token = platform.create_user("researcher")
    platform.add_storage_collection("eagle", token)
    platform.add_login_endpoint("login")
    return AeroClient(platform, identity, token)


class FlakyFunction:
    """Fails the first ``n_failures`` calls, then succeeds."""

    def __init__(self, n_failures: int):
        self.n_failures = n_failures
        self.calls = 0

    def __call__(self, raw):
        self.calls += 1
        if self.calls <= self.n_failures:
            raise RuntimeError(f"transient failure #{self.calls}")
        return {"clean": raw.upper()}


class FlakyAnalysis:
    def __init__(self, n_failures: int):
        self.n_failures = n_failures
        self.calls = 0

    def __call__(self, inputs):
        self.calls += 1
        if self.calls <= self.n_failures:
            raise RuntimeError(f"transient failure #{self.calls}")
        return {"out": "ok"}


class TestIngestionRetries:
    def test_transient_failure_recovered(self, platform, client):
        flaky = FlakyFunction(n_failures=2)
        ids = client.register_ingestion_flow(
            "ingest",
            source=StaticSource("u", "data"),
            function=flaky,
            endpoint="login",
            storage="eagle",
            outputs=["clean"],
            max_retries=3,
            retry_delay=0.05,
        )
        platform.env.run_until(0.5)
        runs = client.runs("ingest")
        assert [r.status for r in runs] == [
            RunStatus.FAILED,
            RunStatus.FAILED,
            RunStatus.SUCCEEDED,
        ]
        assert client.fetch_content(ids["clean"]) == "DATA"
        assert flaky.calls == 3

    def test_retries_exhausted(self, platform, client):
        flaky = FlakyFunction(n_failures=10)
        client.register_ingestion_flow(
            "ingest",
            source=StaticSource("u", "data"),
            function=flaky,
            endpoint="login",
            storage="eagle",
            outputs=["clean"],
            max_retries=2,
            retry_delay=0.05,
        )
        platform.env.run_until(0.9)
        runs = client.runs("ingest")
        # initial attempt + 2 retries, all failed; no further attempts until
        # the next genuine source update
        assert len(runs) == 3
        assert all(r.status is RunStatus.FAILED for r in runs)

    def test_retry_counter_resets_after_success(self, platform, client):
        source = StaticSource("u", "v1")
        flaky = FlakyFunction(n_failures=1)
        client.register_ingestion_flow(
            "ingest",
            source=source,
            function=flaky,
            endpoint="login",
            storage="eagle",
            outputs=["clean"],
            max_retries=1,
            retry_delay=0.05,
        )
        platform.env.run_until(0.5)
        flow = client.get_flow("ingest")
        assert flow.retries_used == 0  # reset by the eventual success
        # a later update gets its own fresh retry budget
        flaky.n_failures = flaky.calls + 1  # fail exactly once more
        source.set_content("v2")
        platform.env.run_until(2.0)
        assert client.runs("ingest")[-1].status is RunStatus.SUCCEEDED

    def test_no_retries_by_default(self, platform, client):
        flaky = FlakyFunction(n_failures=1)
        client.register_ingestion_flow(
            "ingest",
            source=StaticSource("u", "data"),
            function=flaky,
            endpoint="login",
            storage="eagle",
            outputs=["clean"],
        )
        platform.env.run_until(0.5)
        assert len(client.runs("ingest")) == 1
        assert client.runs("ingest")[0].status is RunStatus.FAILED

    def test_retry_logged_in_run_record(self, platform, client):
        client.register_ingestion_flow(
            "ingest",
            source=StaticSource("u", "data"),
            function=FlakyFunction(n_failures=1),
            endpoint="login",
            storage="eagle",
            outputs=["clean"],
            max_retries=1,
        )
        platform.env.run_until(0.5)
        first = client.runs("ingest")[0]
        assert any(step == "schedule-retry" for _, step, _ in first.steps)


class TestAnalysisRetries:
    def test_transient_analysis_failure_recovered(self, platform, client):
        ids = client.register_ingestion_flow(
            "ingest",
            source=StaticSource("u", "data"),
            function=lambda raw: {"clean": raw},
            endpoint="login",
            storage="eagle",
            outputs=["clean"],
        )
        flaky = FlakyAnalysis(n_failures=1)
        out = client.register_analysis_flow(
            "analyze",
            inputs={"clean": ids["clean"]},
            function=flaky,
            endpoint="login",
            storage="eagle",
            outputs=["out"],
            max_retries=2,
            retry_delay=0.05,
        )
        platform.env.run_until(1.0)
        runs = client.runs("analyze")
        assert runs[0].status is RunStatus.FAILED
        assert runs[-1].status is RunStatus.SUCCEEDED
        assert client.fetch_content(out["out"]) == "ok"

    def test_retry_uses_latest_input_versions(self, platform, client):
        """If the input advanced between failure and retry, the retry picks
        up the newest version (the operator-preferred semantics)."""
        source = StaticSource("u", "v1")
        ids = client.register_ingestion_flow(
            "ingest",
            source=source,
            function=lambda raw: {"clean": raw},
            endpoint="login",
            storage="eagle",
            outputs=["clean"],
        )
        flaky = FlakyAnalysis(n_failures=1)
        out = client.register_analysis_flow(
            "analyze",
            inputs={"clean": ids["clean"]},
            function=flaky,
            endpoint="login",
            storage="eagle",
            outputs=["out"],
            max_retries=1,
            retry_delay=1.5,  # long enough for the next poll to land v2
        )
        platform.env.run_until(0.5)
        assert client.runs("analyze")[0].status is RunStatus.FAILED
        source.set_content("v2")
        platform.env.run_until(5.0)
        succeeded = [r for r in client.runs("analyze") if r.status is RunStatus.SUCCEEDED]
        assert succeeded
        clean_id = ids["clean"]
        assert succeeded[0].consumed[clean_id] == 2


class TestTokenExpiry:
    def test_expired_token_fails_runs_without_crashing_platform(self):
        """An always-on deployment survives token expiry: polls keep firing,
        runs fail with an authorization error, and renewal restores service."""
        platform = AeroPlatform(token_lifetime=2.0)  # token dies at t=2
        identity, token = platform.create_user("short-lived")
        platform.add_storage_collection("eagle", token)
        platform.add_login_endpoint("login")
        client = AeroClient(platform, identity, token)
        source = StaticSource("u", "v1")
        ids = client.register_ingestion_flow(
            "ingest",
            source=source,
            function=lambda raw: {"clean": raw},
            endpoint="login",
            storage="eagle",
            outputs=["clean"],
        )
        platform.env.run_until(1.0)
        assert client.runs("ingest")[-1].status is RunStatus.SUCCEEDED

        # Past expiry: updates are detected but runs fail (and the event
        # loop keeps running — the crucial property).
        source.set_content("v2")
        platform.env.run_until(4.0)
        failed = [r for r in client.runs("ingest") if r.status is RunStatus.FAILED]
        assert failed
        assert "expired" in failed[-1].error

        # Renew and verify service resumes on the next update.
        client.renew_token(lifetime=100.0)
        source.set_content("v3")
        platform.env.run_until(7.0)
        assert client.runs("ingest")[-1].status is RunStatus.SUCCEEDED
        assert client.fetch_content(ids["clean"]) == "v3"

"""Property-based tests of AERO invariants under random update schedules."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aero import AeroClient, AeroPlatform, StaticSource, TriggerPolicy
from repro.aero.flows import RunStatus
from repro.aero.provenance import version_graph


def build_chain(n_sources: int = 2):
    """A fresh platform with n ingestion→analysis chains + 1 ALL aggregation."""
    platform = AeroPlatform()
    identity, token = platform.create_user("prop")
    platform.add_storage_collection("eagle", token)
    platform.add_login_endpoint("login", max_concurrent=8)
    client = AeroClient(platform, identity, token)
    sources = []
    analysis_ids = {}
    for i in range(n_sources):
        source = StaticSource(f"u{i}", f"s{i}-content-0")
        sources.append(source)
        ingest_ids = client.register_ingestion_flow(
            f"ingest-{i}",
            source=source,
            function=lambda raw: {"clean": raw},
            endpoint="login",
            storage="eagle",
            outputs=["clean"],
            interval=1.0,
        )
        out = client.register_analysis_flow(
            f"analyze-{i}",
            inputs={"clean": ingest_ids["clean"]},
            function=lambda inputs: {"out": "x" + sorted(inputs.values())[0]},
            endpoint="login",
            storage="eagle",
            outputs=["out"],
        )
        analysis_ids[f"a{i}"] = out["out"]
    agg = client.register_analysis_flow(
        "aggregate",
        inputs=analysis_ids,
        function=lambda inputs: {"combined": "|".join(sorted(inputs))},
        endpoint="login",
        storage="eagle",
        outputs=["combined"],
        policy=TriggerPolicy.ALL,
    )
    return platform, client, sources, agg["combined"]


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1),  # which source updates
            st.floats(min_value=0.5, max_value=3.0),  # days between updates
        ),
        max_size=6,
    )
)
def test_aero_invariants_under_random_update_schedules(schedule):
    """For any update schedule:

    - version numbers of every product are 1..n with increasing timestamps;
    - the version provenance graph stays acyclic;
    - every successful analysis consumed versions that existed when it ran;
    - the ALL-policy aggregation never ran more often than the scarcest
      input was updated.
    """
    platform, client, sources, agg_id = build_chain(2)
    clock = 0.0
    for which, delay in schedule:
        clock += delay
        platform.env.schedule_at(
            clock,
            lambda w=which, t=clock: sources[w].set_content(f"s{w}-content-{t}"),
        )
    platform.env.run_until(clock + 5.0)

    metadata = platform.metadata
    for obj in metadata.all_objects():
        versions = metadata.versions(obj.data_id)
        assert [v.version for v in versions] == list(range(1, len(versions) + 1))
        timestamps = [v.timestamp for v in versions]
        assert timestamps == sorted(timestamps)

    graph = version_graph(metadata)
    assert nx.is_directed_acyclic_graph(graph)

    for flow_name in client.flow_names():
        for record in client.runs(flow_name):
            if record.status is not RunStatus.SUCCEEDED:
                continue
            for data_id, version in record.consumed.items():
                consumed = metadata.get_version(data_id, version)
                assert consumed.timestamp <= record.started_at + 1e-12

    agg_runs = [
        r for r in client.runs("aggregate") if r.status is RunStatus.SUCCEEDED
    ]
    min_updates = min(
        client.get_flow(f"analyze-{i}").runs.__len__() for i in range(2)
    )
    assert len(agg_runs) <= max(min_updates, 1)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=1, max_value=5))
def test_every_update_eventually_analyzed(n_updates):
    """No lost updates: the final analysis output reflects the final content."""
    platform, client, sources, agg_id = build_chain(1)
    for k in range(n_updates):
        platform.env.schedule_at(
            (k + 1) * 2.0,
            lambda k=k: sources[0].set_content(f"s0-final-{k}"),
        )
    platform.env.run_until(2.0 * n_updates + 5.0)
    final = client.fetch_content(client.get_flow("analyze-0").output_ids()["out"])
    assert final == f"xs0-final-{n_updates - 1}"

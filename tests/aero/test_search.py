"""Tests for the metadata catalog (search/index layer)."""

from __future__ import annotations

import pytest

from repro.common.errors import ValidationError
from repro.aero.metadata import MetadataDatabase
from repro.aero.search import MetadataCatalog


@pytest.fixture
def catalog(env):
    db = MetadataDatabase(env)
    objects = {}
    for name, owner in [
        ("ingest-obrien/raw", "alice"),
        ("ingest-obrien/clean", "alice"),
        ("rt-obrien/datatable", "bob"),
        ("empty-product", "alice"),
    ]:
        objects[name] = db.register_data(name, owner)

    def add(name, day, checksum):
        env.run_until(max(day, env.now))
        db.add_version(
            objects[name].data_id,
            checksum=checksum,
            size=10,
            uri=f"eagle:{name}/v",
            created_by="test",
        )

    add("ingest-obrien/raw", 1.0, "c1")
    add("ingest-obrien/clean", 1.0, "c2")
    add("ingest-obrien/raw", 5.0, "c3")
    add("rt-obrien/datatable", 6.0, "c4")
    return MetadataCatalog(db), db, objects, env


class TestSearch:
    def test_name_substring(self, catalog):
        cat, _, _, _ = catalog
        hits = cat.search(name_contains="obrien")
        assert [h.name for h in hits] == [
            "ingest-obrien/clean",
            "ingest-obrien/raw",
            "rt-obrien/datatable",
        ]

    def test_owner_filter(self, catalog):
        cat, _, _, _ = catalog
        hits = cat.search(owner="bob")
        assert len(hits) == 1 and hits[0].name == "rt-obrien/datatable"

    def test_has_versions_filter(self, catalog):
        cat, _, _, _ = catalog
        unversioned = cat.search(has_versions=False)
        assert [h.name for h in unversioned] == ["empty-product"]
        assert all(h.n_versions > 0 for h in cat.search(has_versions=True))

    def test_entry_summarizes_latest(self, catalog):
        cat, _, _, _ = catalog
        raw = cat.search(name_contains="raw")[0]
        assert raw.n_versions == 2
        assert raw.latest_version == 2
        assert raw.latest_checksum == "c3"


class TestTimeTravel:
    def test_version_as_of(self, catalog):
        cat, _, objects, _ = catalog
        raw_id = objects["ingest-obrien/raw"].data_id
        assert cat.version_as_of(raw_id, 0.5) is None
        assert cat.version_as_of(raw_id, 3.0).version == 1
        assert cat.version_as_of(raw_id, 5.0).version == 2
        assert cat.version_as_of(raw_id, 100.0).version == 2

    def test_updated_since(self, catalog):
        cat, _, _, _ = catalog
        recent = cat.updated_since(4.0)
        names = [entry.name for entry, _ in recent]
        assert names == ["rt-obrien/datatable", "ingest-obrien/raw"]


class TestStaleness:
    def test_stale_products(self, catalog):
        cat, _, _, env = catalog
        stale = cat.stale_products(now=10.0, max_age=3.0)
        names = [e.name for e in stale]
        # clean last updated at t=1 (stale); raw at t=5 (stale at age 5 > 3);
        # datatable at t=6 (age 4 > 3): all three stale; empty has no versions
        assert "ingest-obrien/clean" in names
        assert "empty-product" not in names
        fresh = cat.stale_products(now=6.5, max_age=3.0)
        assert [e.name for e in fresh] == ["ingest-obrien/clean"]

    def test_max_age_validated(self, catalog):
        cat, _, _, _ = catalog
        with pytest.raises(ValidationError):
            cat.stale_products(now=1.0, max_age=0.0)


class TestSummary:
    def test_counts(self, catalog):
        cat, _, _, _ = catalog
        assert cat.summary() == {
            "products": 4,
            "versioned_products": 3,
            "total_versions": 4,
        }


class TestAgainstLiveWorkflow:
    def test_catalog_over_wastewater_workflow(self):
        """The search layer answers real questions about a finished run."""
        from repro.workflows.wastewater_rt import run_wastewater_workflow

        result = run_wastewater_workflow(
            sim_days=5.0, goldstein_iterations=400, seed=23
        )
        cat = MetadataCatalog(result.platform.metadata)
        # every plant has a versioned datatable product
        hits = cat.search(name_contains="datatable", has_versions=True)
        assert len(hits) == 4
        # nothing versioned is stale at a generous window
        assert cat.stale_products(now=result.platform.env.now, max_age=10.0) == []
        # time travel: the ensemble as of day 2 is an earlier version than now
        ensemble_id = result.output_ids["aggregate/ensemble"]
        early = cat.version_as_of(ensemble_id, 2.0)
        late = cat.version_as_of(ensemble_id, result.platform.env.now)
        assert early is not None and late is not None
        assert early.version <= late.version

"""Tests for the AERO metadata database."""

from __future__ import annotations

import pytest

from repro.common.errors import NotFoundError, ValidationError
from repro.aero.metadata import MetadataDatabase
from repro.sim import SimulationEnvironment


@pytest.fixture
def db(env):
    return MetadataDatabase(env)


class TestObjects:
    def test_register_returns_uuid(self, db):
        obj = db.register_data("ww/obrien", "alice")
        assert len(obj.data_id) == 36  # canonical uuid
        assert db.get_object(obj.data_id) == obj

    def test_ids_deterministic_in_registration_order(self, env):
        a = MetadataDatabase(env).register_data("x", "alice")
        b = MetadataDatabase(env).register_data("x", "alice")
        assert a.data_id == b.data_id

    def test_find_by_name(self, db):
        db.register_data("x", "alice")
        obj = db.register_data("y", "alice")
        assert db.find_by_name("y") == [obj]

    def test_unknown_object(self, db):
        with pytest.raises(NotFoundError):
            db.get_object("not-a-uuid")

    def test_empty_name_rejected(self, db):
        with pytest.raises(ValidationError):
            db.register_data("", "alice")


class TestVersions:
    def test_versions_number_sequentially(self, db):
        obj = db.register_data("x", "alice")
        v1 = db.add_version(obj.data_id, checksum="c1", size=10, uri="c:p1", created_by="f")
        v2 = db.add_version(obj.data_id, checksum="c2", size=20, uri="c:p2", created_by="f")
        assert (v1.version, v2.version) == (1, 2)
        assert db.latest(obj.data_id) == v2
        assert db.versions(obj.data_id) == [v1, v2]
        assert db.get_version(obj.data_id, 1) == v1

    def test_latest_none_when_empty(self, db):
        obj = db.register_data("x", "alice")
        assert db.latest(obj.data_id) is None

    def test_timestamp_from_clock(self, env, db):
        obj = db.register_data("x", "alice")
        env.run_until(5.0)
        version = db.add_version(obj.data_id, checksum="c", size=1, uri="c:p", created_by="f")
        assert version.timestamp == 5.0

    def test_payload_rejected(self, db):
        """AERO stores metadata only — never data."""
        obj = db.register_data("x", "alice")
        with pytest.raises(ValidationError):
            db.add_version(
                obj.data_id,
                checksum="c",
                size=1,
                uri="c:p",
                created_by="f",
                payload=b"raw bytes",
            )

    def test_malformed_uri_rejected(self, db):
        obj = db.register_data("x", "alice")
        with pytest.raises(ValidationError):
            db.add_version(obj.data_id, checksum="c", size=1, uri="nopath", created_by="f")

    def test_derived_from_must_exist(self, db):
        obj = db.register_data("x", "alice")
        with pytest.raises(NotFoundError):
            db.add_version(
                obj.data_id,
                checksum="c",
                size=1,
                uri="c:p",
                created_by="f",
                derived_from=[("ghost-id", 1)],
            )
        other = db.register_data("y", "alice")
        with pytest.raises(NotFoundError):
            db.add_version(
                obj.data_id,
                checksum="c",
                size=1,
                uri="c:p",
                created_by="f",
                derived_from=[(other.data_id, 1)],  # no version 1 yet
            )

    def test_valid_derivation_recorded(self, db):
        src = db.register_data("src", "alice")
        v = db.add_version(src.data_id, checksum="c", size=1, uri="c:p", created_by="f")
        out = db.register_data("out", "alice")
        derived = db.add_version(
            out.data_id,
            checksum="c2",
            size=1,
            uri="c:p2",
            created_by="g",
            derived_from=[(src.data_id, v.version)],
        )
        assert derived.derived_from == ((src.data_id, 1),)


class TestSubscriptions:
    def test_subscriber_notified(self, db):
        obj = db.register_data("x", "alice")
        seen = []
        db.subscribe(obj.data_id, lambda v: seen.append(v.version))
        db.add_version(obj.data_id, checksum="c", size=1, uri="c:p", created_by="f")
        db.add_version(obj.data_id, checksum="c2", size=1, uri="c:p2", created_by="f")
        assert seen == [1, 2]

    def test_subscribe_unknown_object(self, db):
        with pytest.raises(NotFoundError):
            db.subscribe("ghost", lambda v: None)

    def test_version_counts(self, db):
        obj = db.register_data("x", "alice")
        db.register_data("empty", "alice")
        db.add_version(obj.data_id, checksum="c", size=1, uri="c:p", created_by="f")
        assert db.version_counts() == {"x": 1, "empty": 0}

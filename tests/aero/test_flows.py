"""Integration tests for AERO ingestion and analysis flows."""

from __future__ import annotations

import pytest

from repro.common.errors import ValidationError
from repro.aero import AeroClient, AeroPlatform, StaticSource, TriggerPolicy
from repro.aero.flows import RunStatus
from repro.globus.compute import simulated_cost


@pytest.fixture
def platform():
    return AeroPlatform()


@pytest.fixture
def client(platform):
    identity, token = platform.create_user("researcher")
    platform.add_storage_collection("eagle", token)
    platform.add_login_endpoint("login")
    platform.add_cluster_endpoint("batch", n_nodes=2, walltime=0.5)
    return AeroClient(platform, identity, token)


def upper_transform(raw: str):
    return {"clean": raw.upper()}


class TestIngestionFlow:
    def test_first_poll_ingests(self, platform, client):
        source = StaticSource("https://example/ww.csv", "a,b\n1,2\n")
        ids = client.register_ingestion_flow(
            "ingest",
            source=source,
            function=upper_transform,
            endpoint="login",
            storage="eagle",
            outputs=["clean"],
            interval=1.0,
        )
        platform.env.run_until(0.5)
        runs = client.runs("ingest")
        assert len(runs) == 1
        assert runs[0].status is RunStatus.SUCCEEDED
        assert client.fetch_content(ids["clean"]) == "A,B\n1,2\n"

    def test_unchanged_source_does_not_rerun(self, platform, client):
        source = StaticSource("u", "data")
        client.register_ingestion_flow(
            "ingest",
            source=source,
            function=upper_transform,
            endpoint="login",
            storage="eagle",
            outputs=["clean"],
        )
        platform.env.run_until(5.0)
        flow = client.get_flow("ingest")
        assert flow.poll_count == 6  # t=0..5
        assert flow.update_count == 1
        assert len(client.runs("ingest")) == 1

    def test_update_triggers_new_version(self, platform, client):
        source = StaticSource("u", "v1")
        ids = client.register_ingestion_flow(
            "ingest",
            source=source,
            function=upper_transform,
            endpoint="login",
            storage="eagle",
            outputs=["clean"],
        )
        platform.env.run_until(0.5)
        source.set_content("v2")
        platform.env.run_until(1.5)
        versions = client.versions(ids["clean"])
        assert [v.version for v in versions] == [1, 2]
        assert client.fetch_content(ids["clean"], version=1) == "V1"
        assert client.fetch_content(ids["clean"], version=2) == "V2"

    def test_raw_data_versioned_too(self, platform, client):
        source = StaticSource("u", "v1")
        client.register_ingestion_flow(
            "ingest",
            source=source,
            function=upper_transform,
            endpoint="login",
            storage="eagle",
            outputs=["clean"],
        )
        platform.env.run_until(0.5)
        flow = client.get_flow("ingest")
        raw_versions = platform.metadata.versions(flow.raw_object.data_id)
        assert len(raw_versions) == 1
        assert raw_versions[0].checksum  # checksum recorded

    def test_transform_failure_recorded(self, platform, client):
        def broken(raw):
            raise ValueError("malformed input")

        source = StaticSource("u", "data")
        client.register_ingestion_flow(
            "ingest",
            source=source,
            function=broken,
            endpoint="login",
            storage="eagle",
            outputs=["clean"],
        )
        platform.env.run_until(0.5)
        runs = client.runs("ingest")
        assert runs[0].status is RunStatus.FAILED
        assert "malformed input" in runs[0].error

    def test_undeclared_output_fails(self, platform, client):
        source = StaticSource("u", "data")
        client.register_ingestion_flow(
            "ingest",
            source=source,
            function=lambda raw: {"wrong_name": raw},
            endpoint="login",
            storage="eagle",
            outputs=["clean"],
        )
        platform.env.run_until(0.5)
        assert client.runs("ingest")[0].status is RunStatus.FAILED

    def test_cancel_stops_polling(self, platform, client):
        source = StaticSource("u", "data")
        client.register_ingestion_flow(
            "ingest",
            source=source,
            function=upper_transform,
            endpoint="login",
            storage="eagle",
            outputs=["clean"],
        )
        platform.env.run_until(0.5)
        client.get_flow("ingest").cancel()
        source.set_content("changed")
        platform.env.run_until(5.0)
        assert len(client.runs("ingest")) == 1

    def test_duplicate_flow_name_rejected(self, platform, client):
        source = StaticSource("u", "data")
        kwargs = dict(
            source=source,
            function=upper_transform,
            endpoint="login",
            storage="eagle",
            outputs=["clean"],
        )
        client.register_ingestion_flow("ingest", **kwargs)
        with pytest.raises(ValidationError):
            client.register_ingestion_flow("ingest", **kwargs)


class TestAnalysisFlow:
    def _ingest(self, client, source, name="ingest"):
        return client.register_ingestion_flow(
            name,
            source=source,
            function=upper_transform,
            endpoint="login",
            storage="eagle",
            outputs=["clean"],
        )

    def test_triggered_by_input_update(self, platform, client):
        source = StaticSource("u", "v1")
        ids = self._ingest(client, source)
        out = client.register_analysis_flow(
            "analyze",
            inputs={"clean": ids["clean"]},
            function=lambda inputs: {"report": f"saw {inputs['clean']}"},
            endpoint="batch",
            storage="eagle",
            outputs=["report"],
        )
        platform.env.run_until(0.9)
        assert client.fetch_content(out["report"]) == "saw V1"
        source.set_content("v2")
        platform.env.run_until(2.0)
        assert client.fetch_content(out["report"]) == "saw V2"
        assert len(client.runs("analyze")) == 2

    def test_provenance_chain_recorded(self, platform, client):
        source = StaticSource("u", "v1")
        ids = self._ingest(client, source)
        out = client.register_analysis_flow(
            "analyze",
            inputs={"clean": ids["clean"]},
            function=lambda inputs: {"report": "r"},
            endpoint="batch",
            storage="eagle",
            outputs=["report"],
        )
        platform.env.run_until(1.0)
        report_version = client.latest_version(out["report"])
        assert report_version.derived_from == ((ids["clean"], 1),)

    def test_all_policy_waits_for_every_input(self, platform, client):
        src_a = StaticSource("a", "a1")
        src_b = StaticSource("b", "b1")
        ids_a = self._ingest(client, src_a, "ingest-a")
        ids_b = self._ingest(client, src_b, "ingest-b")
        out = client.register_analysis_flow(
            "agg",
            inputs={"a": ids_a["clean"], "b": ids_b["clean"]},
            function=lambda inputs: {"sum": inputs["a"] + "+" + inputs["b"]},
            endpoint="batch",
            storage="eagle",
            outputs=["sum"],
            policy=TriggerPolicy.ALL,
        )
        platform.env.run_until(1.0)
        assert len(client.runs("agg")) == 1
        # Update only A: ALL policy must NOT re-trigger.
        src_a.set_content("a2")
        platform.env.run_until(3.0)
        assert len(client.runs("agg")) == 1
        # Update B too: now it triggers with the latest A and B.
        src_b.set_content("b2")
        platform.env.run_until(5.0)
        runs = client.runs("agg")
        assert len(runs) == 2
        assert client.fetch_content(out["sum"]) == "A2+B2"

    def test_any_policy_triggers_on_each_input(self, platform, client):
        src_a = StaticSource("a", "a1")
        src_b = StaticSource("b", "b1")
        ids_a = self._ingest(client, src_a, "ingest-a")
        ids_b = self._ingest(client, src_b, "ingest-b")
        client.register_analysis_flow(
            "any-flow",
            inputs={"a": ids_a["clean"], "b": ids_b["clean"]},
            function=lambda inputs: {"out": "x"},
            endpoint="batch",
            storage="eagle",
            outputs=["out"],
            policy=TriggerPolicy.ANY,
        )
        platform.env.run_until(1.0)
        baseline = len(client.runs("any-flow"))
        src_a.set_content("a2")
        platform.env.run_until(3.0)
        assert len(client.runs("any-flow")) == baseline + 1

    def test_chained_analyses(self, platform, client):
        """Analysis output UUIDs feed further analyses (the Fig 1 pattern)."""
        source = StaticSource("u", "v1")
        ids = self._ingest(client, source)
        mid = client.register_analysis_flow(
            "mid",
            inputs={"clean": ids["clean"]},
            function=lambda inputs: {"stats": str(len(inputs["clean"]))},
            endpoint="batch",
            storage="eagle",
            outputs=["stats"],
        )
        final = client.register_analysis_flow(
            "final",
            inputs={"stats": mid["stats"]},
            function=lambda inputs: {"plot": "plot(" + inputs["stats"] + ")"},
            endpoint="login",
            storage="eagle",
            outputs=["plot"],
        )
        platform.env.run_until(2.0)
        assert client.fetch_content(final["plot"]) == "plot(2)"

    def test_empty_inputs_rejected(self, platform, client):
        with pytest.raises(ValidationError):
            client.register_analysis_flow(
                "bad",
                inputs={},
                function=lambda inputs: {"o": "x"},
                endpoint="batch",
                storage="eagle",
                outputs=["o"],
            )

    def test_expensive_analysis_goes_through_scheduler(self, platform, client):
        source = StaticSource("u", "v1")
        ids = self._ingest(client, source)

        @simulated_cost(0.1)
        def heavy(inputs):
            return {"out": "done"}

        client.register_analysis_flow(
            "heavy",
            inputs={"clean": ids["clean"]},
            function=heavy,
            endpoint="batch",
            storage="eagle",
            outputs=["out"],
        )
        platform.env.run_until(1.0)
        scheduler = platform.endpoint_bundle("batch").scheduler
        assert scheduler is not None
        jobs = scheduler.all_jobs()
        assert len(jobs) == 1
        assert jobs[0].completed_at - jobs[0].started_at == pytest.approx(0.1)

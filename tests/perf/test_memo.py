"""Tests for content-addressed memoization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.perf import MemoCache, memo_salt, memoize_evaluator
from repro.perf.memo import _function_identity


def plain_fn(payload):
    return payload


def make_closure(factor):
    def scaled(payload):
        return payload * factor

    return scaled


class TestFunctionIdentity:
    def test_module_level_function(self):
        identity = _function_identity(plain_fn)
        assert identity["qualname"] == "plain_fn"

    def test_unsalted_closure_refused(self):
        with pytest.raises(ValidationError):
            _function_identity(make_closure(2))

    def test_salt_overrides(self):
        fn = memo_salt(make_closure(2), {"factor": 2})
        assert _function_identity(fn) == {"salt": {"factor": 2}}

    def test_salt_found_through_wrapped_chain(self):
        inner = memo_salt(make_closure(3), {"factor": 3})

        def outer(payload):
            return inner(payload)

        outer.__wrapped__ = inner
        assert _function_identity(outer) == {"salt": {"factor": 3}}

    def test_equal_salts_share_identity(self):
        a = memo_salt(make_closure(2), {"factor": 2})
        b = memo_salt(make_closure(2), {"factor": 2})
        cache = MemoCache()
        assert cache.key_for(a, {"x": 1}) == cache.key_for(b, {"x": 1})
        c = memo_salt(make_closure(3), {"factor": 3})
        assert cache.key_for(a, {"x": 1}) != cache.key_for(c, {"x": 1})


class TestMemoCache:
    def test_lookup_store_roundtrip(self):
        cache = MemoCache()
        key = cache.key_for(plain_fn, {"x": 1})
        hit, _ = cache.lookup(key)
        assert not hit
        cache.store(key, 42)
        hit, value = cache.lookup(key)
        assert hit and value == 42
        assert cache.counters() == {
            "memo_hits": 1,
            "memo_misses": 1,
            "memo_entries": 1,
            "memo_evictions": 0,
        }
        assert cache.hit_rate() == 0.5

    def test_get_or_compute(self):
        calls = []

        def fn(payload):
            calls.append(payload)
            return payload * 2

        memo_salt(fn, "double")
        cache = MemoCache()
        assert cache.get_or_compute(fn, 3) == 6
        assert cache.get_or_compute(fn, 3) == 6
        assert calls == [3]

    def test_lru_eviction(self):
        cache = MemoCache(max_entries=2)
        for i in range(4):
            cache.store(f"k{i}", i)
        assert len(cache) == 2
        assert cache.counters()["memo_evictions"] == 2
        hit, value = cache.lookup("k3")
        assert hit and value == 3
        hit, _ = cache.lookup("k0")
        assert not hit

    def test_validation(self):
        with pytest.raises(ValidationError):
            MemoCache(max_entries=0)

    def test_ndarray_payloads_addressable(self):
        cache = MemoCache()
        a = cache.key_for(plain_fn, {"x": np.arange(3.0)})
        b = cache.key_for(plain_fn, {"x": np.arange(3.0)})
        c = cache.key_for(plain_fn, {"x": np.arange(3.0) + 1e-12})
        assert a == b
        assert a != c


class TestMemoizeEvaluator:
    def test_shares_entries_with_direct_calls(self):
        calls = []

        def fn(payload):
            calls.append(payload)
            return payload + 1

        memo_salt(fn, "plus-one")
        cache = MemoCache()
        memoized = memoize_evaluator(fn, cache)
        assert memoized(1) == 2
        # Same cache identity: direct get_or_compute hits the wrapper's entry.
        assert cache.get_or_compute(fn, 1) == 2
        assert calls == [1]

    def test_wrapper_identity_matches_inner(self):
        cache = MemoCache()
        memoized = memoize_evaluator(plain_fn, cache)
        assert cache.key_for(memoized, {"x": 1}) == cache.key_for(plain_fn, {"x": 1})

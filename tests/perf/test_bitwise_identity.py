"""Bitwise-identity contract of the parallel/memoized evaluation paths.

The tentpole guarantee: a workflow run through the deterministic batch pool
— any worker count, any batch composition, cold or warm memo cache, even
under an injected fault plan — produces *byte-identical* results to the
single-threaded serial path.  These tests hold the whole stack to that.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.retry import RetryPolicy
from repro.faults import FaultPlan, FaultSpec
from repro.gsa.music import MusicConfig
from repro.perf import MemoCache
from repro.workflows.music_gsa import run_music_vs_pce, run_replicate_gsa
from repro.workflows.wastewater_rt import run_wastewater_workflow

#: Small-but-real MUSIC configuration (validation minimums apply).
SMALL_MUSIC = dict(
    music_config=MusicConfig(
        n_initial=4, n_candidates=8, surrogate_mc=64, refit_every=4
    ),
)

SMALL_WASTEWATER = dict(
    data_start_day=100.0, sim_days=4.0, goldstein_iterations=250, seed=11
)


def _replicate_bytes(data):
    return {
        k: np.stack([v for _, v in curve]).tobytes()
        for k, curve in data.replicate_curves.items()
    }


def _figure4_bytes(data):
    return np.stack([v for _, v in data.music_curve]).tobytes()


class TestMusicReplicates:
    KW = dict(n_replicates=3, budget=10, root_seed=19, **SMALL_MUSIC)

    @pytest.fixture(scope="class")
    def serial(self):
        return run_replicate_gsa(**self.KW, n_workers=1)

    @pytest.mark.parametrize("n_workers", [1, 2, 8])
    def test_parallel_identical_to_serial(self, serial, n_workers):
        parallel = run_replicate_gsa(**self.KW, parallel=True, n_workers=n_workers)
        assert _replicate_bytes(parallel) == _replicate_bytes(serial)
        assert parallel.perf_report["pool_tasks_processed"] > 0

    def test_memoized_identical_cold_and_warm(self, serial):
        cache = MemoCache()
        cold = run_replicate_gsa(**self.KW, parallel=True, memo_cache=cache)
        warm = run_replicate_gsa(**self.KW, parallel=True, memo_cache=cache)
        assert _replicate_bytes(cold) == _replicate_bytes(serial)
        assert _replicate_bytes(warm) == _replicate_bytes(serial)
        # Every task of the warm run is served from cache.
        assert warm.perf_report["memo_hits"] >= warm.perf_report["pool_tasks_processed"]

    def test_identical_under_fault_plan(self, serial):
        chaos = dict(
            fault_rate=0.2,
            fault_seed=5,
            evaluator_retry=RetryPolicy(max_attempts=4),
        )
        faulty_serial = run_replicate_gsa(**self.KW, n_workers=1, **chaos)
        faulty_parallel = run_replicate_gsa(
            **self.KW, parallel=True, n_workers=8, **chaos
        )
        # Faults are payload-keyed, so recovery changes nothing downstream...
        assert _replicate_bytes(faulty_serial) == _replicate_bytes(serial)
        assert _replicate_bytes(faulty_parallel) == _replicate_bytes(serial)
        # ...and both paths absorb the *same* fault sequence.
        assert faulty_serial.resilience_report == faulty_parallel.resilience_report
        assert faulty_parallel.resilience_report["evaluator_faults_injected"] > 0


class TestMusicFigure4:
    KW = dict(seed=3, budget=40, **SMALL_MUSIC)

    def test_parallel_and_memo_identical(self):
        serial = run_music_vs_pce(**self.KW)
        parallel = run_music_vs_pce(**self.KW, parallel=True, n_workers=8)
        cache = MemoCache()
        cold = run_music_vs_pce(**self.KW, parallel=True, memo_cache=cache)
        warm = run_music_vs_pce(**self.KW, parallel=True, memo_cache=cache)
        reference = _figure4_bytes(serial)
        assert _figure4_bytes(parallel) == reference
        assert _figure4_bytes(cold) == reference
        assert _figure4_bytes(warm) == reference
        assert cache.hit_rate() > 0.0


def _estimate_bytes(result):
    """Every scientific artifact of a wastewater run, as comparable JSON."""
    out = {
        name: estimate.to_json(include_samples=True)
        for name, estimate in result.plant_estimates.items()
    }
    out["ensemble"] = result.ensemble.to_json(include_samples=True)
    return out


class TestWastewater:
    @pytest.fixture(scope="class")
    def base(self):
        return run_wastewater_workflow(**SMALL_WASTEWATER)

    def test_shared_cache_second_run_identical_with_hits(self, base):
        cache = MemoCache()
        cold = run_wastewater_workflow(**SMALL_WASTEWATER, memo_cache=cache)
        warm = run_wastewater_workflow(**SMALL_WASTEWATER, memo_cache=cache)
        for run in (cold, warm):
            assert run.ensemble.to_json(include_samples=True) == base.ensemble.to_json(
                include_samples=True
            )
            for name, estimate in base.plant_estimates.items():
                assert run.plant_estimates[name].to_json(
                    include_samples=True
                ) == estimate.to_json(include_samples=True)
        assert cold.perf_report["memo_hits"] == 0
        assert warm.perf_report["memo_hits"] > 0
        assert cache.hit_rate() > 0.0

    def test_vectorized_rt_identical_in_single_chain_mode(self, base):
        """The cross-plant batched flow reproduces every artifact bytewise.

        ``goldstein_iterations`` defaults ``n_chains`` to 1, so this is the
        headline single-chain-mode equivalence: one stacked multi-node
        sampler job versus four independent per-plant jobs.
        """
        vectorized = run_wastewater_workflow(**SMALL_WASTEWATER, vectorized_rt=True)
        assert _estimate_bytes(vectorized) == _estimate_bytes(base)
        # The four per-plant flows really did collapse into one batch flow.
        assert set(vectorized.analysis_run_counts) == {"rt-batch"}
        assert vectorized.analysis_run_counts["rt-batch"] > 0

    def test_vectorized_rt_identical_under_fault_plan(self, base):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="compute", rate=0.05),
                FaultSpec(site="transfer", rate=0.04),
            ),
            seed=77,
        )
        chaotic = run_wastewater_workflow(
            **SMALL_WASTEWATER, vectorized_rt=True, fault_plan=plan
        )
        assert chaotic.resilience_report["faults_injected"] > 0
        assert _estimate_bytes(chaotic) == _estimate_bytes(base)

    def test_vectorized_rt_memoizes_per_plant(self, base):
        """A shared cache serves unchanged plants inside the stacked job."""
        cache = MemoCache()
        cold = run_wastewater_workflow(
            **SMALL_WASTEWATER, vectorized_rt=True, memo_cache=cache
        )
        warm = run_wastewater_workflow(
            **SMALL_WASTEWATER, vectorized_rt=True, memo_cache=cache
        )
        assert _estimate_bytes(cold) == _estimate_bytes(base)
        assert _estimate_bytes(warm) == _estimate_bytes(base)
        assert warm.perf_report["memo_hits"] > 0

"""Shared-memory kernel pool: bitwise identity, fallback, determinism.

The process backend may only ever be a *transport* — row chunks
evaluated in workers must reassemble to exactly the bytes the serial
in-process call produces (the kernels' row-identity contract makes the
partition invisible), and every failure mode must decline back to the
serial path rather than raise into kernel code.

The pool-backed arm is skipped where ``multiprocessing.shared_memory``
cannot allocate (sandboxes without /dev/shm); the fallback arm runs
everywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf.shm import (
    SharedKernelPool,
    _apply_op,
    get_shared_pool,
    shared_memory_available,
)
from repro.rt.kernels import (
    CausalConvolution,
    install_kernel_pool,
    installed_kernel_pool,
    kernel_pool,
    renewal_forward_batch,
)

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="shared memory unavailable"
)

GEN_INTERVAL = [0.2, 0.5, 0.3]


@pytest.fixture
def batch():
    rng = np.random.default_rng(42)
    return rng.uniform(0.5, 2.0, size=(96, 80))


@pytest.fixture
def pool():
    p = SharedKernelPool(workers=2, min_rows=8)
    yield p
    p.close()


class TestApplyOp:
    def test_renewal_matches_direct_call(self, batch):
        via_op = _apply_op(
            "renewal",
            batch,
            {"generation_interval": GEN_INTERVAL, "seed_days": 7, "seed_incidence": 1.0},
        )
        direct = renewal_forward_batch(batch, np.asarray(GEN_INTERVAL))
        assert via_op.tobytes() == direct.tobytes()

    def test_unknown_op_raises(self, batch):
        with pytest.raises(ValueError):
            _apply_op("spectral", batch, {})


class TestChunking:
    def test_chunks_are_contiguous_and_cover(self):
        pool = SharedKernelPool(workers=3)
        chunks = pool._chunks(100)
        assert chunks[0][0] == 0 and chunks[-1][1] == 100
        for (_, hi), (lo, _) in zip(chunks, chunks[1:]):
            assert hi == lo

    def test_chunking_is_deterministic(self):
        a = SharedKernelPool(workers=4)._chunks(1000)
        b = SharedKernelPool(workers=4)._chunks(1000)
        assert a == b

    def test_fewer_rows_than_workers_drops_empty_chunks(self):
        chunks = SharedKernelPool(workers=8)._chunks(3)
        assert sum(hi - lo for lo, hi in chunks) == 3
        assert all(hi > lo for lo, hi in chunks)


@needs_shm
class TestPoolBitwiseIdentity:
    def test_renewal_rows_identical_to_serial(self, pool, batch):
        serial = renewal_forward_batch(batch, np.asarray(GEN_INTERVAL))
        pooled = pool.run(
            "renewal",
            batch,
            {"generation_interval": GEN_INTERVAL, "seed_days": 7, "seed_incidence": 1.0},
        )
        assert pooled is not None
        assert pooled.tobytes() == serial.tobytes()

    def test_convolution_rows_identical_to_serial(self, pool, batch):
        conv = CausalConvolution(np.asarray(GEN_INTERVAL), out_len=80)
        serial = conv.apply(batch)
        pooled = pool.run(
            "convolve", batch, {"kernel": GEN_INTERVAL, "out_len": 80}, out_cols=80
        )
        assert pooled is not None
        assert pooled.tobytes() == serial.tobytes()

    def test_repeated_runs_are_deterministic(self, pool, batch):
        params = {
            "generation_interval": GEN_INTERVAL,
            "seed_days": 7,
            "seed_incidence": 1.0,
        }
        first = pool.run("renewal", batch, params)
        second = pool.run("renewal", batch, params)
        assert first.tobytes() == second.tobytes()

    def test_installed_pool_drives_kernel_hot_path(self, pool, batch):
        serial = renewal_forward_batch(batch, np.asarray(GEN_INTERVAL))
        with kernel_pool(pool):
            hooked = renewal_forward_batch(batch, np.asarray(GEN_INTERVAL))
        assert hooked.tobytes() == serial.tobytes()
        assert installed_kernel_pool() is None

    def test_worker_error_declines_and_marks_broken(self, pool, batch):
        assert pool.run("no-such-op", batch, {}) is None
        assert not pool.running


class TestSerialFallback:
    def test_small_batch_declines(self, batch):
        pool = SharedKernelPool(workers=2, min_rows=1000)
        assert pool.run("renewal", batch[:4], {}) is None

    def test_one_dimensional_input_declines(self):
        pool = SharedKernelPool(workers=2)
        assert pool.run("renewal", np.ones(32), {}) is None

    def test_declining_pool_falls_back_to_serial_kernels(self, batch):
        class AlwaysDecline:
            calls = 0

            def run(self, op, rows, params, *, out_cols=None):
                self.calls += 1
                return None

        decliner = AlwaysDecline()
        serial = renewal_forward_batch(batch, np.asarray(GEN_INTERVAL))
        with kernel_pool(decliner):
            out = renewal_forward_batch(batch, np.asarray(GEN_INTERVAL))
        assert decliner.calls == 1
        assert out.tobytes() == serial.tobytes()

    def test_scalar_path_never_consults_the_pool(self):
        class Exploder:
            def run(self, *args, **kwargs):  # pragma: no cover - must not run
                raise AssertionError("1-D input must stay serial")

        with kernel_pool(Exploder()):
            out = renewal_forward_batch(np.ones(40), np.asarray(GEN_INTERVAL))
        assert out.shape == (40,)


class TestPoolRegistry:
    def test_get_shared_pool_is_a_singleton_per_width(self):
        assert get_shared_pool(3) is get_shared_pool(3)
        assert get_shared_pool(3) is not get_shared_pool(4)

    def test_broken_pool_is_replaced(self):
        pool = get_shared_pool(5)
        pool._started = True
        pool._broken = True
        assert get_shared_pool(5) is not pool


class TestRuntimeConfigWiring:
    def test_process_backend_installs_pool(self):
        from repro.sim.loop import RuntimeConfig, SimulationEnvironment

        previous = install_kernel_pool(None)
        try:
            env = SimulationEnvironment()
            env.install(RuntimeConfig(kernel_backend="process", kernel_workers=2))
            installed = installed_kernel_pool()
            assert isinstance(installed, SharedKernelPool)
            assert installed.workers == 2
        finally:
            install_kernel_pool(previous)

    def test_serial_backend_installs_nothing(self):
        from repro.sim.loop import RuntimeConfig, SimulationEnvironment

        previous = install_kernel_pool(None)
        try:
            SimulationEnvironment().install(RuntimeConfig())
            assert installed_kernel_pool() is None
        finally:
            install_kernel_pool(previous)

    def test_unknown_backend_rejected(self):
        from repro.common.errors import ValidationError
        from repro.sim.loop import RuntimeConfig

        with pytest.raises(ValidationError):
            RuntimeConfig(kernel_backend="gpu")

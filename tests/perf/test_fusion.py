"""FusionContext: the harvest/flush protocol behind gang batching.

Unit-level contract checks on the protocol itself, away from the real
wastewater stack (the service tests cover that end to end):

- payloads with identical content share one store entry (keyed by
  ``stable_digest``), so duplicate work inside a gang collapses;
- a member's exception is captured as its own outcome, poisons nobody
  else, and re-raises when that member's result is read;
- the settled-batch callable sees each pending payload exactly once per
  flush, and flush sizes are recorded for the gang metrics.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ValidationError
from repro.perf.fusion import (
    OUTCOME_ERROR,
    OUTCOME_OK,
    FusionContext,
    GangMember,
    current_fusion,
    fusion_scope,
)


def settled_doubler(payloads):
    return [(OUTCOME_OK, payload["x"] * 2) for payload in payloads]


class TestScope:
    def test_scope_installs_and_restores(self):
        assert current_fusion() is None
        ctx = FusionContext()
        with fusion_scope(ctx):
            assert current_fusion() is ctx
            with fusion_scope(None):  # flush recursion guard uses this
                assert current_fusion() is None
            assert current_fusion() is ctx
        assert current_fusion() is None


class TestEvaluate:
    def test_single_frame_evaluates_through_the_batch(self):
        ctx = FusionContext()
        assert ctx.evaluate([{"x": 3}, {"x": 5}], settled_doubler) == [6, 10]
        assert ctx.flush_sizes == [2]

    def test_identical_payloads_share_one_store_entry(self):
        calls = []

        def counting(payloads):
            calls.append(len(payloads))
            return settled_doubler(payloads)

        ctx = FusionContext()
        first = ctx.evaluate([{"x": 4}], counting)
        second = ctx.evaluate([{"x": 4}], counting)
        assert first == second == [8]
        assert calls == [1]  # second evaluate served from the store

    def test_members_park_then_flush_as_one_batch(self):
        ctx = FusionContext()
        sizes = []
        results = {}

        def member(name, x):
            def advance():
                results[name] = ctx.evaluate([{"x": x}], recording)[0]

            return advance

        def recording(payloads):
            sizes.append(len(payloads))
            return settled_doubler(payloads)

        ctx.add_member("a", member("a", 1))
        ctx.add_member("b", member("b", 2))
        with fusion_scope(ctx):
            ctx.run_members()
        assert results == {"a": 2, "b": 4}
        # Member a parked its payload, cascaded b (which parked too), and
        # flushed both as one settled batch.
        assert sizes == [2]
        assert ctx.flush_sizes == [2]

    def test_member_error_is_isolated_and_replayed(self):
        def settled_mixed(payloads):
            outcomes = []
            for payload in payloads:
                if payload["x"] < 0:
                    outcomes.append((OUTCOME_ERROR, ValueError("negative")))
                else:
                    outcomes.append((OUTCOME_OK, payload["x"] * 2))
            return outcomes

        ctx = FusionContext()
        outputs = {}

        def make(name, x):
            def advance():
                outputs[name] = ctx.evaluate([{"x": x}], settled_mixed)[0]

            return advance

        ctx.add_member("good", make("good", 7))
        ctx.add_member("bad", make("bad", -1))
        with fusion_scope(ctx):
            ctx.run_members()
        members = {m.name: m for m in ctx._members}
        assert members["good"].outcome == (OUTCOME_OK, None)
        status, error = members["bad"].outcome
        assert status == OUTCOME_ERROR
        assert isinstance(error, ValueError)
        assert outputs == {"good": 14}

    def test_settled_batch_length_mismatch_is_an_error(self):
        ctx = FusionContext()
        with pytest.raises(ValidationError):
            ctx.evaluate([{"x": 1}, {"x": 2}], lambda payloads: [(OUTCOME_OK, 0)])


class TestGangMember:
    def test_run_is_idempotent(self):
        calls = []
        member = GangMember("m", lambda: calls.append(1))
        member.run()
        member.run()
        assert calls == [1]
        assert member.outcome == (OUTCOME_OK, None)

    def test_exception_captured_not_raised(self):
        def boom():
            raise RuntimeError("mid-gang failure")

        member = GangMember("m", boom)
        member.run()
        status, error = member.outcome
        assert status == OUTCOME_ERROR
        assert isinstance(error, RuntimeError)

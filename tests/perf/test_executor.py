"""Tests for the deterministic parallel evaluator."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.perf import EvaluationFailure, MemoCache, ParallelEvaluator, memo_salt
from repro.perf.executor import _chunk_bounds


def square(payload):
    return payload["x"] ** 2


def square_batch(payloads):
    return [p["x"] ** 2 for p in payloads]


def payloads_for(values):
    return [{"x": v} for v in values]


class TestChunkBounds:
    def test_covers_range_contiguously(self):
        for n in (1, 5, 16, 17, 100):
            for k in (1, 2, 7, 16, 200):
                bounds = _chunk_bounds(n, k)
                flat = [i for lo, hi in bounds for i in range(lo, hi)]
                assert flat == list(range(n))

    def test_deterministic(self):
        assert _chunk_bounds(10, 3) == _chunk_bounds(10, 3)


class TestBackends:
    @pytest.mark.parametrize("backend,kwargs", [
        ("serial", dict(fn=square)),
        ("thread", dict(fn=square, n_workers=4)),
        ("process", dict(fn=square, n_workers=2)),
        ("batch", dict(fn=square, batch_fn=square_batch, n_workers=4)),
    ])
    def test_results_in_submission_order(self, backend, kwargs):
        evaluator = ParallelEvaluator(backend=backend, **kwargs)
        values = list(range(23))
        assert evaluator.map(payloads_for(values)) == [v * v for v in values]

    def test_auto_resolution(self):
        assert ParallelEvaluator(square).backend == "serial"
        assert ParallelEvaluator(square, n_workers=4).backend == "thread"
        assert ParallelEvaluator(batch_fn=square_batch, n_workers=4).backend == "batch"

    def test_identical_across_backends_and_worker_counts(self):
        values = [float(v) for v in np.linspace(-3, 7, 31)]
        reference = ParallelEvaluator(square, backend="serial").map(
            payloads_for(values)
        )
        for backend in ("thread", "batch"):
            for n_workers in (1, 2, 8):
                evaluator = ParallelEvaluator(
                    square, batch_fn=square_batch, backend=backend, n_workers=n_workers
                )
                assert evaluator.map(payloads_for(values)) == reference

    def test_validation(self):
        with pytest.raises(ValidationError):
            ParallelEvaluator()
        with pytest.raises(ValidationError):
            ParallelEvaluator(square, backend="gpu")
        with pytest.raises(ValidationError):
            ParallelEvaluator(square, n_workers=0)
        with pytest.raises(ValidationError):
            ParallelEvaluator(square, backend="batch")

    def test_empty_batch(self):
        assert ParallelEvaluator(square).map([]) == []


class TestDeduplication:
    def test_duplicates_evaluated_once(self):
        calls = []

        def tracked(payload):
            calls.append(payload["x"])
            return payload["x"] * 10

        evaluator = ParallelEvaluator(tracked)
        out = evaluator.map(payloads_for([1, 2, 1, 3, 2, 1]))
        assert out == [10, 20, 10, 30, 20, 10]
        assert sorted(calls) == [1, 2, 3]
        counters = evaluator.counters()
        assert counters["executor_tasks_evaluated"] == 3
        assert counters["executor_tasks_deduplicated"] == 3


class TestFailures:
    def test_failure_localized_to_payload(self):
        def flaky(payload):
            if payload["x"] == 2:
                raise RuntimeError("boom")
            return payload["x"]

        out = ParallelEvaluator(flaky).map(payloads_for([1, 2, 3]))
        assert out[0] == 1 and out[2] == 3
        assert isinstance(out[1], EvaluationFailure)
        assert out[1].error_type == "RuntimeError"

    def test_raise_on_error(self):
        def bad(payload):
            raise ValueError("nope")

        with pytest.raises(RuntimeError):
            ParallelEvaluator(bad).map(payloads_for([1]), raise_on_error=True)

    def test_batch_fn_exception_degrades_to_per_payload(self):
        def broken_batch(payloads):
            raise RuntimeError("vectorized path broken")

        evaluator = ParallelEvaluator(
            square, batch_fn=broken_batch, backend="batch"
        )
        assert evaluator.map(payloads_for([2, 3])) == [4, 9]

    def test_batch_fn_length_mismatch_rejected(self):
        evaluator = ParallelEvaluator(
            batch_fn=lambda ps: [1], backend="batch"
        )
        with pytest.raises(ValidationError):
            evaluator.map(payloads_for([1, 2, 3]))


class TestCaching:
    def test_cache_short_circuits_repeat_batches(self):
        calls = []

        def tracked(payload):
            calls.append(payload["x"])
            return payload["x"] + 1

        cache = MemoCache()
        memo_salt(tracked, "tracked-plus-one")
        evaluator = ParallelEvaluator(tracked, cache=cache)
        assert evaluator.map(payloads_for([1, 2])) == [2, 3]
        assert evaluator.map(payloads_for([1, 2, 3])) == [2, 3, 4]
        assert sorted(calls) == [1, 2, 3]
        assert cache.counters()["memo_hits"] == 2

    def test_failures_not_cached(self):
        attempts = []

        def once_flaky(payload):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("first call fails")
            return payload["x"]

        cache = MemoCache()
        memo_salt(once_flaky, "once-flaky")
        evaluator = ParallelEvaluator(once_flaky, cache=cache)
        first = evaluator.map(payloads_for([5]))
        assert isinstance(first[0], EvaluationFailure)
        assert evaluator.map(payloads_for([5])) == [5]

    def test_thread_safety_of_shared_cache(self):
        cache = MemoCache()
        evaluator = ParallelEvaluator(square, n_workers=4, cache=cache)
        results = {}

        def run(tag):
            results[tag] = evaluator.map(payloads_for(list(range(50))))

        threads = [threading.Thread(target=run, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = [v * v for v in range(50)]
        assert all(results[i] == expected for i in range(4))

"""Tests for EMEWS futures, worker pools, and the service layer."""

from __future__ import annotations

import pytest

from repro.common.errors import StateError
from repro.emews import (
    EmewsService,
    SimWorkerPool,
    TaskFuture,
    ThreadedWorkerPool,
    as_completed,
    pop_completed,
)
from repro.emews.api import RTaskAPI, TaskQueue
from repro.emews.db import TaskDatabase, TaskState
from repro.hpc import BatchScheduler, Cluster, JobState


def square(payload):
    return {"y": payload["x"] ** 2}


class TestFuturesThreaded:
    def test_submit_returns_future_immediately(self):
        svc = EmewsService()
        queue = svc.make_queue("exp")
        future = queue.submit_task("model", {"x": 3})
        assert isinstance(future, TaskFuture)
        assert not future.check()
        svc.start_local_pool("model", square, n_workers=2)
        assert future.result(timeout=10) == {"y": 9}
        svc.finalize(queue)

    def test_batch_and_as_completed(self):
        svc = EmewsService()
        queue = svc.make_queue("exp")
        svc.start_local_pool("model", square, n_workers=4)
        futures = queue.submit_tasks("model", [{"x": i} for i in range(12)])
        results = {f.result(timeout=10)["y"] for f in as_completed(futures, timeout=10)}
        assert results == {i * i for i in range(12)}
        svc.finalize(queue)

    def test_failed_task_raises_on_result(self):
        svc = EmewsService()
        queue = svc.make_queue("exp")

        def broken(payload):
            raise RuntimeError("model blew up")

        svc.start_local_pool("model", broken, n_workers=1)
        future = queue.submit_task("model", {"x": 1})
        with pytest.raises(StateError, match="model blew up"):
            future.result(timeout=10)
        svc.finalize(queue)

    def test_pop_completed(self):
        svc = EmewsService()
        queue = svc.make_queue("exp")
        svc.start_local_pool("model", square, n_workers=2)
        futures = queue.submit_tasks("model", [{"x": i} for i in range(4)])
        for future in futures:
            future.result(timeout=10)
        drained = []
        remaining = list(futures)
        while (done := pop_completed(remaining)) is not None:
            drained.append(done)
        assert len(drained) == 4 and remaining == []
        svc.finalize(queue)

    def test_cancel_queued_future(self):
        svc = EmewsService()  # no pool started: tasks stay queued
        queue = svc.make_queue("exp")
        future = queue.submit_task("model", {"x": 1})
        assert future.cancel()
        with pytest.raises(StateError):
            future.result_nowait()
        svc.finalize(queue)

    def test_result_nowait(self):
        svc = EmewsService()
        queue = svc.make_queue("exp")
        future = queue.submit_task("model", {"x": 2})
        with pytest.raises(StateError):
            future.result_nowait()
        svc.start_local_pool("model", square)
        future.result(timeout=10)
        assert future.result_nowait() == {"y": 4}
        svc.finalize(queue)

    def test_pool_counts_tasks(self):
        svc = EmewsService()
        queue = svc.make_queue("exp")
        handle = svc.start_local_pool("model", square, n_workers=2)
        futures = queue.submit_tasks("model", [{"x": i} for i in range(7)])
        for f in futures:
            f.result(timeout=10)
        assert handle.tasks_processed == 7
        svc.finalize(queue)


class TestRTaskAPI:
    def test_r_surface_interoperates_with_python_pool(self):
        """Two API surfaces over one DB: the multi-language design point."""
        svc = EmewsService()
        svc.start_local_pool("model", square, n_workers=2)
        r_api = RTaskAPI(svc.db, "r-experiment")
        future = r_api.eq_submit_task("model", {"x": 5})
        assert r_api.eq_query_result(future, timeout=10) == {"y": 25}
        assert r_api.eq_check(future)
        r_api.eq_stop()
        svc.finalize()


class TestSimWorkerPool:
    def test_tasks_complete_on_sim_clock(self, env):
        db = TaskDatabase(clock=lambda: env.now)
        pool = SimWorkerPool(
            env, db, "model", fn=square, duration_fn=lambda p: 0.5, n_slots=2
        ).start()
        queue = TaskQueue(db, "exp")
        futures = queue.submit_tasks("model", [{"x": i} for i in range(4)])
        env.run()
        assert all(f.check() for f in futures)
        assert futures[0].result_nowait() == {"y": 0}
        # 4 tasks, 2 slots, 0.5 days each => makespan 1.0 day
        assert env.now == pytest.approx(1.0)

    def test_utilization_tracked(self, env):
        db = TaskDatabase(clock=lambda: env.now)
        pool = SimWorkerPool(env, db, "model", duration_fn=lambda p: 1.0, n_slots=4).start()
        queue = TaskQueue(db, "exp")
        queue.submit_tasks("model", [{} for _ in range(2)])
        env.run()
        # 2 busy slot-days over 4 slots * 1 day
        assert pool.tracker.utilization() == pytest.approx(0.5)

    def test_stop_prevents_new_claims(self, env):
        db = TaskDatabase(clock=lambda: env.now)
        pool = SimWorkerPool(env, db, "model", duration_fn=lambda p: 0.1, n_slots=1).start()
        queue = TaskQueue(db, "exp")
        queue.submit_task("model", {})
        env.run()
        pool.stop()
        late = queue.submit_task("model", {})
        env.run()
        assert not late.check()

    def test_evaluator_failure_fails_task(self, env):
        db = TaskDatabase(clock=lambda: env.now)

        def broken(payload):
            raise ValueError("bad parameters")

        SimWorkerPool(env, db, "model", fn=broken, duration_fn=lambda p: 0.1).start()
        queue = TaskQueue(db, "exp")
        future = queue.submit_task("model", {})
        env.run()
        assert future.state() is TaskState.FAILED


class TestScheduledPool:
    def test_pool_starts_via_scheduler_job(self, env):
        db = TaskDatabase(clock=lambda: env.now)
        svc = EmewsService(db)
        scheduler = BatchScheduler(env, Cluster("improv", 2, cores_per_node=4))
        handle = svc.start_scheduled_pool(
            scheduler, env, "model", n_nodes=1, walltime=50.0,
            fn=square, duration_fn=lambda p: 0.01,
        )
        queue = svc.make_queue("exp")
        futures = queue.submit_tasks("model", [{"x": i} for i in range(8)])
        env.run_until(1.0)
        assert all(f.check() for f in futures)
        assert handle.job.state is JobState.RUNNING
        handle.stop()
        env.run()
        assert handle.job.state is JobState.COMPLETED

    def test_pool_waits_for_job_start(self, env):
        """Tasks submitted before the pool's job starts run only after."""
        db = TaskDatabase(clock=lambda: env.now)
        svc = EmewsService(db)
        scheduler = BatchScheduler(env, Cluster("improv", 1))
        # Occupy the single node first.
        from repro.hpc import JobRequest

        blocker = scheduler.submit(
            JobRequest(name="blocker", n_nodes=1, walltime=10.0, duration=2.0)
        )
        handle = svc.start_scheduled_pool(
            scheduler, env, "model", n_nodes=1, walltime=50.0, duration_fn=lambda p: 0.01
        )
        queue = svc.make_queue("exp")
        future = queue.submit_task("model", {"x": 1})
        env.run_until(1.0)
        assert not future.check()  # pool job still queued behind the blocker
        env.run_until(3.0)
        assert future.check()
        handle.stop()

    def test_walltime_stops_pool(self, env):
        db = TaskDatabase(clock=lambda: env.now)
        svc = EmewsService(db)
        scheduler = BatchScheduler(env, Cluster("improv", 1))
        handle = svc.start_scheduled_pool(
            scheduler, env, "model", n_nodes=1, walltime=1.0, duration_fn=lambda p: 0.01
        )
        queue = svc.make_queue("exp")
        env.run_until(2.0)
        assert handle.job.state is JobState.TIMEOUT
        late = queue.submit_task("model", {})
        env.run()
        assert not late.check()  # pool stopped with its job


class TestFutureEdgeCases:
    def test_as_completed_timeout_raises(self):
        svc = EmewsService()  # no pool: futures never complete
        queue = svc.make_queue("exp")
        futures = queue.submit_tasks("t", [{} for _ in range(3)])
        with pytest.raises(StateError):
            list(as_completed(futures, timeout=0.05))
        svc.finalize(queue)

    def test_as_completed_rejects_bad_poll_interval(self):
        from repro.common.errors import ValidationError

        with pytest.raises(ValidationError):
            list(as_completed([], poll_interval=0.0))

    def test_set_priority_via_future(self):
        svc = EmewsService()
        queue = svc.make_queue("exp")
        low = queue.submit_task("t", "low", priority=0)
        high = queue.submit_task("t", "high", priority=0)
        assert high.set_priority(10)
        task = svc.db.pop_task("t", "w")
        assert task.task_id == high.task_id
        svc.finalize(queue)

    def test_queue_counts_and_queued_count(self):
        svc = EmewsService()
        queue = svc.make_queue("exp")
        queue.submit_tasks("t", [{} for _ in range(5)])
        assert queue.queued_count("t") == 5
        assert queue.counts()["queued"] == 5
        svc.finalize(queue)

    def test_repr_smoke(self):
        svc = EmewsService()
        queue = svc.make_queue("exp")
        future = queue.submit_task("t", {})
        assert "TaskFuture" in repr(future)
        svc.finalize(queue)

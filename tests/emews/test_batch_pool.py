"""Tests for the batch-draining worker pool behind ``start_parallel_pool``."""

from __future__ import annotations

import threading
import time

import pytest

from repro.common.errors import StateError, ValidationError
from repro.emews import EmewsService
from repro.emews.db import TaskDatabase, TaskState
from repro.emews.worker_pool import BatchWorkerPool
from repro.perf import MemoCache, ParallelEvaluator


def square(payload):
    return {"y": payload["x"] ** 2}


def square_batch(payloads):
    return [{"y": p["x"] ** 2} for p in payloads]


class TestBatchWorkerPool:
    def test_validation(self):
        db = TaskDatabase()
        evaluator = ParallelEvaluator(square)
        with pytest.raises(ValidationError):
            BatchWorkerPool(db, "model", evaluator, coalesce_window=-0.1)
        with pytest.raises(ValidationError):
            BatchWorkerPool(
                db, "model", evaluator, coalesce_window=0.5, max_coalesce=0.1
            )
        pool = BatchWorkerPool(db, "model", evaluator).start()
        with pytest.raises(StateError):
            pool.start()
        pool.shutdown()
        db.close()

    def test_queued_tasks_coalesce_into_one_batch(self):
        """Tasks already queued when the dispatcher wakes land in one claim."""
        db = TaskDatabase()
        queue_ids = [db.submit("exp", "model", {"x": i}) for i in range(16)]
        evaluator = ParallelEvaluator(batch_fn=square_batch, backend="batch")
        with BatchWorkerPool(db, "model", evaluator) as pool:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if all(
                    db.get_task(tid).state is TaskState.COMPLETE
                    for tid in queue_ids
                ):
                    break
                time.sleep(0.005)
            counters = pool.counters()
        assert counters["pool_tasks_processed"] == 16
        assert counters["pool_batches_processed"] == 1
        for i, tid in enumerate(queue_ids):
            assert db.get_task(tid).result_obj() == {"y": i * i}
        db.close()

    def test_results_follow_task_id_order_not_arrival_order(self):
        """A shuffled claim is still completed in canonical task_id order."""
        db = TaskDatabase()
        ids = [
            db.submit("exp", "model", {"x": i}, priority=i % 3)
            for i in range(9)
        ]
        seen_batches = []

        def recording_batch(payloads):
            seen_batches.append([p["x"] for p in payloads])
            return square_batch(payloads)

        evaluator = ParallelEvaluator(batch_fn=recording_batch, backend="batch")
        with BatchWorkerPool(db, "model", evaluator):
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if all(db.get_task(t).state is TaskState.COMPLETE for t in ids):
                    break
                time.sleep(0.005)
        # Priorities scramble pop order, but the evaluator always sees the
        # canonical submission (task_id) order within each claim.
        for batch in seen_batches:
            assert batch == sorted(batch)
        db.close()

    def test_quiescence_extends_coalescing_across_slow_submitters(self):
        """Tasks trickling in faster than the window merge into one batch."""
        db = TaskDatabase()
        evaluator = ParallelEvaluator(batch_fn=square_batch, backend="batch")
        pool = BatchWorkerPool(
            db, "model", evaluator, coalesce_window=0.1, max_coalesce=1.0
        )

        def submit_slowly():
            for i in range(6):
                db.submit("exp", "model", {"x": i})
                time.sleep(0.02)  # well inside the 0.1s quiet window

        with pool:
            submitter = threading.Thread(target=submit_slowly)
            submitter.start()
            submitter.join()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if pool.counters()["pool_tasks_processed"] == 6:
                    break
                time.sleep(0.005)
            counters = pool.counters()
        assert counters["pool_tasks_processed"] == 6
        assert counters["pool_batches_processed"] == 1
        db.close()

    def test_max_coalesce_bounds_the_batch(self):
        """A steady submitter cannot defer evaluation past max_coalesce."""
        db = TaskDatabase()
        evaluator = ParallelEvaluator(batch_fn=square_batch, backend="batch")
        pool = BatchWorkerPool(
            db, "model", evaluator, coalesce_window=0.05, max_coalesce=0.15
        )
        stop = threading.Event()

        def submit_forever():
            i = 0
            while not stop.is_set():
                db.submit("exp", "model", {"x": i})
                i += 1
                time.sleep(0.01)

        with pool:
            submitter = threading.Thread(target=submit_forever)
            submitter.start()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if pool.counters()["pool_batches_processed"] >= 2:
                    break
                time.sleep(0.005)
            stop.set()
            submitter.join()
            counters = pool.counters()
        assert counters["pool_batches_processed"] >= 2
        db.close()

    def test_per_payload_failure_fails_only_that_task(self):
        def flaky(payload):
            if payload["x"] == 1:
                raise RuntimeError("boom")
            return {"y": payload["x"]}

        db = TaskDatabase()
        ids = [db.submit("exp", "model", {"x": i}) for i in range(3)]
        evaluator = ParallelEvaluator(flaky)
        with BatchWorkerPool(db, "model", evaluator):
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                states = {db.get_task(t).state for t in ids}
                if states <= {TaskState.COMPLETE, TaskState.FAILED}:
                    break
                time.sleep(0.005)
        assert db.get_task(ids[0]).state is TaskState.COMPLETE
        assert db.get_task(ids[1]).state is TaskState.FAILED
        assert "RuntimeError" in db.get_task(ids[1]).error
        assert db.get_task(ids[2]).state is TaskState.COMPLETE
        db.close()

    def test_counters_include_evaluator_and_cache(self):
        db = TaskDatabase()
        cache = MemoCache()
        evaluator = ParallelEvaluator(square, cache=cache)
        ids = [db.submit("exp", "model", {"x": 2}) for _ in range(2)]
        with BatchWorkerPool(db, "model", evaluator) as pool:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if all(db.get_task(t).state is TaskState.COMPLETE for t in ids):
                    break
                time.sleep(0.005)
            counters = pool.counters()
        assert counters["pool_tasks_processed"] == 2
        assert counters["executor_tasks_evaluated"] >= 1
        assert "memo_hits" in counters
        db.close()


class TestServiceParallelPool:
    def test_parallel_pool_serves_futures(self):
        svc = EmewsService()
        queue = svc.make_queue("exp")
        handle = svc.start_parallel_pool(
            "model", batch_fn=square_batch, n_workers=4
        )
        futures = queue.submit_tasks("model", [{"x": i} for i in range(12)])
        assert [f.result(timeout=10)["y"] for f in futures] == [
            i * i for i in range(12)
        ]
        assert handle.pool.counters()["pool_tasks_processed"] == 12
        svc.finalize(queue)

    def test_parallel_pool_matches_serial_pool(self):
        payloads = [{"x": i} for i in range(10)]

        def run(start):
            svc = EmewsService()
            queue = svc.make_queue("exp")
            start(svc)
            futures = queue.submit_tasks("model", payloads)
            out = [f.result(timeout=10) for f in futures]
            svc.finalize(queue)
            return out

        serial = run(lambda svc: svc.start_local_pool("model", square, n_workers=1))
        parallel = run(
            lambda svc: svc.start_parallel_pool(
                "model", square, batch_fn=square_batch, n_workers=8
            )
        )
        assert parallel == serial

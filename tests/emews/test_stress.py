"""Concurrency stress tests for the EMEWS task database and pools."""

from __future__ import annotations

import threading

import pytest

from repro.emews import EmewsService, ThreadedWorkerPool, as_completed
from repro.emews.db import TaskDatabase, TaskState
from repro.emews.sqlite_db import SqliteTaskDatabase


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
class TestConcurrentSubmitters:
    def test_many_submitters_many_workers(self, backend):
        """4 submitter threads × 4 worker threads over one database: every
        task completes exactly once with the right answer."""
        db = TaskDatabase() if backend == "memory" else SqliteTaskDatabase()
        svc = EmewsService(db)
        svc.start_local_pool("sq", lambda p: {"y": p["x"] * p["x"]}, n_workers=4)
        per_thread = 40
        futures_lock = threading.Lock()
        futures = []

        def submitter(offset):
            queue = svc.make_queue(f"exp-{offset}")
            local = queue.submit_tasks(
                "sq", [{"x": offset * per_thread + i} for i in range(per_thread)]
            )
            with futures_lock:
                futures.extend(local)

        threads = [threading.Thread(target=submitter, args=(k,)) for k in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

        assert len(futures) == 4 * per_thread
        results = sorted(f.result(timeout=30)["y"] for f in futures)
        assert results == sorted(i * i for i in range(4 * per_thread))
        counts = db.counts()
        assert counts["complete"] == 4 * per_thread
        assert counts["queued"] == counts["running"] == 0
        svc.finalize()

    def test_no_task_claimed_twice(self, backend):
        """Workers record their ids; each task has exactly one claimant."""
        db = TaskDatabase() if backend == "memory" else SqliteTaskDatabase()
        svc = EmewsService(db)
        claimed = []
        lock = threading.Lock()

        def evaluate(payload):
            with lock:
                claimed.append(payload["i"])
            return payload["i"]

        svc.start_local_pool("t", evaluate, n_workers=6)
        queue = svc.make_queue("exp")
        futures = queue.submit_tasks("t", [{"i": i} for i in range(100)])
        for future in as_completed(futures, timeout=30):
            pass
        assert sorted(claimed) == list(range(100))  # exactly once each
        svc.finalize()


class TestShutdownSemantics:
    def test_finalize_drains_nothing_after_close(self):
        svc = EmewsService()
        queue = svc.make_queue("exp")
        svc.start_local_pool("t", lambda p: p, n_workers=2)
        futures = queue.submit_tasks("t", [{"i": i} for i in range(10)])
        for future in as_completed(futures, timeout=30):
            pass
        svc.finalize(queue)
        with pytest.raises(Exception):
            queue.submit_task("t", {})

    def test_pool_double_start_rejected(self):
        from repro.common.errors import StateError

        db = TaskDatabase()
        pool = ThreadedWorkerPool(db, "t", lambda p: p, n_workers=1).start()
        with pytest.raises(StateError):
            pool.start()
        db.close()
        pool.shutdown()

    def test_shutdown_waits_for_in_flight_task(self):
        import time

        db = TaskDatabase()
        started = threading.Event()

        def slow(payload):
            started.set()
            time.sleep(0.2)
            return "done"

        pool = ThreadedWorkerPool(db, "t", slow, n_workers=1).start()
        task_id = db.submit("exp", "t", {})
        assert started.wait(timeout=5)
        db.close()
        pool.shutdown(timeout=10)
        assert db.get_task(task_id).state is TaskState.COMPLETE

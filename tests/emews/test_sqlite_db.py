"""SQLite-backend-specific tests: persistence, pools, workflow equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.emews import EmewsService, SimWorkerPool, ThreadedWorkerPool
from repro.emews.api import TaskQueue
from repro.emews.db import TaskState
from repro.emews.sqlite_db import SqliteTaskDatabase


class TestPersistence:
    def test_history_survives_reopen(self, tmp_path):
        """An experiment's task history is auditable after the process."""
        path = str(tmp_path / "eqsql.db")
        db = SqliteTaskDatabase(path)
        task_id = db.submit("exp-audit", "model", {"x": 1})
        db.pop_task("model", "w0")
        db.complete_task(task_id, {"y": 1})

        reopened = SqliteTaskDatabase(path)
        task = reopened.get_task(task_id)
        assert task.state is TaskState.COMPLETE
        assert task.result_obj() == {"y": 1}
        assert task.worker_id == "w0"
        assert reopened.tasks_for_experiment("exp-audit")[0].task_id == task_id

    def test_ids_continue_after_reopen(self, tmp_path):
        path = str(tmp_path / "eqsql.db")
        first = SqliteTaskDatabase(path).submit("e", "t", 1)
        second = SqliteTaskDatabase(path).submit("e", "t", 2)
        assert second > first


class TestPools:
    def test_threaded_pool_over_sqlite(self):
        db = SqliteTaskDatabase()
        svc = EmewsService(db)
        svc.start_local_pool("square", lambda p: {"y": p["x"] ** 2}, n_workers=3)
        queue = svc.make_queue("exp")
        futures = queue.submit_tasks("square", [{"x": i} for i in range(15)])
        results = sorted(f.result(timeout=10)["y"] for f in futures)
        assert results == sorted(i * i for i in range(15))
        svc.finalize(queue)

    def test_sim_pool_over_sqlite(self, env):
        db = SqliteTaskDatabase(clock=lambda: env.now)
        pool = SimWorkerPool(
            env, db, "model", fn=lambda p: p, duration_fn=lambda p: 0.25, n_slots=2
        ).start()
        queue = TaskQueue(db, "exp")
        futures = queue.submit_tasks("model", [{"i": i} for i in range(4)])
        env.run()
        assert all(f.check() for f in futures)
        assert env.now == pytest.approx(0.5)
        assert db.get_task(futures[0].task_id).submitted_at == 0.0


class TestWorkflowEquivalence:
    def test_music_workflow_identical_across_backends(self):
        """The Figure 5 workflow produces identical science on either DB."""
        from repro.gsa.music import MusicConfig, MusicGSA
        from repro.gsa.interleave import InterleavedDriver
        from repro.models.metarvm import MetaRVMConfig
        from repro.models.parameters import GSA_PARAMETER_SPACE
        from repro.workflows.music_gsa import (
            TASK_TYPE,
            metarvm_task_evaluator,
            music_coroutine,
        )

        small_model = MetaRVMConfig(
            n_days=30, population=(10_000, 10_000), initial_infections=(10, 10)
        )
        config = MusicConfig(n_initial=10, surrogate_mc=128, n_candidates=32)

        finals = []
        for backend in ("memory", "sqlite"):
            db = SqliteTaskDatabase() if backend == "sqlite" else None
            service = EmewsService(db)
            queue = service.make_queue("equiv")
            service.start_local_pool(
                TASK_TYPE, metarvm_task_evaluator(model_config=small_model), n_workers=2
            )
            music = MusicGSA(GSA_PARAMETER_SPACE, config, seed=3)
            InterleavedDriver([music_coroutine(music, queue, 3, 20)]).run()
            service.finalize(queue)
            finals.append(music.first_order())
        assert np.allclose(finals[0], finals[1])

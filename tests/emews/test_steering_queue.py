"""Steering-era queue semantics: bulk ops, typed cancels, FIFO regression.

Covers the task-database surface the steering loop leans on — atomic
``update_priorities``, bulk ``cancel_queued`` with a reason, the
lazy-deletion heap's tombstone/compaction behaviour — plus the FIFO
tie-break regression: a re-prioritized task must join the *back* of its
new priority level (fresh sequence number), not keep its submission-order
slot (the old sorted-list key reused ``task_id`` as the tie-break, which
let a demoted-then-restored task jump the queue).
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import StateError
from repro.emews.api import TaskQueue
from repro.emews.db import TaskDatabase, TaskState
from repro.emews.futures import CancelledByPolicy


@pytest.fixture(params=["memory", "sqlite"])
def db(request):
    """Bulk-op behaviour must be backend-agnostic, like everything else."""
    if request.param == "memory":
        return TaskDatabase()
    from repro.emews.sqlite_db import SqliteTaskDatabase

    return SqliteTaskDatabase()


class TestFifoRegression:
    def test_reprioritized_task_joins_back_of_new_level(self, db):
        a = db.submit("e", "t", "a", priority=0)
        b = db.submit("e", "t", "b", priority=0)
        c = db.submit("e", "t", "c", priority=0)
        # Re-assert a's priority at the same level: it re-enters the FIFO
        # at the back, it does not keep its original (front) slot.
        assert db.set_priority(a, 0)
        assert [db.pop_task("t", "w").task_id for _ in range(3)] == [b, c, a]

    def test_demoted_then_restored_does_not_jump_queue(self, db):
        a = db.submit("e", "t", "a", priority=5)
        b = db.submit("e", "t", "b", priority=5)
        db.set_priority(a, 0)  # demote behind b
        db.set_priority(a, 5)  # restore level — but b was there first
        assert db.pop_task("t", "w").task_id == b
        assert db.pop_task("t", "w").task_id == a

    def test_promoted_task_beats_lower_levels_only(self, db):
        a = db.submit("e", "t", "a", priority=0)
        b = db.submit("e", "t", "b", priority=5)
        c = db.submit("e", "t", "c", priority=5)
        db.set_priority(a, 5)
        assert [db.pop_task("t", "w").task_id for _ in range(3)] == [b, c, a]


class TestBulkOps:
    def test_update_priorities_is_atomic_and_reports_outcome(self, db):
        ids = [db.submit("e", "t", i, priority=0) for i in range(4)]
        running = db.pop_task("t", "w").task_id  # ids[0] now RUNNING
        outcome = db.update_priorities(
            {ids[0]: 9, ids[1]: 3, ids[2]: 7, ids[3]: 5}
        )
        assert outcome == {ids[0]: False, ids[1]: True, ids[2]: True, ids[3]: True}
        assert running == ids[0]
        order = [db.pop_task("t", "w").task_id for _ in range(3)]
        assert order == [ids[2], ids[3], ids[1]]

    def test_cancel_queued_records_reason(self, db):
        ids = [db.submit("e", "t", i) for i in range(3)]
        db.pop_task("t", "w")
        outcome = db.cancel_queued(ids, reason="steering")
        assert outcome == {ids[0]: False, ids[1]: True, ids[2]: True}
        for task_id in ids[1:]:
            task = db.get_task(task_id)
            assert task.state is TaskState.CANCELLED
            assert task.cancel_reason == "steering"
        assert db.pop_task("t", "w") is None

    def test_queue_length_and_queued_ids_track_bulk_ops(self, db):
        ids = [db.submit("e", "t", i) for i in range(6)]
        assert db.queue_length("t") == 6
        assert db.queued_ids("t") == ids
        db.cancel_queued(ids[:2])
        assert db.queue_length("t") == 4
        assert db.queued_ids("t") == ids[2:]
        db.update_priorities({ids[4]: 2})
        assert db.queue_length("t") == 4
        assert sorted(db.queued_ids("t")) == ids[2:]


class TestTypedCancellation:
    def test_reasoned_cancel_resolves_future_with_typed_value(self):
        db = TaskDatabase()
        queue = TaskQueue(db, "exp")
        future = queue.submit_tasks("t", [{"x": 1}])[0]
        assert queue.cancel_tasks([future], reason="steering") == {
            future.task_id: True
        }
        value = future.result(timeout=0.0)
        assert value == CancelledByPolicy(task_id=future.task_id, reason="steering")

    def test_reasonless_cancel_keeps_raising(self):
        db = TaskDatabase()
        queue = TaskQueue(db, "exp")
        future = queue.submit_tasks("t", [{"x": 1}])[0]
        assert future.cancel()
        with pytest.raises(StateError):
            future.result(timeout=0.0)

    def test_update_priorities_accepts_futures(self):
        db = TaskDatabase()
        queue = TaskQueue(db, "exp")
        futures = queue.submit_tasks("t", [{"i": i} for i in range(3)])
        outcome = queue.update_priorities({futures[2]: 5, futures[0].task_id: 3})
        assert outcome == {futures[2].task_id: True, futures[0].task_id: True}
        assert db.pop_task("t", "w").task_id == futures[2].task_id


class TestHeapHygiene:
    def test_compaction_churn_preserves_order(self):
        db = TaskDatabase()
        ids = [db.submit("e", "t", i, priority=i % 3) for i in range(300)]
        # Heavy tombstone churn: several re-prioritizations per task plus a
        # bulk cancel — far past the compaction threshold.
        for round_no in range(3):
            db.update_priorities({tid: (tid + round_no) % 3 for tid in ids})
        cancelled = ids[::2]
        db.cancel_queued(cancelled, reason="churn")
        expected = {tid: (tid + 2) % 3 for tid in ids if tid not in set(cancelled)}
        popped = []
        while True:
            task = db.pop_task("t", "w")
            if task is None:
                break
            popped.append(task)
        assert len(popped) == len(expected)
        assert all(t.priority == expected[t.task_id] for t in popped)
        keys = [(-t.priority,) for t in popped]
        assert keys == sorted(keys)


# ------------------------------------------------------ property-based tests
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("submit"), st.integers(-3, 3)),
        st.tuples(st.just("set_priority"), st.integers(0, 40), st.integers(-3, 3)),
        st.tuples(st.just("cancel"), st.integers(0, 40)),
        st.tuples(st.just("pop"), st.just(0)),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60)
@given(_OPS)
def test_interleaved_ops_match_reference_model(ops):
    """Arbitrary set_priority/claim/cancel interleavings: the heap agrees
    with a brute-force reference model, no task is lost or double-claimed."""
    db = TaskDatabase()
    ids = []
    model = {}  # task_id -> (priority, seq) for queued tasks
    seq = 0
    popped, cancelled = [], []
    for op in ops:
        if op[0] == "submit":
            task_id = db.submit("e", "t", None, priority=op[1])
            ids.append(task_id)
            model[task_id] = (op[1], seq)
            seq += 1
        elif op[0] == "set_priority":
            if not ids:
                continue
            target = ids[op[1] % len(ids)]
            changed = db.set_priority(target, op[2])
            assert changed == (target in model)
            if changed:
                model[target] = (op[2], seq)
                seq += 1
        elif op[0] == "cancel":
            if not ids:
                continue
            target = ids[op[1] % len(ids)]
            ok = db.cancel(target, reason="prop")
            assert ok == (target in model)
            if ok:
                model.pop(target)
                cancelled.append(target)
        else:  # pop
            task = db.pop_task("t", "w")
            if model:
                expected = min(model, key=lambda t: (-model[t][0], model[t][1]))
                assert task is not None and task.task_id == expected
                model.pop(expected)
                popped.append(expected)
            else:
                assert task is None
    # Drain: everything still modelled as queued must come out, in order.
    while model:
        expected = min(model, key=lambda t: (-model[t][0], model[t][1]))
        task = db.pop_task("t", "w")
        assert task is not None and task.task_id == expected
        model.pop(expected)
        popped.append(expected)
    assert db.pop_task("t", "w") is None
    assert db.queue_length("t") == 0
    # Conservation: every submitted task is exactly one of popped/cancelled.
    assert sorted(popped + cancelled) == sorted(ids)
    assert len(set(popped) & set(cancelled)) == 0


def test_threaded_claims_race_steering_ops():
    """Claimers race a steering thread issuing re-ranks and cancels: every
    task ends exactly once (claimed xor cancelled), nothing is lost."""
    db = TaskDatabase()
    n_tasks = 400
    ids = [db.submit("e", "t", i, priority=i % 5) for i in range(n_tasks)]
    claimed, claim_lock = [], threading.Lock()
    stop = threading.Event()

    def claimer():
        while not stop.is_set() or db.queue_length("t") > 0:
            task = db.pop_task("t", "w", timeout=0.001)
            if task is not None:
                with claim_lock:
                    claimed.append(task.task_id)

    threads = [threading.Thread(target=claimer) for _ in range(4)]
    for thread in threads:
        thread.start()
    cancel_outcomes = {}
    for start in range(0, n_tasks, 40):
        chunk = ids[start : start + 40]
        db.update_priorities({tid: (tid * 7) % 5 for tid in chunk})
        cancel_outcomes.update(db.cancel_queued(chunk[::3], reason="race"))
    stop.set()
    for thread in threads:
        thread.join()

    won_cancels = {tid for tid, ok in cancel_outcomes.items() if ok}
    assert len(claimed) == len(set(claimed)), "double-claim"
    assert set(claimed) & won_cancels == set()
    assert set(claimed) | won_cancels == set(ids)
    for tid in won_cancels:
        assert db.get_task(tid).state is TaskState.CANCELLED
        assert db.get_task(tid).cancel_reason == "race"

"""Tests for the EMEWS task database."""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import NotFoundError, StateError, ValidationError
from repro.emews.db import TaskDatabase, TaskState


@pytest.fixture(params=["memory", "sqlite"])
def db(request):
    """Every behaviour test runs against both backends: the in-memory store
    and the EQ-SQL-style SQLite store.  Nothing above the database interface
    may be able to tell them apart (the 'decoupled architecture' claim)."""
    if request.param == "memory":
        return TaskDatabase()
    from repro.emews.sqlite_db import SqliteTaskDatabase

    return SqliteTaskDatabase()


class TestSubmitPop:
    def test_submit_and_pop(self, db):
        task_id = db.submit("exp", "model", {"x": 1})
        task = db.pop_task("model", "w0")
        assert task.task_id == task_id
        assert task.state is TaskState.RUNNING
        assert task.payload_obj() == {"x": 1}
        assert task.worker_id == "w0"

    def test_pop_empty_returns_none(self, db):
        assert db.pop_task("model", "w0") is None

    def test_pop_wrong_type_returns_none(self, db):
        db.submit("exp", "model", {})
        assert db.pop_task("other", "w0") is None

    def test_priority_order(self, db):
        low = db.submit("exp", "model", "low", priority=0)
        high = db.submit("exp", "model", "high", priority=10)
        assert db.pop_task("model", "w").task_id == high
        assert db.pop_task("model", "w").task_id == low

    def test_fifo_within_priority(self, db):
        first = db.submit("exp", "model", "a")
        second = db.submit("exp", "model", "b")
        assert db.pop_task("model", "w").task_id == first
        assert db.pop_task("model", "w").task_id == second

    def test_non_json_payload_rejected(self, db):
        with pytest.raises(ValidationError):
            db.submit("exp", "model", object())

    def test_blocking_pop_with_timeout(self, db):
        assert db.pop_task("model", "w", timeout=0.05) is None

    def test_blocking_pop_wakes_on_submit(self, db):
        got = []

        def popper():
            got.append(db.pop_task("model", "w", timeout=5.0))

        thread = threading.Thread(target=popper)
        thread.start()
        db.submit("exp", "model", {"x": 1})
        thread.join(timeout=5.0)
        assert got and got[0] is not None


class TestCompletion:
    def test_complete_roundtrip(self, db):
        task_id = db.submit("exp", "model", {"x": 2})
        db.pop_task("model", "w")
        db.complete_task(task_id, {"y": 4})
        task = db.get_task(task_id)
        assert task.state is TaskState.COMPLETE
        assert task.result_obj() == {"y": 4}

    def test_fail(self, db):
        task_id = db.submit("exp", "model", {})
        db.pop_task("model", "w")
        db.fail_task(task_id, "boom")
        assert db.get_task(task_id).state is TaskState.FAILED

    def test_complete_requires_running(self, db):
        task_id = db.submit("exp", "model", {})
        with pytest.raises(StateError):
            db.complete_task(task_id, {})

    def test_non_json_result_rejected(self, db):
        task_id = db.submit("exp", "model", {})
        db.pop_task("model", "w")
        with pytest.raises(ValidationError):
            db.complete_task(task_id, object())

    def test_complete_listener(self, db):
        seen = []
        db.add_complete_listener(lambda t: seen.append(t.task_id))
        task_id = db.submit("exp", "model", {})
        db.pop_task("model", "w")
        db.complete_task(task_id, 1)
        assert seen == [task_id]


class TestCancelPriority:
    def test_cancel_queued(self, db):
        task_id = db.submit("exp", "model", {})
        assert db.cancel(task_id)
        assert db.get_task(task_id).state is TaskState.CANCELLED
        assert db.pop_task("model", "w") is None

    def test_cancel_running_fails(self, db):
        task_id = db.submit("exp", "model", {})
        db.pop_task("model", "w")
        assert not db.cancel(task_id)

    def test_set_priority_reorders(self, db):
        a = db.submit("exp", "model", "a", priority=0)
        b = db.submit("exp", "model", "b", priority=0)
        db.set_priority(b, 5)
        assert db.pop_task("model", "w").task_id == b

    def test_set_priority_after_start_fails(self, db):
        a = db.submit("exp", "model", "a")
        db.pop_task("model", "w")
        assert not db.set_priority(a, 5)


class TestCloseAndQuery:
    def test_close_refuses_submissions(self, db):
        db.close()
        with pytest.raises(StateError):
            db.submit("exp", "model", {})

    def test_close_wakes_blocked_pop(self, db):
        got = ["sentinel"]

        def popper():
            got[0] = db.pop_task("model", "w", timeout=None)

        thread = threading.Thread(target=popper)
        thread.start()
        db.close()
        thread.join(timeout=5.0)
        assert got[0] is None

    def test_counts(self, db):
        db.submit("exp", "model", {})
        running_id = db.submit("exp", "model", {})
        db.pop_task("model", "w")  # pops the first (FIFO)
        counts = db.counts()
        assert counts["queued"] == 1
        assert counts["running"] == 1

    def test_queue_length(self, db):
        db.submit("exp", "model", {})
        db.submit("exp", "model", {})
        assert db.queue_length("model") == 2
        db.pop_task("model", "w")
        assert db.queue_length("model") == 1

    def test_tasks_for_experiment(self, db):
        db.submit("e1", "model", 1)
        db.submit("e2", "model", 2)
        db.submit("e1", "model", 3)
        tasks = db.tasks_for_experiment("e1")
        assert [t.payload_obj() for t in tasks] == [1, 3]

    def test_unknown_task(self, db):
        with pytest.raises(NotFoundError):
            db.get_task(999)

    def test_wait_for_timeout(self, db):
        task_id = db.submit("exp", "model", {})
        with pytest.raises(StateError):
            db.wait_for(task_id, timeout=0.05)

    def test_sim_clock_timestamps(self, env):
        db = TaskDatabase(clock=lambda: env.now)
        env.run_until(3.0)
        task_id = db.submit("exp", "model", {})
        assert db.get_task(task_id).submitted_at == 3.0


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=-5, max_value=5), min_size=1, max_size=30))
def test_pop_order_respects_priority_then_fifo(priorities):
    db = TaskDatabase()
    ids = [db.submit("e", "t", i, priority=p) for i, p in enumerate(priorities)]
    popped = []
    while True:
        task = db.pop_task("t", "w")
        if task is None:
            break
        popped.append(task)
    keys = [(-t.priority, t.task_id) for t in popped]
    assert keys == sorted(keys)
    assert len(popped) == len(priorities)

"""Tests for EMEWS experiment reports."""

from __future__ import annotations

import pytest

from repro.common.errors import ValidationError
from repro.emews import EmewsService, SimWorkerPool, as_completed
from repro.emews.api import TaskQueue
from repro.emews.db import TaskDatabase
from repro.emews.reports import experiment_report, render_report
from repro.emews.sqlite_db import SqliteTaskDatabase


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
class TestExperimentReport:
    def _db(self, backend, clock=None):
        if backend == "memory":
            return TaskDatabase(clock=clock)
        return SqliteTaskDatabase(clock=clock)

    def test_completed_experiment(self, backend):
        db = self._db(backend)
        svc = EmewsService(db)
        svc.start_local_pool("t", lambda p: {"y": p["x"]}, n_workers=3)
        queue = svc.make_queue("exp-r")
        futures = queue.submit_tasks("t", [{"x": i} for i in range(20)])
        for future in as_completed(futures, timeout=30):
            pass
        report = experiment_report(db, "exp-r")
        assert report.n_tasks == 20
        assert report.n_complete == 20
        assert report.success_rate == 1.0
        assert report.n_outstanding == 0
        assert report.makespan >= 0
        assert sum(report.worker_load.values()) == 20
        assert report.load_imbalance() >= 1.0
        svc.finalize()

    def test_failures_counted(self, backend):
        db = self._db(backend)
        svc = EmewsService(db)

        def flaky(payload):
            if payload["x"] % 2 == 0:
                raise RuntimeError("even inputs break")
            return {"ok": True}

        svc.start_local_pool("t", flaky, n_workers=2)
        queue = svc.make_queue("exp-f")
        futures = queue.submit_tasks("t", [{"x": i} for i in range(10)])
        for future in futures:
            db.wait_for(future.task_id, timeout=30)
        report = experiment_report(db, "exp-f")
        assert report.n_failed == 5
        assert report.n_complete == 5
        assert report.success_rate == 0.5
        svc.finalize()

    def test_outstanding_tasks(self, backend):
        db = self._db(backend)
        queue = TaskQueue(db, "exp-o")
        queue.submit_tasks("t", [{} for _ in range(4)])
        report = experiment_report(db, "exp-o")
        assert report.n_outstanding == 4
        assert report.mean_queue_wait == 0.0

    def test_unknown_experiment(self, backend):
        db = self._db(backend)
        with pytest.raises(ValidationError):
            experiment_report(db, "ghost")

    def test_render(self, backend):
        db = self._db(backend)
        queue = TaskQueue(db, "exp-p")
        queue.submit_task("t", {})
        text = render_report(experiment_report(db, "exp-p"))
        assert "success rate" in text
        assert "exp-p" in text


class TestSimClockReport:
    def test_queue_waits_in_simulated_days(self, env):
        """With a 1-slot sim pool and 0.5-day tasks, the k-th task waits
        exactly k * 0.5 days — the report must show it."""
        db = TaskDatabase(clock=lambda: env.now)
        SimWorkerPool(env, db, "t", duration_fn=lambda p: 0.5, n_slots=1).start()
        queue = TaskQueue(db, "exp-sim")
        queue.submit_tasks("t", [{} for _ in range(4)])
        env.run()
        report = experiment_report(db, "exp-sim")
        assert report.max_queue_wait == pytest.approx(1.5)
        assert report.mean_queue_wait == pytest.approx(0.75)
        assert report.mean_service_time == pytest.approx(0.5)
        assert report.makespan == pytest.approx(2.0)

"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest
from hypothesis import settings

# Property tests exercise real simulations; wall-clock deadlines only make
# them flaky on loaded machines.
settings.register_profile("repro", deadline=None)
settings.load_profile("repro")

from repro.globus.auth import AuthService
from repro.globus.collections import StorageService
from repro.globus.transfer import TransferService
from repro.sim import SimulationEnvironment


@pytest.fixture
def env() -> SimulationEnvironment:
    """A fresh simulation environment."""
    return SimulationEnvironment()


@pytest.fixture
def auth(env) -> AuthService:
    """An auth service on the shared environment."""
    return AuthService(env)


@pytest.fixture
def user(auth):
    """(identity, token) for a test user with all scopes."""
    identity = auth.register_identity("tester")
    token = auth.issue_token(
        identity,
        ["transfer", "compute", "flows", "timers", "aero"],
        lifetime=10_000.0,
    )
    return identity, token


@pytest.fixture
def storage(auth, env) -> StorageService:
    """A storage service."""
    return StorageService(auth, env)


@pytest.fixture
def transfer(auth, storage, env) -> TransferService:
    """A transfer service over the shared storage."""
    return TransferService(auth, storage, env)

"""Unit tests for the structured event log (:mod:`repro.obs.events`)."""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ValidationError
from repro.obs import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    EventBus,
    Observability,
    events_to_jsonl,
    parse_events_jsonl,
)


class TestSchema:
    def test_unknown_kind_rejected(self):
        bus = EventBus()
        with pytest.raises(ValidationError, match="unknown event kind"):
            bus.emit("made.up", "x")

    def test_missing_required_attr_rejected(self):
        bus = EventBus()
        with pytest.raises(ValidationError, match="requires attribute"):
            bus.emit("run.finish", "t-1")  # no `state`

    def test_extra_attrs_allowed(self):
        bus = EventBus()
        event = bus.emit("run.finish", "t-1", state="completed", bonus=42)
        assert event.attrs == {"state": "completed", "bonus": 42}

    def test_every_registered_kind_has_required_attrs(self):
        for kind, required in EVENT_KINDS.items():
            assert isinstance(required, tuple), kind


class TestEmission:
    def test_sequence_and_clock(self):
        ticks = [0.0]
        bus = EventBus(lambda: ticks[0])
        first = bus.emit("fault.inject", "transfer", site="transfer", scripted=True)
        ticks[0] = 3.0
        second = bus.emit("state.kill", "run-1", reason="boom")
        assert (first.seq, first.t) == (1, 0.0)
        assert (second.seq, second.t) == (2, 3.0)

    def test_explicit_t_overrides_clock(self):
        bus = EventBus(lambda: 9.0)
        event = bus.emit("state.kill", "run-1", t=1.5, reason="boom")
        assert event.t == 1.5

    def test_disabled_bus_records_nothing(self):
        bus = EventBus(enabled=False)
        assert bus.emit("state.kill", "r", reason="x") is None
        assert len(bus) == 0

    def test_subscribers_see_nested_emits_in_seq_order(self):
        bus = EventBus()
        seen = []

        def reactor(event):
            seen.append((event.seq, event.kind))
            if event.kind == "state.kill":
                bus.emit("recorder.dump", "r", trigger="kill", name="d", n_events=1)

        bus.subscribe(reactor)
        bus.emit("state.kill", "r", reason="x")
        assert seen == [(1, "state.kill"), (2, "recorder.dump")]
        assert [e.seq for e in bus.events] == [1, 2]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        fn = bus.subscribe(lambda e: seen.append(e.kind))
        bus.emit("state.kill", "r", reason="x")
        bus.unsubscribe(fn)
        bus.emit("state.kill", "r2", reason="y")
        assert seen == ["state.kill"]


class TestSerialization:
    def test_jsonl_is_canonical_and_round_trips(self):
        bus = EventBus(lambda: 2.0)
        bus.emit("run.admit", "acme-00000", tenant="acme", span_id=7,
                 workflow="wastewater", priority=1, seq=0)
        bus.emit("run.finish", "acme-00000", tenant="acme", state="completed")
        text = bus.to_jsonl()
        # Canonical form: sorted keys, no spaces, versioned.
        line = text.splitlines()[0]
        doc = json.loads(line)
        assert list(doc) == sorted(doc)
        assert doc["v"] == EVENT_SCHEMA_VERSION
        assert ", " not in line
        parsed = parse_events_jsonl(text)
        assert [(e.seq, e.kind, e.key, e.tenant) for e in parsed] == [
            (1, "run.admit", "acme-00000", "acme"),
            (2, "run.finish", "acme-00000", "acme"),
        ]
        assert parsed[0].span_id == 7
        assert events_to_jsonl(parsed) == text

    def test_schema_version_mismatch_rejected(self):
        bad = json.dumps({"v": 999, "seq": 1, "t": 0.0, "kind": "state.kill",
                          "key": "r", "tenant": None, "span": None, "attrs": {}})
        with pytest.raises(ValidationError, match="schema v999"):
            parse_events_jsonl(bad)

    def test_malformed_line_rejected(self):
        with pytest.raises(ValidationError, match="not JSON"):
            parse_events_jsonl("{nope")

    def test_empty_log(self):
        assert parse_events_jsonl("") == []
        assert events_to_jsonl([]) == ""


class TestObservabilityIntegration:
    def test_bundle_carries_a_bus_and_emit_passthrough(self):
        obs = Observability()
        obs.emit("state.kill", "r", reason="x")
        assert obs.events.kinds() == {"state.kill": 1}

    def test_disabled_bundle_disables_the_bus(self):
        obs = Observability(enabled=False)
        assert obs.emit("state.kill", "r", reason="x") is None
        assert len(obs.events) == 0

    def test_bind_clock_rebinds_the_bus(self):
        obs = Observability()
        obs.bind_clock(lambda: 42.0)
        assert obs.emit("state.kill", "r", reason="x").t == 42.0

"""MetricsRegistry semantics: counters, gauges, histogram bucket edges."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError, ValidationError
from repro.obs.metrics import Histogram, MetricsRegistry


class TestCounters:
    def test_inc_creates_and_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("retries")
        reg.inc("retries", 3)
        assert reg.counter_value("retries") == 4

    def test_counters_reject_negative_increments(self):
        reg = MetricsRegistry()
        with pytest.raises(ValidationError):
            reg.inc("x", -1)

    def test_set_counter_is_absolute(self):
        reg = MetricsRegistry()
        reg.inc("perf.memo_hits", 2)
        reg.set_counter("perf.memo_hits", 10)
        assert reg.counter_value("perf.memo_hits") == 10

    def test_absorb_counters_prefixes_and_overwrites(self):
        reg = MetricsRegistry()
        reg.absorb_counters({"hits": 1, "misses": 2}, prefix="perf.")
        reg.absorb_counters({"hits": 5, "misses": 7}, prefix="perf.")
        assert reg.counter_values(prefix="perf.") == {"hits": 5, "misses": 7}

    def test_counter_values_strips_prefix(self):
        reg = MetricsRegistry()
        reg.inc("resilience.transfer_retries", 2)
        reg.inc("unrelated")
        assert reg.counter_values(prefix="resilience.") == {"transfer_retries": 2}

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.inc("name")
        with pytest.raises(ConfigurationError):
            reg.gauge("name")
        with pytest.raises(ConfigurationError):
            reg.histogram("name")


class TestGauges:
    def test_gauge_moves_both_directions(self):
        reg = MetricsRegistry()
        g = reg.gauge("busy_slots")
        g.inc(3)
        g.dec(1)
        assert g.value == 2
        reg.set_gauge("busy_slots", 0.5)
        assert reg.gauge("busy_slots").value == 0.5


class TestHistogramBucketEdges:
    """The ``le`` edge semantics the exporters and tests depend on."""

    def test_value_on_edge_lands_in_that_bucket(self):
        h = Histogram("h", bounds=(0.1, 1.0, 10.0))
        for v in (0.1, 1.0, 10.0):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1, 0]

    def test_below_first_edge_lands_in_first_bucket(self):
        h = Histogram("h", bounds=(0.1, 1.0))
        h.observe(0.0)
        h.observe(0.0999)
        assert h.bucket_counts == [2, 0, 0]

    def test_above_last_edge_lands_in_overflow(self):
        h = Histogram("h", bounds=(0.1, 1.0))
        h.observe(1.0000001)
        h.observe(99.0)
        assert h.bucket_counts == [0, 0, 2]

    def test_mixed_observations(self):
        h = Histogram("h", bounds=(0.1, 1.0, 10.0))
        for v in (0.05, 0.1, 5.0, 99.0):
            h.observe(v)
        assert h.bucket_counts == [2, 0, 1, 1]
        assert h.count == 4
        assert h.mean == pytest.approx((0.05 + 0.1 + 5.0 + 99.0) / 4)

    def test_as_dict_shape(self):
        h = Histogram("h", bounds=(1.0,))
        h.observe(0.5)
        d = h.as_dict()
        assert d == {
            "bounds": [1.0],
            "buckets": [1, 0],
            "count": 1,
            "max": 0.5,
            "min": 0.5,
            "sum": 0.5,
        }

    def test_bounds_must_increase_strictly(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=())

    def test_reregistration_with_different_bounds_raises(self):
        reg = MetricsRegistry()
        reg.histogram("wait", bounds=(1.0, 2.0))
        reg.histogram("wait", bounds=(1.0, 2.0))  # identical is fine
        with pytest.raises(ConfigurationError):
            reg.histogram("wait", bounds=(1.0, 3.0))


class TestSnapshot:
    def test_snapshot_is_sorted_and_plain(self):
        reg = MetricsRegistry()
        reg.inc("b")
        reg.inc("a")
        reg.set_gauge("g", 1.5)
        reg.observe("h", 0.2, bounds=(1.0,))
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_names_covers_all_kinds(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.set_gauge("g", 0)
        reg.observe("h", 1, bounds=(1.0,))
        assert list(reg.names()) == ["c", "g", "h"]


class TestQuantile:
    def test_interpolates_within_bucket_edges(self):
        h = Histogram("wait", bounds=(1.0, 2.0, 5.0, 10.0))
        for value in (0.5, 1.5, 4.0, 8.0):
            h.observe(value)
        # rank 2 lands at the top of the (1, 2] bucket.
        assert h.quantile(0.5) == pytest.approx(2.0)
        # rank 0.5 is halfway through the first bucket (lower edge 0).
        assert h.quantile(0.125) == pytest.approx(0.5)

    def test_clamped_to_observed_range(self):
        h = Histogram("wait", bounds=(1.0, 2.0, 5.0, 10.0))
        for value in (0.5, 1.5, 4.0, 8.0):
            h.observe(value)
        assert h.quantile(1.0) == 8.0  # interpolation says 10, max says 8
        assert h.quantile(0.0) == 0.5

    def test_overflow_bucket_returns_observed_max(self):
        h = Histogram("wait", bounds=(1.0, 2.0))
        h.observe(50.0)
        assert h.quantile(0.5) == 50.0
        assert h.quantile(0.99) == 50.0

    def test_empty_histogram_is_zero(self):
        assert Histogram("wait", bounds=(1.0,)).quantile(0.99) == 0.0

    def test_invalid_q_raises(self):
        h = Histogram("wait", bounds=(1.0,))
        with pytest.raises(ConfigurationError):
            h.quantile(1.5)
        with pytest.raises(ConfigurationError):
            h.quantile(-0.1)

"""Trace determinism and Chrome trace_event schema sanity.

The acceptance bar for the tracer: two workflow runs with the same seed
must export *byte-identical* Chrome trace JSON once the segregated
wall-clock fields are zeroed, and the exported event stream must be a
well-formed trace_event document (sorted timestamps, every async begin
matched by an end with the same id).
"""

from __future__ import annotations

import json

import pytest

from repro.obs import Observability, chrome_trace, chrome_trace_json
from repro.workflows.wastewater_rt import run_wastewater_workflow

# Small but non-trivial: several polls, staged transfers, batch jobs,
# triggered analyses, and the ALL-policy aggregation all fire.
RUN_KWARGS = dict(sim_days=4.0, goldstein_iterations=120, seed=7)


def observed_run() -> Observability:
    obs = Observability()
    run_wastewater_workflow(observability=obs, **RUN_KWARGS)
    return obs


@pytest.fixture(scope="module")
def trace_pair():
    return observed_run(), observed_run()


class TestDeterminism:
    def test_same_seed_runs_export_identical_zero_wall_json(self, trace_pair):
        first, second = trace_pair
        a = chrome_trace_json(first.tracer, zero_wall=True)
        b = chrome_trace_json(second.tracer, zero_wall=True)
        assert a == b  # byte-for-byte

    def test_metrics_snapshots_identical(self, trace_pair):
        first, second = trace_pair
        assert first.snapshot() == second.snapshot()

    def test_zero_wall_actually_zeroes_wall_fields(self, trace_pair):
        obs, _ = trace_pair
        events = chrome_trace(obs.tracer, zero_wall=True)["traceEvents"]
        walls = [
            ev["args"]["wall"]
            for ev in events
            if isinstance(ev.get("args"), dict) and "wall" in ev["args"]
        ]
        assert walls, "expected wall fields on duration events"
        assert all(w == {"dur_s": 0.0, "start_s": 0.0} for w in walls)


class TestChromeSchema:
    @pytest.fixture(scope="class")
    def events(self, trace_pair):
        return chrome_trace(trace_pair[0].tracer)["traceEvents"]

    def test_json_round_trips(self, trace_pair):
        doc = json.loads(chrome_trace_json(trace_pair[0].tracer))
        assert isinstance(doc["traceEvents"], list)
        assert doc["traceEvents"]

    def test_required_fields_present(self, events):
        for ev in events:
            assert ev["ph"] in {"b", "e", "i", "M"}
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
            if ev["ph"] != "M":
                assert isinstance(ev["ts"], int)
                assert ev["ts"] >= 0

    def test_timestamps_sorted(self, events):
        ts = [ev["ts"] for ev in events if ev["ph"] in {"b", "e", "i"}]
        assert ts == sorted(ts)

    def test_async_begins_matched_by_ends(self, events):
        begins = {}
        for ev in events:
            if ev["ph"] == "b":
                assert ev["id"] not in begins, "duplicate begin id"
                begins[ev["id"]] = ev
            elif ev["ph"] == "e":
                start = begins.pop(ev["id"], None)
                assert start is not None, f"end without begin: {ev}"
                assert ev["ts"] >= start["ts"]
                assert ev["cat"] == start["cat"]
        assert not begins, f"unmatched begins: {sorted(begins)}"

    def test_categories_have_thread_metadata(self, events):
        named = {
            ev["tid"]
            for ev in events
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        used = {ev["tid"] for ev in events if ev["ph"] in {"b", "e"}}
        assert used <= named

"""SLO engine semantics: burn-rate math, fire/resolve, windows, reports."""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ValidationError
from repro.obs import EventBus, SloEngine, SloSpec, default_service_slos


def error_rate_spec(**overrides):
    base = dict(
        name="errors",
        event_kind="run.finish",
        bad_when=(("attrs.state", "eq", "failed"),),
        objective=0.9,  # 10% error budget
        fast_window=10.0,
        slow_window=40.0,
        burn_threshold=2.0,  # fires at >= 20% bad in both windows
    )
    base.update(overrides)
    return SloSpec(**base)


def finish(bus, t, state, tenant="acme"):
    bus.emit("run.finish", f"{tenant}-{t}", tenant=tenant, t=t, state=state)


class TestSpecValidation:
    def test_objective_bounds(self):
        with pytest.raises(ValidationError):
            error_rate_spec(objective=1.0)
        with pytest.raises(ValidationError):
            error_rate_spec(objective=0.0)

    def test_window_ordering(self):
        with pytest.raises(ValidationError):
            error_rate_spec(fast_window=50.0, slow_window=10.0)

    def test_bad_when_ops(self):
        with pytest.raises(ValidationError):
            error_rate_spec(bad_when=(("attrs.state", "matches", "x"),))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            SloEngine((error_rate_spec(), error_rate_spec()))


class TestBurnRate:
    def test_fires_when_both_windows_burn(self):
        bus = EventBus()
        engine = SloEngine((error_rate_spec(),)).attach(bus)
        # Fires at the first failure: 1 bad of 3 in the fast window is a
        # 33% bad fraction against a 10% budget — burn 10/3.
        for t, state in enumerate(
            ["completed", "completed", "failed", "completed", "failed"]
        ):
            finish(bus, float(t), state)
        assert engine.active_alerts() == ["errors"]
        assert [(n, v) for n, v, _ in engine.alert_log] == [("errors", "slo.alert")]
        alert = [e for e in bus.events if e.kind == "slo.alert"][0]
        assert alert.key == "errors"
        assert alert.attrs["burn_fast"] == pytest.approx(10.0 / 3.0, abs=1e-4)

    def test_resolves_when_fast_window_recovers(self):
        bus = EventBus()
        engine = SloEngine((error_rate_spec(),)).attach(bus)
        for t, state in enumerate(["failed", "failed", "completed"]):
            finish(bus, float(t), state)
        assert engine.active_alerts() == ["errors"]
        # A run of successes pushes the bad events out of the fast window.
        for t in range(12, 24):
            finish(bus, float(t), "completed")
        assert engine.active_alerts() == []
        verdicts = [(n, v) for n, v, _ in engine.alert_log]
        assert verdicts == [("errors", "slo.alert"), ("errors", "slo.resolve")]
        kinds = [e.kind for e in bus.events if e.kind.startswith("slo.")]
        assert kinds == ["slo.alert", "slo.resolve"]

    def test_good_traffic_never_fires(self):
        bus = EventBus()
        engine = SloEngine((error_rate_spec(),)).attach(bus)
        for t in range(50):
            finish(bus, float(t), "completed")
        assert engine.alert_log == []
        assert engine.budget_remaining("errors") == 1.0

    def test_slow_window_guards_against_stale_burn(self):
        # A burst of old failures outside the slow window must not count.
        bus = EventBus()
        engine = SloEngine((error_rate_spec(),)).attach(bus)
        for t in range(3):
            finish(bus, float(t), "failed")
        assert engine.active_alerts() == ["errors"]
        for t in range(100, 160):
            finish(bus, float(t), "completed")
        report = engine.report()["specs"]["errors"]
        assert report["active"] is False
        assert report["burn_slow"] == 0.0

    def test_min_events_floor(self):
        bus = EventBus()
        engine = SloEngine((error_rate_spec(min_events=3),)).attach(bus)
        finish(bus, 0.0, "failed")
        assert engine.active_alerts() == []  # 1/1 bad but below the floor
        finish(bus, 1.0, "failed")
        finish(bus, 2.0, "failed")
        assert engine.active_alerts() == ["errors"]

    def test_tenant_filter(self):
        bus = EventBus()
        engine = SloEngine(
            (error_rate_spec(tenant="beta"),)
        ).attach(bus)
        for t in range(5):
            finish(bus, float(t), "failed", tenant="acme")
        assert engine.active_alerts() == []
        for t in range(5, 8):
            finish(bus, float(t), "failed", tenant="beta")
        assert engine.active_alerts() == ["errors"]

    def test_verdict_events_do_not_feed_indicators(self):
        # A spec watching slo.alert-shaped traffic must not recurse.
        bus = EventBus()
        engine = SloEngine((error_rate_spec(),)).attach(bus)
        for t in range(3):
            finish(bus, float(t), "failed")
        assert len([e for e in bus.events if e.kind == "slo.alert"]) == 1


class TestLatencyQuantiles:
    def test_value_field_histogram_reports_quantiles(self):
        spec = SloSpec(
            name="latency",
            event_kind="run.dispatch",
            bad_when=(("attrs.wait_ticks", "gt", 50.0),),
            objective=0.99,
            fast_window=100.0,
            slow_window=1000.0,
            value_field="attrs.wait_ticks",
            value_bounds=(1, 2, 5, 10, 20, 50, 100),
        )
        bus = EventBus()
        engine = SloEngine((spec,)).attach(bus)
        for t, wait in enumerate([1.0, 2.0, 2.0, 4.0, 8.0, 60.0]):
            bus.emit("run.dispatch", f"t-{t}", t=float(t), wait_ticks=wait)
        report = engine.report()["specs"]["latency"]
        assert report["bad"] == 1
        assert 0.0 < report["p50"] <= 5.0
        assert report["p99"] <= 60.0


class TestReport:
    def test_report_is_json_serializable_and_deterministic(self):
        def run_once():
            bus = EventBus()
            engine = SloEngine(default_service_slos(("acme",))).attach(bus)
            for t in range(8):
                bus.emit("run.dispatch", f"acme-{t}", tenant="acme", t=float(t),
                         wait_ticks=float(t * 30))
                finish(bus, float(t), "failed" if t % 2 else "completed")
            return engine.report_json(), bus.to_jsonl()

        first = run_once()
        second = run_once()
        assert first == second
        json.loads(first[0])  # valid JSON

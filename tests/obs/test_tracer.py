"""Span nesting, parent/child propagation, and the disabled fast path."""

from __future__ import annotations

import pytest

from repro.obs import Observability
from repro.obs.tracer import _DISABLED_SPAN, Tracer
from repro.sim import SimulationEnvironment


def make_tracer(clock=None) -> Tracer:
    # Frozen wall clock keeps wall fields deterministic in assertions.
    return Tracer(clock, wall_clock=lambda: 0.0)


class TestSpanBasics:
    def test_ids_are_sequential_from_one(self):
        tracer = make_tracer()
        spans = [tracer.begin(f"op-{i}") for i in range(5)]
        assert [s.span_id for s in spans] == [1, 2, 3, 4, 5]

    def test_span_records_sim_interval(self):
        now = [3.5]
        tracer = make_tracer(lambda: now[0])
        span = tracer.begin("transfer", "transfer")
        now[0] = 4.25
        tracer.end(span)
        assert span.start == 3.5
        assert span.end == 4.25
        assert span.duration == pytest.approx(0.75)
        assert span.status == "ok"

    def test_end_attaches_outcome_attrs(self):
        tracer = make_tracer()
        span = tracer.begin("job")
        tracer.end(span, status="error", outcome="requeued")
        assert span.status == "error"
        assert span.attrs["outcome"] == "requeued"

    def test_unfinished_spans_excluded_from_finished(self):
        tracer = make_tracer()
        done = tracer.begin("a")
        tracer.begin("still-open")
        tracer.end(done)
        assert [s.name for s in tracer.finished_spans()] == ["a"]


class TestNestingAndPropagation:
    def test_span_context_nests_parent_ids(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            assert tracer.current is outer
        assert outer.parent_id is None
        assert tracer.current is None

    def test_begin_defaults_parent_to_current(self):
        tracer = make_tracer()
        with tracer.span("event") as event:
            child = tracer.begin("async-op")
        assert child.parent_id == event.span_id

    def test_begin_parent_none_forces_root(self):
        tracer = make_tracer()
        with tracer.span("event"):
            root = tracer.begin("detached", parent=None)
        assert root.parent_id is None

    def test_activate_reestablishes_stored_parent(self):
        tracer = make_tracer()
        owner = tracer.begin("flow-run")
        # Later, inside an unrelated callback scope:
        with tracer.span("sim.event"):
            with tracer.activate(owner):
                child = tracer.begin("transfer")
            sibling = tracer.begin("other")
        assert child.parent_id == owner.span_id
        assert sibling.parent_id != owner.span_id

    def test_activate_none_is_noop(self):
        tracer = make_tracer()
        with tracer.activate(None):
            span = tracer.begin("op")
        assert span.parent_id is None

    def test_span_error_status_on_raise(self):
        tracer = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (span,) = tracer.finished_spans()
        assert span.status == "error"
        assert span.attrs["error"] == "ValueError"


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        span = tracer.begin("op")
        assert span is _DISABLED_SPAN
        tracer.end(span)
        with tracer.span("scope"):
            tracer.instant("mark")
        assert tracer.spans == []
        assert tracer.instants == []

    def test_disabled_span_swallows_annotations(self):
        tracer = Tracer(enabled=False)
        span = tracer.begin("op")
        span.annotate(anything="goes")
        # Shared inert object: must not leak state between uses.
        tracer.end(span, outcome="ignored")


class TestEnvironmentInstall:
    def test_install_binds_clock_and_traces_events(self):
        env = SimulationEnvironment()
        obs = env.install_observability(Observability())
        env.schedule(2.0, lambda: None, label="tick")
        env.run_until(5.0)
        (span,) = obs.tracer.finished_spans()
        assert span.name == "tick"
        assert span.category == "sim.event"
        assert span.start == 2.0

    def test_double_install_rejected(self):
        from repro.common.errors import SimulationError

        env = SimulationEnvironment()
        env.install_observability(Observability())
        with pytest.raises(SimulationError):
            env.install_observability(Observability())

    def test_uninstrumented_env_has_no_obs(self):
        assert SimulationEnvironment().obs is None

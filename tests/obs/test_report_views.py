"""Regression: legacy report dicts are reproduced exactly by registry views.

The ``resilience_report`` / ``perf_report`` dicts predate ``repro.obs``;
with an Observability installed they become derived views over the
metrics registry.  These tests pin the contract that the views are
bit-for-bit the legacy output, for both workflows, under fault injection.
"""

from __future__ import annotations

import pytest

from repro.faults.plan import FaultPlan, FaultSpec
from repro.gsa.music import MusicConfig
from repro.obs import PERF_KEYS, RESILIENCE_KEYS, Observability
from repro.perf import MemoCache
from repro.workflows.music_gsa import run_music_vs_pce
from repro.workflows.wastewater_rt import run_wastewater_workflow


def chaos_plan() -> FaultPlan:
    return FaultPlan(
        seed=99,
        specs=[
            FaultSpec(site="transfer", rate=0.08),
            FaultSpec(site="flows.step", rate=0.05),
        ],
    )


class TestWastewaterReportParity:
    @pytest.fixture(scope="class")
    def runs(self):
        kwargs = dict(sim_days=4.0, goldstein_iterations=120, seed=11)
        legacy = run_wastewater_workflow(
            fault_plan=chaos_plan(), memo_cache=MemoCache(), **kwargs
        )
        obs = Observability()
        observed = run_wastewater_workflow(
            fault_plan=chaos_plan(),
            memo_cache=MemoCache(),
            observability=obs,
            **kwargs,
        )
        return legacy, observed, obs

    def test_resilience_report_matches_legacy(self, runs):
        legacy, observed, _ = runs
        assert observed.resilience_report == legacy.resilience_report
        assert tuple(observed.resilience_report) == RESILIENCE_KEYS
        # Chaos must actually have been absorbed for this to mean anything.
        assert sum(legacy.resilience_report.values()) > 0

    def test_perf_report_matches_legacy(self, runs):
        legacy, observed, _ = runs
        assert observed.perf_report == legacy.perf_report
        assert tuple(observed.perf_report) == PERF_KEYS
        assert legacy.perf_report["memo_hits"] + legacy.perf_report["memo_misses"] > 0

    def test_reports_are_registry_views(self, runs):
        _, observed, obs = runs
        assert observed.resilience_report == obs.resilience_view(RESILIENCE_KEYS)
        assert observed.perf_report == obs.perf_view(PERF_KEYS)

    def test_estimates_unchanged_by_instrumentation(self, runs):
        legacy, observed, _ = runs
        assert set(observed.plant_estimates) == set(legacy.plant_estimates)
        for plant, est in observed.plant_estimates.items():
            assert est.median == pytest.approx(
                legacy.plant_estimates[plant].median, abs=0.0
            )


class TestMusicReportParity:
    @pytest.fixture(scope="class")
    def runs(self):
        kwargs = dict(
            seed=5,
            budget=40,
            music_config=MusicConfig(
                n_initial=12, refit_every=10, surrogate_mc=64, n_candidates=16
            ),
            reference_n=64,
            parallel=True,
            fault_rate=0.2,
            fault_seed=3,
        )
        legacy = run_music_vs_pce(memo_cache=MemoCache(), **kwargs)
        obs = Observability()
        observed = run_music_vs_pce(
            memo_cache=MemoCache(), observability=obs, **kwargs
        )
        return legacy, observed, obs

    def test_reports_match_legacy(self, runs):
        legacy, observed, _ = runs
        assert observed.resilience_report == legacy.resilience_report
        assert observed.perf_report == legacy.perf_report
        assert legacy.resilience_report["evaluator_retries"] > 0

    def test_reports_are_registry_views(self, runs):
        _, observed, obs = runs
        # EMEWS path: views are the absorbed counters verbatim (keys=None).
        assert observed.resilience_report == obs.resilience_view()
        assert observed.perf_report == obs.perf_view()

    def test_curves_unchanged_by_instrumentation(self, runs):
        legacy, observed, _ = runs
        assert len(observed.music_curve) == len(legacy.music_curve)
        for (n_a, s_a), (n_b, s_b) in zip(observed.music_curve, legacy.music_curve):
            assert n_a == n_b
            assert s_a == pytest.approx(s_b, abs=0.0)

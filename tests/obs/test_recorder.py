"""Flight-recorder semantics: rings, triggers, byte-identical dumps."""

from __future__ import annotations

import pytest

from repro.common.errors import ValidationError
from repro.obs import (
    EventBus,
    FlightRecorder,
    Observability,
    SloSpec,
    parse_events_jsonl,
)


def make_bus_and_recorder(capacity=4):
    bus = EventBus(lambda: 0.0)
    recorder = FlightRecorder(capacity=capacity).attach(bus)
    return bus, recorder


class TestRings:
    def test_capacity_validated(self):
        with pytest.raises(ValidationError):
            FlightRecorder(capacity=0)

    def test_ring_is_bounded_per_key(self):
        bus, recorder = make_bus_and_recorder(capacity=3)
        for i in range(10):
            bus.emit("state.checkpoint", "run-1", t=float(i), record=f"k{i}")
        dump = parse_events_jsonl(recorder.dump(key="run-1"))
        assert [e.attrs["record"] for e in dump] == ["k7", "k8", "k9"]

    def test_tenant_and_global_rings(self):
        bus, recorder = make_bus_and_recorder()
        bus.emit("run.admit", "acme-0", tenant="acme", workflow="w", priority=0,
                 seq=0)
        bus.emit("run.admit", "beta-0", tenant="beta", workflow="w", priority=0,
                 seq=1)
        assert len(parse_events_jsonl(recorder.dump(tenant="acme"))) == 1
        assert len(parse_events_jsonl(recorder.dump())) == 2


class TestTriggers:
    def test_failed_run_dumps_its_own_story(self):
        bus, recorder = make_bus_and_recorder()
        bus.emit("run.admit", "acme-0", tenant="acme", workflow="w", priority=0,
                 seq=0)
        bus.emit("run.dispatch", "acme-0", tenant="acme", wait_ticks=1.0)
        bus.emit("run.finish", "acme-0", tenant="acme", state="failed",
                 error="boom")
        assert list(recorder.dumps) == ["000003-failure-acme-0"]
        story = parse_events_jsonl(recorder.dumps["000003-failure-acme-0"])
        assert [e.kind for e in story] == ["run.admit", "run.dispatch", "run.finish"]
        # The dump was announced on the bus.
        announce = [e for e in bus.events if e.kind == "recorder.dump"]
        assert len(announce) == 1
        assert announce[0].attrs["trigger"] == "failure"

    def test_completed_run_does_not_dump(self):
        bus, recorder = make_bus_and_recorder()
        bus.emit("run.finish", "acme-0", tenant="acme", state="completed")
        assert recorder.dumps == {}

    def test_kill_triggers_dump(self):
        bus, recorder = make_bus_and_recorder()
        bus.emit("state.checkpoint", "run-9", record="flows.step")
        bus.emit("state.kill", "run-9", reason="kill switch")
        assert list(recorder.dumps) == ["000002-kill-run-9"]

    def test_alert_dump_includes_its_own_cause(self):
        obs = Observability(clock=lambda: 0.0)
        spec = SloSpec(
            name="errors",
            event_kind="run.finish",
            bad_when=(("attrs.state", "eq", "failed"),),
            objective=0.9,
            fast_window=10.0,
            slow_window=40.0,
        )
        recorder, _engine = obs.install_telemetry((spec,))
        for t in range(3):
            obs.emit("run.finish", f"acme-{t}", tenant="acme", t=float(t),
                     state="failed")
        alert_dumps = [n for n in recorder.dumps if "-alert-" in n]
        assert alert_dumps == ["000003-alert-errors"]
        # Alert dumps fall back to the tenant/global ring; the trigger
        # chain (the failing run.finish, then the alert itself) is present.
        story = parse_events_jsonl(recorder.dumps[alert_dumps[0]])
        kinds = [e.kind for e in story]
        assert "run.finish" in kinds and "slo.alert" in kinds

    def test_dump_is_snapshot_not_live_view(self):
        bus, recorder = make_bus_and_recorder()
        bus.emit("run.finish", "acme-0", tenant="acme", state="failed")
        before = recorder.dumps["000001-failure-acme-0"]
        bus.emit("run.finish", "acme-0", tenant="acme", state="failed")
        assert recorder.dumps["000001-failure-acme-0"] == before


class TestDeterminism:
    def test_same_stream_same_dumps(self):
        def run_once():
            bus, recorder = make_bus_and_recorder()
            for t in range(6):
                bus.emit("run.finish", f"acme-{t % 2}", tenant="acme",
                         t=float(t), state="failed" if t % 3 == 0 else "completed")
            return dict(recorder.dumps)

        assert run_once() == run_once()

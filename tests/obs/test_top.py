"""`repro top` model and renderer: live vs replayed frames must agree."""

from __future__ import annotations

from repro.obs import EventBus, TopModel, render_top


def drive(bus):
    """A small scripted service episode across two tenants."""
    bus.emit("run.admit", "acme-0", tenant="acme", t=0.0, workflow="w",
             priority=1, seq=0)
    bus.emit("run.admit", "acme-1", tenant="acme", t=0.0, workflow="w",
             priority=1, seq=1)
    bus.emit("run.admit", "beta-0", tenant="beta", t=0.0, workflow="w",
             priority=0, seq=2)
    bus.emit("run.reject", "beta", tenant="beta", t=1.0, reason="queue-full",
             workflow="w")
    bus.emit("gang.form", "acme-0", t=1.0, size=2, capacity=4,
             tickets=["acme-0", "acme-1"])
    bus.emit("gang.flush", "acme-0", t=1.0, size=2, fused=True)
    bus.emit("run.dispatch", "acme-0", tenant="acme", t=1.0, wait_ticks=1.0)
    bus.emit("run.dispatch", "acme-1", tenant="acme", t=1.0, wait_ticks=1.0)
    bus.emit("run.finish", "acme-0", tenant="acme", t=3.0, state="completed")
    bus.emit("run.finish", "acme-1", tenant="acme", t=3.0, state="failed")
    bus.emit("run.finish", "beta-0", tenant="beta", t=3.0, state="cancelled")


class TestModel:
    def test_tenant_tallies(self):
        bus = EventBus()
        model = TopModel().attach(bus)
        drive(bus)
        assert model.tenants["acme"] == {
            "admitted": 2, "rejected": 0, "queued": 0, "running": 0,
            "completed": 1, "failed": 1, "cancelled": 0,
        }
        assert model.tenants["beta"] == {
            "admitted": 1, "rejected": 1, "queued": 0, "running": 0,
            "completed": 0, "failed": 0, "cancelled": 1,
        }

    def test_in_flight_counts(self):
        bus = EventBus()
        model = TopModel().attach(bus)
        bus.emit("run.admit", "acme-0", tenant="acme", t=0.0, workflow="w",
                 priority=1, seq=0)
        bus.emit("run.admit", "acme-1", tenant="acme", t=0.0, workflow="w",
                 priority=1, seq=1)
        bus.emit("run.dispatch", "acme-0", tenant="acme", t=1.0, wait_ticks=1.0)
        row = model.tenants["acme"]
        assert (row["queued"], row["running"]) == (1, 1)

    def test_gang_fill_ratio(self):
        bus = EventBus()
        model = TopModel().attach(bus)
        drive(bus)
        assert model.gangs == 1
        assert model.gang_fill_ratio() == 0.5
        assert model.fused_payloads == 2

    def test_alert_lifecycle(self):
        bus = EventBus()
        model = TopModel().attach(bus)
        bus.emit("slo.alert", "errors", t=1.0, slo="errors", burn_fast=4.0,
                 burn_slow=3.0)
        assert model.active_alerts == {"errors": 4.0}
        bus.emit("slo.resolve", "errors", t=2.0, slo="errors", burn_fast=0.5)
        assert model.active_alerts == {}
        assert (model.alerts_fired, model.alerts_resolved) == (1, 1)

    def test_partial_log_replay_does_not_go_negative(self):
        # Replaying a tail segment: dispatch/finish for tickets whose
        # admits were truncated away must not underflow the queue.
        bus = EventBus()
        model = TopModel().attach(bus)
        bus.emit("run.dispatch", "ghost-0", tenant="acme", t=5.0, wait_ticks=2.0)
        bus.emit("run.finish", "ghost-0", tenant="acme", t=6.0, state="completed")
        row = model.tenants["acme"]
        assert (row["queued"], row["running"], row["completed"]) == (0, 0, 1)


class TestReplayEquivalence:
    def test_live_and_replayed_frames_are_identical(self):
        bus = EventBus()
        live = TopModel().attach(bus)
        drive(bus)
        replayed = TopModel.from_jsonl(bus.to_jsonl())
        assert render_top(replayed) == render_top(live)

    def test_render_is_deterministic(self):
        def frame():
            bus = EventBus()
            model = TopModel().attach(bus)
            drive(bus)
            return render_top(model)

        assert frame() == frame()


class TestRender:
    def test_frame_shape(self):
        bus = EventBus()
        model = TopModel().attach(bus)
        drive(bus)
        frame = render_top(model)
        assert frame.startswith("repro top — t=3  events=11  dumps=0")
        assert "tenants" in frame and "gangs:" in frame
        assert frame.endswith("ALERTS: none")

    def test_frame_with_slo_report_and_alerts(self):
        bus = EventBus()
        model = TopModel().attach(bus)
        drive(bus)
        bus.emit("slo.alert", "run-errors", t=3.0, slo="run-errors",
                 burn_fast=4.0, burn_slow=3.0)
        report = {
            "specs": {
                "run-errors": {
                    "objective": 0.95, "events": 3, "bad": 1,
                    "burn_fast": 4.0, "burn_slow": 3.0,
                    "budget_remaining": 0.2, "active": True,
                }
            }
        }
        frame = render_top(model, report)
        assert "FIRING" in frame
        assert "ALERTS: run-errors (burn 4)" in frame

"""Tests for the Gaussian-process surrogate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import StateError, ValidationError
from repro.common.rng import generator_from_seed
from repro.gsa.gp import GaussianProcess


@pytest.fixture(scope="module")
def smooth_data():
    rng = generator_from_seed(0)
    x = rng.random((60, 2))
    y = np.sin(3 * x[:, 0]) + 0.5 * x[:, 1] ** 2
    return x, y


class TestFitPredict:
    def test_interpolates_noise_free_data(self, smooth_data):
        x, y = smooth_data
        gp = GaussianProcess(dim=2).fit(x, y)
        mean, _ = gp.predict(x)
        assert np.allclose(mean, y, atol=0.05)

    def test_generalizes(self, smooth_data):
        x, y = smooth_data
        gp = GaussianProcess(dim=2).fit(x, y)
        rng = generator_from_seed(1)
        x_test = rng.random((200, 2))
        y_test = np.sin(3 * x_test[:, 0]) + 0.5 * x_test[:, 1] ** 2
        mean, _ = gp.predict(x_test)
        nrmse = np.sqrt(np.mean((mean - y_test) ** 2)) / y_test.std()
        assert nrmse < 0.1

    def test_variance_small_at_training_points(self, smooth_data):
        x, y = smooth_data
        gp = GaussianProcess(dim=2).fit(x, y)
        _, var_at_train = gp.predict(x[:5])
        _, var_far = gp.predict(np.array([[5.0, 5.0]]))
        assert var_at_train.max() < var_far[0]

    def test_variance_reverts_to_prior_far_away(self, smooth_data):
        x, y = smooth_data
        gp = GaussianProcess(dim=2).fit(x, y)
        _, var = gp.predict(np.array([[100.0, 100.0]]))
        prior_var = gp.signal_variance * gp._y_std**2
        assert np.isclose(var[0], prior_var, rtol=0.01)

    def test_include_noise_increases_variance(self, smooth_data):
        x, y = smooth_data
        gp = GaussianProcess(dim=2).fit(x, y)
        _, latent = gp.predict(x[:3])
        _, noisy = gp.predict(x[:3], include_noise=True)
        assert np.all(noisy >= latent)

    def test_learns_anisotropy(self):
        """An inactive dimension gets a long lengthscale."""
        rng = generator_from_seed(2)
        x = rng.random((80, 2))
        y = np.sin(6 * x[:, 0])  # dimension 1 is inert
        gp = GaussianProcess(dim=2).fit(x, y)
        assert gp.lengthscales[1] > 2.0 * gp.lengthscales[0]

    def test_handles_noisy_data_via_nugget(self):
        rng = generator_from_seed(3)
        x = rng.random((120, 1))
        y = x[:, 0] + rng.normal(0, 0.2, 120)
        gp = GaussianProcess(dim=1).fit(x, y)
        assert gp.nugget > 1e-4  # learned substantial noise
        mean, _ = gp.predict(np.array([[0.5]]))
        assert abs(mean[0] - 0.5) < 0.1

    def test_constant_data(self):
        x = generator_from_seed(4).random((10, 2))
        gp = GaussianProcess(dim=2).fit(x, np.full(10, 3.0))
        mean, _ = gp.predict(x[:2])
        assert np.allclose(mean, 3.0, atol=1e-6)


class TestIncremental:
    def test_add_points_improves_fit(self, smooth_data):
        x, y = smooth_data
        gp = GaussianProcess(dim=2).fit(x[:20], y[:20])
        rng = generator_from_seed(5)
        x_test = rng.random((100, 2))
        y_test = np.sin(3 * x_test[:, 0]) + 0.5 * x_test[:, 1] ** 2
        err_before = np.mean((gp.predict_mean(x_test) - y_test) ** 2)
        gp.add_points(x[20:], y[20:])
        err_after = np.mean((gp.predict_mean(x_test) - y_test) ** 2)
        assert err_after < err_before
        assert gp.n_train == 60

    def test_add_points_requires_fit(self):
        gp = GaussianProcess(dim=2)
        with pytest.raises(StateError):
            gp.add_points(np.zeros((1, 2)), np.zeros(1))


class TestValidation:
    def test_predict_requires_fit(self):
        with pytest.raises(StateError):
            GaussianProcess(dim=2).predict(np.zeros((1, 2)))

    def test_shape_checks(self, smooth_data):
        x, y = smooth_data
        gp = GaussianProcess(dim=2).fit(x, y)
        with pytest.raises(ValidationError):
            gp.predict(np.zeros((3, 5)))
        with pytest.raises(ValidationError):
            GaussianProcess(dim=2).fit(np.zeros((5, 3)), np.zeros(5))

    def test_needs_two_points(self):
        with pytest.raises(ValidationError):
            GaussianProcess(dim=1).fit(np.zeros((1, 1)), np.zeros(1))

    def test_loo_rmse_small_on_smooth_data(self, smooth_data):
        x, y = smooth_data
        gp = GaussianProcess(dim=2).fit(x, y)
        assert gp.loo_rmse() < 0.3 * y.std()


class TestGradient:
    def test_analytic_gradient_matches_finite_differences(self):
        rng = generator_from_seed(7)
        x = rng.random((25, 2))
        y = np.sin(4 * x[:, 0]) * x[:, 1]
        gp = GaussianProcess(dim=2)
        gp._x = x
        gp._y_raw = y
        gp._y_mean = float(y.mean())
        gp._y_std = float(y.std())
        gp._y_std_vec = (y - gp._y_mean) / gp._y_std
        theta = np.array([np.log(0.4), np.log(0.7), np.log(1.3), np.log(1e-3)])
        _, analytic = gp._nll_and_grad(theta)
        numeric = np.empty_like(theta)
        for i in range(theta.size):
            step = np.zeros_like(theta)
            step[i] = 1e-6
            hi, _ = gp._nll_and_grad(theta + step)
            lo, _ = gp._nll_and_grad(theta - step)
            numeric[i] = (hi - lo) / 2e-6
        assert np.allclose(analytic, numeric, rtol=1e-4, atol=1e-5)


class TestHeteroskedastic:
    """hetGP-style replicate handling (the paper's surrogate package)."""

    def _noisy_replicated(self, reps=6, noise=0.3, n_unique=35, seed=8):
        from repro.common.rng import generator_from_seed

        rng = generator_from_seed(seed)
        x_unique = rng.random((n_unique, 2))
        x = np.repeat(x_unique, reps, axis=0)
        f = np.sin(3 * x[:, 0]) + x[:, 1]
        y = f + rng.normal(0, noise, x.shape[0])
        return x, y

    def test_collapse_replicates_means_and_errors(self):
        from repro.gsa.gp import collapse_replicates

        x = np.array([[0.1, 0.2], [0.1, 0.2], [0.5, 0.5]])
        y = np.array([1.0, 3.0, 7.0])
        xu, ym, nv = collapse_replicates(x, y)
        assert xu.shape == (2, 2)
        i_rep = int(np.where((xu == [0.1, 0.2]).all(axis=1))[0][0])
        i_single = 1 - i_rep
        assert ym[i_rep] == 2.0
        # s^2/r = 2.0 / 2 = 1.0 for the replicated point
        assert nv[i_rep] == pytest.approx(1.0)
        assert nv[i_single] == 0.0  # singletons carry no noise estimate

    def test_collapse_preserves_total_information(self):
        from repro.gsa.gp import collapse_replicates

        x, y = self._noisy_replicated()
        xu, ym, nv = collapse_replicates(x, y)
        assert xu.shape[0] == 35
        assert np.all(nv > 0)  # all points replicated

    def test_heteroskedastic_fit_recovers_surface(self):
        from repro.common.rng import generator_from_seed
        from repro.gsa.gp import collapse_replicates

        x, y = self._noisy_replicated()
        xu, ym, nv = collapse_replicates(x, y)
        gp = GaussianProcess(dim=2).fit(xu, ym, noise_variances=nv)
        assert gp.heteroskedastic
        rng = generator_from_seed(9)
        x_test = rng.random((200, 2))
        f_test = np.sin(3 * x_test[:, 0]) + x_test[:, 1]
        mean, _ = gp.predict(x_test)
        nrmse = np.sqrt(np.mean((mean - f_test) ** 2)) / f_test.std()
        assert nrmse < 0.25

    def test_variance_calibrated_against_truth(self):
        """~95% of held-out true values inside the 2-sigma latent band."""
        from repro.common.rng import generator_from_seed
        from repro.gsa.gp import collapse_replicates

        x, y = self._noisy_replicated(reps=8)
        xu, ym, nv = collapse_replicates(x, y)
        gp = GaussianProcess(dim=2).fit(xu, ym, noise_variances=nv)
        rng = generator_from_seed(10)
        x_test = rng.random((300, 2))
        f_test = np.sin(3 * x_test[:, 0]) + x_test[:, 1]
        mean, var = gp.predict(x_test)
        inside = np.abs(mean - f_test) <= 2.0 * np.sqrt(var)
        assert inside.mean() > 0.7

    def test_noise_vector_validated(self):
        x, y = self._noisy_replicated()
        with pytest.raises(ValidationError):
            GaussianProcess(dim=2).fit(x[:10], y[:10], noise_variances=-np.ones(10))
        with pytest.raises(ValidationError):
            GaussianProcess(dim=2).fit(x[:10], y[:10], noise_variances=np.ones(3))

    def test_add_points_extends_noise_vector(self):
        from repro.gsa.gp import collapse_replicates

        x, y = self._noisy_replicated()
        xu, ym, nv = collapse_replicates(x, y)
        gp = GaussianProcess(dim=2).fit(xu, ym, noise_variances=nv)
        gp.add_points(np.array([[0.9, 0.9]]), np.array([np.sin(2.7) + 0.9]))
        assert gp.n_train == 36
        mean, _ = gp.predict(np.array([[0.9, 0.9]]))
        assert np.isfinite(mean[0])


def _full_refactor_reference(gp):
    """A GP with identical data/hyperparameters, factorized from scratch."""
    import copy

    ref = GaussianProcess(dim=gp.dim)
    ref.__dict__.update({k: copy.deepcopy(v) for k, v in gp.__dict__.items()})
    ref.update_stats = {"incremental_updates": 0, "full_refactors": 0}
    ref._refactor()
    return ref


class TestIncrementalFactorization:
    """The O(n^2) rank-update path of ``add_points`` (vs. full refactor)."""

    def _fit(self, n=24, seed=3):
        rng = generator_from_seed(seed)
        x = rng.random((n, 2))
        y = np.sin(3 * x[:, 0]) + 0.5 * x[:, 1] ** 2
        return GaussianProcess(dim=2).fit(x, y), rng

    def test_matches_full_refactorization(self):
        """Incremental updates must predict like a from-scratch factorization."""
        gp, rng = self._fit()
        x_test = rng.random((80, 2))
        for step in range(5):
            x_new = rng.random((2, 2))
            y_new = np.sin(3 * x_new[:, 0]) + 0.5 * x_new[:, 1] ** 2
            gp.add_points(x_new, y_new)
            reference = _full_refactor_reference(gp)
            m_inc, v_inc = gp.predict(x_test)
            m_ref, v_ref = reference.predict(x_test)
            np.testing.assert_allclose(m_inc, m_ref, rtol=1e-5, atol=1e-8)
            np.testing.assert_allclose(v_inc, v_ref, rtol=1e-4, atol=1e-8)
        assert gp.update_stats["incremental_updates"] == 5

    def test_counts_incremental_vs_full(self):
        gp, rng = self._fit()
        assert gp.update_stats == {"incremental_updates": 0, "full_refactors": 1}
        gp.add_points(rng.random((3, 2)), rng.random(3))
        assert gp.update_stats["incremental_updates"] == 1
        assert gp.update_stats["full_refactors"] == 1
        x, y = gp._x.copy(), gp._y_raw.copy()
        gp.fit(x, y)  # refit re-optimizes hyperparameters: full refactor
        assert gp.update_stats["full_refactors"] == 2

    def test_heteroskedastic_add_points_falls_back_to_refactor(self):
        from repro.gsa.gp import collapse_replicates

        rng = generator_from_seed(4)
        x = np.repeat(rng.random((20, 2)), 4, axis=0)
        y = np.sin(3 * x[:, 0]) + x[:, 1] + 0.3 * rng.standard_normal(len(x))
        xu, ym, nv = collapse_replicates(x, y)
        gp = GaussianProcess(dim=2).fit(xu, ym, noise_variances=nv)
        before = gp.update_stats["full_refactors"]
        gp.add_points(np.array([[0.5, 0.5]]), np.array([np.sin(1.5) + 0.5]))
        assert gp.update_stats["full_refactors"] == before + 1
        assert gp.update_stats["incremental_updates"] == 0

    def test_incremental_is_faster_than_full_refactor_at_n256(self):
        """The acceptance micro-benchmark, as a loose regression guard."""
        import time

        rng = generator_from_seed(6)
        x = rng.random((256, 2))
        y = np.sin(3 * x[:, 0]) + 0.5 * x[:, 1] ** 2
        gp = GaussianProcess(dim=2).fit(x[:254], y[:254])

        t0 = time.perf_counter()
        gp.add_points(x[254:], y[254:])
        t_inc = time.perf_counter() - t0
        assert gp.update_stats["incremental_updates"] == 1

        t0 = time.perf_counter()
        gp._refactor()
        t_full = time.perf_counter() - t0
        # ISSUE target is >=3x; assert a conservative margin to avoid flakes.
        assert t_inc < t_full

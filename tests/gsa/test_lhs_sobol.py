"""Tests for LHS designs and Saltelli Sobol estimators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.common.rng import generator_from_seed
from repro.gsa.lhs import latin_hypercube, maximin_latin_hypercube
from repro.gsa.sobol import (
    first_order_indices,
    saltelli_design,
    sobol_indices,
    total_order_indices,
)
from repro.gsa.testfunctions import (
    ISHIGAMI_FIRST_ORDER,
    ishigami,
    linear_additive,
    linear_first_order,
    sobol_g,
    sobol_g_first_order,
)


class TestLHS:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=6))
    def test_stratification_property(self, n, dim):
        """Exactly one point per stratum per dimension — the LHS invariant."""
        rng = generator_from_seed(n * 100 + dim)
        sample = latin_hypercube(n, dim, rng)
        assert sample.shape == (n, dim)
        assert sample.min() >= 0 and sample.max() <= 1
        for j in range(dim):
            strata = np.floor(sample[:, j] * n).astype(int)
            assert sorted(strata) == list(range(n))

    def test_maximin_improves_min_distance(self):
        rng_a = generator_from_seed(0)
        rng_b = generator_from_seed(0)
        plain = latin_hypercube(20, 3, rng_a)
        maximin = maximin_latin_hypercube(20, 3, rng_b, n_candidates=30)

        def min_dist(pts):
            diff = pts[:, None, :] - pts[None, :, :]
            d2 = np.einsum("ijk,ijk->ij", diff, diff)
            np.fill_diagonal(d2, np.inf)
            return np.sqrt(d2.min())

        assert min_dist(maximin) >= min_dist(plain)

    def test_maximin_is_still_lhs(self):
        rng = generator_from_seed(1)
        sample = maximin_latin_hypercube(15, 4, rng)
        for j in range(4):
            strata = np.floor(sample[:, j] * 15).astype(int)
            assert sorted(strata) == list(range(15))

    def test_validation(self):
        rng = generator_from_seed(0)
        with pytest.raises(ValidationError):
            latin_hypercube(0, 2, rng)


class TestSaltelliDesign:
    def test_shapes(self):
        design = saltelli_design(16, 3)
        assert design.a.shape == (16, 3)
        assert design.ab.shape == (3, 16, 3)
        assert design.all_points.shape == (16 * 5, 3)
        assert design.n_evaluations == 80

    def test_ab_structure(self):
        """AB_i equals A except column i, which comes from B."""
        design = saltelli_design(8, 4)
        for i in range(4):
            other = [j for j in range(4) if j != i]
            assert np.array_equal(design.ab[i][:, other], design.a[:, other])
            assert np.array_equal(design.ab[i][:, i], design.b[:, i])

    def test_split_roundtrip(self):
        design = saltelli_design(8, 2)
        y = np.arange(design.n_evaluations, dtype=float)
        y_a, y_b, y_ab = design.split(y)
        assert np.array_equal(y_a, np.arange(8.0))
        assert np.array_equal(y_b, np.arange(8.0, 16.0))
        assert y_ab.shape == (2, 8)

    def test_split_size_checked(self):
        design = saltelli_design(8, 2)
        with pytest.raises(ValidationError):
            design.split(np.ones(10))

    def test_deterministic_given_seed(self):
        a = saltelli_design(16, 3, seed=5)
        b = saltelli_design(16, 3, seed=5)
        assert np.array_equal(a.all_points, b.all_points)


class TestIndices:
    def test_ishigami_reference(self):
        result = sobol_indices(ishigami, 3, 4096)
        assert np.allclose(result["first"], ISHIGAMI_FIRST_ORDER, atol=0.02)
        # x3 has zero first-order but nonzero total (interaction with x1)
        assert result["total"][2] > 0.15

    def test_g_function_reference(self):
        result = sobol_indices(sobol_g, 5, 4096)
        assert np.allclose(result["first"], sobol_g_first_order(), atol=0.03)

    def test_linear_additive_exact_structure(self):
        coeffs = (1.0, 2.0, 3.0)
        fn = lambda x: linear_additive(x, coeffs)
        result = sobol_indices(fn, 3, 4096)
        assert np.allclose(result["first"], linear_first_order(coeffs), atol=0.02)
        # additive function: total == first
        assert np.allclose(result["total"], result["first"], atol=0.02)

    def test_constant_function_zero_indices(self):
        result = sobol_indices(lambda x: np.ones(x.shape[0]), 3, 256)
        assert np.allclose(result["first"], 0.0)
        assert np.allclose(result["total"], 0.0)

    def test_bootstrap_bounds_bracket_estimate(self):
        result = sobol_indices(ishigami, 3, 1024, bootstrap=100)
        assert np.all(result["first_lo"] <= result["first"] + 1e-9)
        assert np.all(result["first"] <= result["first_hi"] + 1e-9)
        # truth inside the CI for the influential inputs
        assert result["first_lo"][0] <= ISHIGAMI_FIRST_ORDER[0] <= result["first_hi"][0]

    def test_estimator_input_validation(self):
        with pytest.raises(ValidationError):
            first_order_indices(np.ones(4), np.ones(5), np.ones((2, 4)))
        with pytest.raises(ValidationError):
            total_order_indices(np.ones(4), np.ones(4), np.ones((2, 5)))


class TestSecondOrder:
    def test_ishigami_x1x3_interaction(self):
        """Ishigami's only interaction is (x1, x3): S13 ≈ 0.244."""
        from repro.gsa.sobol import sobol_indices_with_second_order

        result = sobol_indices_with_second_order(ishigami, 3, 8192)
        second = result["second"]
        assert second[0, 2] == pytest.approx(0.2437, abs=0.05)
        assert abs(second[0, 1]) < 0.05
        assert abs(second[1, 2]) < 0.05

    def test_additive_function_no_interactions(self):
        from repro.gsa.sobol import sobol_indices_with_second_order

        fn = lambda x: linear_additive(x, (1.0, 2.0, 3.0))
        result = sobol_indices_with_second_order(fn, 3, 4096)
        assert np.all(np.abs(result["second"]) < 0.02)

    def test_pure_interaction_function(self):
        from repro.gsa.sobol import sobol_indices_with_second_order

        fn = lambda x: (x[:, 0] - 0.5) * (x[:, 1] - 0.5)
        result = sobol_indices_with_second_order(fn, 2, 4096)
        assert result["second"][0, 1] == pytest.approx(1.0, abs=0.05)
        assert np.all(np.abs(result["first"]) < 0.05)

    def test_design_structure(self):
        from repro.gsa.sobol import second_order_design

        design, ba = second_order_design(8, 3)
        for i in range(3):
            other = [j for j in range(3) if j != i]
            assert np.array_equal(ba[i][:, other], design.b[:, other])
            assert np.array_equal(ba[i][:, i], design.a[:, i])

    def test_block_size_validation(self):
        from repro.gsa.sobol import second_order_indices

        with pytest.raises(ValidationError):
            second_order_indices(
                np.ones(4), np.ones(4), np.ones((2, 4)), np.ones((2, 5))
            )

"""Tests for acquisition functions and the MUSIC algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import StateError, ValidationError
from repro.common.rng import generator_from_seed
from repro.gsa.acquisition import (
    d1_weights,
    eigf_scores,
    expected_improvement,
    gp_main_effects,
    music_scores,
    upper_confidence_bound,
)
from repro.gsa.gp import GaussianProcess
from repro.gsa.music import ACQUISITIONS, HistoryEntry, MusicConfig, MusicGSA
from repro.gsa.testfunctions import ISHIGAMI_FIRST_ORDER, ishigami, linear_additive, linear_first_order
from repro.models.parameters import ParameterSpace


@pytest.fixture(scope="module")
def fitted_gp():
    rng = generator_from_seed(0)
    x = rng.random((50, 2))
    y = np.sin(4 * x[:, 0]) + x[:, 1]
    return GaussianProcess(dim=2).fit(x, y), x, y


class TestClassicAcquisitions:
    def test_ei_zero_when_certain_and_worse(self):
        ei = expected_improvement(np.array([0.0]), np.array([1e-18]), best=1.0)
        assert ei[0] < 1e-9

    def test_ei_positive_when_uncertain(self):
        ei = expected_improvement(np.array([0.0]), np.array([1.0]), best=1.0)
        assert ei[0] > 0

    def test_ei_minimize_mode(self):
        ei_min = expected_improvement(
            np.array([0.0]), np.array([1e-18]), best=1.0, maximize=False
        )
        assert ei_min[0] > 0.9

    def test_ucb_orders_by_variance(self):
        mean = np.zeros(2)
        var = np.array([0.1, 2.0])
        scores = upper_confidence_bound(mean, var, kappa=2.0)
        assert scores[1] > scores[0]

    def test_ucb_kappa_validated(self):
        with pytest.raises(ValidationError):
            upper_confidence_bound(np.zeros(2), np.ones(2), kappa=-1.0)


class TestEIGFAndMusic:
    def test_eigf_prefers_uncertain_regions(self, fitted_gp):
        gp, x, y = fitted_gp
        near_data = x[:3] + 1e-4
        empty_corner = np.array([[0.99, 0.01], [0.98, 0.02], [0.97, 0.03]])
        # which corner is empty depends on data; pick max-distance points
        rng = generator_from_seed(1)
        pool = rng.random((200, 2))
        scores = eigf_scores(gp, np.vstack([near_data, pool]), x, y)
        assert scores[:3].mean() < scores[3:].max()

    def test_main_effects_recover_linear_structure(self):
        rng = generator_from_seed(2)
        x = rng.random((80, 2))
        y = 3.0 * x[:, 0] + 0.0 * x[:, 1]
        gp = GaussianProcess(dim=2).fit(x, y)
        effects = gp_main_effects(gp, 2, rng=generator_from_seed(0))
        # slope of the active dim's main effect ~ 3, inert dim ~ 0
        grid = np.linspace(0, 1, effects.shape[1])
        slope0 = np.polyfit(grid, effects[0], 1)[0]
        slope1 = np.polyfit(grid, effects[1], 1)[0]
        assert abs(slope0 - 3.0) < 0.5
        assert abs(slope1) < 0.3

    def test_d1_weights_highlight_extreme_main_effects(self):
        rng = generator_from_seed(3)
        x = rng.random((80, 1))
        y = 5.0 * x[:, 0]
        gp = GaussianProcess(dim=1).fit(x, y)
        candidates = np.array([[0.0], [0.5], [1.0]])
        weights = d1_weights(gp, candidates, rng=generator_from_seed(0))
        # the middle of a linear effect is at the mean: lowest D1
        assert weights[1] < weights[0]
        assert weights[1] < weights[2]

    def test_music_scores_combine_both(self, fitted_gp):
        gp, x, y = fitted_gp
        rng = generator_from_seed(4)
        candidates = rng.random((50, 2))
        scores = music_scores(gp, candidates, x, y, rng=generator_from_seed(0))
        assert scores.shape == (50,)
        assert np.all(scores >= 0)


class TestMusicGSA:
    def _space(self, dim=3):
        return ParameterSpace([(f"x{i}", (0.0, 1.0)) for i in range(dim)])

    def test_full_loop_converges_on_linear_function(self):
        space = self._space(3)
        coeffs = (1.0, 2.0, 3.0)
        music = MusicGSA(space, MusicConfig(n_initial=15, surrogate_mc=512), seed=0)
        design = music.initial_design()
        music.tell(design, linear_additive(space.unscale(design), coeffs))
        for _ in range(15):
            point = music.propose()
            music.tell(point, linear_additive(space.unscale(point), coeffs))
        assert np.allclose(music.first_order(), linear_first_order(coeffs), atol=0.05)

    def test_history_tracks_every_tell(self):
        space = self._space(2)
        music = MusicGSA(space, MusicConfig(n_initial=8, surrogate_mc=128), seed=1)
        design = music.initial_design()
        music.tell(design, design.sum(axis=1))
        point = music.propose()
        music.tell(point, point.sum(axis=1))
        assert [e.n_evaluations for e in music.history] == [8, 9]
        assert music.n_evaluations == 9

    def test_initial_design_within_space(self):
        space = ParameterSpace([("a", (10.0, 20.0)), ("b", (-1.0, 0.0))])
        music = MusicGSA(space, MusicConfig(n_initial=10), seed=2)
        design = music.initial_design()
        assert design[:, 0].min() >= 10.0 and design[:, 0].max() <= 20.0
        assert design[:, 1].min() >= -1.0 and design[:, 1].max() <= 0.0

    def test_propose_before_tell_raises(self):
        music = MusicGSA(self._space(2), seed=0)
        with pytest.raises(StateError):
            music.propose()
        with pytest.raises(StateError):
            music.first_order()

    def test_mismatched_tell_rejected(self):
        music = MusicGSA(self._space(2), MusicConfig(n_initial=5), seed=0)
        design = music.initial_design()
        with pytest.raises(ValidationError):
            music.tell(design, np.ones(3))

    @pytest.mark.parametrize("acquisition", ACQUISITIONS)
    def test_every_acquisition_runs(self, acquisition):
        space = self._space(2)
        music = MusicGSA(
            space,
            MusicConfig(n_initial=8, acquisition=acquisition, surrogate_mc=128, n_candidates=32),
            seed=3,
        )
        design = music.initial_design()
        music.tell(design, design.sum(axis=1))
        point = music.propose()
        assert point.shape == (1, 2)

    def test_unknown_acquisition_rejected(self):
        with pytest.raises(ValidationError):
            MusicConfig(acquisition="magic")

    def test_convergence_table_format(self):
        space = self._space(2)
        music = MusicGSA(space, MusicConfig(n_initial=6, surrogate_mc=128), seed=4)
        design = music.initial_design()
        music.tell(design, design.sum(axis=1))
        table = music.convergence_table()
        assert table[0][0] == 6
        assert set(table[0][1]) == {"x0", "x1"}

    def test_seeds_give_independent_runs(self):
        space = self._space(2)
        a = MusicGSA(space, MusicConfig(n_initial=6), seed=1).initial_design()
        b = MusicGSA(space, MusicConfig(n_initial=6), seed=2).initial_design()
        assert not np.allclose(a, b)

    def test_ishigami_indices_approach_reference(self):
        """Integration: 90 evaluations on Ishigami get the ranking right."""
        space = self._space(3)
        music = MusicGSA(space, MusicConfig(n_initial=30, surrogate_mc=512, refit_every=10), seed=5)
        design = music.initial_design()
        music.tell(design, ishigami(space.unscale(design)))
        for _ in range(60):
            point = music.propose()
            music.tell(point, ishigami(space.unscale(point)))
        estimate = music.first_order()
        # correct ordering: S2 > S1 > S3 ~ 0
        assert estimate[2] < 0.15
        assert estimate[0] > 0.15
        assert abs(estimate[0] - ISHIGAMI_FIRST_ORDER[0]) < 0.15


class TestTotalOrder:
    def test_total_matches_first_for_additive(self):
        space = ParameterSpace([(f"x{i}", (0.0, 1.0)) for i in range(3)])
        from repro.gsa.testfunctions import linear_additive

        music = MusicGSA(space, MusicConfig(n_initial=25, surrogate_mc=512), seed=7)
        design = music.initial_design()
        music.tell(design, linear_additive(space.unscale(design), (1.0, 2.0, 3.0)))
        first = music.first_order()
        total = music.total_order()
        assert np.allclose(first, total, atol=0.08)

    def test_total_exceeds_first_with_interactions(self):
        space = ParameterSpace([(f"x{i}", (0.0, 1.0)) for i in range(3)])
        music = MusicGSA(space, MusicConfig(n_initial=40, surrogate_mc=512, refit_every=10), seed=8)
        design = music.initial_design()
        music.tell(design, ishigami(space.unscale(design)))
        for _ in range(40):
            point = music.propose()
            music.tell(point, ishigami(space.unscale(point)))
        first = music.first_order()
        total = music.total_order()
        # x3 interacts with x1: total-order must exceed first-order there
        assert total[2] > first[2] + 0.05

    def test_total_requires_data(self):
        space = ParameterSpace([("a", (0.0, 1.0))])
        with pytest.raises(StateError):
            MusicGSA(space, seed=0).total_order()


class TestStoppingRule:
    def test_converges_on_easy_function(self):
        space = ParameterSpace([(f"x{i}", (0.0, 1.0)) for i in range(2)])
        music = MusicGSA(space, MusicConfig(n_initial=15, surrogate_mc=256, refit_every=10), seed=9)
        fn = lambda x: 2.0 * x[:, 0] + x[:, 1]
        design = music.initial_design()
        music.tell(design, fn(space.unscale(design)))
        assert not music.has_converged(window=10)  # not enough history yet
        for _ in range(20):
            point = music.propose()
            music.tell(point, fn(space.unscale(point)))
            if music.has_converged(tol=0.01, window=10):
                break
        assert music.has_converged(tol=0.01, window=10)
        assert music.n_evaluations < 36  # converged before exhausting budget

    def test_tight_tolerance_not_met_early(self):
        space = ParameterSpace([(f"x{i}", (0.0, 1.0)) for i in range(3)])
        music = MusicGSA(space, MusicConfig(n_initial=10, surrogate_mc=128), seed=10)
        design = music.initial_design()
        music.tell(design, ishigami(space.unscale(design)))
        music.tell(music.propose(), np.array([0.0]))
        assert not music.has_converged(tol=1e-9, window=2)

    def test_validation(self):
        space = ParameterSpace([("a", (0.0, 1.0))])
        music = MusicGSA(space, seed=0)
        with pytest.raises(ValidationError):
            music.has_converged(tol=0.0)
        with pytest.raises(ValidationError):
            music.has_converged(window=1)

"""Tests for Shapley effects against closed-form references."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.gsa.shapley import (
    _all_subsets,
    shapley_effects,
    shapley_from_subset_variances,
    subset_variances,
)
from repro.gsa.testfunctions import (
    ISHIGAMI_FIRST_ORDER,
    ishigami,
    linear_additive,
    linear_first_order,
)


class TestSubsets:
    def test_membership_matrix(self):
        subsets = _all_subsets(3)
        assert subsets.shape == (8, 3)
        assert not subsets[0].any()  # empty set
        assert subsets[-1].all()  # full set
        assert subsets[0b101].tolist() == [True, False, True]


class TestSubsetVariances:
    def test_additive_function_decomposes(self):
        coeffs = (1.0, 2.0)
        fn = lambda x: linear_additive(x, coeffs)
        values = subset_variances(fn, 2, 4096, seed=0)
        # Var(c x) = c^2 / 12 for U(0,1)
        v1, v2 = 1.0 / 12.0, 4.0 / 12.0
        assert values[0] == 0.0
        assert values[0b01] == pytest.approx(v1, rel=0.1)
        assert values[0b10] == pytest.approx(v2, rel=0.1)
        assert values[0b11] == pytest.approx(v1 + v2, rel=0.05)

    def test_monotone_in_subsets_for_additive(self):
        fn = lambda x: linear_additive(x, (1.0, 1.0, 1.0))
        values = subset_variances(fn, 3, 2048, seed=1)
        # supersets explain at least as much variance (up to MC noise)
        assert values[0b111] >= values[0b011] - 0.02
        assert values[0b011] >= values[0b001] - 0.02

    def test_too_many_dims_rejected(self):
        with pytest.raises(ValidationError):
            subset_variances(lambda x: x.sum(axis=1), 17, 64)


class TestShapley:
    def test_sums_to_one_normalized(self):
        effects = shapley_effects(ishigami, 3, n=2048, seed=0)
        assert np.isclose(effects.sum(), 1.0, atol=1e-9)

    def test_additive_matches_first_order(self):
        """No interactions: Shapley == first-order Sobol."""
        coeffs = (1.0, 2.0, 3.0)
        fn = lambda x: linear_additive(x, coeffs)
        effects = shapley_effects(fn, 3, n=4096, seed=0)
        assert np.allclose(effects, linear_first_order(coeffs), atol=0.02)

    def test_ishigami_interaction_split(self):
        """x3 has zero first-order index but interacts with x1; Shapley
        splits that interaction between them, so Sh_3 > S_3 = 0 and
        Sh_1 > S_1."""
        effects = shapley_effects(ishigami, 3, n=4096, seed=0)
        assert effects[2] > 0.05  # strictly positive for the interacting input
        assert effects[0] > ISHIGAMI_FIRST_ORDER[0]
        assert effects[1] == pytest.approx(ISHIGAMI_FIRST_ORDER[1], abs=0.05)

    def test_duplicated_inputs_split_evenly(self):
        """The hallmark Shapley property: exchangeable inputs share credit."""

        def duplicated(x):
            return (x[:, 0] + x[:, 1]) ** 2  # x0 and x1 exchangeable

        effects = shapley_effects(duplicated, 2, n=4096, seed=0)
        assert effects[0] == pytest.approx(effects[1], abs=0.03)
        assert effects.sum() == pytest.approx(1.0)

    def test_inert_input_near_zero(self):
        def partial(x):
            return np.sin(2 * x[:, 0])

        effects = shapley_effects(partial, 2, n=2048, seed=0)
        assert abs(effects[1]) < 0.05
        assert effects[0] > 0.9

    def test_unnormalized_sums_to_variance(self):
        fn = lambda x: linear_additive(x, (2.0, 3.0))
        values = subset_variances(fn, 2, 4096, seed=2)
        effects = shapley_from_subset_variances(values, 2)
        assert effects.sum() == pytest.approx(values[-1], rel=1e-9)

    def test_value_table_size_checked(self):
        with pytest.raises(ValidationError):
            shapley_from_subset_variances(np.zeros(7), 3)

    def test_constant_function(self):
        effects = shapley_effects(lambda x: np.ones(x.shape[0]), 2, n=256)
        assert np.allclose(effects, 0.0)

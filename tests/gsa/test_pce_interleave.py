"""Tests for PCE Sobol analysis and the interleaving drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import StateError, ValidationError
from repro.common.rng import generator_from_seed
from repro.gsa.interleave import InterleavedDriver, SequentialDriver
from repro.gsa.pce import PCEModel, pce_sobol_indices, total_degree_multi_indices
from repro.gsa.testfunctions import (
    ishigami,
    linear_additive,
    linear_first_order,
)


class TestMultiIndices:
    def test_counts(self):
        # C(d + p, p) terms for total degree p in d dims
        assert total_degree_multi_indices(5, 3).shape[0] == 56
        assert total_degree_multi_indices(2, 2).shape[0] == 6

    def test_zero_first(self):
        indices = total_degree_multi_indices(3, 2)
        assert tuple(indices[0]) == (0, 0, 0)

    def test_degrees_bounded(self):
        indices = total_degree_multi_indices(4, 3)
        assert indices.sum(axis=1).max() == 3


class TestPCEModel:
    def test_exact_on_polynomials(self):
        rng = generator_from_seed(0)
        x = rng.random((100, 2))
        y = 1.0 + 2.0 * x[:, 0] - x[:, 1] ** 2 + 0.5 * x[:, 0] * x[:, 1]
        model = PCEModel(dim=2, degree=3).fit(x, y)
        x_test = rng.random((50, 2))
        y_test = 1.0 + 2.0 * x_test[:, 0] - x_test[:, 1] ** 2 + 0.5 * x_test[:, 0] * x_test[:, 1]
        assert np.allclose(model.predict(x_test), y_test, atol=1e-8)

    def test_linear_indices_analytic(self):
        rng = generator_from_seed(1)
        x = rng.random((200, 3))
        coeffs = (1.0, 2.0, 3.0)
        y = linear_additive(x, coeffs)
        model = PCEModel(dim=3, degree=3).fit(x, y)
        assert np.allclose(model.first_order(), linear_first_order(coeffs), atol=1e-6)
        assert np.allclose(model.total_order(), model.first_order(), atol=1e-6)

    def test_variance_matches_sample_variance_for_polynomial(self):
        rng = generator_from_seed(2)
        x = rng.random((5000, 2))
        y = 2.0 * x[:, 0] + x[:, 1]
        model = PCEModel(dim=2, degree=2).fit(x[:200], y[:200])
        assert np.isclose(model.variance(), y.var(), rtol=0.05)

    def test_interaction_detected(self):
        rng = generator_from_seed(3)
        x = rng.random((300, 2))
        y = (x[:, 0] - 0.5) * (x[:, 1] - 0.5)  # pure interaction
        model = PCEModel(dim=2, degree=3).fit(x, y)
        assert np.allclose(model.first_order(), 0.0, atol=0.02)
        assert np.all(model.total_order() > 0.5)

    def test_small_sample_instability(self):
        """The paper's one-shot critique: tiny designs give unstable indices."""
        coeffs = (1.0, 2.0, 3.0, 0.5, 0.1)
        errors = []
        for n in (15, 250):
            rng = generator_from_seed(n)
            x = rng.random((n, 5))
            y = ishigami(x[:, :3]) + 0.0 * x[:, 3]  # nonlinear, 5 inputs
            model = PCEModel(dim=5, degree=3).fit(x, y)
            errors.append(np.abs(model.first_order()).max())
        # tiny-sample fit is wilder than the large-sample one (or at least
        # the large fit stays in [0, 1])
        assert errors[1] <= 1.05

    def test_unfitted_raises(self):
        model = PCEModel(dim=2, degree=2)
        with pytest.raises(StateError):
            model.predict(np.zeros((1, 2)))
        with pytest.raises(StateError):
            model.first_order()

    def test_inputs_must_be_in_cube(self):
        model = PCEModel(dim=2, degree=2)
        with pytest.raises(ValidationError):
            model.fit(np.array([[1.5, 0.5]]), np.array([1.0]))

    def test_condition_number_reported(self):
        rng = generator_from_seed(4)
        x = rng.random((100, 2))
        model = PCEModel(dim=2, degree=2).fit(x, x.sum(axis=1))
        assert model.condition_number >= 1.0

    def test_convenience_function(self):
        rng = generator_from_seed(5)
        x = rng.random((150, 3))
        out = pce_sobol_indices(x, linear_additive(x, (1.0, 1.0, 1.0)), degree=2)
        assert np.allclose(out["first"], 1 / 3, atol=0.01)


def make_counter_coroutine(log, name, n_steps, waits_between=0):
    """A test coroutine: records its steps; optionally 'waits' between them."""

    def coroutine():
        for step in range(n_steps):
            log.append((name, step))
            for _ in range(waits_between):
                yield False  # pretend to poll a pending future
            yield True

    return coroutine()


class TestInterleavedDriver:
    def test_round_robin_interleaves(self):
        log = []
        driver = InterleavedDriver(
            [
                make_counter_coroutine(log, "a", 3),
                make_counter_coroutine(log, "b", 3),
            ],
            idle_sleep=0,
        )
        stats = driver.run()
        # steps alternate a, b, a, b ... rather than a,a,a,b,b,b
        assert log[:4] == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]
        assert stats["switches"] > 0

    def test_completes_all_with_waiting(self):
        log = []
        driver = InterleavedDriver(
            [
                make_counter_coroutine(log, "a", 4, waits_between=2),
                make_counter_coroutine(log, "b", 2, waits_between=5),
            ],
            idle_sleep=0,
        )
        driver.run()
        assert ("a", 3) in log and ("b", 1) in log

    def test_max_cycles_guard(self):
        def forever():
            while True:
                yield False

        driver = InterleavedDriver([forever()], idle_sleep=0)
        with pytest.raises(ValidationError):
            driver.run(max_cycles=10)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            InterleavedDriver([])


class TestSequentialDriver:
    def test_runs_in_order(self):
        log = []
        driver = SequentialDriver(
            [
                make_counter_coroutine(log, "a", 2),
                make_counter_coroutine(log, "b", 2),
            ],
            idle_sleep=0,
        )
        driver.run()
        assert log == [("a", 0), ("a", 1), ("b", 0), ("b", 1)]

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            SequentialDriver([])

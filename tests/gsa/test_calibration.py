"""Tests for surrogate-accelerated calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import StateError, ValidationError
from repro.gsa.calibration import (
    CalibrationConfig,
    SurrogateCalibrator,
    admissions_curve_distance,
    calibrate,
)
from repro.models.metarvm import MetaRVM, MetaRVMConfig
from repro.models.parameters import GSA_PARAMETER_SPACE, MetaRVMParams, ParameterSpace


def unit_space(dim: int) -> ParameterSpace:
    return ParameterSpace([(f"x{i}", (0.0, 1.0)) for i in range(dim)])


class TestSurrogateCalibrator:
    def test_finds_quadratic_minimum(self):
        space = unit_space(2)
        target = np.array([0.3, 0.7])
        distance = lambda x: np.sum((np.atleast_2d(x) - target) ** 2, axis=1)
        result = calibrate(distance, space, budget=60, seed=0)
        assert np.linalg.norm(result.best_point - target) < 0.12
        assert result.n_evaluations == 60

    def test_beats_pure_lhs_of_same_budget(self):
        """EI-guided refinement must beat a same-budget random design."""
        space = unit_space(3)
        target = np.array([0.2, 0.5, 0.8])
        distance = lambda x: np.sum((np.atleast_2d(x) - target) ** 2, axis=1)
        result = calibrate(distance, space, budget=70, seed=1)
        rng = np.random.default_rng(1)
        random_best = min(
            distance(space.scale(rng.random((70, 3)))).min() for _ in range(1)
        )
        assert result.best_distance <= random_best

    def test_history_monotone_nonincreasing(self):
        space = unit_space(2)
        distance = lambda x: np.sum(np.atleast_2d(x) ** 2, axis=1)
        result = calibrate(distance, space, budget=40, seed=2)
        bests = [b for _, b in result.history]
        assert all(b1 >= b2 - 1e-12 for b1, b2 in zip(bests, bests[1:]))
        assert result.improvement_over_initial() >= 1.0

    def test_stepwise_api(self):
        space = unit_space(2)
        cal = SurrogateCalibrator(space, CalibrationConfig(n_initial=8), seed=3)
        with pytest.raises(StateError):
            cal.propose()
        with pytest.raises(StateError):
            cal.best_point()
        design = cal.initial_design()
        cal.tell(design, np.sum(design**2, axis=1))
        point = cal.propose()
        assert point.shape == (1, 2)
        assert cal.n_evaluations == 8

    def test_negative_distance_rejected(self):
        space = unit_space(1)
        cal = SurrogateCalibrator(space, CalibrationConfig(n_initial=4), seed=0)
        design = cal.initial_design()
        with pytest.raises(ValidationError):
            cal.tell(design, np.array([-1.0, 0.1, 0.2, 0.3]))

    def test_budget_validated(self):
        space = unit_space(1)
        with pytest.raises(ValidationError):
            calibrate(lambda x: np.ones(np.atleast_2d(x).shape[0]), space, budget=10,
                      config=CalibrationConfig(n_initial=20))

    def test_deterministic_given_seed(self):
        space = unit_space(2)
        distance = lambda x: np.sum(np.atleast_2d(x) ** 2, axis=1)
        a = calibrate(distance, space, budget=30, seed=5)
        b = calibrate(distance, space, budget=30, seed=5)
        assert np.allclose(a.best_point, b.best_point)


class TestMetaRVMCalibration:
    @pytest.fixture(scope="class")
    def setup(self):
        config = MetaRVMConfig(
            n_days=50,
            population=(30_000, 30_000),
            initial_infections=(30, 30),
            initial_vaccinated_fraction=0.3,
        )
        model = MetaRVM(config)
        truth = np.array([0.45, 0.2, 0.55, 0.25, 0.1])  # ts tv pea psh phd
        observed = (
            model.run_batch(truth[None, :], seed=99, stochastic=True)
            .hospital_admissions.sum(axis=2)[0]
        )
        return model, truth, observed

    def test_recovers_admission_curve(self, setup):
        """Calibration to a synthetic truth reproduces its admission curve
        (parameters may trade off — equifinality — but the fit must)."""
        model, truth, observed = setup
        distance_fn = admissions_curve_distance(observed, model)
        result = calibrate(
            distance_fn,
            GSA_PARAMETER_SPACE,
            budget=70,
            config=CalibrationConfig(n_initial=30),
            seed=0,
        )
        # normalized RMSE of the fitted curve under 35% of the observed std
        assert result.best_distance < 0.35
        # and clearly better than the nominal default parameters
        nominal = np.array([[0.5, 0.2, 0.6, 0.2, 0.1]])
        default_distance = float(distance_fn(np.array([
            MetaRVMParams().ts, MetaRVMParams().tv, MetaRVMParams().pea,
            MetaRVMParams().psh, MetaRVMParams().phd,
        ])[None, :].reshape(1, -1))[0])
        assert result.best_distance <= default_distance

    def test_horizon_mismatch_rejected(self, setup):
        model, _, observed = setup
        distance_fn = admissions_curve_distance(observed[:-5], model)
        with pytest.raises(ValidationError):
            distance_fn(np.array([[0.5, 0.2, 0.6, 0.2, 0.1]]))

    def test_stochastic_objective_mode(self, setup):
        model, truth, observed = setup
        distance_fn = admissions_curve_distance(
            observed, model, stochastic=True, seed=99
        )
        # evaluating at the generating truth with the generating seed is exact
        assert float(distance_fn(truth[None, :])[0]) < 1e-9

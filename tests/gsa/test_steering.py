"""Acquisition-driven steering: policy, coroutine, determinism, journal.

The determinism contract under test: every steering decision is a pure
function of completed-result *content* (the head-of-line consumed stream),
so two same-seed runs — including replay, resume, and fault-plan runs
whose retries recompute identical results — produce byte-identical
decision journals and bitwise-identical Sobol trajectories.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.common.errors import StateError, ValidationError
from repro.emews.api import TaskQueue
from repro.emews.db import TaskDatabase
from repro.emews.worker_pool import SteppedWorkerPool
from repro.gsa.music import MusicConfig, MusicGSA
from repro.gsa.steering import (
    STEER_CANCEL_REASON,
    SteeringConfig,
    SteeringPolicy,
    SteeringReport,
    evals_to_convergence,
    run_stepped,
    steered_music_coroutine,
)
from repro.gsa.testfunctions import ISHIGAMI_FIRST_ORDER, ishigami
from repro.models.parameters import ParameterSpace
from repro.obs import Observability
from repro.state import InMemoryRunStore, RunCheckpointer

SPACE = ParameterSpace([("x1", (0.0, 1.0)), ("x2", (0.0, 1.0)), ("x3", (0.0, 1.0))])
FAST_MUSIC = MusicConfig(
    n_initial=12, acquisition="eigf", n_candidates=24, surrogate_mc=64, refit_every=6
)


def _evaluator(payload):
    point = np.asarray(payload["point"], dtype=float)[None, :]
    return {"hospitalizations": float(ishigami(point)[0])}


def _steered_run(seed, steering, *, budget=36, n_slots=4, state=None, obs=None):
    music = MusicGSA(SPACE, FAST_MUSIC, seed=seed)
    db = TaskDatabase()
    queue = TaskQueue(db, f"steer-{seed}")
    pool = SteppedWorkerPool(db, "metarvm", _evaluator, n_slots=n_slots)
    policy = SteeringPolicy(music, steering)
    report = SteeringReport()
    coroutine = steered_music_coroutine(
        music,
        queue,
        seed,
        budget,
        steering,
        policy=policy,
        state=state,
        obs=obs,
        report=report,
    )
    stats = run_stepped([coroutine], pool)
    return music, policy, report, stats


class TestSteeringConfig:
    def test_validation(self):
        with pytest.raises(ValidationError):
            SteeringConfig(cancel_fraction=1.5)
        with pytest.raises(ValidationError):
            SteeringConfig(mode="vaporize")
        with pytest.raises(ValidationError):
            SteeringConfig(rank_by="vibes")
        with pytest.raises(ValidationError):
            SteeringConfig(lookahead=0)
        assert not SteeringConfig(steer_every=0).enabled
        assert SteeringConfig().enabled

    def test_jsonable_roundtrip(self):
        cfg = SteeringConfig(
            steer_every=3, lookahead=20, cancel_fraction=0.25, mode="park"
        )
        assert SteeringConfig.from_jsonable(cfg.to_jsonable()) == cfg


class TestSteeringPolicy:
    def _policy(self, **overrides):
        music = MusicGSA(SPACE, FAST_MUSIC, seed=0)
        design = music.initial_design()
        music.tell(design, ishigami(design))
        return SteeringPolicy(music, SteeringConfig(**overrides)), music

    def test_decision_is_deterministic(self):
        policy, music = self._policy()
        points = SPACE.scale(np.random.default_rng(7).random((8, 3)))
        ordinals = list(range(8))
        first, _ = policy.decide(points, ordinals, n_results=12)
        policy_b = SteeringPolicy(music, policy.config)
        second, _ = policy_b.decide(points, ordinals, n_results=12)
        assert json.dumps(first.to_jsonable()) == json.dumps(second.to_jsonable())

    def test_cancel_guard_protects_oldest(self):
        policy, _ = self._policy(
            cancel_fraction=1.0, min_keep=0, cancel_guard=3, steer_every=1
        )
        points = SPACE.scale(np.random.default_rng(3).random((8, 3)))
        ordinals = [10, 11, 12, 13, 14, 15, 16, 17]
        decision, _ = policy.decide(points, ordinals, n_results=12)
        assert set(decision.cancels).isdisjoint({10, 11, 12})
        assert len(decision.cancels) == 5
        # Survivors (guard included) all get priorities.
        assert set(decision.priorities) == set(ordinals) - set(decision.cancels)

    def test_min_keep_floors_survivors(self):
        policy, _ = self._policy(
            cancel_fraction=1.0, min_keep=6, cancel_guard=0, steer_every=1
        )
        points = SPACE.scale(np.random.default_rng(3).random((8, 3)))
        decision, _ = policy.decide(points, list(range(8)), n_results=12)
        assert len(decision.cancels) == 2

    def test_fifo_ranking_keeps_submission_order(self):
        policy, _ = self._policy(rank_by="fifo", cancel_fraction=0.0, steer_every=1)
        points = SPACE.scale(np.random.default_rng(5).random((6, 3)))
        ordinals = [3, 7, 9, 12, 20, 21]
        decision, _ = policy.decide(points, ordinals, n_results=12)
        ranked = sorted(decision.priorities, key=decision.priorities.__getitem__)
        assert ranked == sorted(ordinals, reverse=True)


class TestSteeredCoroutine:
    def test_decision_journal_is_byte_identical_across_runs(self):
        steering = SteeringConfig(
            steer_every=1, lookahead=10, cancel_fraction=0.5, cancel_guard=4,
            rank_by="fifo",
        )
        _, policy_a, report_a, _ = _steered_run(5, steering)
        _, policy_b, report_b, _ = _steered_run(5, steering)
        assert json.dumps(policy_a.decision_journal()) == json.dumps(
            policy_b.decision_journal()
        )
        assert report_a.as_dict() == report_b.as_dict()
        assert report_a.decisions > 0
        assert report_a.wasted_evals == 0

    def test_budget_is_respected_and_reclaimed(self):
        steering = SteeringConfig(
            steer_every=1, lookahead=10, cancel_fraction=0.5, cancel_guard=4,
            rank_by="fifo",
        )
        music, _, report, _ = _steered_run(2, steering, budget=30)
        assert music.n_evaluations == 30
        assert report.reclaimed_evals > 0

    def test_disabled_steering_issues_no_decisions(self):
        music, policy, report, _ = _steered_run(
            2, SteeringConfig(steer_every=0, lookahead=10), budget=30
        )
        assert music.n_evaluations == 30
        assert policy.decisions == []
        assert report.as_dict() == SteeringReport().as_dict()

    def test_park_mode_parks_instead_of_cancelling(self):
        steering = SteeringConfig(
            steer_every=2, lookahead=8, cancel_fraction=0.5, cancel_guard=2,
            mode="park",
        )
        music, _, report, _ = _steered_run(3, steering, budget=30)
        assert music.n_evaluations == 30
        assert report.parked > 0
        assert report.cancels == 0
        assert report.reclaimed_evals == 0
        assert report.wasted_evals == 0

    def test_observability_counters_mirror_report(self):
        obs = Observability()
        steering = SteeringConfig(
            steer_every=1, lookahead=10, cancel_fraction=0.5, cancel_guard=4,
            rank_by="fifo",
        )
        _, _, report, _ = _steered_run(5, steering, obs=obs)
        view = obs.steering_view()
        assert view["decisions"] == report.decisions
        assert view["cancels"] == report.cancels
        assert view["reclaimed_evals"] == report.reclaimed_evals
        assert view["wasted_evals"] == 0
        assert view["score_churn"]["count"] == len(report.score_churn)

    def test_cancel_reason_is_steering(self):
        db = TaskDatabase()
        queue = TaskQueue(db, "steer-reason")
        music = MusicGSA(SPACE, FAST_MUSIC, seed=9)
        pool = SteppedWorkerPool(db, "metarvm", _evaluator, n_slots=4)
        steering = SteeringConfig(
            steer_every=1, lookahead=10, cancel_fraction=0.5, cancel_guard=4,
            rank_by="fifo",
        )
        coroutine = steered_music_coroutine(music, queue, 9, 30, steering)
        run_stepped([coroutine], pool)
        reasons = {
            task.cancel_reason
            for task in db.tasks_for_experiment("steer-reason")
            if task.cancel_reason is not None
        }
        assert reasons == {STEER_CANCEL_REASON}


class TestDecisionJournal:
    def _state(self):
        store = InMemoryRunStore()
        handle = store.create_run("steer-test", {})
        return RunCheckpointer(handle)

    def test_write_ahead_then_replay_hit(self):
        state = self._state()
        payload = {"step": 0, "cancels": [3, 4], "priorities": {"1": 2}}
        assert state.record_steering_decision(0, payload) is True
        assert state.record_steering_decision(0, dict(payload)) is False
        assert state.steering_decisions() == [payload]

    def test_divergent_replay_raises(self):
        state = self._state()
        state.record_steering_decision(0, {"cancels": [3]})
        with pytest.raises(StateError):
            state.record_steering_decision(0, {"cancels": [4]})

    def test_coroutine_journals_every_decision(self):
        state = self._state()
        steering = SteeringConfig(
            steer_every=1, lookahead=10, cancel_fraction=0.5, cancel_guard=4,
            rank_by="fifo",
        )
        _, policy, _, _ = _steered_run(5, steering, state=state)
        assert state.steering_decisions() == policy.decision_journal()


class TestEvalsToConvergence:
    def test_converges_at_first_stable_point(self):
        ref = np.array([0.5, 0.5])
        history = [
            (10, np.array([0.9, 0.1])),
            (20, np.array([0.52, 0.49])),
            (30, np.array([0.51, 0.50])),
        ]
        assert evals_to_convergence(history, ref, tol=0.05) == 20.0

    def test_relapse_resets_convergence(self):
        ref = np.array([0.5])
        history = [
            (10, np.array([0.51])),
            (20, np.array([0.8])),
            (30, np.array([0.49])),
        ]
        assert evals_to_convergence(history, ref, tol=0.05) == 30.0

    def test_never_converged_is_inf(self):
        history = [(10, np.array([0.9]))]
        assert np.isinf(evals_to_convergence(history, np.array([0.0]), tol=0.05))

    def test_empty_history_rejected(self):
        with pytest.raises(ValidationError):
            evals_to_convergence([], ISHIGAMI_FIRST_ORDER)


class TestRunStepped:
    def test_deadlock_detection(self):
        db = TaskDatabase()
        pool = SteppedWorkerPool(db, "metarvm", _evaluator, n_slots=2)

        def starving():
            while True:
                yield False

        with pytest.raises(StateError):
            run_stepped([starving()], pool)

    def test_stats_account_for_quanta(self):
        steering = SteeringConfig(steer_every=0, lookahead=8)
        _, _, _, stats = _steered_run(4, steering, budget=24)
        assert stats["tasks"] == 24
        assert stats["quanta"] >= 24 // 4

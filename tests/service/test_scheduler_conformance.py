"""Scheduler conformance: quotas, determinism, fairness, bitwise outputs.

Three layers, cheapest first:

1. **Policy properties** (hypothesis + a stub driver, thousands of
   scheduling decisions per second): for randomized seeded schedules over
   2-8 tenants, every structural invariant holds after every pump, quotas
   are never exceeded, and re-executing the same schedule reproduces the
   identical event log and completion order.
2. **Bitwise properties** (hypothesis + real wastewater runs against the
   shared warm memo cache): gateway outputs are bitwise identical to
   standalone ``run_wastewater_workflow`` and completion order replays.
3. **The 1k-run acceptance replay**: 1000 submissions across 4 weighted
   tenants, executed twice — identical completion order, all completed,
   sampled outputs bitwise identical to the standalone baselines.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import NotFoundError, QueueFullError
from repro.service import (
    COMPLETED,
    TERMINAL_STATES,
    PreparedRun,
    RunDriver,
    RunGateway,
    SubmitRequest,
    TenantConfig,
)

from tests.service.conftest import PALETTE_SEEDS, ensemble_json, palette_config


# ------------------------------------------------------------- stub driver
class _StubRun(PreparedRun):
    def __init__(self, steps: int) -> None:
        self._left = steps
        self._steps = steps
        self.run_id = None

    def step(self) -> bool:
        self._left -= 1
        return self._left <= 0

    def collect(self):
        return {"steps": self._steps}

    def cancel(self) -> bool:
        return True


class StubDriver(RunDriver):
    """Instant-execution driver: pure scheduling policy, no workflow."""

    workflow = "stub"

    def canonical_config(self, config):
        doc = dict(config or {})
        return {"steps": int(doc.get("steps", 2))}

    def prepare(self, config_doc, **_kwargs) -> PreparedRun:
        return _StubRun(int(config_doc["steps"]))


def stub_gateway(tenants, shards):
    return RunGateway(tenants, drivers={"stub": StubDriver()}, shards=shards)


# ---------------------------------------------------------------- schedules
@st.composite
def schedules(draw):
    """A randomized seeded schedule over 2-8 tenants."""
    n_tenants = draw(st.integers(min_value=2, max_value=8))
    tenants = [
        TenantConfig(
            name=f"t{i}",
            weight=float(draw(st.integers(min_value=1, max_value=4))),
            max_queued=draw(st.integers(min_value=2, max_value=8)),
            max_running=draw(st.integers(min_value=1, max_value=3)),
        )
        for i in range(n_tenants)
    ]
    shards = draw(st.integers(min_value=1, max_value=4))
    events = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("submit"),
                    st.integers(min_value=0, max_value=n_tenants - 1),
                    st.integers(min_value=1, max_value=4),  # steps
                    st.integers(min_value=0, max_value=2),  # priority
                ),
                st.tuples(st.just("pump")),
                st.tuples(
                    st.just("cancel"), st.integers(min_value=0, max_value=30)
                ),
            ),
            min_size=5,
            max_size=40,
        )
    )
    return tenants, shards, events


def run_schedule(tenants, shards, events):
    """Execute one schedule; returns its full observable event log."""
    gw = stub_gateway(tenants, shards)
    log = []
    tickets = []
    for event in events:
        if event[0] == "submit":
            _, tenant_idx, steps, priority = event
            try:
                receipt = gw.submit(
                    SubmitRequest(
                        tenant=tenants[tenant_idx].name,
                        workflow="stub",
                        config={"steps": steps},
                        priority=priority,
                    )
                )
                tickets.append(receipt.ticket)
                log.append(("accepted", receipt.ticket))
            except QueueFullError:
                log.append(("queue_full", tenants[tenant_idx].name))
        elif event[0] == "cancel":
            index = event[1]
            if index < len(tickets):
                resp = gw.cancel(tickets[index])
                log.append(("cancel", resp.ticket, resp.state, resp.changed))
        else:
            gw.pump()
            counts = gw.scheduler.check_invariants()
            log.append(("pump", gw.tick, tuple(sorted(counts.items()))))
    gw.drain(max_ticks=10_000)
    gw.scheduler.check_invariants()
    log.append(("final", tuple(gw.scheduler.completion_order)))
    states = {s.ticket: s.state for s in gw.list_runs()}
    return log, states, gw


class TestPolicyProperties:
    @settings(max_examples=120)
    @given(schedules())
    def test_invariants_and_replay_determinism(self, schedule):
        tenants, shards, events = schedule
        log1, states1, gw1 = run_schedule(tenants, shards, events)
        log2, states2, _ = run_schedule(tenants, shards, events)
        # Same seeded schedule -> identical event log, completion order,
        # and terminal states, decision for decision.
        assert log1 == log2
        assert states1 == states2
        # After the drain, every accepted submission is terminal.
        assert all(state in TERMINAL_STATES for state in states1.values())

    @settings(max_examples=60)
    @given(schedules())
    def test_quota_invariants_under_load(self, schedule):
        tenants, shards, events = schedule
        by_name = {t.name: t for t in tenants}
        gw = stub_gateway(tenants, shards)
        for event in events:
            if event[0] == "submit":
                _, tenant_idx, steps, priority = event
                tenant = tenants[tenant_idx]
                depth_before = sum(
                    1
                    for s in gw.list_runs(tenant=tenant.name)
                    if s.state == "queued"
                )
                try:
                    gw.submit(
                        SubmitRequest(
                            tenant=tenant.name,
                            workflow="stub",
                            config={"steps": steps},
                            priority=priority,
                        )
                    )
                    assert depth_before < tenant.max_queued
                except QueueFullError:
                    assert depth_before == tenant.max_queued
            else:
                gw.pump()
            # Running-quota and shard bounds hold at every point.
            counts = gw.scheduler.check_invariants()
            assert counts["live"] <= shards
            running = [s for s in gw.list_runs() if s.state == "running"]
            per_tenant = {}
            for s in running:
                per_tenant[s.tenant] = per_tenant.get(s.tenant, 0) + 1
            for name, n in per_tenant.items():
                assert n <= by_name[name].max_running


class TestPolicyDeterminism:
    def test_priority_lanes_dispatch_first(self):
        gw = stub_gateway(
            [TenantConfig("a", max_queued=16, max_running=8)], shards=1
        )
        low = gw.submit(
            SubmitRequest(tenant="a", workflow="stub", config={"steps": 1})
        ).ticket
        high = gw.submit(
            SubmitRequest(
                tenant="a", workflow="stub", config={"steps": 1}, priority=5
            )
        ).ticket
        gw.drain(max_ticks=100)
        assert gw.scheduler.completion_order == [high, low]

    def test_weighted_fair_share_across_tenants(self):
        heavy = TenantConfig("heavy", weight=3.0, max_queued=64, max_running=8)
        light = TenantConfig("light", weight=1.0, max_queued=64, max_running=8)
        gw = stub_gateway([heavy, light], shards=1)
        for _ in range(24):
            gw.submit(
                SubmitRequest(tenant="heavy", workflow="stub", config={"steps": 1})
            )
            gw.submit(
                SubmitRequest(tenant="light", workflow="stub", config={"steps": 1})
            )
        gw.drain(max_ticks=1000)
        # In the first 16 completions, grants split ~3:1 by weight.
        first = gw.scheduler.completion_order[:16]
        heavy_share = sum(1 for t in first if t.startswith("heavy"))
        assert heavy_share == 12

    def test_equal_everything_ties_break_by_admission_seq(self):
        gw = stub_gateway(
            [TenantConfig("a", max_queued=64, max_running=8)], shards=1
        )
        tickets = [
            gw.submit(
                SubmitRequest(tenant="a", workflow="stub", config={"steps": 1})
            ).ticket
            for _ in range(6)
        ]
        gw.drain(max_ticks=100)
        assert gw.scheduler.completion_order == tickets

    def test_cancel_unknown_ticket_raises(self):
        gw = stub_gateway([TenantConfig("a")], shards=1)
        with pytest.raises(NotFoundError):
            gw.cancel("a-00042")


# ----------------------------------------------------------- real workflows
def real_gateway(tenants, shards, warm_memo):
    return RunGateway(tenants, shards=shards, memo_cache=warm_memo)


@st.composite
def real_schedules(draw):
    n_tenants = draw(st.integers(min_value=2, max_value=4))
    tenants = [
        TenantConfig(
            name=f"t{i}",
            weight=float(draw(st.integers(min_value=1, max_value=3))),
            max_queued=16,
            max_running=draw(st.integers(min_value=1, max_value=2)),
        )
        for i in range(n_tenants)
    ]
    shards = draw(st.integers(min_value=1, max_value=3))
    submissions = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n_tenants - 1),
                st.sampled_from(PALETTE_SEEDS),
                st.integers(min_value=0, max_value=1),
            ),
            min_size=3,
            max_size=8,
        )
    )
    return tenants, shards, submissions


class TestBitwiseConformance:
    @settings(max_examples=6)
    @given(real_schedules())
    def test_outputs_bitwise_and_order_replays(
        self, warm_memo, standalone_baselines, schedule
    ):
        tenants, shards, submissions = schedule

        def execute():
            gw = real_gateway(tenants, shards, warm_memo)
            seeds = {}
            for i, (tenant_idx, seed, priority) in enumerate(submissions):
                ticket = gw.submit(
                    SubmitRequest(
                        tenant=tenants[tenant_idx].name,
                        config=palette_config(seed),
                        priority=priority,
                    )
                ).ticket
                seeds[ticket] = seed
                if i % 2:
                    gw.pump()
                    gw.scheduler.check_invariants()
            gw.drain(max_ticks=1000)
            gw.scheduler.check_invariants()
            return gw, seeds

        gw1, seeds1 = execute()
        gw2, seeds2 = execute()
        assert gw1.scheduler.completion_order == gw2.scheduler.completion_order
        for ticket, seed in seeds1.items():
            result = gw1.result(ticket)
            assert result.state == COMPLETED
            assert ensemble_json(result.output) == standalone_baselines[seed]


TENANTS_1K = (
    TenantConfig("epi", weight=4.0, max_queued=300, max_running=6),
    TenantConfig("gsa", weight=2.0, max_queued=300, max_running=6),
    TenantConfig("ops", weight=1.0, max_queued=300, max_running=4),
    TenantConfig("edu", weight=1.0, max_queued=300, max_running=4),
)


class TestThousandRunReplay:
    """The acceptance gate: a 1k-run 4-tenant conformance replay."""

    N_RUNS = 1000

    def execute(self, warm_memo):
        gw = RunGateway(list(TENANTS_1K), shards=12, memo_cache=warm_memo)
        tickets = []
        for i in range(self.N_RUNS):
            tenant = TENANTS_1K[i % len(TENANTS_1K)]
            seed = PALETTE_SEEDS[i % len(PALETTE_SEEDS)]
            tickets.append(
                (
                    gw.submit(
                        SubmitRequest(
                            tenant=tenant.name,
                            config=palette_config(seed),
                            priority=i % 3,
                        )
                    ).ticket,
                    seed,
                )
            )
            if i % 25 == 24:
                gw.pump()
                gw.scheduler.check_invariants()
        gw.drain(max_ticks=50_000)
        gw.scheduler.check_invariants()
        return gw, tickets

    def test_1k_runs_4_tenants_replay_identically(
        self, warm_memo, standalone_baselines
    ):
        gw1, tickets1 = self.execute(warm_memo)
        gw2, tickets2 = self.execute(warm_memo)
        assert len(tickets1) == self.N_RUNS
        assert tickets1 == tickets2
        order1 = gw1.scheduler.completion_order
        order2 = gw2.scheduler.completion_order
        assert len(order1) == self.N_RUNS
        assert order1 == order2
        counts = gw1.scheduler.counts_by_state()
        assert counts == {COMPLETED: self.N_RUNS}
        # Bitwise identity vs the standalone workflow, sampled across the
        # burst (every run re-executed the full stack; comparing ~1 in 40
        # keeps the serialization cost of the check itself bounded).
        for ticket, seed in tickets1[:: 41]:
            assert (
                ensemble_json(gw1.result(ticket).output)
                == standalone_baselines[seed]
            )
        view = gw1.service_report()
        assert view["counts"] == {COMPLETED: self.N_RUNS}

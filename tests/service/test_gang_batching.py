"""Cross-run gang batching: bitwise identity, fairness, faults, cancels.

The gang batcher fuses compatible concurrent runs into one vectorized
MCMC block per scheduler quantum.  Its contract is absolute: enabling
gangs may change *nothing observable* — not one output byte, not one
scheduling decision.  Three layers:

1. **Partition invariance** (hypothesis): for randomized schedules over
   shards / quotas / ``max_gang`` — each combination realizing a
   different partition of the compatible running set into gangs — every
   output is bitwise identical to the gang-off gateway and to standalone
   ``run_wastewater_workflow``, and the completion order is identical.
2. **Cold fusion identity**: gangs formed over *cold* runs (no warm
   memo) actually park and flush fused payload blocks; outputs must
   still match cold standalone baselines bitwise, including under a
   PR-1 fault plan and with ``vectorized_rt`` (the full
   runs x plants x chains stack).
3. **Policy conformance**: fair-share weights, priority lanes, quota
   invariants, and mid-gang cancel/kill behave identically with gangs
   enabled.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, FaultSpec
from repro.obs import Observability
from repro.service import (
    CANCELLED,
    COMPLETED,
    FAILED,
    GangPolicy,
    RunGateway,
    SubmitRequest,
    TenantConfig,
)
from repro.state import JsonlRunStore
from repro.workflows import WastewaterRunConfig, run_wastewater_workflow

from tests.service.conftest import PALETTE_SEEDS, ensemble_json, palette_config
from tests.service.test_scheduler_conformance import StubDriver, stub_gateway


def gang_gateway(tenants, shards, memo, *, max_gang=8, **kwargs):
    return RunGateway(
        tenants,
        shards=shards,
        memo_cache=memo,
        gang=GangPolicy(max_gang=max_gang),
        **kwargs,
    )


class TestGangPolicy:
    def test_rejects_degenerate_window(self):
        from repro.common.errors import ValidationError

        with pytest.raises(ValidationError):
            GangPolicy(max_gang=1)

    def test_exported_from_package(self):
        import repro.service as service

        assert "GangPolicy" in service.__all__
        assert "GangBatcher" in service.__all__


# ------------------------------------------------------ partition invariance
@st.composite
def gang_schedules(draw):
    n_tenants = draw(st.integers(min_value=1, max_value=3))
    tenants = [
        TenantConfig(
            name=f"t{i}",
            weight=float(draw(st.integers(min_value=1, max_value=3))),
            max_queued=16,
            max_running=draw(st.integers(min_value=1, max_value=4)),
        )
        for i in range(n_tenants)
    ]
    shards = draw(st.integers(min_value=2, max_value=6))
    max_gang = draw(st.integers(min_value=2, max_value=8))
    submissions = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n_tenants - 1),
                st.sampled_from(PALETTE_SEEDS),
                st.integers(min_value=0, max_value=2),
            ),
            min_size=3,
            max_size=8,
        )
    )
    return tenants, shards, max_gang, submissions


def _execute(gw, tenants, submissions):
    seeds = {}
    for i, (tenant_idx, seed, priority) in enumerate(submissions):
        ticket = gw.submit(
            SubmitRequest(
                tenant=tenants[tenant_idx].name,
                config=palette_config(seed),
                priority=priority,
            )
        ).ticket
        seeds[ticket] = seed
        if i % 2:
            gw.pump()
            gw.scheduler.check_invariants()
    gw.drain(max_ticks=2000)
    gw.scheduler.check_invariants()
    return seeds


class TestPartitionInvariance:
    @settings(max_examples=10, deadline=None)
    @given(gang_schedules())
    def test_any_gang_partition_matches_gang_off_and_standalone(
        self, warm_memo, standalone_baselines, schedule
    ):
        tenants, shards, max_gang, submissions = schedule

        gw_off = RunGateway(tenants, shards=shards, memo_cache=warm_memo)
        seeds_off = _execute(gw_off, tenants, submissions)

        gw_on = gang_gateway(tenants, shards, warm_memo, max_gang=max_gang)
        seeds_on = _execute(gw_on, tenants, submissions)

        # Identical schedule, decision for decision.
        assert seeds_on == seeds_off
        assert (
            gw_on.scheduler.completion_order == gw_off.scheduler.completion_order
        )
        # Identical bytes, run for run — and identical to standalone.
        for ticket, seed in seeds_on.items():
            on = gw_on.result(ticket)
            assert on.state == COMPLETED
            assert ensemble_json(on.output) == ensemble_json(
                gw_off.result(ticket).output
            )
            assert ensemble_json(on.output) == standalone_baselines[seed]


# --------------------------------------------------------- cold fusion paths
COLD_BASE = dict(sim_days=1.1, goldstein_iterations=100)


def _cold_run_gateway(seeds, *, max_gang, fault_plan=None, vectorized=False):
    """Drain one cold gang-enabled gateway over ``seeds``; return outputs."""
    obs = Observability()
    gw = RunGateway(
        [TenantConfig("epi", weight=2.0, max_queued=16, max_running=8)],
        shards=8,
        gang=GangPolicy(max_gang=max_gang),
        fault_plan=fault_plan,
        observability=obs,
    )
    tickets = {}
    for seed in seeds:
        config = WastewaterRunConfig(seed=seed, vectorized_rt=vectorized, **COLD_BASE)
        tickets[seed] = gw.submit(
            SubmitRequest(tenant="epi", config=config)
        ).ticket
    gw.drain(max_ticks=5000)
    outputs = {}
    for seed, ticket in tickets.items():
        result = gw.result(ticket)
        assert result.state == COMPLETED
        outputs[seed] = result.output["ensemble"]
    return outputs, obs.service_view()["gang"]


class TestColdFusionIdentity:
    @pytest.mark.parametrize("max_gang", [2, 3, 8])
    def test_cold_gangs_fuse_and_match_standalone(self, max_gang):
        # Distinct seed block per partition width so every arm runs cold
        # (a warm memo would serve the estimates before fusion engages).
        seeds = tuple(range(9500 + 10 * max_gang, 9504 + 10 * max_gang))
        outputs, gang_view = _cold_run_gateway(seeds, max_gang=max_gang)
        assert gang_view["fused_payloads"] > 0, "cold gangs must fuse flushes"
        for seed in seeds:
            baseline = run_wastewater_workflow(
                WastewaterRunConfig(seed=seed, **COLD_BASE)
            )
            assert outputs[seed] == baseline.ensemble.to_json(include_samples=True)

    def test_cold_fusion_under_fault_plan(self):
        # PR-1 fault decisions are payload-keyed, so retries re-fire
        # identically whether the estimates flush fused or solo.
        plan = lambda: FaultPlan([FaultSpec(site="transfer", rate=0.2)], seed=5)
        seeds = (9601, 9602, 9603)
        outputs, gang_view = _cold_run_gateway(
            seeds, max_gang=8, fault_plan=plan()
        )
        assert gang_view["fused_payloads"] > 0
        for seed in seeds:
            baseline = run_wastewater_workflow(
                WastewaterRunConfig(seed=seed, **COLD_BASE), fault_plan=plan()
            )
            assert outputs[seed] == baseline.ensemble.to_json(include_samples=True)

    def test_cold_fusion_vectorized_rt_stacks_runs_and_plants(self):
        # vectorized_rt batches all plants per run; ganging stacks the
        # runs too — the full (runs x plants x chains, dim) block.
        seeds = (9701, 9702, 9703)
        outputs, gang_view = _cold_run_gateway(
            seeds, max_gang=8, vectorized=True
        )
        assert gang_view["fused_payloads"] > 0
        for seed in seeds:
            baseline = run_wastewater_workflow(
                WastewaterRunConfig(seed=seed, vectorized_rt=True, **COLD_BASE)
            )
            assert outputs[seed] == baseline.ensemble.to_json(include_samples=True)


# ------------------------------------------------------------- policy checks
class TestPolicyConformanceWithGangs:
    def test_stub_schedules_identical_with_gangs_enabled(self):
        """Runs without a gang key (the stub driver) are untouched."""
        tenants = [TenantConfig("a", max_queued=64, max_running=8)]
        logs = []
        for gang in (None, GangPolicy(max_gang=4)):
            gw = RunGateway(
                tenants, drivers={"stub": StubDriver()}, shards=2, gang=gang
            )
            tickets = [
                gw.submit(
                    SubmitRequest(
                        tenant="a",
                        workflow="stub",
                        config={"steps": 1 + i % 3},
                        priority=i % 2,
                    )
                ).ticket
                for i in range(12)
            ]
            gw.drain(max_ticks=200)
            gw.scheduler.check_invariants()
            logs.append((tickets, list(gw.scheduler.completion_order)))
        assert logs[0] == logs[1]

    def test_priority_lanes_still_dispatch_first(self, warm_memo):
        gw = gang_gateway(
            [TenantConfig("a", max_queued=16, max_running=8)], 1, warm_memo
        )
        low = gw.submit(
            SubmitRequest(tenant="a", config=palette_config(PALETTE_SEEDS[0]))
        ).ticket
        high = gw.submit(
            SubmitRequest(
                tenant="a", config=palette_config(PALETTE_SEEDS[1]), priority=5
            )
        ).ticket
        gw.drain(max_ticks=2000)
        assert gw.scheduler.completion_order == [high, low]

    def test_weighted_fair_share_holds_with_gangs(self, warm_memo):
        heavy = TenantConfig("heavy", weight=3.0, max_queued=64, max_running=8)
        light = TenantConfig("light", weight=1.0, max_queued=64, max_running=8)
        gw = gang_gateway([heavy, light], 1, warm_memo)
        for i in range(8):
            gw.submit(
                SubmitRequest(
                    tenant="heavy", config=palette_config(PALETTE_SEEDS[i % 6])
                )
            )
            gw.submit(
                SubmitRequest(
                    tenant="light", config=palette_config(PALETTE_SEEDS[i % 6])
                )
            )
        gw.drain(max_ticks=5000)
        first = gw.scheduler.completion_order[:8]
        heavy_share = sum(1 for t in first if t.startswith("heavy"))
        assert heavy_share == 6  # 3:1 weights over the first two rounds

    def test_mid_gang_cancel_kills_one_member_only(
        self, tmp_path, warm_memo, standalone_baselines
    ):
        """Cancel one running gang member; peers finish bitwise identical."""
        store = JsonlRunStore(tmp_path / "runs")
        gw = gang_gateway(
            [TenantConfig("epi", max_queued=16, max_running=8)],
            4,
            warm_memo,
            run_store=store,
        )
        seeds = PALETTE_SEEDS[:3]
        tickets = {
            seed: gw.submit(
                SubmitRequest(tenant="epi", config=palette_config(seed))
            ).ticket
            for seed in seeds
        }
        gw.pump()  # all three dispatched and stepped once, as one gang
        victim = tickets[seeds[0]]
        assert gw.status(victim).state == "running"
        resp = gw.cancel(victim)
        assert resp.changed and resp.state == CANCELLED
        assert resp.run_id is not None
        assert store.open_run(resp.run_id).status == "killed"

        gw.drain(max_ticks=2000)
        for seed in seeds[1:]:
            result = gw.result(tickets[seed])
            assert result.state == COMPLETED
            assert ensemble_json(result.output) == standalone_baselines[seed]

    def test_scripted_kill_fires_inside_the_gang(self, tmp_path):
        """A state.journal kill mid-run fails members as killed, durably."""
        store = JsonlRunStore(tmp_path / "runs")
        plan = FaultPlan([FaultSpec(site="state.journal", at_time=0.5)])
        gw = RunGateway(
            [TenantConfig("epi", max_queued=16, max_running=8)],
            shards=4,
            gang=GangPolicy(max_gang=8),
            run_store=store,
            fault_plan=plan,
        )
        tickets = [
            gw.submit(
                SubmitRequest(
                    tenant="epi",
                    config=WastewaterRunConfig(seed=9800 + i, **COLD_BASE),
                )
            ).ticket
            for i in range(3)
        ]
        gw.drain(max_ticks=2000)
        for ticket in tickets:
            status = gw.status(ticket)
            assert status.state == FAILED
            assert "killed" in status.error
            assert store.open_run(status.run_id).status == "killed"

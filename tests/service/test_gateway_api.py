"""Endpoint semantics of the run gateway: typed errors, lifecycle, cancel.

Covers the REST-shaped surface (submit / status / result / cancel /
list_runs) and every cancellation edge: before admission (unknown ticket),
while queued, mid-run (durably killed, resumable), double-cancel, and
cancel-after-completion — plus the ``serve-sim`` / ``submit`` CLI flow.
"""

from __future__ import annotations

import json

import pytest

from repro.common.errors import (
    AdmissionError,
    NotFoundError,
    QueueFullError,
    StateError,
)
from repro.obs import Observability
from repro.perf import MemoCache
from repro.service import (
    CANCELLED,
    COMPLETED,
    QUEUED,
    RUNNING,
    RunGateway,
    SubmitRequest,
    TenantConfig,
)
from repro.state import InMemoryRunStore, JsonlRunStore
from repro.workflows import run_wastewater_workflow

from tests.service.conftest import PALETTE_SEEDS, ensemble_json, palette_config


def make_gateway(warm_memo, *, store=None, obs=None, shards=2, max_running=1,
                 max_queued=8):
    return RunGateway(
        [
            TenantConfig("acme", weight=2.0, max_queued=max_queued,
                         max_running=max_running),
            TenantConfig("beta", weight=1.0, max_queued=max_queued,
                         max_running=max_running),
        ],
        shards=shards,
        run_store=store,
        memo_cache=warm_memo,
        observability=obs,
    )


class TestSubmitAndAdmission:
    def test_submit_returns_typed_receipt(self, warm_memo):
        gw = make_gateway(warm_memo)
        receipt = gw.submit(
            SubmitRequest(tenant="acme", config=palette_config(9000), priority=1)
        )
        assert receipt.ticket == "acme-00000"
        assert (receipt.tenant, receipt.workflow) == ("acme", "wastewater")
        assert (receipt.priority, receipt.seq) == (1, 0)
        assert gw.status(receipt.ticket).state == QUEUED

    def test_unknown_tenant_rejected(self, warm_memo):
        gw = make_gateway(warm_memo)
        with pytest.raises(AdmissionError):
            gw.submit(SubmitRequest(tenant="nobody", config=palette_config(9000)))

    def test_unknown_workflow_rejected(self, warm_memo):
        gw = make_gateway(warm_memo)
        with pytest.raises(AdmissionError):
            gw.submit(SubmitRequest(tenant="acme", workflow="quantum"))

    def test_invalid_config_rejected_at_submit_time(self, warm_memo):
        gw = make_gateway(warm_memo)
        with pytest.raises(AdmissionError):
            gw.submit(SubmitRequest(tenant="acme", config={"sim_days": -5}))
        # Nothing was accepted.
        assert gw.list_runs() == []

    def test_bounded_queue_backpressure(self, warm_memo):
        obs = Observability()
        gw = make_gateway(warm_memo, obs=obs, max_queued=2)
        for seed in PALETTE_SEEDS[:2]:
            gw.submit(SubmitRequest(tenant="acme", config=palette_config(seed)))
        with pytest.raises(QueueFullError):
            gw.submit(
                SubmitRequest(tenant="acme", config=palette_config(9002))
            )
        # QueueFullError is an AdmissionError, but counted separately.
        view = obs.service_view()
        assert view["queue_rejects"] == 1
        assert view["admission_rejects"] == 0
        assert view["queue_depth"] == 2
        # A pump frees queue room; the retry is then admitted.
        gw.pump()
        gw.submit(SubmitRequest(tenant="acme", config=palette_config(9002)))

    def test_queue_full_is_admission_error_subclass(self):
        assert issubclass(QueueFullError, AdmissionError)


class TestStatusAndResult:
    def test_unknown_ticket_raises_not_found(self, warm_memo):
        gw = make_gateway(warm_memo)
        with pytest.raises(NotFoundError):
            gw.status("acme-99999")
        with pytest.raises(NotFoundError):
            gw.result("acme-99999")

    def test_result_before_terminal_raises_state_error(self, warm_memo):
        gw = make_gateway(warm_memo)
        ticket = gw.submit(
            SubmitRequest(tenant="acme", config=palette_config(9000))
        ).ticket
        with pytest.raises(StateError):
            gw.result(ticket)
        gw.pump()
        assert gw.status(ticket).state == RUNNING
        with pytest.raises(StateError):
            gw.result(ticket)

    def test_completed_result_is_bitwise_standalone(
        self, warm_memo, standalone_baselines
    ):
        gw = make_gateway(warm_memo)
        ticket = gw.submit(
            SubmitRequest(tenant="beta", config=palette_config(9001))
        ).ticket
        gw.drain(max_ticks=100)
        result = gw.result(ticket)
        assert result.state == COMPLETED
        assert ensemble_json(result.output) == standalone_baselines[9001]

    def test_list_runs_reflects_states_and_filters_by_tenant(self, warm_memo):
        gw = make_gateway(warm_memo, shards=1)
        t_run = gw.submit(
            SubmitRequest(tenant="acme", config=palette_config(9000))
        ).ticket
        t_queued = gw.submit(
            SubmitRequest(tenant="acme", config=palette_config(9001))
        ).ticket
        t_other = gw.submit(
            SubmitRequest(tenant="beta", config=palette_config(9002))
        ).ticket
        gw.pump()
        gw.cancel(t_other)
        states = {s.ticket: s.state for s in gw.list_runs()}
        assert states == {t_run: RUNNING, t_queued: QUEUED, t_other: CANCELLED}
        assert [s.ticket for s in gw.list_runs(tenant="acme")] == [t_run, t_queued]
        gw.drain(max_ticks=100)
        states = {s.ticket: s.state for s in gw.list_runs()}
        assert states == {
            t_run: COMPLETED,
            t_queued: COMPLETED,
            t_other: CANCELLED,
        }


class TestCancellation:
    def test_cancel_before_admission_is_not_found(self, warm_memo):
        gw = make_gateway(warm_memo)
        with pytest.raises(NotFoundError):
            gw.cancel("acme-00000")

    def test_cancel_while_queued_never_creates_a_run(self, warm_memo):
        store = InMemoryRunStore()
        gw = make_gateway(warm_memo, store=store)
        ticket = gw.submit(
            SubmitRequest(tenant="acme", config=palette_config(9000))
        ).ticket
        resp = gw.cancel(ticket)
        assert (resp.state, resp.changed, resp.run_id) == (CANCELLED, True, None)
        gw.drain(max_ticks=10)
        assert gw.status(ticket).state == CANCELLED
        # Only the gateway's own service run exists in the store.
        assert [s.workflow for s in store.list_runs()] == ["service"]

    def test_cancel_mid_run_kills_durably_and_resumes_bitwise(
        self, warm_memo, standalone_baselines
    ):
        store = InMemoryRunStore()
        gw = make_gateway(warm_memo, store=store)
        ticket = gw.submit(
            SubmitRequest(tenant="acme", config=palette_config(9003))
        ).ticket
        gw.pump()
        assert gw.status(ticket).state == RUNNING
        resp = gw.cancel(ticket)
        assert resp.changed and resp.state == CANCELLED
        assert resp.run_id is not None
        assert store.open_run(resp.run_id).status == "killed"
        # The killed run is resumable outside the gateway, bitwise.
        resumed = run_wastewater_workflow(
            run_store=store, resume_from=resp.run_id, memo_cache=warm_memo
        )
        out = json.dumps(
            resumed.ensemble.to_json(include_samples=True), sort_keys=True
        )
        assert out == standalone_baselines[9003]
        assert store.open_run(resp.run_id).status == "completed"

    def test_double_cancel_is_idempotent(self, warm_memo):
        gw = make_gateway(warm_memo, store=InMemoryRunStore())
        ticket = gw.submit(
            SubmitRequest(tenant="acme", config=palette_config(9000))
        ).ticket
        gw.pump()
        first = gw.cancel(ticket)
        second = gw.cancel(ticket)
        assert first.changed is True
        assert second.changed is False
        assert second.state == CANCELLED
        assert second.run_id == first.run_id

    def test_cancel_after_completion_is_a_no_op(self, warm_memo):
        gw = make_gateway(warm_memo)
        ticket = gw.submit(
            SubmitRequest(tenant="acme", config=palette_config(9000))
        ).ticket
        gw.drain(max_ticks=100)
        resp = gw.cancel(ticket)
        assert (resp.state, resp.changed) == (COMPLETED, False)
        # The completed output is still retrievable.
        assert gw.result(ticket).state == COMPLETED

    def test_cancelled_counts_in_service_view(self, warm_memo):
        obs = Observability()
        gw = make_gateway(warm_memo, store=InMemoryRunStore(), obs=obs)
        first = gw.submit(
            SubmitRequest(tenant="acme", config=palette_config(9000))
        ).ticket
        second = gw.submit(
            SubmitRequest(tenant="beta", config=palette_config(9001))
        ).ticket
        gw.pump()
        gw.cancel(first)
        gw.cancel(second)
        view = obs.service_view()
        assert view["cancelled"] == 2
        assert view["submitted"] == view["admitted"] == 2


class TestObservability:
    def test_service_view_and_per_tenant_span_trees(self, warm_memo):
        obs = Observability()
        gw = make_gateway(warm_memo, obs=obs)
        for tenant, seed in (("acme", 9000), ("acme", 9001), ("beta", 9002)):
            gw.submit(SubmitRequest(tenant=tenant, config=palette_config(seed)))
        gw.drain(max_ticks=100)
        gw.close()
        view = obs.service_view()
        assert view["submitted"] == view["admitted"] == view["completed"] == 3
        assert view["started"] == 3
        assert view["quanta"] >= 3
        assert view["queue_depth"] == 0
        assert view["time_in_queue"]["count"] == 3
        spans = obs.tracer.finished_spans()
        tenant_spans = {
            s.name: s for s in spans if s.category == "service.tenant"
        }
        run_spans = [s for s in spans if s.category == "service.run"]
        assert set(tenant_spans) == {"tenant:acme", "tenant:beta"}
        assert len(run_spans) == 3
        # Each submission span is parented under its tenant's root span.
        by_parent = {}
        for span in run_spans:
            by_parent.setdefault(span.parent_id, []).append(span.name)
        assert sorted(by_parent[tenant_spans["tenant:acme"].span_id]) == [
            "run:acme-00000",
            "run:acme-00001",
        ]
        assert by_parent[tenant_spans["tenant:beta"].span_id] == [
            "run:beta-00002"
        ]

    def test_closed_gateway_rejects_submissions(self, warm_memo):
        gw = make_gateway(warm_memo)
        gw.close()
        with pytest.raises(AdmissionError):
            gw.submit(SubmitRequest(tenant="acme", config=palette_config(9000)))


class TestCli:
    def test_serve_sim_and_submit_flow(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = str(tmp_path / "svc")
        assert main([
            "serve-sim", "--store", store_dir,
            "--tenants", "acme:2:16:2,beta:1:16:2", "--shards", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "created service run service-" in out

        assert main([
            "submit", "--store", store_dir, "--tenant", "acme",
            "--sim-days", "1.1", "--iterations", "100", "--seed", "9000",
        ]) == 0
        out = capsys.readouterr().out
        assert "accepted acme-00000" in out

        assert main(["serve-sim", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "recovered service run" in out
        assert "completed" in out

        # The workflow run is a first-class journaled run in the same store.
        store = JsonlRunStore(store_dir)
        workflows = sorted(s.workflow for s in store.list_runs())
        assert workflows == ["service", "wastewater"]

    def test_submit_without_service_run_fails_helpfully(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="serve-sim"):
            main([
                "submit", "--store", str(tmp_path / "empty"), "--tenant", "a",
            ])

"""Acceptance: telemetry is a deterministic function of seed + fault plan.

Two gateway bursts with the same submissions, fault plan, and kill script
must produce byte-identical event logs, the same SLO alert fire/resolve
sequence, and byte-identical flight-recorder dumps — including across a
kill/recover cycle, where the concatenated pre-kill + post-recovery logs
must match between repetitions.
"""

from __future__ import annotations

import pytest

from repro.common.errors import WorkflowKilledError
from repro.faults import FaultPlan, FaultSpec
from repro.obs import Observability, TopModel, render_top
from repro.service import FAILED, RunGateway, SubmitRequest, TenantConfig
from repro.state import JsonlRunStore, KillSwitch

from tests.service.conftest import PALETTE_SEEDS, palette_config


def tenants():
    return [
        TenantConfig("acme", weight=2.0, max_queued=32, max_running=2),
        TenantConfig("beta", weight=1.0, max_queued=32, max_running=2),
    ]


def telemetry(obs):
    recorder, engine = obs.install_telemetry()
    return recorder, engine


class TestPlainBurst:
    def run_burst(self, warm_memo):
        obs = Observability()
        recorder, engine = telemetry(obs)
        gw = RunGateway(
            tenants(), shards=2, memo_cache=warm_memo, observability=obs
        )
        cancelled = None
        for i, seed in enumerate(PALETTE_SEEDS):
            receipt = gw.submit(
                SubmitRequest(
                    tenant=("acme", "beta")[i % 2], config=palette_config(seed)
                )
            )
            if i == 4:
                cancelled = receipt.ticket
        gw.cancel(cancelled)
        gw.drain(max_ticks=2000)
        gw.close()
        return (
            obs.events.to_jsonl(),
            engine.report_json(),
            list(engine.alert_log),
            dict(recorder.dumps),
        )

    def test_two_bursts_are_byte_identical(self, warm_memo):
        first = self.run_burst(warm_memo)
        second = self.run_burst(warm_memo)
        assert first[0] == second[0]  # event log, byte for byte
        assert first[1] == second[1]  # SLO report
        assert first[2] == second[2]  # alert sequence
        assert first[3] == second[3]  # flight-recorder dumps
        # The dashboard replayed from the log is deterministic too.
        frame = render_top(TopModel.from_jsonl(first[0]))
        assert frame == render_top(TopModel.from_jsonl(second[0]))
        assert "events=" in frame


class TestFaultPlanBurst:
    """A journal fault kills every run: failures, an alert, auto-dumps."""

    def run_burst(self, warm_memo, store_dir):
        obs = Observability()
        recorder, engine = telemetry(obs)
        gw = RunGateway(
            tenants(),
            shards=2,
            run_store=JsonlRunStore(store_dir),
            memo_cache=warm_memo,
            fault_plan=FaultPlan([FaultSpec(site="state.journal", at_time=0.5)]),
            observability=obs,
        )
        ticket_order = []
        for i, seed in enumerate(PALETTE_SEEDS[:4]):
            receipt = gw.submit(
                SubmitRequest(
                    tenant=("acme", "beta")[i % 2], config=palette_config(seed)
                )
            )
            ticket_order.append(receipt.ticket)
        gw.drain(max_ticks=2000)
        states = {t: gw.status(t).state for t in ticket_order}
        gw.close()
        return (
            states,
            obs.events.to_jsonl(),
            list(engine.alert_log),
            dict(recorder.dumps),
        )

    def test_fault_plan_telemetry_is_deterministic(self, warm_memo, tmp_path):
        first = self.run_burst(warm_memo, tmp_path / "a")
        second = self.run_burst(warm_memo, tmp_path / "b")
        assert set(first[0].values()) == {FAILED}
        assert first[0] == second[0]
        assert first[1] == second[1]
        # The error-rate SLO fired, deterministically both times.
        assert [(name, verdict) for name, verdict, _ in first[2]]
        assert any(verdict == "slo.alert" for _, verdict, _ in first[2])
        assert first[2] == second[2]
        # Every failure captured a dump; dumps are byte-identical.
        assert any("-failure-" in name for name in first[3])
        assert any("-alert-" in name for name in first[3])
        assert first[3] == second[3]


class TestKillRecoverCycle:
    """The service kill composes: pre-kill + post-recovery logs agree."""

    def run_cycle(self, warm_memo, store_dir):
        store = JsonlRunStore(store_dir)
        obs_a = Observability()
        recorder_a, engine_a = telemetry(obs_a)
        gw = RunGateway(
            tenants(),
            shards=2,
            run_store=store,
            memo_cache=warm_memo,
            kill_switch=KillSwitch(after_records=7),
            observability=obs_a,
        )
        service_id = gw.service_run_id
        with pytest.raises(WorkflowKilledError):
            for i, seed in enumerate(PALETTE_SEEDS):
                gw.submit(
                    SubmitRequest(
                        tenant=("acme", "beta")[i % 2],
                        config=palette_config(seed),
                    )
                )
                gw.pump()

        obs_b = Observability()
        recorder_b, engine_b = telemetry(obs_b)
        recovered = RunGateway.recover(
            store, service_id, memo_cache=warm_memo, observability=obs_b
        )
        recovered.drain(max_ticks=2000)
        recovered.close()
        return (
            obs_a.events.to_jsonl() + obs_b.events.to_jsonl(),
            list(engine_a.alert_log) + list(engine_b.alert_log),
            {**recorder_a.dumps, **recorder_b.dumps},
        )

    def test_kill_recover_telemetry_is_deterministic(self, warm_memo, tmp_path):
        first = self.run_cycle(warm_memo, tmp_path / "a")
        second = self.run_cycle(warm_memo, tmp_path / "b")
        assert first[0] == second[0]
        assert first[1] == second[1]
        assert first[2] == second[2]
        # The service kill itself was recorded and dumped.
        assert "state.kill" in first[0]
        assert any("-kill-" in name for name in first[2])

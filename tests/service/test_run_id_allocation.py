"""Race-freedom of deterministic run-id allocation.

Run ids are ``{workflow}-{config_digest[:10]}-{nnn}`` with ``nnn`` counting
prior same-config runs — a read-modify-write that used to be a race: two
threads submitting identical configs could both read count N and collide
on id N+1, the second silently shadowing the first's journal.  These tests
hammer ``create_run`` from a thread pool on both backends (and through the
gateway's scheduler path) and require every caller to get a distinct,
densely-numbered id.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.state import InMemoryRunStore, JsonlRunStore

CONFIG = {"sim_days": 2.0, "seed": 7}


def make_store(kind, tmp_path):
    if kind == "memory":
        return InMemoryRunStore()
    return JsonlRunStore(tmp_path / "runs")


@pytest.mark.parametrize("backend", ["memory", "jsonl"])
def test_concurrent_same_config_allocation_is_collision_free(backend, tmp_path):
    store = make_store(backend, tmp_path)
    n_threads, per_thread = 16, 25

    def create_many(_worker):
        return [
            store.create_run("wastewater", CONFIG).run_id
            for _ in range(per_thread)
        ]

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        batches = list(pool.map(create_many, range(n_threads)))
    ids = [run_id for batch in batches for run_id in batch]
    assert len(ids) == n_threads * per_thread
    # Every caller got a distinct id...
    assert len(set(ids)) == len(ids)
    # ...and numbering is dense 001..400 under one shared prefix.
    prefixes = {run_id.rsplit("-", 1)[0] for run_id in ids}
    assert len(prefixes) == 1
    suffixes = sorted(int(run_id.rsplit("-", 1)[1]) for run_id in ids)
    assert suffixes == list(range(1, len(ids) + 1))


@pytest.mark.parametrize("backend", ["memory", "jsonl"])
def test_mixed_configs_keep_independent_counters(backend, tmp_path):
    store = make_store(backend, tmp_path)
    configs = [{"seed": s} for s in (1, 2, 3)]

    def create(i):
        return store.create_run("wastewater", configs[i % 3]).run_id

    with ThreadPoolExecutor(max_workers=8) as pool:
        ids = list(pool.map(create, range(60)))
    assert len(set(ids)) == 60
    by_prefix = {}
    for run_id in ids:
        prefix, n = run_id.rsplit("-", 1)
        by_prefix.setdefault(prefix, []).append(int(n))
    assert len(by_prefix) == 3
    for numbers in by_prefix.values():
        assert sorted(numbers) == list(range(1, 21))


def test_jsonl_allocation_is_race_free_across_store_instances(tmp_path):
    """Two store objects over one directory model two gateway processes:
    the exclusive-mkdir reservation, not the in-process lock, must
    arbitrate."""
    root = tmp_path / "runs"
    stores = [JsonlRunStore(root), JsonlRunStore(root)]

    def create(i):
        return stores[i % 2].create_run("wastewater", CONFIG).run_id

    with ThreadPoolExecutor(max_workers=8) as pool:
        ids = list(pool.map(create, range(80)))
    assert len(set(ids)) == 80
    suffixes = sorted(int(run_id.rsplit("-", 1)[1]) for run_id in ids)
    assert suffixes == list(range(1, 81))


def test_same_config_submissions_through_gateway_get_distinct_runs(warm_memo):
    """The scheduler path: identical configs from one tenant must land in
    distinct journaled runs, numbered in dispatch order."""
    from repro.service import RunGateway, SubmitRequest, TenantConfig

    from tests.service.conftest import palette_config

    store = InMemoryRunStore()
    gw = RunGateway(
        [TenantConfig("a", max_queued=16, max_running=4)],
        shards=4,
        run_store=store,
        memo_cache=warm_memo,
    )
    tickets = [
        gw.submit(SubmitRequest(tenant="a", config=palette_config(9000))).ticket
        for _ in range(5)
    ]
    gw.drain(max_ticks=100)
    run_ids = [gw.result(t).run_id for t in tickets]
    assert len(set(run_ids)) == 5
    assert sorted(int(r.rsplit("-", 1)[1]) for r in run_ids) == [1, 2, 3, 4, 5]

"""Shared fixtures for the run-gateway (repro.service) test suite.

The conformance tests execute *real* wastewater runs by the hundreds, which
is only tractable because of the PR-2 warm-memo property: a run against a
warm :class:`~repro.perf.MemoCache` is bitwise identical to a cold run and
~10x faster.  One session-scoped cache is warmed by the standalone baseline
runs below; every gateway execution of a palette config then replays at
memo speed while still exercising the full scheduling machinery.
"""

from __future__ import annotations

import json

import pytest

from repro.perf import MemoCache
from repro.workflows import WastewaterRunConfig, run_wastewater_workflow

#: Seeds of the config palette service tests draw submissions from.
PALETTE_SEEDS = (9000, 9001, 9002, 9003, 9004, 9005)


def palette_config(seed: int) -> WastewaterRunConfig:
    """The minimal-but-real wastewater config used for service runs."""
    return WastewaterRunConfig(sim_days=1.1, goldstein_iterations=100, seed=seed)


def ensemble_json(output) -> str:
    """Canonical string form of a driver output's ensemble (for bitwise
    comparison)."""
    return json.dumps(output["ensemble"], sort_keys=True)


@pytest.fixture(scope="session")
def warm_memo() -> MemoCache:
    """The shared memo cache every service test executes against."""
    return MemoCache()


@pytest.fixture(scope="session")
def standalone_baselines(warm_memo):
    """Per-seed standalone outputs; warming the shared cache as they run."""
    baselines = {}
    for seed in PALETTE_SEEDS:
        result = run_wastewater_workflow(palette_config(seed), memo_cache=warm_memo)
        baselines[seed] = json.dumps(
            result.ensemble.to_json(include_samples=True), sort_keys=True
        )
    return baselines

"""Gateway telemetry: event/counter reconciliation, span hygiene, top view.

The structured event log is a second witness to the gateway's counters —
every admission, rejection, dispatch, and terminal transition must appear
in both, and the ``repro top`` model folded from the events must agree
with ``service_view()``.  Also holds the regression test for the queued-
then-cancelled span leak: cancel used to close the submission span with
status ``ok`` (and ``close()`` left non-terminal spans dangling).
"""

from __future__ import annotations

import pytest

from repro.common.errors import QueueFullError
from repro.obs import Observability, TopModel
from repro.service import (
    CANCELLED,
    COMPLETED,
    GangPolicy,
    RunGateway,
    SubmitRequest,
    TenantConfig,
)

from tests.service.conftest import PALETTE_SEEDS, palette_config


def make_gateway(warm_memo, obs, *, max_queued=8, gang=None):
    return RunGateway(
        [
            TenantConfig("acme", weight=2.0, max_queued=max_queued,
                         max_running=2),
            TenantConfig("beta", weight=1.0, max_queued=max_queued,
                         max_running=2),
        ],
        shards=2,
        memo_cache=warm_memo,
        observability=obs,
        gang=gang,
    )


def kinds(obs):
    return obs.events.kinds()


class TestEventCounterReconciliation:
    def test_burst_events_reconcile_with_counters(self, warm_memo):
        obs = Observability()
        gw = make_gateway(warm_memo, obs, max_queued=2)
        # 2 admitted for acme, 1 for beta; the 4th submission overflows
        # acme's queue; one queued submission is cancelled.
        t0 = gw.submit(SubmitRequest(tenant="acme", config=palette_config(9000)))
        t1 = gw.submit(SubmitRequest(tenant="acme", config=palette_config(9001)))
        gw.submit(SubmitRequest(tenant="beta", config=palette_config(9002)))
        with pytest.raises(QueueFullError):
            gw.submit(SubmitRequest(tenant="acme", config=palette_config(9003)))
        gw.cancel(t1.ticket)
        gw.drain(max_ticks=500)

        view = obs.service_view()
        events = obs.events.events
        admits = [e for e in events if e.kind == "run.admit"]
        rejects = [e for e in events if e.kind == "run.reject"]
        finishes = [e for e in events if e.kind == "run.finish"]
        dispatches = [e for e in events if e.kind == "run.dispatch"]

        assert view["admitted"] == len(admits) == 3
        assert view["queue_rejects"] == len(
            [e for e in rejects if e.attrs["reason"] == "queue-full"]
        ) == 1
        assert view["started"] == len(dispatches) == 2
        by_state = {
            s: len([e for e in finishes if e.attrs["state"] == s])
            for s in ("completed", "cancelled", "failed")
        }
        assert view["completed"] == by_state["completed"] == 2
        assert view["cancelled"] == by_state["cancelled"] == 1
        assert view["failed"] == by_state["failed"] == 0
        # Every admit carries the span that traces the submission.
        assert all(e.span_id for e in admits)
        assert {e.tenant for e in admits} == {"acme", "beta"}
        assert t0.ticket in {e.key for e in dispatches}

    def test_reject_reasons_are_typed(self, warm_memo):
        obs = Observability()
        gw = make_gateway(warm_memo, obs)
        from repro.common.errors import AdmissionError

        with pytest.raises(AdmissionError):
            gw.submit(SubmitRequest(tenant="acme", workflow="quantum"))
        with pytest.raises(AdmissionError):
            gw.submit(SubmitRequest(tenant="acme", config={"sim_days": -5}))
        gw.close()
        with pytest.raises(AdmissionError):
            gw.submit(SubmitRequest(tenant="acme", config=palette_config(9000)))
        reasons = [
            e.attrs["reason"] for e in obs.events.events if e.kind == "run.reject"
        ]
        assert reasons == ["unknown-workflow", "invalid-config", "closed"]

    def test_gang_events_reconcile_with_gang_counters(self, warm_memo):
        obs = Observability()
        gw = make_gateway(warm_memo, obs, gang=GangPolicy(max_gang=4))
        for i, seed in enumerate(PALETTE_SEEDS[:4]):
            gw.submit(
                SubmitRequest(tenant=("acme", "beta")[i % 2],
                              config=palette_config(seed))
            )
        gw.drain(max_ticks=500)
        view = obs.service_view()
        events = obs.events.events
        forms = [e for e in events if e.kind == "gang.form"]
        flushes = [e for e in events if e.kind == "gang.flush"]
        assert view["gang"]["gangs"] == len(forms)
        assert view["gang"]["members"] == sum(e.attrs["size"] for e in forms)
        assert view["gang"]["flushes"] == len(flushes)
        assert view["gang"]["fused_payloads"] == sum(
            e.attrs["size"] for e in flushes if e.attrs["fused"]
        )

    def test_top_model_agrees_with_service_view(self, warm_memo):
        obs = Observability()
        model = TopModel().attach(obs.events)
        gw = make_gateway(warm_memo, obs)
        tickets = [
            gw.submit(SubmitRequest(tenant="acme", config=palette_config(seed)))
            for seed in PALETTE_SEEDS[:3]
        ]
        gw.cancel(tickets[2].ticket)
        gw.drain(max_ticks=500)
        view = obs.service_view()
        acme = model.tenants["acme"]
        assert acme["admitted"] == view["admitted"] == 3
        assert acme["completed"] == view["completed"] == 2
        assert acme["cancelled"] == view["cancelled"] == 1
        assert acme["queued"] == acme["running"] == 0
        # Replay of the serialized log reaches the identical model state.
        replayed = TopModel.from_jsonl(obs.events.to_jsonl())
        assert replayed.tenants == model.tenants


class TestSpanHygiene:
    """Regression: queued-then-cancelled submissions leaked `ok` spans."""

    def test_cancelled_span_closes_with_cancelled_status(self, warm_memo):
        obs = Observability()
        gw = make_gateway(warm_memo, obs)
        ticket = gw.submit(
            SubmitRequest(tenant="acme", config=palette_config(9000))
        ).ticket
        gw.cancel(ticket)
        gw.drain(max_ticks=10)
        span = next(
            s for s in obs.tracer.spans if s.name == f"run:{ticket}"
        )
        assert span.finished
        assert span.status == CANCELLED
        assert span.attrs["state"] == CANCELLED

    def test_completed_span_keeps_ok_status(self, warm_memo):
        obs = Observability()
        gw = make_gateway(warm_memo, obs)
        ticket = gw.submit(
            SubmitRequest(tenant="acme", config=palette_config(9000))
        ).ticket
        gw.drain(max_ticks=500)
        span = next(s for s in obs.tracer.spans if s.name == f"run:{ticket}")
        assert (span.status, span.attrs["state"]) == ("ok", COMPLETED)

    def test_close_leaves_no_open_submission_spans(self, warm_memo):
        obs = Observability()
        gw = make_gateway(warm_memo, obs)
        ticket = gw.submit(
            SubmitRequest(tenant="acme", config=palette_config(9000))
        ).ticket
        gw.close()  # still queued: never ran
        span = next(s for s in obs.tracer.spans if s.name == f"run:{ticket}")
        assert span.finished
        assert span.status == "aborted"
        open_run_spans = [
            s
            for s in obs.tracer.spans
            if s.category == "service.run" and not s.finished
        ]
        assert open_run_spans == []


class TestCliTop:
    def test_live_frame_matches_replayed_frame(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = str(tmp_path / "svc")
        events_path = tmp_path / "events.jsonl"
        assert main([
            "serve-sim", "--store", store_dir,
            "--tenants", "acme:2:16:2,beta:1:16:2", "--shards", "2",
        ]) == 0
        capsys.readouterr()
        for tenant, seed in (("acme", 9000), ("beta", 9001)):
            assert main([
                "submit", "--store", store_dir, "--tenant", tenant,
                "--sim-days", "1.1", "--iterations", "100",
                "--seed", str(seed),
            ]) == 0
        capsys.readouterr()

        assert main([
            "top", "--store", store_dir, "--events-out", str(events_path),
        ]) == 0
        live = capsys.readouterr().out
        assert "repro top" in live and "acme" in live and "slos" in live

        assert main(["top", "--events", str(events_path)]) == 0
        replayed = capsys.readouterr().out
        # The replayed tenant table is identical to the live one (the
        # replay frame just omits the live SLO section).
        assert replayed.splitlines()[0] == live.splitlines()[0]
        for line in replayed.splitlines():
            assert line in live

    def test_top_without_source_is_an_error(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["top"])

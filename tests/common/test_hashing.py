"""Tests for checksums and stable digests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ValidationError
from repro.common.hashing import content_checksum, short_id, stable_digest


class TestContentChecksum:
    def test_known_value(self):
        # sha256 of empty input is a well-known constant.
        assert content_checksum(b"") == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_str_and_bytes_agree(self):
        assert content_checksum("hello") == content_checksum(b"hello")

    def test_distinct_content_distinct_checksum(self):
        assert content_checksum(b"a") != content_checksum(b"b")

    def test_rejects_non_bytes(self):
        with pytest.raises(ValidationError):
            content_checksum(123)  # type: ignore[arg-type]

    @given(st.binary(max_size=256))
    def test_deterministic(self, data):
        assert content_checksum(data) == content_checksum(data)


class TestStableDigest:
    def test_dict_order_insensitive(self):
        assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})

    def test_numpy_and_python_scalars_agree(self):
        assert stable_digest(np.float64(1.5)) == stable_digest(1.5)
        assert stable_digest(np.int32(7)) == stable_digest(7)

    def test_arrays_hash_by_content(self):
        a = np.arange(6, dtype=float).reshape(2, 3)
        b = np.arange(6, dtype=float).reshape(2, 3)
        assert stable_digest(a) == stable_digest(b)

    def test_array_shape_matters(self):
        a = np.arange(6, dtype=float).reshape(2, 3)
        b = np.arange(6, dtype=float).reshape(3, 2)
        assert stable_digest(a) != stable_digest(b)

    def test_nan_is_stable(self):
        assert stable_digest(float("nan")) == stable_digest(float("nan"))

    def test_nested_structures(self):
        value = {"xs": [1, 2, {"y": (3, 4)}], "flag": True, "none": None}
        assert stable_digest(value) == stable_digest(
            {"none": None, "flag": True, "xs": [1, 2, {"y": [3, 4]}]}
        )

    def test_sets_are_order_insensitive(self):
        assert stable_digest({1, 2, 3}) == stable_digest({3, 2, 1})

    def test_rejects_unhashable_types(self):
        with pytest.raises(ValidationError):
            stable_digest(object())

    @given(
        st.recursive(
            st.one_of(
                st.integers(min_value=-(2**31), max_value=2**31),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
                st.text(max_size=20),
                st.booleans(),
                st.none(),
            ),
            lambda children: st.one_of(
                st.lists(children, max_size=4),
                st.dictionaries(st.text(max_size=8), children, max_size=4),
            ),
            max_leaves=12,
        )
    )
    def test_digest_deterministic_on_json_like_values(self, value):
        assert stable_digest(value) == stable_digest(value)


class TestShortId:
    def test_prefix(self):
        digest = content_checksum(b"x")
        assert digest.startswith(short_id(digest))
        assert len(short_id(digest, 8)) == 8

    def test_rejects_tiny_length(self):
        with pytest.raises(ValidationError):
            short_id("abcdef", 2)


class TestChecksumCache:
    """The string-keyed repeat cache must be invisible except in speed."""

    def test_cached_and_fresh_digests_agree(self):
        import hashlib

        text = "plant,flow\nstickney,1.25\n"
        expected = hashlib.sha256(text.encode("utf-8")).hexdigest()
        assert content_checksum(text) == expected
        assert content_checksum(text) == expected  # served from the cache

    def test_str_and_bytes_stay_consistent_across_cache_hits(self):
        text = "repeated artifact body"
        content_checksum(text)
        assert content_checksum(text) == content_checksum(text.encode("utf-8"))

    def test_eviction_keeps_the_cache_bounded(self):
        from repro.common import hashing

        for i in range(hashing._CHECKSUM_CACHE_ENTRIES + 64):
            content_checksum(f"bulk-{i}")
        assert len(hashing._checksum_cache) <= hashing._CHECKSUM_CACHE_ENTRIES
        assert hashing._checksum_cache_bytes <= hashing._CHECKSUM_CACHE_BYTES
        # Entries evicted FIFO still recompute correctly.
        assert content_checksum("bulk-0") == content_checksum("bulk-0".encode())

"""Tests for deterministic random-stream management."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ValidationError
from repro.common.rng import (
    RngRegistry,
    generator_from_seed,
    replicate_seed,
    spawn_generator,
)


class TestGeneratorFromSeed:
    def test_same_seed_same_stream(self):
        a = generator_from_seed(42)
        b = generator_from_seed(42)
        assert np.array_equal(a.random(16), b.random(16))

    def test_different_seeds_differ(self):
        a = generator_from_seed(1)
        b = generator_from_seed(2)
        assert not np.array_equal(a.random(16), b.random(16))

    def test_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        a = generator_from_seed(seq)
        b = generator_from_seed(7)
        assert np.array_equal(a.random(8), b.random(8))


class TestSpawnGenerator:
    def test_children_differ_from_parent_and_each_other(self):
        parent = generator_from_seed(0)
        children = spawn_generator(parent, 3)
        draws = [child.random(8) for child in children]
        for i in range(3):
            for j in range(i + 1, 3):
                assert not np.array_equal(draws[i], draws[j])

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValidationError):
            spawn_generator(generator_from_seed(0), 0)


class TestRngRegistry:
    def test_streams_are_deterministic_given_root_and_name(self):
        a = RngRegistry(11).stream("model/replicate-0").random(8)
        b = RngRegistry(11).stream("model/replicate-0").random(8)
        assert np.array_equal(a, b)

    def test_order_independence(self):
        """Requesting other streams first never perturbs a named stream."""
        reg1 = RngRegistry(5)
        reg1.stream("noise")
        reg1.stream("other")
        value1 = reg1.stream("target").random(8)

        reg2 = RngRegistry(5)
        value2 = reg2.stream("target").random(8)
        assert np.array_equal(value1, value2)

    def test_same_name_returns_same_object(self):
        reg = RngRegistry(0)
        assert reg.stream("a") is reg.stream("a")

    def test_fresh_resets_stream(self):
        reg = RngRegistry(0)
        first = reg.stream("a").random(4)
        fresh = reg.fresh("a").random(4)
        assert np.array_equal(first, fresh)

    def test_different_roots_differ(self):
        a = RngRegistry(1).stream("x").random(8)
        b = RngRegistry(2).stream("x").random(8)
        assert not np.array_equal(a, b)

    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            RngRegistry(0).stream("")

    def test_replicate_streams_are_distinct(self):
        reg = RngRegistry(3)
        streams = reg.replicate_streams("m", 4)
        draws = [s.random(8) for s in streams]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(draws[i], draws[j])

    @given(st.text(min_size=1, max_size=40), st.text(min_size=1, max_size=40))
    def test_distinct_names_distinct_streams(self, name_a, name_b):
        if name_a == name_b:
            return
        reg = RngRegistry(123)
        a = reg.stream(name_a).random(4)
        b = reg.stream(name_b).random(4)
        assert not np.array_equal(a, b)


class TestReplicateSeed:
    def test_deterministic(self):
        assert replicate_seed(9, 3) == replicate_seed(9, 3)

    def test_distinct_across_replicates(self):
        seeds = {replicate_seed(9, r) for r in range(50)}
        assert len(seeds) == 50

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            replicate_seed(9, -1)

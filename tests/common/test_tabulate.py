"""Tests for plain-text table rendering."""

from __future__ import annotations

import pytest

from repro.common.errors import ValidationError
from repro.common.tabulate import format_float, format_table


class TestFormatFloat:
    def test_int_passthrough(self):
        assert format_float(3) == "3"

    def test_float_compaction(self):
        assert format_float(0.123456789) == "0.1235"

    def test_nan(self):
        assert format_float(float("nan")) == "nan"

    def test_tiny_uses_scientific(self):
        assert "e" in format_float(1e-9)

    def test_string_passthrough(self):
        assert format_float("abc") == "abc"

    def test_bool_is_not_numeric(self):
        assert format_float(True) == "True"


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "----" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["x"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValidationError):
            format_table(["a", "b"], [[1]])

    def test_numeric_right_aligned(self):
        text = format_table(["v"], [[1], [100]])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("1")
        assert rows[1].endswith("100")

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert len(text.splitlines()) == 2


class TestValidationHelpers:
    def test_check_helpers(self):
        from repro.common.validation import (
            check_array,
            check_int,
            check_interval,
            check_positive,
            check_probability,
            require,
        )

        assert check_positive("x", 1.5) == 1.5
        with pytest.raises(ValidationError):
            check_positive("x", 0.0)
        assert check_positive("x", 0.0, strict=False) == 0.0

        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValidationError):
            check_probability("p", 1.5)

        assert check_int("n", 3, minimum=1) == 3
        with pytest.raises(ValidationError):
            check_int("n", 2.5)
        with pytest.raises(ValidationError):
            check_int("n", True)
        with pytest.raises(ValidationError):
            check_int("n", 0, minimum=1)

        assert check_interval("r", (0, 1)) == (0.0, 1.0)
        with pytest.raises(ValidationError):
            check_interval("r", (1, 0))

        arr = check_array("a", [[1, 2]], ndim=2, shape=(1, None), finite=True)
        assert arr.shape == (1, 2)
        with pytest.raises(ValidationError):
            check_array("a", [1, 2], ndim=2)
        with pytest.raises(ValidationError):
            check_array("a", [float("nan")], finite=True)
        with pytest.raises(ValidationError):
            check_array("a", [[1], [2]], shape=(1, None))

        require(True, "fine")
        with pytest.raises(ValidationError):
            require(False, "boom")

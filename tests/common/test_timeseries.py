"""Tests for the TimeSeries container."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ValidationError
from repro.common.timeseries import TimeSeries


def make_series(n=5, name="s"):
    return TimeSeries(np.arange(n, dtype=float), np.arange(n, dtype=float) * 2, name=name)


class TestConstruction:
    def test_basic(self):
        ts = make_series()
        assert len(ts) == 5
        assert ts.start == 0.0
        assert ts.end == 4.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            TimeSeries([0, 1], [1.0])

    def test_rejects_non_increasing_times(self):
        with pytest.raises(ValidationError):
            TimeSeries([0, 0], [1.0, 2.0])
        with pytest.raises(ValidationError):
            TimeSeries([1, 0], [1.0, 2.0])

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            TimeSeries(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_empty_series_has_no_start(self):
        ts = TimeSeries([], [])
        with pytest.raises(ValidationError):
            _ = ts.start


class TestTransforms:
    def test_slice(self):
        ts = make_series(10)
        sub = ts.slice(2, 5)
        assert sub.times.tolist() == [2, 3, 4, 5]

    def test_append(self):
        ts = make_series(3)
        longer = ts.append([5.0, 6.0], [1.0, 2.0])
        assert len(longer) == 5
        assert len(ts) == 3  # immutability

    def test_append_rejects_overlap(self):
        ts = make_series(3)
        with pytest.raises(ValidationError):
            ts.append([2.0], [0.0])

    def test_dropna(self):
        ts = TimeSeries([0, 1, 2], [1.0, np.nan, 3.0])
        clean = ts.dropna()
        assert clean.times.tolist() == [0, 2]
        assert clean.is_complete()

    def test_interpolate_to(self):
        ts = TimeSeries([0, 2], [0.0, 4.0])
        interp = ts.interpolate_to([0, 1, 2])
        assert interp.values.tolist() == [0.0, 2.0, 4.0]

    def test_interpolate_all_missing_raises(self):
        ts = TimeSeries([0, 1], [np.nan, np.nan])
        with pytest.raises(ValidationError):
            ts.interpolate_to([0.5])

    def test_rolling_mean_flat_series_unchanged(self):
        ts = TimeSeries(np.arange(6), np.full(6, 3.0))
        smooth = ts.rolling_mean(3)
        assert np.allclose(smooth.values, 3.0)

    def test_rolling_mean_handles_nan(self):
        ts = TimeSeries([0, 1, 2], [1.0, np.nan, 3.0])
        smooth = ts.rolling_mean(3)
        assert np.isclose(smooth.values[1], 2.0)

    def test_with_name_and_meta(self):
        ts = make_series().with_name("renamed").with_meta(plant="obrien")
        assert ts.name == "renamed"
        assert ts.meta["plant"] == "obrien"


class TestSerialization:
    def test_dict_roundtrip(self):
        ts = TimeSeries([0, 1, 2], [1.0, np.nan, 3.0], name="x", meta={"k": 1})
        back = TimeSeries.from_dict(ts.to_dict())
        assert back.name == "x"
        assert back.meta == {"k": 1}
        assert np.isnan(back.values[1])
        assert back.values[2] == 3.0

    def test_csv_roundtrip(self):
        ts = TimeSeries([0.0, 1.5, 3.0], [1.25, np.nan, -2.0], name="c")
        back = TimeSeries.from_csv(ts.to_csv(), name="c")
        assert np.array_equal(back.times, ts.times)
        assert np.isnan(back.values[1])
        assert back.values[2] == -2.0

    def test_csv_rejects_missing_header(self):
        with pytest.raises(ValidationError):
            TimeSeries.from_csv("0,1\n")

    def test_csv_rejects_malformed_row(self):
        with pytest.raises(ValidationError):
            TimeSeries.from_csv("time,value\n0,1,2\n")

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=0,
            max_size=30,
        )
    )
    def test_csv_roundtrip_property(self, values):
        times = np.arange(len(values), dtype=float)
        ts = TimeSeries(times, np.asarray(values))
        back = TimeSeries.from_csv(ts.to_csv())
        assert np.allclose(back.values, ts.values, rtol=1e-9, atol=1e-12)


class TestStats:
    def test_mean_std_ignore_nan(self):
        ts = TimeSeries([0, 1, 2], [1.0, np.nan, 3.0])
        assert ts.mean() == 2.0
        assert ts.std() == 1.0

"""Tests for the pure-Python SVG chart renderer."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.common.errors import StateError, ValidationError
from repro.common.svgplot import SvgChart, _nice_ticks, small_multiples


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestNiceTicks:
    def test_unit_interval(self):
        ticks = _nice_ticks(0.0, 1.0)
        assert ticks[0] == 0.0 and ticks[-1] == 1.0
        assert all(t2 > t1 for t1, t2 in zip(ticks, ticks[1:]))

    def test_covers_range(self):
        ticks = _nice_ticks(3.0, 97.0)
        assert min(ticks) >= 3.0 and max(ticks) <= 97.0
        assert 3 <= len(ticks) <= 12

    def test_degenerate_range(self):
        ticks = _nice_ticks(5.0, 5.0)
        assert len(ticks) >= 2


class TestSvgChart:
    def test_renders_valid_xml(self):
        chart = SvgChart(title="t", x_label="x", y_label="y")
        chart.add_line([0, 1, 2], [1.0, 2.0, 1.5], label="series")
        chart.add_band([0, 1, 2], [0.5, 1.5, 1.0], [1.5, 2.5, 2.0], label="ci")
        chart.add_hline(1.0)
        root = parse(chart.render())
        assert root.tag.endswith("svg")

    def test_contains_expected_elements(self):
        chart = SvgChart(title="My Title", x_label="days", y_label="R(t)")
        chart.add_line([0, 10], [0.8, 1.2], label="median")
        svg = chart.render()
        assert "My Title" in svg
        assert "days" in svg and "R(t)" in svg
        assert "polyline" in svg
        assert "median" in svg  # legend entry

    def test_band_renders_polygon(self):
        chart = SvgChart()
        chart.add_band([0, 1], [0.0, 0.0], [1.0, 1.0])
        assert "polygon" in chart.render()

    def test_colors_cycle(self):
        chart = SvgChart()
        for i in range(3):
            chart.add_line([0, 1], [i, i + 1], label=f"s{i}")
        svg = chart.render()
        assert svg.count("#1b9e77") >= 1 and svg.count("#d95f02") >= 1

    def test_line_scaling_monotone(self):
        """Higher y values map to smaller pixel y (SVG origin is top-left)."""
        chart = SvgChart()
        chart.add_line([0, 1], [0.0, 10.0])
        svg = chart.render()
        polyline = [part for part in svg.splitlines() if "polyline" in part][0]
        points = polyline.split('points="')[1].split('"')[0].split()
        y_pixels = [float(p.split(",")[1]) for p in points]
        assert y_pixels[0] > y_pixels[1]

    def test_empty_chart_rejected(self):
        with pytest.raises(StateError):
            SvgChart().render()

    def test_validation(self):
        chart = SvgChart()
        with pytest.raises(ValidationError):
            chart.add_line([0], [1])  # too short
        with pytest.raises(ValidationError):
            chart.add_band([0, 1], [1.0, 1.0], [0.0, 0.0])  # lower > upper
        with pytest.raises(ValidationError):
            SvgChart(width=10, height=10)

    def test_save(self, tmp_path):
        chart = SvgChart()
        chart.add_line([0, 1], [1.0, 2.0])
        path = chart.save(str(tmp_path / "chart.svg"))
        content = open(path).read()
        parse(content)

    def test_nan_rejected(self):
        chart = SvgChart()
        with pytest.raises(ValidationError):
            chart.add_line([0, 1], [np.nan, 1.0])


class TestSmallMultiples:
    def _chart(self, label):
        chart = SvgChart(width=200, height=150, title=label)
        chart.add_line([0, 1], [0.0, 1.0])
        return chart

    def test_grid_composition(self):
        svg = small_multiples([self._chart(f"p{i}") for i in range(5)], columns=3)
        root = parse(svg)
        nested = [child for child in root if child.tag.endswith("svg")]
        assert len(nested) == 5
        assert "p4" in svg

    def test_single_chart(self):
        svg = small_multiples([self._chart("only")], columns=3)
        parse(svg)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            small_multiples([])


class TestDagSvg:
    def _graph(self):
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_node("s", kind="source", name="feed")
        graph.add_node("f", kind="flow", name="ingest")
        graph.add_node("d", kind="data", name="clean")
        graph.add_edge("s", "f")
        graph.add_edge("f", "d")
        return graph

    def test_renders_valid_xml_with_all_nodes(self):
        import xml.etree.ElementTree as ET

        from repro.common.svgplot import dag_svg

        svg = dag_svg(self._graph())
        ET.fromstring(svg)
        assert svg.count("<rect") == 4  # background + 3 nodes
        assert svg.count("marker-end") == 2  # 2 edges
        assert "ingest" in svg and "clean" in svg

    def test_cyclic_graph_rejected(self):
        import networkx as nx

        from repro.common.svgplot import dag_svg

        graph = nx.DiGraph([("a", "b"), ("b", "a")])
        with pytest.raises(ValidationError):
            dag_svg(graph)

    def test_empty_graph_rejected(self):
        import networkx as nx

        from repro.common.svgplot import dag_svg

        with pytest.raises(ValidationError):
            dag_svg(nx.DiGraph())

    def test_long_labels_truncated(self):
        import networkx as nx

        from repro.common.svgplot import dag_svg

        graph = nx.DiGraph()
        graph.add_node("x", kind="flow", name="a" * 50)
        svg = dag_svg(graph)
        assert "a" * 50 not in svg
        assert "…" in svg

"""Smoke tests: every example script runs end to end (reduced sizes).

The examples are part of the public deliverable; these tests keep them
executable as the library evolves.  Each runs in a subprocess exactly as a
user would invoke it.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"
SRC = pathlib.Path(__file__).parent.parent / "src"


def run_example(name: str, *args: str, timeout: float = 600.0) -> str:
    # The subprocess does not inherit pytest's `pythonpath` setting, so put
    # src/ on the child's path explicitly (preserving any caller PYTHONPATH).
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (str(SRC), env.get("PYTHONPATH")) if part
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_interleaving_utilization(self):
        out = run_example("interleaving_utilization.py")
        assert "speedup" in out

    def test_wastewater_monitoring_small(self):
        out = run_example("wastewater_monitoring.py", "4")
        assert "Figure 1" in out and "Figure 2" in out
        assert "ENSEMBLE" in out

    def test_gsa_metarvm_small(self):
        out = run_example("gsa_metarvm.py", "45", "2")
        assert "Table 1" in out
        assert "Stabilization sample size" in out
        assert "replicate-1" in out

    def test_rt_method_comparison(self):
        out = run_example("rt_method_comparison.py")
        assert "Goldstein" in out and "Cori" in out

    def test_intervention_scenarios(self):
        out = run_example("intervention_scenarios.py")
        assert "lowest-burden scenario" in out

    def test_forecasting(self):
        out = run_example("forecasting.py", "7")
        assert "outlook" in out

    def test_provenance_audit(self):
        out = run_example("provenance_audit.py")
        assert "0 mismatches" in out

    def test_resumable_runs(self):
        out = run_example("resumable_runs.py")
        assert "bitwise identical to uninterrupted run: True" in out

    def test_calibration(self):
        out = run_example("calibration.py", "50")
        assert "fit quality" in out

    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "MetaRVM" in out
        assert "first-order index" in out

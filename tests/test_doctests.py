"""Execute the doctest examples embedded in public docstrings.

Doc examples that don't run are worse than none; this keeps every
``>>>`` block in the listed modules honest.
"""

from __future__ import annotations

import doctest

import pytest

import repro.common.rng
import repro.gsa.gp
import repro.models.interventions
import repro.models.metarvm
import repro.sim.loop

MODULES = [
    repro.common.rng,
    repro.sim.loop,
    repro.models.metarvm,
    repro.models.interventions,
    repro.gsa.gp,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctest examples"
    assert results.failed == 0

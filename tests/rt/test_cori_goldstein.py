"""Tests for the Cori and Goldstein R(t) estimators and ensembling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.common.rng import generator_from_seed
from repro.common.timeseries import TimeSeries
from repro.models.seir import discretized_gamma, renewal_incidence
from repro.models.wastewater import SyntheticIWSS
from repro.rt import (
    GoldsteinConfig,
    estimate_rt_cori,
    estimate_rt_goldstein,
    population_weighted_ensemble,
)
from repro.rt.cori import infection_pressure
from repro.rt.ensemble import mean_band_width


GEN = discretized_gamma(6.0, 3.0, 21)


class TestCori:
    def test_recovers_constant_r(self):
        rt = np.full(90, 1.3)
        incidence = renewal_incidence(rt, GEN, seed_incidence=500.0)
        estimate = estimate_rt_cori(incidence, GEN)
        # after the burn-in, the median should sit near 1.3
        assert np.allclose(estimate.median[30:], 1.3, atol=0.05)

    def test_tracks_step_change(self):
        rt = np.concatenate([np.full(45, 1.4), np.full(45, 0.7)])
        incidence = renewal_incidence(rt, GEN, seed_incidence=500.0)
        estimate = estimate_rt_cori(incidence, GEN)
        late = estimate.median[estimate.times >= 70]
        assert np.allclose(late, 0.7, atol=0.1)

    def test_band_narrows_with_more_cases(self):
        rt = np.full(60, 1.2)
        small = renewal_incidence(rt, GEN, seed_incidence=50.0)
        large = renewal_incidence(rt, GEN, seed_incidence=5000.0)
        width_small = np.mean(estimate_rt_cori(small, GEN).band_width())
        width_large = np.mean(estimate_rt_cori(large, GEN).band_width())
        assert width_large < width_small

    def test_infection_pressure_zero_at_start(self):
        pressure = infection_pressure(np.ones(10), GEN)
        assert pressure[0] == 0.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            estimate_rt_cori(np.array([-1.0, 2.0] * 10), GEN)
        with pytest.raises(ValidationError):
            estimate_rt_cori(np.ones(5), GEN, window=7)

    def test_meta_passthrough(self):
        incidence = renewal_incidence(np.full(40, 1.1), GEN, seed_incidence=100.0)
        estimate = estimate_rt_cori(incidence, GEN, meta={"plant": "x"})
        assert estimate.meta["plant"] == "x"
        assert estimate.meta["method"] == "cori"


@pytest.fixture(scope="module")
def iwss():
    return SyntheticIWSS(n_days=110, seed=7)


@pytest.fixture(scope="module")
def quick_config():
    return GoldsteinConfig(n_iterations=1200)


class TestGoldstein:
    def test_tracks_truth_shape(self, iwss, quick_config):
        ds = iwss.dataset("obrien")
        estimate = estimate_rt_goldstein(ds.concentrations, config=quick_config, seed=1)
        assert estimate.mae_against(ds.true_rt) < 0.2
        # direction of the wave: early R above late-trough R
        early = float(np.mean(estimate.median[10:25]))
        trough = float(np.mean(estimate.median[45:60]))
        assert early > trough

    def test_estimate_is_deterministic_given_seed(self, iwss, quick_config):
        ds = iwss.dataset("calumet")
        a = estimate_rt_goldstein(ds.concentrations, config=quick_config, seed=3)
        b = estimate_rt_goldstein(ds.concentrations, config=quick_config, seed=3)
        assert np.allclose(a.median, b.median)

    def test_posterior_samples_attached(self, iwss, quick_config):
        ds = iwss.dataset("obrien")
        estimate = estimate_rt_goldstein(ds.concentrations, config=quick_config, seed=1)
        assert estimate.samples is not None
        assert estimate.samples.shape[1] == estimate.n_days

    def test_acceptance_reasonable(self, iwss, quick_config):
        ds = iwss.dataset("obrien")
        estimate = estimate_rt_goldstein(ds.concentrations, config=quick_config, seed=1)
        assert 0.05 < estimate.meta["acceptance_rate"] < 0.7

    def test_too_few_samples_rejected(self, quick_config):
        tiny = TimeSeries(np.arange(5.0), np.ones(5))
        with pytest.raises(ValidationError):
            estimate_rt_goldstein(tiny, config=quick_config)

    def test_nonpositive_concentrations_rejected(self, quick_config):
        bad = TimeSeries(np.arange(20.0), np.concatenate([[0.0], np.ones(19)]))
        with pytest.raises(ValidationError):
            estimate_rt_goldstein(bad, config=quick_config)

    def test_missing_samples_tolerated(self, iwss, quick_config):
        """NaN (missing) samples are dropped, not fatal."""
        ds = iwss.dataset("stickney-south")  # has missing samples
        estimate = estimate_rt_goldstein(ds.concentrations, config=quick_config, seed=2)
        assert estimate.n_days > 0


class TestEnsemble:
    def _estimates(self, iwss, config):
        return {
            name: estimate_rt_goldstein(
                iwss.dataset(name).concentrations, config=config, seed=5
            )
            for name in iwss.plant_names()
        }

    def test_ensemble_narrows_band(self, iwss, quick_config):
        estimates = self._estimates(iwss, quick_config)
        ensemble = population_weighted_ensemble(estimates, iwss.population_weights())
        mean_individual = np.mean([mean_band_width(e) for e in estimates.values()])
        assert mean_band_width(ensemble) < mean_individual

    def test_weights_must_cover_sources(self, iwss, quick_config):
        ds = iwss.dataset("obrien")
        estimate = estimate_rt_goldstein(ds.concentrations, config=quick_config, seed=5)
        with pytest.raises(ValidationError):
            population_weighted_ensemble({"obrien": estimate}, {})

    def test_requires_samples(self):
        flat = np.ones(20)
        no_samples = __import__("repro.rt.estimate", fromlist=["RtEstimate"]).RtEstimate(
            times=np.arange(20.0), median=flat, lower=flat - 0.1, upper=flat + 0.1
        )
        with pytest.raises(ValidationError):
            population_weighted_ensemble({"a": no_samples}, {"a": 1.0})

    def test_single_source_ensemble_matches_source(self, iwss, quick_config):
        ds = iwss.dataset("obrien")
        estimate = estimate_rt_goldstein(ds.concentrations, config=quick_config, seed=5)
        ensemble = population_weighted_ensemble({"obrien": estimate}, {"obrien": 2.0})
        grid_mask = np.isin(estimate.times, ensemble.times)
        assert np.allclose(
            ensemble.median, estimate.median[grid_mask], atol=0.05
        )

    def test_weight_normalization_recorded(self, iwss, quick_config):
        estimates = self._estimates(iwss, quick_config)
        ensemble = population_weighted_ensemble(estimates, iwss.population_weights())
        assert np.isclose(sum(ensemble.meta["weights"].values()), 1.0)


class TestMultiChainGoldstein:
    def test_r_hat_reported_and_reasonable(self, iwss):
        config = GoldsteinConfig(n_iterations=1500, n_chains=3)
        estimate = estimate_rt_goldstein(
            iwss.dataset("obrien").concentrations, config=config, seed=4
        )
        assert estimate.meta["n_chains"] == 3
        assert "max_r_hat" in estimate.meta
        # the random-walk posterior is slow-mixing; R-hat should at least be
        # finite and in a plausible range at this chain length
        assert 0.9 < estimate.meta["max_r_hat"] < 3.0

    def test_single_chain_omits_r_hat(self, iwss, quick_config):
        estimate = estimate_rt_goldstein(
            iwss.dataset("obrien").concentrations, config=quick_config, seed=4
        )
        assert "max_r_hat" not in estimate.meta

    def test_multichain_deterministic(self, iwss):
        config = GoldsteinConfig(n_iterations=800, n_chains=2)
        a = estimate_rt_goldstein(
            iwss.dataset("calumet").concentrations, config=config, seed=9
        )
        b = estimate_rt_goldstein(
            iwss.dataset("calumet").concentrations, config=config, seed=9
        )
        assert np.allclose(a.median, b.median)

"""Tests for the adaptive Metropolis sampler against known distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConvergenceError, ValidationError
from repro.common.rng import generator_from_seed
from repro.rt.mcmc import (
    AdaptiveMetropolis,
    effective_sample_size,
    effective_sample_sizes,
)


def _naive_ess(draws: np.ndarray, max_lag=None) -> float:
    """The original per-lag dot-product loop, kept as the reference."""
    n = draws.size
    if n < 4:
        return float(n)
    centered = draws - draws.mean()
    variance = float(centered @ centered) / n
    if variance == 0:
        return float(n)
    if max_lag is None:
        max_lag = min(n - 2, 1000)
    rho_sum = 0.0
    for lag in range(1, max_lag + 1):
        rho = float(centered[:-lag] @ centered[lag:]) / ((n - lag) * variance)
        if rho <= 0.0:
            break
        rho_sum += rho
    return float(n / (1.0 + 2.0 * rho_sum))


class TestEffectiveSampleSize:
    def test_iid_ess_near_n(self):
        rng = generator_from_seed(0)
        draws = rng.standard_normal(2000)
        assert effective_sample_size(draws) > 1200

    def test_correlated_ess_much_smaller(self):
        rng = generator_from_seed(0)
        noise = rng.standard_normal(2000)
        ar1 = np.empty(2000)
        ar1[0] = noise[0]
        for i in range(1, 2000):
            ar1[i] = 0.95 * ar1[i - 1] + noise[i]
        assert effective_sample_size(ar1) < 300

    def test_constant_series(self):
        assert effective_sample_size(np.ones(100)) == 100.0

    def test_tiny_series(self):
        assert effective_sample_size(np.array([1.0, 2.0])) == 2.0

    @pytest.mark.parametrize("phi", [0.0, 0.5, 0.9, 0.99, -0.5])
    def test_vectorized_matches_naive_loop(self, phi):
        rng = generator_from_seed(17)
        noise = rng.standard_normal(3000)
        draws = np.empty(3000)
        draws[0] = noise[0]
        for i in range(1, 3000):
            draws[i] = phi * draws[i - 1] + noise[i]
        assert effective_sample_size(draws) == pytest.approx(
            _naive_ess(draws), rel=1e-9
        )

    def test_batched_matches_per_column(self):
        rng = generator_from_seed(23)
        chain = np.cumsum(rng.standard_normal((1500, 6)), axis=0) * 0.05
        chain += rng.standard_normal((1500, 6))
        batched = effective_sample_sizes(chain)
        reference = np.array([_naive_ess(chain[:, j]) for j in range(6)])
        np.testing.assert_allclose(batched, reference, rtol=1e-9)

    def test_batched_respects_max_lag(self):
        rng = generator_from_seed(5)
        noise = rng.standard_normal(800)
        ar1 = np.empty(800)
        ar1[0] = noise[0]
        for i in range(1, 800):
            ar1[i] = 0.97 * ar1[i - 1] + noise[i]
        chain = np.column_stack([ar1, noise])
        batched = effective_sample_sizes(chain, max_lag=25)
        reference = np.array([_naive_ess(chain[:, j], max_lag=25) for j in range(2)])
        np.testing.assert_allclose(batched, reference, rtol=1e-9)

    def test_batched_handles_constant_column(self):
        rng = generator_from_seed(9)
        chain = np.column_stack([np.ones(200), rng.standard_normal(200)])
        ess = effective_sample_sizes(chain)
        assert ess[0] == 200.0
        assert ess[1] == pytest.approx(_naive_ess(chain[:, 1]), rel=1e-9)


class TestSampler:
    def test_standard_normal_moments(self):
        sampler = AdaptiveMetropolis(lambda x: -0.5 * float(x @ x), dim=2)
        result = sampler.run(np.zeros(2), 8000, generator_from_seed(1))
        assert abs(result.posterior_mean()).max() < 0.15
        assert abs(result.chain.std(axis=0) - 1.0).max() < 0.15

    def test_correlated_gaussian(self):
        cov = np.array([[1.0, 0.9], [0.9, 1.0]])
        prec = np.linalg.inv(cov)

        def log_post(x):
            return -0.5 * float(x @ prec @ x)

        sampler = AdaptiveMetropolis(log_post, dim=2)
        result = sampler.run(np.zeros(2), 12000, generator_from_seed(2))
        sample_corr = np.corrcoef(result.chain.T)[0, 1]
        assert abs(sample_corr - 0.9) < 0.1

    def test_acceptance_near_target(self):
        sampler = AdaptiveMetropolis(
            lambda x: -0.5 * float(x @ x), dim=4, target_accept=0.3
        )
        result = sampler.run(np.zeros(4), 6000, generator_from_seed(3))
        assert 0.1 < result.acceptance_rate < 0.6

    def test_deterministic_given_rng_seed(self):
        def log_post(x):
            return -0.5 * float(x @ x)

        a = AdaptiveMetropolis(log_post, dim=2).run(np.zeros(2), 500, generator_from_seed(5))
        b = AdaptiveMetropolis(log_post, dim=2).run(np.zeros(2), 500, generator_from_seed(5))
        assert np.array_equal(a.chain, b.chain)

    def test_respects_support_constraints(self):
        """-inf log posterior acts as a hard constraint."""

        def log_post(x):
            if x[0] < 0:
                return -np.inf
            return -0.5 * float(x @ x)

        result = AdaptiveMetropolis(log_post, dim=1).run(
            np.array([0.5]), 4000, generator_from_seed(6)
        )
        assert result.chain.min() >= 0

    def test_bad_start_raises(self):
        sampler = AdaptiveMetropolis(lambda x: -np.inf, dim=1)
        with pytest.raises(ConvergenceError):
            sampler.run(np.zeros(1), 100, generator_from_seed(0))

    def test_dimension_mismatch(self):
        sampler = AdaptiveMetropolis(lambda x: 0.0, dim=3)
        with pytest.raises(ValidationError):
            sampler.run(np.zeros(2), 100, generator_from_seed(0))

    def test_min_ess_positive(self):
        sampler = AdaptiveMetropolis(lambda x: -0.5 * float(x @ x), dim=2)
        result = sampler.run(np.zeros(2), 2000, generator_from_seed(7))
        assert result.min_ess() > 20


class TestGelmanRubin:
    def test_identical_chains_give_one(self):
        from repro.rt.mcmc import gelman_rubin

        rng = generator_from_seed(0)
        base = rng.standard_normal((1000, 3))
        chains = np.stack([base, base + 0.0])
        r_hat = gelman_rubin(chains)
        assert np.allclose(r_hat, 1.0, atol=0.01)

    def test_well_mixed_chains_near_one(self):
        from repro.rt.mcmc import gelman_rubin

        rng = generator_from_seed(1)
        chains = rng.standard_normal((4, 2000, 2))
        r_hat = gelman_rubin(chains)
        assert np.all(r_hat < 1.02)

    def test_disagreeing_chains_flagged(self):
        from repro.rt.mcmc import gelman_rubin

        rng = generator_from_seed(2)
        a = rng.standard_normal((1, 1000, 1))
        b = rng.standard_normal((1, 1000, 1)) + 5.0  # different location
        r_hat = gelman_rubin(np.concatenate([a, b]))
        assert r_hat[0] > 1.5

    def test_shape_validated(self):
        from repro.common.errors import ValidationError
        from repro.rt.mcmc import gelman_rubin

        with pytest.raises(ValidationError):
            gelman_rubin(np.zeros((3, 4)))
        with pytest.raises(ValidationError):
            gelman_rubin(np.zeros((2, 2, 1)))

    def test_constant_chains(self):
        from repro.rt.mcmc import gelman_rubin

        r_hat = gelman_rubin(np.ones((2, 100, 2)))
        assert np.allclose(r_hat, 1.0)

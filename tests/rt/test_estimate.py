"""Tests for the RtEstimate container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.common.timeseries import TimeSeries
from repro.rt.estimate import RtEstimate


def make_estimate(n=30, level=1.0, width=0.2):
    times = np.arange(n, dtype=float)
    median = np.full(n, level)
    return RtEstimate(
        times=times,
        median=median,
        lower=median - width / 2,
        upper=median + width / 2,
        meta={"plant": "test"},
    )


class TestConstruction:
    def test_basic(self):
        estimate = make_estimate()
        assert estimate.n_days == 30
        assert np.allclose(estimate.band_width(), 0.2)

    def test_band_order_enforced(self):
        with pytest.raises(ValidationError):
            RtEstimate(
                times=np.arange(3.0),
                median=np.ones(3),
                lower=np.full(3, 1.5),  # lower above median
                upper=np.full(3, 2.0),
            )

    def test_negative_lower_rejected(self):
        with pytest.raises(ValidationError):
            RtEstimate(
                times=np.arange(3.0),
                median=np.ones(3),
                lower=np.full(3, -0.1),
                upper=np.full(3, 2.0),
            )

    def test_sample_shape_checked(self):
        with pytest.raises(ValidationError):
            RtEstimate(
                times=np.arange(3.0),
                median=np.ones(3),
                lower=np.full(3, 0.5),
                upper=np.full(3, 1.5),
                samples=np.ones((10, 4)),
            )


class TestFromSamples:
    def test_quantiles(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(1.0, 0.1, size=(2000, 10)).clip(min=0)
        estimate = RtEstimate.from_samples(np.arange(10.0), samples)
        assert np.allclose(estimate.median, 1.0, atol=0.02)
        assert np.allclose(estimate.upper - estimate.lower, 0.392, atol=0.05)

    def test_sample_thinning(self):
        samples = np.ones((5000, 4))
        estimate = RtEstimate.from_samples(
            np.arange(4.0), samples, max_kept_samples=100
        )
        assert estimate.samples.shape[0] <= 100

    def test_keep_samples_false(self):
        estimate = RtEstimate.from_samples(
            np.arange(4.0), np.ones((100, 4)), keep_samples=False
        )
        assert estimate.samples is None


class TestValidationMetrics:
    def test_coverage_perfect(self):
        estimate = make_estimate(level=1.0, width=0.5)
        truth = TimeSeries(np.arange(30.0), np.full(30, 1.1))
        assert estimate.coverage_of(truth) == 1.0

    def test_coverage_zero(self):
        estimate = make_estimate(level=1.0, width=0.1)
        truth = TimeSeries(np.arange(30.0), np.full(30, 2.0))
        assert estimate.coverage_of(truth) == 0.0

    def test_mae(self):
        estimate = make_estimate(level=1.0)
        truth = TimeSeries(np.arange(30.0), np.full(30, 1.25))
        assert np.isclose(estimate.mae_against(truth), 0.25)

    def test_threshold_crossings(self):
        times = np.arange(4.0)
        median = np.array([0.8, 1.2, 0.9, 1.1])
        estimate = RtEstimate(
            times=times, median=median, lower=median - 0.1, upper=median + 0.1
        )
        assert estimate.threshold_crossings(1.0) == 3


class TestSerialization:
    def test_json_roundtrip(self):
        estimate = make_estimate()
        back = RtEstimate.from_json(estimate.to_json())
        assert np.allclose(back.median, estimate.median)
        assert back.meta["plant"] == "test"
        assert back.samples is None

    def test_json_with_samples(self):
        samples = np.ones((50, 30))
        estimate = RtEstimate.from_samples(np.arange(30.0), samples)
        back = RtEstimate.from_json(estimate.to_json(include_samples=True))
        assert back.samples is not None
        assert back.samples.shape[1] == 30

    def test_text_plot_renders(self):
        plot = make_estimate().render_text_plot()
        assert "R(t)" in plot
        assert "|" in plot
        assert len(plot.splitlines()) >= 4

    def test_median_series(self):
        series = make_estimate().median_series()
        assert isinstance(series, TimeSeries)
        assert series.meta["plant"] == "test"

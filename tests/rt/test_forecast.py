"""Tests for incidence/hospitalization forecasting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.common.rng import generator_from_seed
from repro.models.seir import discretized_gamma, renewal_incidence
from repro.rt.estimate import RtEstimate
from repro.rt.forecast import forecast_hospitalizations, forecast_incidence


def make_estimate(r_level: float, spread: float = 0.05, n_days: int = 60, n_draws: int = 200):
    rng = generator_from_seed(1)
    samples = np.clip(
        rng.normal(r_level, spread, size=(n_draws, n_days)), 0.05, None
    )
    return RtEstimate.from_samples(np.arange(n_days, dtype=float), samples)


def make_incidence(r_level: float, n_days: int = 60) -> np.ndarray:
    gen = discretized_gamma(6.0, 3.0, 21)
    return renewal_incidence(np.full(n_days, r_level), gen, seed_incidence=200.0)


class TestForecastIncidence:
    def test_growth_when_r_above_one(self):
        estimate = make_estimate(1.3)
        incidence = make_incidence(1.3)
        forecast = forecast_incidence(estimate, incidence, horizon=21)
        assert forecast.median[-1] > incidence[-1]

    def test_decay_when_r_below_one(self):
        estimate = make_estimate(0.7)
        incidence = make_incidence(0.7)
        forecast = forecast_incidence(estimate, incidence, horizon=21)
        assert forecast.median[-1] < incidence[-1]

    def test_band_orders(self):
        forecast = forecast_incidence(make_estimate(1.1), make_incidence(1.1))
        assert np.all(forecast.lower <= forecast.median)
        assert np.all(forecast.median <= forecast.upper)

    def test_uncertainty_fans_out(self):
        forecast = forecast_incidence(make_estimate(1.1, spread=0.15), make_incidence(1.1))
        width = forecast.upper - forecast.lower
        assert width[-1] > width[0]

    def test_damping_pulls_toward_steady_state(self):
        estimate = make_estimate(1.4)
        incidence = make_incidence(1.4)
        wild = forecast_incidence(estimate, incidence, horizon=28, damping=0.0)
        damped = forecast_incidence(estimate, incidence, horizon=28, damping=0.15)
        assert damped.median[-1] < wild.median[-1]

    def test_poisson_mode_reproducible(self):
        estimate = make_estimate(1.0)
        incidence = make_incidence(1.0)
        a = forecast_incidence(estimate, incidence, rng=generator_from_seed(3))
        b = forecast_incidence(estimate, incidence, rng=generator_from_seed(3))
        assert np.array_equal(a.trajectories, b.trajectories)

    def test_exceedance_probability_monotone_in_threshold(self):
        forecast = forecast_incidence(make_estimate(1.2), make_incidence(1.2))
        low = forecast.exceeds(10.0)
        high = forecast.exceeds(1e6)
        assert np.all(low >= high)
        assert np.all((low >= 0) & (low <= 1))

    def test_requires_samples(self):
        flat = np.full(30, 1.0)
        estimate = RtEstimate(
            times=np.arange(30.0), median=flat, lower=flat - 0.1, upper=flat + 0.1
        )
        with pytest.raises(ValidationError):
            forecast_incidence(estimate, make_incidence(1.0))

    def test_requires_enough_history(self):
        with pytest.raises(ValidationError):
            forecast_incidence(make_estimate(1.0), np.ones(5))

    def test_bad_damping(self):
        with pytest.raises(ValidationError):
            forecast_incidence(make_estimate(1.0), make_incidence(1.0), damping=1.0)


class TestForecastHospitalizations:
    def test_scaled_and_delayed(self):
        forecast = forecast_incidence(make_estimate(1.0), make_incidence(1.0))
        hosp = forecast_hospitalizations(forecast, hospitalization_fraction=0.05)
        # admissions are a small, delayed fraction of incidence
        assert hosp["median"][-1] < 0.2 * forecast.median[-1]
        assert np.all(hosp["lower"] <= hosp["upper"])
        # early days see few admissions (delay kernel ramps up)
        assert hosp["median"][0] < hosp["median"][-1]

    def test_fraction_validated(self):
        forecast = forecast_incidence(make_estimate(1.0), make_incidence(1.0))
        with pytest.raises(ValidationError):
            forecast_hospitalizations(forecast, hospitalization_fraction=0.0)


class TestEndToEnd:
    def test_forecast_from_goldstein_posterior(self):
        """Full chain: synthetic wastewater -> Goldstein -> forecast."""
        from repro.models.wastewater import SyntheticIWSS
        from repro.rt import GoldsteinConfig, estimate_rt_goldstein

        iwss = SyntheticIWSS(n_days=110, seed=5)
        dataset = iwss.dataset("obrien")
        estimate = estimate_rt_goldstein(
            dataset.concentrations, config=GoldsteinConfig(n_iterations=800), seed=2
        )
        forecast = forecast_incidence(
            estimate, dataset.true_incidence, horizon=14, damping=0.05
        )
        assert forecast.horizon == 14
        assert np.all(np.isfinite(forecast.median))
        assert forecast.median.min() >= 0

"""The vectorized multi-chain sampler's determinism and diagnostics.

The tentpole contract of the batched R(t) hot path: chain ``c`` of an
``(n_chains, dim)`` block advanced by :class:`VectorizedAdaptiveMetropolis`
is *bitwise identical* to the scalar :class:`AdaptiveMetropolis` run of
chain ``c`` alone with the same seed — stacking chains (and stacking
plants' chains) is an execution strategy, never a statistical change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConvergenceError, ValidationError
from repro.common.timeseries import TimeSeries
from repro.rt import (
    AdaptiveMetropolis,
    CausalConvolution,
    GoldsteinConfig,
    KnotInterpolator,
    VectorizedAdaptiveMetropolis,
    estimate_rt_goldstein,
    estimate_rt_goldstein_batch,
    interleave_chain_draws,
    renewal_forward_batch,
)
from repro.models.seir import discretized_gamma


def _spawn_rngs(seed: int, n: int):
    return [np.random.default_rng(s) for s in np.random.SeedSequence(seed).spawn(n)]


def _gaussian_batch_lp(block: np.ndarray) -> np.ndarray:
    return -0.5 * np.einsum("bi,bi->b", block, block)


def _wastewater_series(seed: int = 0, n: int = 40) -> TimeSeries:
    rng = np.random.default_rng(seed)
    times = np.arange(1, 1 + 2 * n, 2, dtype=float)
    values = np.exp(rng.normal(2.0, 0.5, size=times.size))
    return TimeSeries(times, values, name="plant-concentration")


class TestKernelRowIdentity:
    """Batched kernels must reproduce their row-wise evaluation bitwise."""

    def test_knot_interpolator_rows(self):
        rng = np.random.default_rng(1)
        knots = np.array([0.0, 3.0, 7.0, 12.0])
        grid = np.linspace(0.0, 12.0, 40)
        interp = KnotInterpolator(knots, grid)
        block = rng.standard_normal((6, knots.size))
        batched = interp.apply(block)
        for b in range(block.shape[0]):
            assert np.array_equal(batched[b], interp.apply(block[b]))

    def test_causal_convolution_rows(self):
        rng = np.random.default_rng(2)
        kernel = discretized_gamma(5.0, 2.0, 12)
        conv = CausalConvolution(kernel, out_len=30)
        block = rng.random((5, 30))
        batched = conv.apply(block)
        for b in range(block.shape[0]):
            assert np.array_equal(batched[b], conv.apply(block[b]))

    def test_renewal_forward_rows(self):
        rng = np.random.default_rng(3)
        w = discretized_gamma(6.5, 4.0, 14)
        rt = np.exp(rng.normal(0.0, 0.2, size=(4, 25)))
        batched = renewal_forward_batch(rt, w)
        for b in range(rt.shape[0]):
            assert np.array_equal(batched[b], renewal_forward_batch(rt[b : b + 1], w)[0])


class TestBitwiseChainIdentity:
    N_ITER = 600
    DIM = 3

    def _scalar_reference(self, x0: np.ndarray, rngs) -> np.ndarray:
        """Chain block produced one chain at a time by the scalar sampler."""
        # The scalar posterior is the batch kernel applied to one row — the
        # same delegation the Goldstein model uses — so any difference the
        # test catches comes from the sampler loop, not the posterior.
        scalar_lp = lambda x: float(_gaussian_batch_lp(x[None, :])[0])
        chains = []
        for k, rng in enumerate(rngs):
            sampler = AdaptiveMetropolis(scalar_lp, dim=self.DIM)
            chains.append(sampler.run(x0[k], self.N_ITER, rng).chain)
        return np.stack(chains)

    @pytest.mark.parametrize("n_chains", [1, 2, 8])
    def test_block_matches_scalar_chains(self, n_chains):
        x0 = np.stack(
            [0.1 * k * np.ones(self.DIM) for k in range(n_chains)]
        )
        block = VectorizedAdaptiveMetropolis(
            _gaussian_batch_lp, dim=self.DIM
        ).run(x0, self.N_ITER, _spawn_rngs(7, n_chains))
        reference = self._scalar_reference(x0, _spawn_rngs(7, n_chains))
        assert block.chains.shape == reference.shape
        assert np.array_equal(block.chains, reference)

    def test_chain_identity_independent_of_block_peers(self):
        """A chain's draws do not depend on which chains share its block."""
        x0 = np.stack([0.1 * k * np.ones(self.DIM) for k in range(4)])
        rngs = _spawn_rngs(11, 4)
        full = VectorizedAdaptiveMetropolis(_gaussian_batch_lp, dim=self.DIM).run(
            x0, self.N_ITER, rngs
        )
        solo = VectorizedAdaptiveMetropolis(_gaussian_batch_lp, dim=self.DIM).run(
            x0[2:3], self.N_ITER, [_spawn_rngs(11, 4)[2]]
        )
        assert np.array_equal(full.chains[2], solo.chains[0])

    def test_result_for_views_scalar_result(self):
        x0 = np.zeros((2, self.DIM))
        block = VectorizedAdaptiveMetropolis(_gaussian_batch_lp, dim=self.DIM).run(
            x0, self.N_ITER, _spawn_rngs(3, 2)
        )
        view = block.result_for(1)
        assert np.array_equal(view.chain, block.chains[1])
        assert view.acceptance_rate == float(block.acceptance_rates[1])


class TestVectorizedSamplerValidation:
    def test_rng_count_must_match_chains(self):
        sampler = VectorizedAdaptiveMetropolis(_gaussian_batch_lp, dim=2)
        with pytest.raises(ValidationError):
            sampler.run(np.zeros((3, 2)), 100, _spawn_rngs(0, 2))

    def test_dimension_mismatch(self):
        sampler = VectorizedAdaptiveMetropolis(_gaussian_batch_lp, dim=3)
        with pytest.raises(ValidationError):
            sampler.run(np.zeros((2, 2)), 100, _spawn_rngs(0, 2))

    def test_bad_start_names_chain(self):
        def lp(block):
            out = _gaussian_batch_lp(block)
            out[block[:, 0] > 5.0] = -np.inf
            return out

        sampler = VectorizedAdaptiveMetropolis(lp, dim=2)
        x0 = np.array([[0.0, 0.0], [9.0, 0.0]])
        with pytest.raises(ConvergenceError):
            sampler.run(x0, 100, _spawn_rngs(1, 2))


class TestSplitRHat:
    def test_well_mixed_gaussian_below_threshold(self):
        """Independent chains on a clean posterior converge: R̂ < 1.05."""
        x0 = np.zeros((4, 2))
        block = VectorizedAdaptiveMetropolis(_gaussian_batch_lp, dim=2).run(
            x0, 6000, _spawn_rngs(21, 4)
        )
        assert block.max_split_r_hat() < 1.05

    def test_stuck_chain_flagged(self):
        rng = np.random.default_rng(0)
        chains = rng.standard_normal((3, 800, 2))
        chains[0] += 6.0  # one chain stuck in a different mode
        from repro.rt.mcmc import VectorizedMCMCResult

        result = VectorizedMCMCResult(
            chains=chains,
            log_posteriors=np.zeros((3, 800)),
            acceptance_rates=np.full(3, 0.3),
            warmup=0,
        )
        assert result.max_split_r_hat() > 1.5


class TestInterleavedPooling:
    def test_time_major_round_robin(self):
        chains = np.arange(2 * 3 * 1, dtype=float).reshape(2, 3, 1)
        pooled = interleave_chain_draws(chains)
        # draw 0 of chain 0, draw 0 of chain 1, draw 1 of chain 0, ...
        assert pooled[:, 0].tolist() == [0.0, 3.0, 1.0, 4.0, 2.0, 5.0]

    def test_prefix_samples_every_chain_evenly(self):
        chains = np.zeros((4, 100, 1))
        for c in range(4):
            chains[c] = c
        pooled = interleave_chain_draws(chains)
        # Any prefix covers the chains round-robin — chain-major
        # concatenation would give a prefix entirely inside chain 0.
        prefix = pooled[:20, 0]
        assert all(np.sum(prefix == c) == 5 for c in range(4))

    def test_requires_three_dims(self):
        with pytest.raises(ValidationError):
            interleave_chain_draws(np.zeros((5, 2)))


class TestGoldsteinVectorized:
    SERIES = _wastewater_series(seed=4)

    @pytest.mark.parametrize("n_chains", [1, 2])
    def test_scalar_and_vectorized_estimates_bitwise_equal(self, n_chains):
        cfg = GoldsteinConfig(n_iterations=250, n_chains=n_chains)
        scalar = estimate_rt_goldstein(
            self.SERIES, config=cfg, seed=5, vectorized=False
        )
        vector = estimate_rt_goldstein(
            self.SERIES, config=cfg, seed=5, vectorized=True
        )
        assert np.array_equal(scalar.samples, vector.samples)
        assert np.array_equal(scalar.median, vector.median)
        assert scalar.meta == vector.meta

    def test_multichain_pools_all_chains(self):
        """n_chains > 1 actually contributes draws from every chain."""
        one = estimate_rt_goldstein(
            self.SERIES, config=GoldsteinConfig(n_iterations=250, n_chains=1), seed=5
        )
        four = estimate_rt_goldstein(
            self.SERIES, config=GoldsteinConfig(n_iterations=250, n_chains=4), seed=5
        )
        assert four.meta["n_chains"] == 4
        assert "max_r_hat" in four.meta
        assert "max_r_hat" not in one.meta
        # Chains explore different points, so pooled draws differ from any
        # single chain's — the old bug collapsed all chains onto chain 0.
        assert not np.array_equal(one.samples, four.samples)

    def test_batch_estimates_match_standalone(self):
        cfg = GoldsteinConfig(n_iterations=250, n_chains=2)
        observations = {
            "a": _wastewater_series(seed=8),
            "b": _wastewater_series(seed=9),
            "c": _wastewater_series(seed=10),
        }
        batch = estimate_rt_goldstein_batch(observations, config=cfg, seed=6)
        for name, series in observations.items():
            solo = estimate_rt_goldstein(series, config=cfg, seed=6)
            assert np.array_equal(batch[name].samples, solo.samples)
            assert batch[name].meta == solo.meta

    def test_r_hat_threshold_raises_on_short_run(self):
        # 250 iterations of this slow-mixing posterior are nowhere near
        # converged, so a strict threshold must trip the guard.
        cfg = GoldsteinConfig(
            n_iterations=250, n_chains=4, r_hat_threshold=1.05
        )
        with pytest.raises(ConvergenceError):
            estimate_rt_goldstein(self.SERIES, config=cfg, seed=5)

    def test_r_hat_threshold_validated(self):
        with pytest.raises(ValidationError):
            GoldsteinConfig(r_hat_threshold=0.9)

"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["table1"],
            ["figure3"],
            ["figure4", "--budget", "80", "--seed", "1"],
            ["interleaving", "--instances", "4", "--slots", "8"],
            ["shapley", "--n", "128"],
        ],
    )
    def test_commands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.fn)


class TestExecution:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Transmission rate for susceptible" in out
        assert "(0.1, 0.9)" in out

    def test_figure3(self, capsys):
        assert main(["figure3"]) == 0
        out = capsys.readouterr().out
        assert "Ip" in out and "psh" in out

    def test_interleaving(self, capsys):
        assert main(["interleaving", "--instances", "3", "--n-initial", "5",
                     "--n-steps", "10", "--slots", "8"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_shapley(self, capsys):
        assert main(["shapley", "--n", "64"]) == 0
        out = capsys.readouterr().out
        assert "Shapley effect" in out
        assert "ts" in out

    def test_figure4_small(self, capsys):
        assert main(["figure4", "--budget", "45", "--reference-n", "128"]) == 0
        out = capsys.readouterr().out
        assert "MUSIC" in out and "PCE" in out


class TestWorkflowCommands:
    def test_figure1_small(self, capsys):
        assert main(["figure1", "--sim-days", "3", "--iterations", "300"]) == 0
        out = capsys.readouterr().out
        assert "Flow DAG" in out

    def test_figure2_small(self, capsys):
        assert main(["figure2", "--sim-days", "3", "--iterations", "300"]) == 0
        out = capsys.readouterr().out
        assert "ENSEMBLE" in out

    def test_figure5_small(self, capsys):
        assert main(["figure5", "--replicates", "2", "--budget", "30"]) == 0
        out = capsys.readouterr().out
        assert "replicate-1" in out

"""Checkpoint hooks in each layer: engine, timers, evaluators, arrays."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import WorkflowKilledError
from repro.globus.compute import (
    ComputeService,
    JournalingEngine,
    LoginNodeEngine,
)
from repro.globus.timers import TimerService
from repro.perf import memo_salt
from repro.sim import SimulationEnvironment
from repro.state import (
    InMemoryRunStore,
    KillSwitch,
    RunCheckpointer,
    replay_safe,
)


def square(x: float) -> float:
    return x * x


@pytest.fixture
def checkpointer() -> RunCheckpointer:
    return RunCheckpointer(InMemoryRunStore().create_run("test", {"seed": 1}))


class TestJournalingEngine:
    _users = iter(range(1000))

    def run_square(self, auth, checkpointer, arg):
        """One fresh env/service executing square(arg) behind the journal."""
        env = SimulationEnvironment()
        compute = ComputeService(auth, env)
        inner = LoginNodeEngine(env)
        engine = JournalingEngine(inner, env, checkpointer)
        endpoint = compute.create_endpoint("ep", engine)
        identity = auth.register_identity(f"state-tester-{next(self._users)}")
        token = auth.issue_token(identity, ["compute"], lifetime=10_000.0)
        fid = compute.register_function(token, square)
        future = endpoint.submit(token, fid, arg)
        env.run()
        return future, engine

    def test_miss_records_then_hit_serves(self, auth, checkpointer):
        future1, engine1 = self.run_square(auth, checkpointer, 3.0)
        assert future1.result() == 9.0
        assert engine1.hits_served == 0
        assert checkpointer.counters()["state_journal_records"] >= 1

        # A second run over the same journal serves the result without the
        # wrapped engine executing anything.
        future2, engine2 = self.run_square(auth, checkpointer, 3.0)
        assert future2.result() == 9.0
        assert engine2.hits_served == 1
        assert engine2._inner.running == 0

    def test_distinct_payloads_distinct_keys(self, auth, checkpointer):
        f1, _ = self.run_square(auth, checkpointer, 2.0)
        f2, engine = self.run_square(auth, checkpointer, 4.0)
        assert (f1.result(), f2.result()) == (4.0, 16.0)
        assert engine.hits_served == 0


@pytest.fixture
def token(auth):
    identity = auth.register_identity("timer-tester")
    return auth.issue_token(identity, ["timers"], lifetime=10_000.0)


class TestTimerHooks:
    def test_firings_journaled_write_ahead(self, auth, token, checkpointer):
        env = SimulationEnvironment()
        env.install(checkpointer)
        timers = TimerService(auth, env)
        ticks = []
        timers.create_timer(
            token,
            lambda: ticks.append(env.now),
            interval=1.0,
            max_firings=3,
            label="daily",
        )
        env.run()
        assert len(ticks) == 3
        journal = checkpointer.handle.journal
        assert journal.counts_by_kind()[RunCheckpointer.KIND_TIMER] == 3

    def test_replay_reappends_idempotently(self, auth, token, checkpointer):
        env = SimulationEnvironment()
        env.install(checkpointer)
        timers = TimerService(auth, env)
        timers.create_timer(
            token, lambda: None, interval=1.0, max_firings=2, label="t"
        )
        env.run()
        n = len(checkpointer.handle.journal)

        env2 = SimulationEnvironment()
        env2.install(RunCheckpointer(checkpointer.handle, resumed=True))
        timers2 = TimerService(auth, env2)
        timers2.create_timer(
            token, lambda: None, interval=1.0, max_firings=2, label="t"
        )
        env2.run()
        assert len(checkpointer.handle.journal) == n


class TestCachedArray:
    def test_serves_bitwise_identical_floats(self, checkpointer):
        rng = np.random.default_rng(7)
        values = rng.standard_normal(64)
        calls = []

        def compute() -> np.ndarray:
            calls.append(1)
            return values

        first = checkpointer.cached_array("ref", {"n": 64}, compute)
        again = checkpointer.cached_array("ref", {"n": 64}, compute)
        assert len(calls) == 1
        assert first.tobytes() == values.tobytes()
        assert again.tobytes() == values.tobytes()

    def test_identity_distinguishes(self, checkpointer):
        a = checkpointer.cached_array("ref", {"n": 1}, lambda: np.ones(1))
        b = checkpointer.cached_array("ref", {"n": 2}, lambda: np.zeros(2))
        assert a.tolist() == [1.0] and b.tolist() == [0.0, 0.0]


class TestEvaluatorWrappers:
    def test_wrap_evaluator_records_and_serves(self, checkpointer):
        calls = []

        def evaluate(payload):
            calls.append(payload)
            return payload["x"] * 2

        # Closures need an explicit memo identity, same as for MemoCache.
        memo_salt(evaluate, "hook-test-eval")
        wrapped = checkpointer.wrap_evaluator(evaluate)
        assert wrapped({"x": 3}) == 6
        assert wrapped({"x": 3}) == 6
        assert len(calls) == 1
        assert checkpointer.counters()["state_replay_hits"] == 1

    def test_wrap_batch_evaluator_partial_hits(self, checkpointer):
        def evaluate(p):
            return p["x"] * 2

        batch_calls = []

        def batch(payloads):
            batch_calls.append(list(payloads))
            return [p["x"] * 2 for p in payloads]

        # The shared salt makes single and batch journal keys match
        # payload-for-payload (the production evaluators do the same).
        memo_salt(evaluate, "hook-test-shared")
        memo_salt(batch, "hook-test-shared")
        single = checkpointer.wrap_evaluator(evaluate)
        single({"x": 1})

        wrapped = checkpointer.wrap_batch_evaluator(batch)
        results = wrapped([{"x": 1}, {"x": 2}, {"x": 3}])
        assert results == [2, 4, 6]
        # Only the two misses reached the inner batch evaluator.
        assert batch_calls == [[{"x": 2}, {"x": 3}]]

    def test_kill_switch_fires_in_wrapper(self):
        handle = InMemoryRunStore().create_run("test", {})
        state = RunCheckpointer(handle, kill_switch=KillSwitch(after_records=1))
        wrapped = state.wrap_evaluator(lambda p: p)
        with pytest.raises(WorkflowKilledError):
            wrapped({"x": 1})
        assert handle.status == "killed"
        assert state.killed


class TestReplaySafe:
    def test_marker_attribute(self):
        @replay_safe
        def step(run):
            return {}

        from repro.state.checkpoint import REPLAY_SAFE_ATTR

        assert getattr(step, REPLAY_SAFE_ATTR)

    def test_unserializable_payload_counted_not_fatal(self, checkpointer):
        ok = checkpointer.record("task.result", "bad", {"fn": lambda: None})
        assert not ok
        assert checkpointer.counters()["state_journal_skipped"] == 1

"""The unified capability-install API and the stable ``repro.api`` facade."""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError, ValidationError
from repro.faults import FaultPlan
from repro.obs import Observability
from repro.sim import RuntimeConfig, SimulationEnvironment
from repro.state import InMemoryRunStore, RunCheckpointer


def make_checkpointer() -> RunCheckpointer:
    return RunCheckpointer(InMemoryRunStore().create_run("test", {}))


class TestEnvInstall:
    def test_install_each_capability(self):
        env = SimulationEnvironment()
        state = make_checkpointer()
        env.install(FaultPlan(), Observability(), state)
        assert env.faults is not None
        assert env.obs is not None
        assert env.state is state

    def test_install_returns_self_for_chaining(self):
        env = SimulationEnvironment()
        assert env.install(FaultPlan()) is env

    def test_none_capabilities_skipped(self):
        env = SimulationEnvironment()
        env.install(None, FaultPlan(), None)
        assert env.faults is not None
        assert env.obs is None
        assert env.state is None

    def test_runtime_config_bundle(self):
        env = SimulationEnvironment()
        runtime = RuntimeConfig(
            fault_plan=FaultPlan(),
            observability=Observability(),
            state=make_checkpointer(),
        )
        env.install(runtime)
        assert env.faults is not None
        assert env.obs is not None
        assert env.state is not None

    def test_runtime_config_capabilities_drops_nones(self):
        runtime = RuntimeConfig(fault_plan=FaultPlan())
        caps = runtime.capabilities()
        assert len(caps) == 1 and isinstance(caps[0], FaultPlan)

    def test_duplicate_install_raises(self):
        env = SimulationEnvironment()
        env.install(FaultPlan())
        with pytest.raises(SimulationError):
            env.install(FaultPlan())
        env2 = SimulationEnvironment()
        env2.install(make_checkpointer())
        with pytest.raises(SimulationError):
            env2.install(make_checkpointer())

    def test_unknown_capability_rejected(self):
        env = SimulationEnvironment()
        with pytest.raises(ValidationError):
            env.install(object())

    def test_install_binds_state_to_env(self):
        env = SimulationEnvironment()
        state = make_checkpointer()
        env.install(state)
        assert state._env is env


class TestDeprecatedAliases:
    def test_install_fault_plan_warns_and_works(self):
        env = SimulationEnvironment()
        with pytest.warns(DeprecationWarning, match="install_fault_plan"):
            injector = env.install_fault_plan(FaultPlan())
        assert injector is env.faults

    def test_install_observability_warns_and_works(self):
        env = SimulationEnvironment()
        with pytest.warns(DeprecationWarning, match="install_observability"):
            obs = env.install_observability(Observability())
        assert obs is env.obs


class TestApiFacade:
    def test_all_names_resolve(self):
        import repro.api as api

        missing = [n for n in api.__all__ if not hasattr(api, n)]
        assert not missing

    def test_facade_objects_are_canonical(self):
        import repro.api as api
        from repro.workflows.wastewater_rt import run_wastewater_workflow

        assert api.run_wastewater_workflow is run_wastewater_workflow


class TestRunConfigs:
    def test_wastewater_config_validates(self):
        from repro.api import WastewaterRunConfig

        with pytest.raises(ValidationError):
            WastewaterRunConfig(sim_days=0.0)
        with pytest.raises(ValidationError):
            WastewaterRunConfig(goldstein_iterations=0)

    def test_music_config_validates(self):
        from repro.api import MusicGsaRunConfig

        with pytest.raises(ValidationError):
            MusicGsaRunConfig(budget=10)
        with pytest.raises(ValidationError):
            MusicGsaRunConfig(fault_rate=1.5)

    def test_wastewater_config_round_trips(self):
        from repro.api import WastewaterRunConfig

        cfg = WastewaterRunConfig(sim_days=4.0, seed=7, include_outlook=True)
        assert WastewaterRunConfig.from_jsonable(cfg.to_jsonable()) == cfg

    def test_music_config_round_trips(self):
        from repro.api import MusicGsaRunConfig
        from repro.gsa.music import MusicConfig

        cfg = MusicGsaRunConfig(
            seed=3, budget=60, music_config=MusicConfig(n_initial=20)
        )
        assert MusicGsaRunConfig.from_jsonable(cfg.to_jsonable()) == cfg

    def test_legacy_wastewater_kwargs_warn(self):
        from repro.workflows.wastewater_rt import run_wastewater_workflow

        with pytest.warns(DeprecationWarning, match="WastewaterRunConfig"):
            result = run_wastewater_workflow(sim_days=2.0, goldstein_iterations=150)
        assert result.ensemble is not None

    def test_legacy_music_entry_point_warns(self):
        from repro.workflows.music_gsa import run_music_vs_pce

        with pytest.warns(DeprecationWarning, match="run_music_gsa"):
            data = run_music_vs_pce(
                seed=1, budget=40, reference_n=64, use_emews=False
            )
        assert data.music_curve

    def test_config_plus_legacy_kwargs_rejected(self):
        from repro.api import WastewaterRunConfig
        from repro.workflows.wastewater_rt import run_wastewater_workflow

        with pytest.raises(ValidationError):
            with pytest.warns(DeprecationWarning):
                run_wastewater_workflow(
                    WastewaterRunConfig(sim_days=2.0), sim_days=3.0
                )

    def test_unknown_kwarg_rejected(self):
        from repro.workflows.wastewater_rt import run_wastewater_workflow

        with pytest.raises(TypeError):
            run_wastewater_workflow(simdays=2.0)

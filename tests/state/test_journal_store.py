"""Unit tests for the write-ahead journal and the run stores."""

from __future__ import annotations

import json

import pytest

from repro.common.errors import NotFoundError, StateError
from repro.state import (
    InMemoryRunStore,
    JournalRecord,
    JsonlRunStore,
    RunJournal,
)
from repro.state.journal import JsonlJournalBackend, MemoryJournalBackend


class TestRunJournal:
    def test_append_and_lookup(self):
        journal = RunJournal(MemoryJournalBackend())
        assert journal.append("task.result", "k1", {"value": 1.5})
        assert journal.lookup("task.result", "k1").payload == {"value": 1.5}
        assert journal.lookup("task.result", "nope") is None
        assert ("task.result", "k1") in journal
        assert len(journal) == 1

    def test_append_is_idempotent(self):
        journal = RunJournal(MemoryJournalBackend())
        assert journal.append("timer.fire", "daily:1", {"firing": 1})
        # Re-appending the same (kind, key) is a no-op, even with a
        # different payload: the first write wins (write-ahead semantics).
        assert not journal.append("timer.fire", "daily:1", {"firing": 99})
        assert journal.lookup("timer.fire", "daily:1").payload == {"firing": 1}
        assert len(journal) == 1

    def test_payload_canonicalized_to_json_types(self):
        journal = RunJournal(MemoryJournalBackend())
        journal.append("task.result", "k", {"t": (1, 2), "x": 0.1 + 0.2})
        payload = journal.lookup("task.result", "k").payload
        assert payload == {"t": [1, 2], "x": 0.1 + 0.2}
        assert isinstance(payload["t"], list)

    def test_non_jsonable_payload_raises(self):
        journal = RunJournal(MemoryJournalBackend())
        with pytest.raises(TypeError):
            journal.append("task.result", "k", {"fn": lambda: None})

    def test_counts_by_kind(self):
        journal = RunJournal(MemoryJournalBackend())
        journal.append("a", "1", {})
        journal.append("a", "2", {})
        journal.append("b", "1", {})
        assert journal.counts_by_kind() == {"a": 2, "b": 1}

    def test_records_in_sequence_order(self):
        journal = RunJournal(MemoryJournalBackend())
        for i in range(5):
            journal.append("k", str(i), {"i": i})
        seqs = [r.seq for r in journal.records("k")]
        assert seqs == sorted(seqs)


class TestJsonlBackend:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        backend = JsonlJournalBackend(path)
        journal = RunJournal(backend)
        journal.append("task.result", "k", {"value": [1.0, 2.5]}, t=3.0)

        reloaded = RunJournal(JsonlJournalBackend(path))
        assert reloaded.lookup("task.result", "k").payload == {"value": [1.0, 2.5]}
        record = reloaded.records("task.result")[0]
        assert isinstance(record, JournalRecord)
        assert record.t == 3.0

    def test_torn_final_line_dropped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RunJournal(JsonlJournalBackend(path))
        journal.append("a", "1", {"x": 1})
        journal.append("a", "2", {"x": 2})
        # Simulate a crash mid-write: truncate the last line.
        text = path.read_text()
        path.write_text(text[: len(text) - 7])

        reloaded = RunJournal(JsonlJournalBackend(path))
        assert len(reloaded) == 1
        assert reloaded.lookup("a", "1").payload == {"x": 1}

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RunJournal(JsonlJournalBackend(path))
        journal.append("a", "1", {"x": 1})
        journal.append("a", "2", {"x": 2})
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:-5]
        path.write_text("\n".join(lines) + "\n")

        with pytest.raises(StateError, match="corrupt journal line 1"):
            RunJournal(JsonlJournalBackend(path))


@pytest.fixture(params=["memory", "jsonl"])
def store(request, tmp_path):
    if request.param == "memory":
        return InMemoryRunStore()
    return JsonlRunStore(tmp_path / "runs")


class TestRunStore:
    def test_deterministic_run_ids(self, store):
        h1 = store.create_run("wastewater", {"seed": 1})
        h2 = store.create_run("wastewater", {"seed": 1})
        h3 = store.create_run("wastewater", {"seed": 2})
        assert h1.run_id.endswith("-001")
        assert h2.run_id.endswith("-002")
        # Same workflow+config prefix counts up; a new config restarts.
        assert h1.run_id.rsplit("-", 1)[0] == h2.run_id.rsplit("-", 1)[0]
        assert h3.run_id.endswith("-001")
        assert h3.run_id != h1.run_id

    def test_open_and_status_transitions(self, store):
        handle = store.create_run("music-gsa", {"seed": 0})
        assert handle.status == "active"
        handle.set_status("killed")
        reopened = store.open_run(handle.run_id)
        assert reopened.status == "killed"
        reopened.set_status("completed")
        assert store.open_run(handle.run_id).status == "completed"

    def test_open_unknown_run_raises(self, store):
        with pytest.raises(NotFoundError):
            store.open_run("wastewater-ffffffffff-001")

    def test_list_runs(self, store):
        a = store.create_run("wastewater", {"seed": 1})
        b = store.create_run("music-gsa", {"seed": 2})
        a.journal.append("task.result", "k", {"v": 1})
        rows = {s.run_id: s for s in store.list_runs()}
        assert set(rows) == {a.run_id, b.run_id}
        assert rows[a.run_id].workflow == "wastewater"
        assert rows[a.run_id].n_records >= 1
        assert rows[b.run_id].status == "active"

    def test_config_snapshot_round_trips(self, store):
        config = {"seed": 11, "sim_days": 4.0, "nested": {"a": [1, 2]}}
        handle = store.create_run("wastewater", config)
        reopened = store.open_run(handle.run_id)
        assert reopened.config == config


class TestBackendEquivalence:
    def test_same_appends_same_payloads(self, tmp_path):
        mem = RunJournal(MemoryJournalBackend())
        disk = RunJournal(JsonlJournalBackend(tmp_path / "j.jsonl"))
        entries = [
            ("task.result", "a", {"value": 1.0 / 3.0}),
            ("timer.fire", "daily:1", {"firing": 1}),
            ("array.result", "arr", {"values": [0.1, 0.2, 0.30000000000000004]}),
        ]
        for kind, key, payload in entries:
            mem.append(kind, key, payload)
            disk.append(kind, key, payload)
        for kind, key, _ in entries:
            assert json.dumps(mem.lookup(kind, key).payload, sort_keys=True) == json.dumps(
                disk.lookup(kind, key).payload, sort_keys=True
            )

"""The headline guarantee, as a matrix: kill anywhere, resume bitwise-identically.

Every cell runs a workflow under a fault plan (or kill switch) that crashes
it mid-flight, resumes from the journal, and asserts the final outputs are
*bitwise identical* to an uninterrupted run of the same configuration —
including runs where additional service faults (transfer corruption, node
crashes, flow-step failures) fire alongside the crash, exactly the PR-1
chaos plans.

Marked ``chaos``: in tier 1, deselect with ``-m 'not chaos'``.
"""

from __future__ import annotations

import pytest

from repro.common.errors import WorkflowKilledError
from repro.faults import FaultPlan, FaultSpec
from repro.state import InMemoryRunStore, JsonlRunStore, KillSwitch
from repro.workflows.music_gsa import MusicGsaRunConfig, run_music_gsa
from repro.workflows.wastewater_rt import (
    WastewaterRunConfig,
    run_wastewater_workflow,
)

pytestmark = pytest.mark.chaos

WASTEWATER_CONFIG = WastewaterRunConfig(
    sim_days=4.0, goldstein_iterations=250, seed=11
)

#: Fault plans from the PR-1 chaos repertoire, each augmented with the
#: scripted journal-write crash.  Site noise must not break resume identity.
WASTEWATER_PLANS = {
    "clean-kill-early": [
        FaultSpec(site="state.journal", at_time=1.0),
    ],
    "clean-kill-late": [
        FaultSpec(site="state.journal", at_time=3.0),
    ],
    "kill-with-transfer-noise": [
        FaultSpec(site="transfer", at_time=1.5),
        FaultSpec(site="state.journal", at_time=2.0),
    ],
    "kill-with-compute-noise": [
        FaultSpec(site="compute", at_time=1.25),
        FaultSpec(site="state.journal", at_time=2.5),
    ],
    "kill-with-flow-noise": [
        FaultSpec(site="flows.step", at_time=1.5),
        FaultSpec(site="state.journal", at_time=2.5),
    ],
}


def make_store(kind, tmp_path):
    if kind == "memory":
        return InMemoryRunStore()
    return JsonlRunStore(tmp_path / "runs")


def wastewater_output(result) -> str:
    return result.ensemble.to_json(include_samples=True)


@pytest.fixture(scope="module")
def wastewater_baselines():
    """Uninterrupted output per fault plan (noise faults still fire)."""
    baselines = {}
    for name, specs in WASTEWATER_PLANS.items():
        noise = [s for s in specs if s.site != "state.journal"]
        result = run_wastewater_workflow(
            WASTEWATER_CONFIG, fault_plan=FaultPlan(noise)
        )
        baselines[name] = wastewater_output(result)
    return baselines


class TestWastewaterResumeMatrix:
    @pytest.mark.parametrize("backend", ["memory", "jsonl"])
    @pytest.mark.parametrize("plan_name", sorted(WASTEWATER_PLANS))
    def test_killed_then_resumed_is_bitwise_identical(
        self, plan_name, backend, tmp_path, wastewater_baselines
    ):
        store = make_store(backend, tmp_path)
        plan = FaultPlan(WASTEWATER_PLANS[plan_name])
        with pytest.raises(WorkflowKilledError) as excinfo:
            run_wastewater_workflow(
                WASTEWATER_CONFIG, run_store=store, fault_plan=plan
            )
        run_id = excinfo.value.run_id
        assert store.open_run(run_id).status == "killed"
        killed_records = len(store.open_run(run_id).journal)
        assert killed_records > 0

        # Resume: config comes from the journal snapshot; the noise faults
        # re-fire deterministically, the scripted kill does not.
        resumed = run_wastewater_workflow(
            run_store=store, resume_from=run_id, fault_plan=plan
        )
        assert wastewater_output(resumed) == wastewater_baselines[plan_name]
        assert store.open_run(run_id).status == "completed"
        assert resumed.state_report["state_replay_hits"] > 0

    def test_double_resume_is_idempotent(self, tmp_path, wastewater_baselines):
        store = make_store("jsonl", tmp_path)
        plan = FaultPlan(WASTEWATER_PLANS["clean-kill-early"])
        with pytest.raises(WorkflowKilledError) as excinfo:
            run_wastewater_workflow(
                WASTEWATER_CONFIG, run_store=store, fault_plan=plan
            )
        run_id = excinfo.value.run_id
        first = run_wastewater_workflow(run_store=store, resume_from=run_id)
        n_after_first = len(store.open_run(run_id).journal)
        second = run_wastewater_workflow(run_store=store, resume_from=run_id)
        n_after_second = len(store.open_run(run_id).journal)
        assert wastewater_output(first) == wastewater_output(second)
        assert n_after_first == n_after_second

    def test_explicit_config_must_match_journal(self, tmp_path):
        from repro.common.errors import StateError

        store = make_store("memory", tmp_path)
        plan = FaultPlan(WASTEWATER_PLANS["clean-kill-early"])
        with pytest.raises(WorkflowKilledError) as excinfo:
            run_wastewater_workflow(
                WASTEWATER_CONFIG, run_store=store, fault_plan=plan
            )
        with pytest.raises(StateError):
            run_wastewater_workflow(
                WastewaterRunConfig(sim_days=5.0, goldstein_iterations=250),
                run_store=store,
                resume_from=excinfo.value.run_id,
            )


MUSIC_CONFIG = MusicGsaRunConfig(seed=3, budget=60, reference_n=256)


def music_output(data):
    return (
        [(n, arr.tobytes()) for n, arr in data.music_curve],
        [(n, arr.tobytes()) for n, arr in data.pce_curve],
        data.reference.tobytes(),
    )


@pytest.fixture(scope="module")
def music_baseline():
    return music_output(run_music_gsa(MUSIC_CONFIG))


class TestMusicResumeMatrix:
    @pytest.mark.parametrize("backend", ["memory", "jsonl"])
    @pytest.mark.parametrize("kill_after", [10, 30])
    def test_killed_then_resumed_is_bitwise_identical(
        self, kill_after, backend, tmp_path, music_baseline
    ):
        store = make_store(backend, tmp_path)
        with pytest.raises(WorkflowKilledError) as excinfo:
            run_music_gsa(
                MUSIC_CONFIG,
                run_store=store,
                kill_switch=KillSwitch(after_records=kill_after),
            )
        run_id = excinfo.value.run_id
        assert store.open_run(run_id).status == "killed"

        resumed = run_music_gsa(run_store=store, resume_from=run_id)
        assert music_output(resumed) == music_baseline
        assert store.open_run(run_id).status == "completed"
        assert resumed.state_report["state_replay_hits"] > 0

    def test_double_resume_is_idempotent(self, tmp_path, music_baseline):
        store = make_store("jsonl", tmp_path)
        with pytest.raises(WorkflowKilledError) as excinfo:
            run_music_gsa(
                MUSIC_CONFIG,
                run_store=store,
                kill_switch=KillSwitch(after_records=20),
            )
        run_id = excinfo.value.run_id
        first = run_music_gsa(run_store=store, resume_from=run_id)
        n1 = len(store.open_run(run_id).journal)
        second = run_music_gsa(run_store=store, resume_from=run_id)
        n2 = len(store.open_run(run_id).journal)
        assert music_output(first) == music_output(second) == music_baseline
        assert n1 == n2

    def test_workflow_mismatch_rejected(self, tmp_path):
        from repro.common.errors import StateError

        store = make_store("jsonl", tmp_path)
        with pytest.raises(WorkflowKilledError) as excinfo:
            run_music_gsa(
                MUSIC_CONFIG,
                run_store=store,
                kill_switch=KillSwitch(after_records=10),
            )
        with pytest.raises(StateError):
            run_wastewater_workflow(
                run_store=store, resume_from=excinfo.value.run_id
            )


class TestCliResume:
    def test_runs_resume_completes_killed_run(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = tmp_path / "runs"
        store = JsonlRunStore(store_dir)
        plan = FaultPlan([FaultSpec(site="state.journal", at_time=1.5)])
        with pytest.raises(WorkflowKilledError) as excinfo:
            run_wastewater_workflow(
                WASTEWATER_CONFIG, run_store=store, fault_plan=plan
            )
        run_id = excinfo.value.run_id

        assert main(["runs", "list", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert run_id in out and "killed" in out

        assert main(["runs", "resume", run_id, "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "completed" in out

        # A fresh store sees the persisted completion.
        assert JsonlRunStore(store_dir).open_run(run_id).status == "completed"

"""Goldstein (wastewater) vs Cori (cases): accuracy and cost trade-off.

The paper motivates the Goldstein method as "significantly more
computationally expensive than more standard R(t) estimation methods" but
able to work from passive wastewater surveillance when case reporting has
ended.  This example quantifies both halves of that statement on synthetic
data with known truth:

- Cori on (latent, perfectly observed) case incidence: cheap and accurate —
  but requires the case data stream that no longer exists post-mandates;
- Cori on a *degraded* case stream (20% reporting, weekday effects) — what
  case-based estimation actually has to work with;
- Goldstein on noisy wastewater concentrations — slower, but close to the
  truth with no case data at all.

Usage::

    python examples/rt_method_comparison.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.common.rng import generator_from_seed
from repro.common.tabulate import format_table
from repro.models import SyntheticIWSS
from repro.models.seir import discretized_gamma
from repro.rt import GoldsteinConfig, estimate_rt_cori, estimate_rt_goldstein


def degraded_cases(incidence: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """A post-mandate case stream (see repro.models.surveillance)."""
    from repro.models.surveillance import POST_MANDATE, observe_cases

    return observe_cases(incidence, POST_MANDATE, rng)


def main() -> None:
    iwss = SyntheticIWSS(n_days=120)
    dataset = iwss.dataset("obrien")
    gen = discretized_gamma(6.0, 3.0, 21)
    rng = generator_from_seed(5)

    rows = []

    t0 = time.perf_counter()
    cori_perfect = estimate_rt_cori(dataset.true_incidence, gen)
    t_cori = time.perf_counter() - t0
    rows.append(
        [
            "Cori, perfect case data",
            round(cori_perfect.mae_against(dataset.true_rt), 3),
            round(float(np.mean(cori_perfect.band_width())), 3),
            f"{t_cori * 1e3:.1f} ms",
        ]
    )

    t0 = time.perf_counter()
    cori_degraded = estimate_rt_cori(degraded_cases(dataset.true_incidence, rng), gen)
    t_degraded = time.perf_counter() - t0
    rows.append(
        [
            "Cori, degraded case data",
            round(cori_degraded.mae_against(dataset.true_rt), 3),
            round(float(np.mean(cori_degraded.band_width())), 3),
            f"{t_degraded * 1e3:.1f} ms",
        ]
    )

    t0 = time.perf_counter()
    goldstein = estimate_rt_goldstein(
        dataset.concentrations, config=GoldsteinConfig(n_iterations=4000), seed=1
    )
    t_goldstein = time.perf_counter() - t0
    rows.append(
        [
            "Goldstein, wastewater only",
            round(goldstein.mae_against(dataset.true_rt), 3),
            round(float(np.mean(goldstein.band_width())), 3),
            f"{t_goldstein:.2f} s",
        ]
    )

    print(format_table(["method", "MAE vs truth", "mean band width", "runtime"], rows))
    print(
        f"\nGoldstein costs ~{t_goldstein / max(t_cori, 1e-9):,.0f}x Cori — "
        "the gap that motivates running it through HPC (batch-scheduled "
        "Globus Compute) in the paper's workflow."
    )


if __name__ == "__main__":
    main()

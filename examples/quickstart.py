"""Quickstart: a five-minute tour of the library's main pieces.

Runs (in under a minute):

1. a stochastic MetaRVM epidemic and its headline outputs;
2. an R(t) estimate from synthetic wastewater data (Goldstein method),
   validated against the known ground truth;
3. a Sobol sensitivity analysis of MetaRVM over the paper's Table 1
   parameter ranges.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.common.tabulate import format_table
from repro.models import (
    GSA_PARAMETER_SPACE,
    MetaRVM,
    MetaRVMConfig,
    MetaRVMParams,
    SyntheticIWSS,
)
from repro.rt import GoldsteinConfig, estimate_rt_goldstein
from repro.workflows.music_gsa import reference_indices


def demo_metarvm() -> None:
    print("=" * 72)
    print("1. MetaRVM: stochastic metapopulation epidemic (90 days, 4 groups)")
    print("=" * 72)
    model = MetaRVM(MetaRVMConfig())
    result = model.run(MetaRVMParams(), seed=1)
    rows = []
    for day in range(0, 91, 15):
        rows.append(
            [
                day,
                int(result.compartment("S")[day]),
                int(result.compartment("Is")[day]),
                int(result.compartment("H")[day]),
                int(result.compartment("D")[day]),
            ]
        )
    print(format_table(["day", "S", "Is", "H", "D"], rows))
    print(
        f"\ntotal hospitalizations (the GSA QoI): "
        f"{result.total_hospitalizations()[0]:.0f}; "
        f"deaths: {result.total_deaths()[0]:.0f}; "
        f"attack rate: {result.attack_rate()[0]:.2f}\n"
    )


def demo_rt_estimation() -> None:
    print("=" * 72)
    print("2. R(t) from wastewater (Goldstein semiparametric Bayesian method)")
    print("=" * 72)
    iwss = SyntheticIWSS(n_days=120)
    dataset = iwss.dataset("obrien")
    estimate = estimate_rt_goldstein(
        dataset.concentrations, config=GoldsteinConfig(n_iterations=2000), seed=0
    )
    print(
        f"coverage of truth by 95% band: {estimate.coverage_of(dataset.true_rt):.2f}; "
        f"MAE: {estimate.mae_against(dataset.true_rt):.3f}"
    )
    print(estimate.render_text_plot())
    print()


def demo_sobol() -> None:
    print("=" * 72)
    print("3. Sobol GSA of MetaRVM over the Table 1 ranges (fixed seed)")
    print("=" * 72)
    indices = reference_indices(seed=0, n=512)
    rows = [
        [name, GSA_PARAMETER_SPACE.description(name), float(s)]
        for name, s in zip(GSA_PARAMETER_SPACE.names, indices)
    ]
    print(format_table(["parameter", "description", "first-order index"], rows, digits=3))
    print(
        "\n(ts dominates; phd is inert because the QoI counts hospital "
        "admissions, which occur before any death transition.)"
    )


if __name__ == "__main__":
    demo_metarvm()
    demo_rt_estimation()
    demo_sobol()

"""Kill a workflow mid-flight, then resume it bitwise-identically.

OSPREY workflows run for weeks against unreliable infrastructure, so a
crash must not cost the work already done.  This example demonstrates the
``repro.state`` runtime end to end:

1. run the wastewater workflow with a durable on-disk run store and a
   fault plan that kills the process while it is writing a checkpoint
   record (``site="state.journal"``),
2. inspect what the write-ahead journal captured before the crash,
3. resume with ``resume_from=`` — journaled compute results are served
   without re-execution, everything else deterministically replays,
4. verify the resumed R(t) ensemble is bitwise identical to an
   uninterrupted run of the same configuration.

The same store works from the command line::

    python -m repro.cli runs list --store runs/
    python -m repro.cli runs resume <run-id> --store runs/

Usage::

    python examples/resumable_runs.py
"""

from __future__ import annotations

import tempfile

from repro.api import (
    FaultPlan,
    FaultSpec,
    JsonlRunStore,
    WastewaterRunConfig,
    WorkflowKilledError,
    run_wastewater_workflow,
)


def main() -> None:
    config = WastewaterRunConfig(sim_days=6.0, goldstein_iterations=600, seed=13)
    store_dir = tempfile.mkdtemp(prefix="repro-runs-")
    store = JsonlRunStore(store_dir)

    # The uninterrupted run, for the identity check at the end.
    baseline = run_wastewater_workflow(config)
    baseline_json = baseline.ensemble.to_json(include_samples=True)

    # 1. Run with a fault plan that crashes the journal write on day 3.
    plan = FaultPlan([FaultSpec(site="state.journal", at_time=3.0)])
    print(f"Running with a scheduled crash (store: {store_dir})...")
    try:
        run_wastewater_workflow(config, run_store=store, fault_plan=plan)
    except WorkflowKilledError as exc:
        run_id = exc.run_id
    print(f"  killed: {run_id}")

    # 2. What survived the crash?
    handle = store.open_run(run_id)
    print(f"  status: {handle.status}, journal records: {len(handle.journal)}")
    for kind, count in sorted(handle.journal.counts_by_kind().items()):
        print(f"    {kind}: {count}")

    # 3. Resume.  The config is rebuilt from the journal's snapshot; the
    # scheduled crash does not re-fire on a resumed run.
    print("Resuming...")
    resumed = run_wastewater_workflow(run_store=store, resume_from=run_id)
    report = resumed.state_report
    print(f"  status: {store.open_run(run_id).status}")
    print(f"  replay hits: {report['state_replay_hits']}")
    print(f"  new records: {report['state_records_appended']}")

    # 4. The headline guarantee.
    identical = resumed.ensemble.to_json(include_samples=True) == baseline_json
    print(f"resumed ensemble bitwise identical to uninterrupted run: {identical}")
    assert identical


if __name__ == "__main__":
    main()

"""Policy-scenario analysis with MetaRVM intervention schedules.

The paper's motivation for R(t) monitoring is "informing policy
interventions"; this example closes that loop on the modeling side: it runs
MetaRVM under a fan of mitigation scenarios (timing × strength) and reports
the hospitalization burden of each, plus the sensitivity of the *scenario
ranking* to the stochastic replicate — the kind of decision-support product
OSPREY exists to automate.

Usage::

    python examples/intervention_scenarios.py
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import replicate_seed
from repro.common.tabulate import format_table
from repro.models import (
    InterventionSchedule,
    MetaRVM,
    MetaRVMConfig,
    MetaRVMParams,
    lockdown_scenario,
)


def main() -> None:
    scenarios = {
        "no intervention": InterventionSchedule(),
        "early moderate (day 15, 40%)": lockdown_scenario(15, 45, 0.4),
        "early strong (day 15, 70%)": lockdown_scenario(15, 45, 0.7),
        "late strong (day 40, 70%)": lockdown_scenario(40, 45, 0.7),
        "on-off cycling": InterventionSchedule(
            phases=((15, 0.4), (35, 1.0), (50, 0.4), (70, 1.0))
        ),
    }
    params = MetaRVMParams()
    n_replicates = 8

    rows = []
    burdens = {}
    for label, schedule in scenarios.items():
        model = MetaRVM(MetaRVMConfig(intervention=schedule))
        values = np.array(
            [
                model.run(params, seed=replicate_seed(7, r)).total_hospitalizations()[0]
                for r in range(n_replicates)
            ]
        )
        burdens[label] = values
        rows.append(
            [
                label,
                float(values.mean()),
                float(values.std()),
                float(values.min()),
                float(values.max()),
            ]
        )

    print(
        format_table(
            ["scenario", "mean hosp.", "std", "min", "max"],
            rows,
            title=f"Cumulative hospitalizations over 90 days ({n_replicates} replicates)",
            digits=4,
        )
    )

    # Is the ranking stable across stochastic replicates?
    labels = list(scenarios)
    rankings = []
    for r in range(n_replicates):
        per_replicate = sorted(labels, key=lambda lb: burdens[lb][r])
        rankings.append(tuple(per_replicate))
    stable = len(set(rankings)) == 1
    print(
        f"\nscenario ranking identical across all {n_replicates} replicates: {stable}"
    )
    best = min(labels, key=lambda lb: burdens[lb].mean())
    print(f"lowest-burden scenario: {best}")


if __name__ == "__main__":
    main()

"""Audit a finished AERO workflow: catalog, lineage, checksum verification.

"Ensuring data quality and provenance" is OSPREY goal 2.  This example runs
the wastewater workflow, then plays the role of an auditor who was *not*
involved in the run:

1. search the metadata catalog for data products,
2. time-travel ("what ensemble was current on day 3?"),
3. trace the full lineage of the latest ensemble back to raw feeds,
4. re-download every artifact and verify its checksum against the
   metadata record — the tamper-evidence the central metadata DB provides.

Usage::

    python examples/provenance_audit.py
"""

from __future__ import annotations

from repro.aero import MetadataCatalog
from repro.aero.provenance import lineage
from repro.common.hashing import content_checksum
from repro.common.tabulate import format_table
from repro.api import WastewaterRunConfig, run_wastewater_workflow


def main() -> None:
    print("Running the wastewater workflow (6 simulated days)...\n")
    result = run_wastewater_workflow(
        WastewaterRunConfig(sim_days=6.0, goldstein_iterations=600, seed=13)
    )
    platform, client = result.platform, result.client
    catalog = MetadataCatalog(platform.metadata)

    # 1. What exists?
    print("Catalog summary:", catalog.summary())
    hits = catalog.search(name_contains="datatable")
    print(
        format_table(
            ["product", "versions", "latest at (day)"],
            [[h.name, h.n_versions, round(h.latest_timestamp or 0, 2)] for h in hits],
            title="\nR(t) datatable products",
        )
    )

    # 2. Time travel.
    ensemble_id = result.output_ids["aggregate/ensemble"]
    as_of_3 = catalog.version_as_of(ensemble_id, 3.0)
    latest = platform.metadata.latest(ensemble_id)
    print(
        f"\nensemble as of day 3: v{as_of_3.version if as_of_3 else None}; "
        f"latest: v{latest.version} (day {latest.timestamp:.2f})"
    )

    # 3. Lineage of the latest ensemble.
    chain = lineage(platform.metadata, ensemble_id, latest.version)
    names = {}
    for node in chain:
        data_id, version = node.split("@")
        names.setdefault(platform.metadata.get_object(data_id).name, version)
    print(f"\nthe latest ensemble derives from {len(chain)} upstream versions:")
    for name in sorted(names):
        print(f"  {name} {names[name]}")

    # 4. Checksum verification of every stored version.
    checked = 0
    mismatches = 0
    for obj in platform.metadata.all_objects():
        for version in platform.metadata.versions(obj.data_id):
            content = client.fetch_content(obj.data_id, version.version)
            checked += 1
            if content_checksum(content) != version.checksum:
                mismatches += 1
                print(f"  CHECKSUM MISMATCH: {obj.name} v{version.version}")
    print(
        f"\nchecksum audit: {checked} stored versions verified, "
        f"{mismatches} mismatches"
    )
    assert mismatches == 0


if __name__ == "__main__":
    main()

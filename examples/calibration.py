"""From GSA to calibration: fit MetaRVM to observed hospital admissions.

The paper motivates GSA as groundwork for calibration (§3.1.1).  This
example completes the pipeline on synthetic data:

1. generate "observed" daily hospital admissions from a hidden parameter
   set (one stochastic MetaRVM run);
2. run a quick GSA to see which Table 1 parameters matter for admissions;
3. calibrate — over the GSA-reduced space — with the surrogate (GP + EI)
   optimizer, and compare the fitted curve to the observations.

Usage::

    python examples/calibration.py [budget]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.common.tabulate import format_table
from repro.gsa.calibration import (
    CalibrationConfig,
    admissions_curve_distance,
    calibrate,
)
from repro.models import MetaRVM, MetaRVMConfig
from repro.models.parameters import GSA_PARAMETER_SPACE
from repro.workflows.music_gsa import reference_indices


def main(budget: int = 80) -> None:
    model_config = MetaRVMConfig(initial_vaccinated_fraction=0.4)
    model = MetaRVM(model_config)

    hidden_truth = np.array([0.42, 0.15, 0.58, 0.28, 0.12])
    observed = (
        model.run_batch(hidden_truth[None, :], seed=123, stochastic=True)
        .hospital_admissions.sum(axis=2)[0]
    )
    print(
        f"'Observed' data: {observed.sum():.0f} total admissions over "
        f"{observed.size} days (hidden truth ts={hidden_truth[0]}, "
        f"pea={hidden_truth[2]}, psh={hidden_truth[3]})\n"
    )

    print("Step 1 — GSA: which parameters drive admissions?")
    indices = reference_indices(seed=123, n=256, model_config=model_config)
    rows = [
        [name, float(s), "calibrate" if s > 0.05 else "fix at nominal"]
        for name, s in zip(GSA_PARAMETER_SPACE.names, indices)
    ]
    print(format_table(["parameter", "first-order index", "decision"], rows, digits=3))
    print()

    print(f"Step 2 — surrogate calibration over the full space (budget {budget})...")
    distance_fn = admissions_curve_distance(observed, model)
    result = calibrate(
        distance_fn,
        GSA_PARAMETER_SPACE,
        budget=budget,
        config=CalibrationConfig(n_initial=30),
        seed=0,
    )
    fitted = result.best_point
    print(
        format_table(
            ["parameter", "hidden truth", "fitted"],
            [
                [name, float(t), float(f)]
                for name, t, f in zip(GSA_PARAMETER_SPACE.names, hidden_truth, fitted)
            ],
            digits=3,
        )
    )
    print(
        f"\nfit quality: normalized RMSE {result.best_distance:.3f} "
        f"({result.improvement_over_initial():.1f}x better than the best "
        "initial-design point)"
    )
    fitted_curve = (
        model.run_batch(fitted[None, :], seed=0, stochastic=False)
        .hospital_admissions.sum(axis=2)[0]
    )
    print(
        f"total admissions — observed: {observed.sum():.0f}, "
        f"fitted model: {fitted_curve.sum():.0f}"
    )
    print(
        "\n(Parameters like pea/psh can trade off — equifinality — so judge "
        "the fit by the curve, not per-parameter recovery.)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 80)

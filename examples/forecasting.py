"""From monitoring to planning: forecast incidence and hospital load.

Extends the paper's monitoring pipeline one step toward decision support:
estimate R(t) from wastewater with the Goldstein method, then project the
posterior forward through the renewal equation to forecast incidence and
hospital admissions with uncertainty bands — including the probability of
exceeding a planning threshold.

Usage::

    python examples/forecasting.py [horizon_days]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.common.tabulate import format_table
from repro.models import SyntheticIWSS
from repro.rt import (
    GoldsteinConfig,
    estimate_rt_goldstein,
    forecast_hospitalizations,
    forecast_incidence,
)


def main(horizon: int = 28) -> None:
    iwss = SyntheticIWSS(n_days=120)
    dataset = iwss.dataset("obrien")

    print("Estimating R(t) from O'Brien wastewater (Goldstein method)...")
    estimate = estimate_rt_goldstein(
        dataset.concentrations, config=GoldsteinConfig(n_iterations=3000), seed=0
    )
    r_now = estimate.median[-1]
    print(
        f"current R(t): {r_now:.2f} "
        f"[{estimate.lower[-1]:.2f}, {estimate.upper[-1]:.2f}]\n"
    )

    forecast = forecast_incidence(
        estimate, dataset.true_incidence, horizon=horizon, damping=0.03
    )
    hosp = forecast_hospitalizations(forecast, hospitalization_fraction=0.03)
    current = dataset.true_incidence[-1]
    threshold = 1.5 * current

    rows = []
    for i in range(0, horizon, 7):
        rows.append(
            [
                int(forecast.times[i]),
                float(forecast.median[i]),
                float(forecast.lower[i]),
                float(forecast.upper[i]),
                float(hosp["median"][i]),
                float(forecast.exceeds(threshold)[i]),
            ]
        )
    print(
        format_table(
            [
                "day ahead",
                "incidence (median)",
                "lo",
                "hi",
                "admissions (median)",
                f"P(incidence > {threshold:.0f})",
            ],
            rows,
            digits=3,
        )
    )
    direction = "growing" if forecast.median[-1] > current else "declining"
    print(
        f"\n{horizon}-day outlook: incidence {direction} from ~{current:.0f}/day "
        f"to ~{forecast.median[-1]:.0f}/day (median path)."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 28)

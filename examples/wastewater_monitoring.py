"""Use case 1 end to end: automated multi-source wastewater R(t) monitoring.

Reproduces the paper's §2 workflow (Figures 1 and 2): four AERO ingestion
flows polling synthetic IWSS plant feeds daily, four Goldstein R(t) analysis
flows running through a batch-scheduled Globus Compute endpoint, and one
ALL-policy aggregation flow producing the population-weighted ensemble —
entirely event-driven on a simulated clock.

Usage::

    python examples/wastewater_monitoring.py [sim_days]
"""

from __future__ import annotations

import sys

from repro.api import (
    WastewaterRunConfig,
    render_figure1,
    render_figure2,
    run_wastewater_workflow,
)


def main(sim_days: float = 12.0) -> None:
    print(
        f"Running the automated wastewater workflow for {sim_days:g} simulated "
        "days of live operation (plus 100 days of onboarded history)...\n"
    )
    result = run_wastewater_workflow(
        WastewaterRunConfig(
            data_start_day=100.0,
            sim_days=sim_days,
            goldstein_iterations=1500,
            seed=2024,
        )
    )

    print(render_figure1(result))
    print()
    print(render_figure2(result))
    print()

    print("Lineage of the latest ensemble estimate (provenance):")
    from repro.aero.provenance import lineage

    ensemble_id = result.output_ids["aggregate/ensemble"]
    latest = result.platform.metadata.latest(ensemble_id)
    chain = lineage(result.platform.metadata, ensemble_id, latest.version)
    for node in chain[-8:]:
        data_id, version = node.split("@")
        name = result.platform.metadata.get_object(data_id).name
        print(f"  {name} {version}")
    print(f"  -> aggregate-rt/ensemble v{latest.version}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 12.0)

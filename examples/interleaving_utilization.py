"""The §3.2 scheduling argument, quantified: interleaved vs sequential.

Simulates the MUSIC workload pattern (an initial batch per instance, then
strictly sequential single evaluations) against a worker pool, under both
scheduling modes, and reports exact makespan and utilization from the
discrete-event substrate.

Usage::

    python examples/interleaving_utilization.py
"""

from __future__ import annotations

from repro.common.tabulate import format_table
from repro.workflows.utilization import compare_scheduling_modes


def main() -> None:
    scenarios = [
        # (label, instances, n_initial, n_steps, slots)
        ("paper-scale (10 x 30+170, 32 slots)", 10, 30, 170, 32),
        ("pool matches instances (10 x 30+170, 10 slots)", 10, 30, 170, 10),
        ("few big batches (4 x 64+50, 64 slots)", 4, 64, 50, 64),
    ]
    rows = []
    for label, n_instances, n_initial, n_steps, n_slots in scenarios:
        results = compare_scheduling_modes(
            n_instances=n_instances,
            n_initial=n_initial,
            n_steps=n_steps,
            n_slots=n_slots,
            task_duration=0.001,
        )
        seq = results["sequential"]
        inter = results["interleaved"]
        rows.append(
            [
                label,
                round(seq.makespan, 3),
                round(seq.utilization, 3),
                round(inter.makespan, 3),
                round(inter.utilization, 3),
                round(seq.makespan / inter.makespan, 2),
            ]
        )
    print(
        format_table(
            [
                "scenario",
                "seq makespan",
                "seq util",
                "inter makespan",
                "inter util",
                "speedup",
            ],
            rows,
        )
    )
    print(
        "\nInterleaving keeps the pool busy through the sequential tail of "
        "each MUSIC instance — the effect §3.2 of the paper describes."
    )


if __name__ == "__main__":
    main()

"""Use case 2 end to end: surrogate-based GSA of MetaRVM via EMEWS.

Reproduces the paper's §3 experiments at reduced (flag-adjustable) scale:

- Figure 4: MUSIC active-learning GSA vs. degree-3 PCE convergence of
  first-order Sobol indices, at a fixed random seed;
- Figure 5: the GSA repeated independently across stochastic replicates,
  interleaved through EMEWS futures.

Usage::

    python examples/gsa_metarvm.py [budget] [n_replicates]
"""

from __future__ import annotations

import sys

from repro.api import (
    MusicGsaRunConfig,
    render_figure4,
    render_figure5,
    render_table1,
    run_music_gsa,
    run_replicate_gsa,
)
from repro.gsa.music import MusicConfig


def main(budget: int = 120, n_replicates: int = 5) -> None:
    print(render_table1())
    print()

    music_config = MusicConfig(
        n_initial=30, refit_every=10, surrogate_mc=512, n_candidates=128
    )

    print(
        f"Figure 4 experiment: MUSIC vs PCE, budget {budget} evaluations, "
        "fixed seed, evaluations through an EMEWS task database...\n"
    )
    figure4 = run_music_gsa(
        MusicGsaRunConfig(
            seed=0, budget=budget, music_config=music_config, reference_n=1024
        )
    )
    print(render_figure4(figure4))
    print()

    print(
        f"Figure 5 experiment: {n_replicates} interleaved replicates, "
        f"budget {budget // 2} each...\n"
    )
    figure5 = run_replicate_gsa(
        n_replicates=n_replicates,
        budget=budget // 2,
        music_config=MusicConfig(
            n_initial=20, refit_every=10, surrogate_mc=256, n_candidates=64
        ),
    )
    print(render_figure5(figure5))


if __name__ == "__main__":
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    n_replicates = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    main(budget, n_replicates)

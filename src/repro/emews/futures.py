"""EMEWS task futures.

"Submitting a task consists of inserting the task into a task database.
Rather than wait for the task to complete, the submission returns a *Future*,
which encapsulates the asynchronous execution of the task.  This Future can
then be queried later for the result of the task evaluation." (§3.2)

The interleaving pattern central to the paper's MUSIC workflow uses the
non-blocking single-future check: "each algorithm checks for the completion
of a single Future, ceding control to the next instance after this check."
That is :meth:`TaskFuture.check` here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence

from repro.common.errors import StateError, ValidationError
from repro.emews.db import Task, TaskDatabase, TaskState

#: States from which a task can no longer progress.
_TERMINAL = (TaskState.COMPLETE, TaskState.FAILED, TaskState.CANCELLED)


@dataclass(frozen=True)
class CancelledByPolicy:
    """Typed result of a task cancelled while queued by a steering policy.

    A *reasoned* cancellation (``cancel(reason=...)``) is an expected
    outcome of adaptive steering, not an error: the future resolves with
    this value instead of raising, so algorithm loops can distinguish
    "the policy reclaimed this evaluation" from a genuine failure.
    Reason-less cancellations keep the historical behaviour (a
    :class:`StateError` from ``result()``).
    """

    task_id: int
    reason: str


class TaskFuture:
    """Asynchronous handle for one submitted EMEWS task."""

    def __init__(self, db: TaskDatabase, task_id: int) -> None:
        self._db = db
        self.task_id = task_id

    # ------------------------------------------------------------------ state
    def state(self) -> TaskState:
        """Current database state of the task."""
        return self._db.get_task(self.task_id).state

    def check(self) -> bool:
        """Non-blocking completion check (the interleaving primitive).

        Returns True if the task has reached a terminal state.
        """
        return self.state() in _TERMINAL

    @property
    def done(self) -> bool:
        """Alias of :meth:`check` as a property."""
        return self.check()

    # ----------------------------------------------------------------- result
    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until complete and return the deserialized result.

        Only valid with threaded worker pools (a simulated pool never makes
        progress while the caller blocks).  Raises :class:`StateError` on
        task failure or cancellation, or on timeout.
        """
        task = self._db.wait_for(self.task_id, timeout=timeout)
        return self._result_of(task)

    def result_nowait(self) -> Any:
        """Return the result if available now; raise :class:`StateError` if not."""
        task = self._db.get_task(self.task_id)
        if task.state not in _TERMINAL:
            raise StateError(f"task {self.task_id} has not completed")
        return self._result_of(task)

    @staticmethod
    def _result_of(task: Task) -> Any:
        if task.state is TaskState.FAILED:
            raise StateError(f"task {task.task_id} failed: {task.error}")
        if task.state is TaskState.CANCELLED:
            if task.cancel_reason is not None:
                return CancelledByPolicy(task.task_id, task.cancel_reason)
            raise StateError(f"task {task.task_id} was cancelled")
        return task.result_obj()

    # ---------------------------------------------------------------- control
    def cancel(self, *, reason: Optional[str] = None) -> bool:
        """Cancel if still queued; returns False if already started.

        Pass ``reason`` (e.g. ``"steering"``) to resolve the future with a
        typed :class:`CancelledByPolicy` result instead of an error.
        """
        return self._db.cancel(self.task_id, reason=reason)

    def set_priority(self, priority: int) -> bool:
        """Raise/lower queue priority while still queued."""
        return self._db.set_priority(self.task_id, priority)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TaskFuture(task_id={self.task_id}, state={self.state().value})"


def pop_completed(futures: List[TaskFuture]) -> Optional[TaskFuture]:
    """Remove and return one completed future from ``futures``, else None.

    Non-blocking; scans in order, so repeated calls drain completions in
    submission order.  This is the EMEWS ``pop_completed`` used by worker-
    pool-aware algorithms.
    """
    for i, future in enumerate(futures):
        if future.check():
            return futures.pop(i)
    return None


def as_completed(
    futures: Sequence[TaskFuture],
    *,
    timeout: Optional[float] = None,
    poll_interval: float = 0.001,
) -> Iterator[TaskFuture]:
    """Yield futures as they complete (threaded pools only).

    Raises :class:`StateError` if ``timeout`` wall-seconds elapse with
    futures still outstanding.
    """
    if poll_interval <= 0:
        raise ValidationError("poll_interval must be positive")
    pending = list(futures)
    deadline = None if timeout is None else time.monotonic() + timeout
    while pending:
        completed = pop_completed(pending)
        if completed is not None:
            yield completed
            continue
        if deadline is not None and time.monotonic() > deadline:
            raise StateError(f"as_completed timed out with {len(pending)} pending")
        time.sleep(poll_interval)

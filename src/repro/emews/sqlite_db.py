"""SQLite-backed EMEWS task database (the EQ-SQL fidelity backend).

EMEWS proper stores its task queues in a relational database (EQ-SQL over
SQLite/PostgreSQL), which is what makes the architecture "decoupled": the
model-exploration algorithm and the worker pools share nothing but the
database.  :class:`SqliteTaskDatabase` is a drop-in implementation of the
:class:`repro.emews.db.TaskDatabase` interface over :mod:`sqlite3`
(standard library), with the same semantics:

- priority-ordered pops (higher first, FIFO within a priority),
- thread-safe submission/claiming/completion (one connection per database,
  guarded by the same condition variable the in-memory backend uses —
  SQLite serializes writers anyway, and the shared lock lets blocked
  ``pop_task``/``wait_for``/``result`` calls wake on completion),
- submit/complete listeners for the simulated worker pools,
- persistence: a database file survives the process, so an experiment's
  task history can be audited after the fact (the EQ-SQL workflow).

The full EMEWS test-suite runs against both backends (parametrized), which
is the executable proof of the "decoupled architecture" claim: nothing
above the database interface can tell which one it is talking to.
"""

from __future__ import annotations

import itertools
import json
import sqlite3
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from repro.common.errors import NotFoundError, StateError, ValidationError
from repro.emews.db import Task, TaskState

_SCHEMA = """
CREATE TABLE IF NOT EXISTS tasks (
    task_id       INTEGER PRIMARY KEY AUTOINCREMENT,
    exp_id        TEXT NOT NULL,
    task_type     TEXT NOT NULL,
    payload       TEXT NOT NULL,
    priority      INTEGER NOT NULL DEFAULT 0,
    seq           INTEGER NOT NULL DEFAULT 0,
    state         TEXT NOT NULL DEFAULT 'queued',
    submitted_at  REAL NOT NULL,
    started_at    REAL,
    completed_at  REAL,
    worker_id     TEXT,
    result        TEXT,
    error         TEXT,
    cancel_reason TEXT
);
CREATE INDEX IF NOT EXISTS idx_tasks_pop
    ON tasks (task_type, state, priority DESC, seq ASC);
CREATE INDEX IF NOT EXISTS idx_tasks_exp ON tasks (exp_id);
"""

# Columns added after the first release; applied best-effort so old
# database files keep working (ALTER TABLE ADD COLUMN is cheap in SQLite).
_MIGRATIONS = (
    ("seq", "ALTER TABLE tasks ADD COLUMN seq INTEGER NOT NULL DEFAULT 0"),
    ("cancel_reason", "ALTER TABLE tasks ADD COLUMN cancel_reason TEXT"),
)


class SqliteTaskDatabase:
    """EQ-SQL-style task database over sqlite3.

    Parameters
    ----------
    path:
        Database file, or ``":memory:"`` (default) for an in-process store.
    clock:
        Time source for the timestamp columns (see
        :class:`~repro.emews.db.TaskDatabase`).
    """

    def __init__(
        self,
        path: str = ":memory:",
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.RLock()
        self._cv = threading.Condition(self._lock)
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.executescript(_SCHEMA)
            existing = {
                row["name"]
                for row in self._conn.execute("PRAGMA table_info(tasks)")
            }
            for column, ddl in _MIGRATIONS:
                if column not in existing:
                    self._conn.execute(ddl)
            self._conn.commit()
            # FIFO tie-break counter, monotonic across submits *and*
            # re-prioritizations (mirrors TaskDatabase._sequence); resume
            # past any sequence already in an existing database file.
            row = self._conn.execute("SELECT MAX(seq) AS m FROM tasks").fetchone()
            start = (row["m"] or 0) + 1 if row is not None else 1
            self._sequence = itertools.count(start)
        self._submit_listeners: List[Callable[[Task], None]] = []
        self._complete_listeners: List[Callable[[Task], None]] = []
        self._closed = False

    # ------------------------------------------------------------- listeners
    def add_submit_listener(self, callback: Callable[[Task], None]) -> None:
        """Invoke ``callback(task)`` after each submission."""
        with self._lock:
            self._submit_listeners.append(callback)

    def add_complete_listener(self, callback: Callable[[Task], None]) -> None:
        """Invoke ``callback(task)`` after each completion/failure."""
        with self._lock:
            self._complete_listeners.append(callback)

    # ----------------------------------------------------------------- submit
    def submit(
        self,
        exp_id: str,
        task_type: str,
        payload: Any,
        *,
        priority: int = 0,
    ) -> int:
        """Insert a task row; returns its task id."""
        try:
            payload_text = json.dumps(payload)
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"task payload is not JSON-serializable: {exc}") from exc
        with self._cv:
            if self._closed:
                raise StateError("task database is closed to new submissions")
            cursor = self._conn.execute(
                "INSERT INTO tasks (exp_id, task_type, payload, priority, seq,"
                " state, submitted_at) VALUES (?, ?, ?, ?, ?, 'queued', ?)",
                (
                    str(exp_id),
                    str(task_type),
                    payload_text,
                    int(priority),
                    next(self._sequence),
                    self._clock(),
                ),
            )
            self._conn.commit()
            task_id = int(cursor.lastrowid)
            task = self._row_to_task(self._fetch_row(task_id))
            listeners = list(self._submit_listeners)
            self._cv.notify_all()
        for callback in listeners:
            callback(task)
        return task_id

    # -------------------------------------------------------------------- pop
    def pop_task(
        self,
        task_type: str,
        worker_id: str,
        *,
        timeout: Optional[float] = 0.0,
    ) -> Optional[Task]:
        """Claim the highest-priority queued task of ``task_type``."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            while True:
                row = self._conn.execute(
                    "SELECT task_id FROM tasks WHERE task_type = ? AND state = 'queued'"
                    " ORDER BY priority DESC, seq ASC LIMIT 1",
                    (task_type,),
                ).fetchone()
                if row is not None:
                    task_id = row["task_id"]
                    self._conn.execute(
                        "UPDATE tasks SET state = 'running', started_at = ?,"
                        " worker_id = ? WHERE task_id = ?",
                        (self._clock(), worker_id, task_id),
                    )
                    self._conn.commit()
                    return self._row_to_task(self._fetch_row(task_id))
                if self._closed:
                    return None
                if deadline is None:
                    self._cv.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cv.wait(remaining)

    # --------------------------------------------------------------- complete
    def complete_task(self, task_id: int, result: Any) -> None:
        """Record a successful result for a RUNNING task."""
        try:
            result_text = json.dumps(result)
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"task result is not JSON-serializable: {exc}") from exc
        self._finish(task_id, "complete", result=result_text)

    def fail_task(self, task_id: int, error: str) -> None:
        """Record a failure for a RUNNING task."""
        self._finish(task_id, "failed", error=error)

    def _finish(
        self,
        task_id: int,
        state: str,
        *,
        result: Optional[str] = None,
        error: Optional[str] = None,
    ) -> None:
        with self._cv:
            row = self._fetch_row(task_id)
            if row["state"] != "running":
                raise StateError(f"task {task_id} is {row['state']}, expected running")
            self._conn.execute(
                "UPDATE tasks SET state = ?, result = ?, error = ?, completed_at = ?"
                " WHERE task_id = ?",
                (state, result, error, self._clock(), task_id),
            )
            self._conn.commit()
            task = self._row_to_task(self._fetch_row(task_id))
            listeners = list(self._complete_listeners)
            self._cv.notify_all()
        for callback in listeners:
            callback(task)

    def cancel(self, task_id: int, *, reason: Optional[str] = None) -> bool:
        """Cancel a QUEUED task.  Returns False if it already started."""
        with self._cv:
            done = self._cancel_locked(task_id, reason)
            if done:
                self._conn.commit()
                self._cv.notify_all()
            return done

    def _cancel_locked(self, task_id: int, reason: Optional[str]) -> bool:
        row = self._fetch_row(task_id)
        if row["state"] != "queued":
            return False
        self._conn.execute(
            "UPDATE tasks SET state = 'cancelled', cancel_reason = ?,"
            " completed_at = ? WHERE task_id = ?",
            (reason, self._clock(), task_id),
        )
        return True

    def cancel_queued(
        self, task_ids: Iterable[int], *, reason: Optional[str] = None
    ) -> Dict[int, bool]:
        """Cancel many QUEUED tasks in one transaction."""
        with self._cv:
            out = {
                task_id: self._cancel_locked(task_id, reason)
                for task_id in sorted(int(t) for t in task_ids)
            }
            if any(out.values()):
                self._conn.commit()
                self._cv.notify_all()
            return out

    def set_priority(self, task_id: int, priority: int) -> bool:
        """Re-prioritize a QUEUED task.  Returns False once it has started.

        The task takes a fresh sequence number, so it joins the *back* of
        its new priority level (same FIFO contract as the in-memory heap).
        """
        with self._cv:
            done = self._set_priority_locked(task_id, priority)
            if done:
                self._conn.commit()
                self._cv.notify_all()
            return done

    def _set_priority_locked(self, task_id: int, priority: int) -> bool:
        row = self._fetch_row(task_id)
        if row["state"] != "queued":
            return False
        self._conn.execute(
            "UPDATE tasks SET priority = ?, seq = ? WHERE task_id = ?",
            (int(priority), next(self._sequence), task_id),
        )
        return True

    def update_priorities(self, priorities: Mapping[int, int]) -> Dict[int, bool]:
        """Atomically re-prioritize many QUEUED tasks (one transaction)."""
        with self._cv:
            out = {
                task_id: self._set_priority_locked(task_id, priority)
                for task_id, priority in sorted(
                    (int(k), int(v)) for k, v in priorities.items()
                )
            }
            if any(out.values()):
                self._conn.commit()
                self._cv.notify_all()
            return out

    # ------------------------------------------------------------------ close
    def close(self) -> None:
        """Refuse further submissions and wake all blocked pops."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    # ------------------------------------------------------------------ query
    def _fetch_row(self, task_id: int) -> sqlite3.Row:
        row = self._conn.execute(
            "SELECT * FROM tasks WHERE task_id = ?", (task_id,)
        ).fetchone()
        if row is None:
            raise NotFoundError(f"unknown task id {task_id}")
        return row

    @staticmethod
    def _row_to_task(row: sqlite3.Row) -> Task:
        return Task(
            task_id=row["task_id"],
            exp_id=row["exp_id"],
            task_type=row["task_type"],
            payload=row["payload"],
            priority=row["priority"],
            state=TaskState(row["state"]),
            submitted_at=row["submitted_at"],
            started_at=row["started_at"],
            completed_at=row["completed_at"],
            worker_id=row["worker_id"],
            result=row["result"],
            error=row["error"],
            cancel_reason=row["cancel_reason"],
        )

    def get_task(self, task_id: int) -> Task:
        """Fetch a task snapshot by id."""
        with self._lock:
            return self._row_to_task(self._fetch_row(task_id))

    def wait_for(self, task_id: int, *, timeout: Optional[float] = None) -> Task:
        """Block until ``task_id`` reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        terminal = ("complete", "failed", "cancelled")
        with self._cv:
            while True:
                row = self._fetch_row(task_id)
                if row["state"] in terminal:
                    return self._row_to_task(row)
                if deadline is None:
                    self._cv.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise StateError(f"timed out waiting for task {task_id}")
                    self._cv.wait(remaining)

    def counts(self) -> Dict[str, int]:
        """Task counts by state."""
        with self._lock:
            out = {state.value: 0 for state in TaskState}
            for row in self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM tasks GROUP BY state"
            ):
                out[row["state"]] = row["n"]
            return out

    def queue_length(self, task_type: str) -> int:
        """Number of queued tasks of ``task_type``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM tasks WHERE task_type = ? AND state = 'queued'",
                (task_type,),
            ).fetchone()
            return int(row["n"])

    def queued_ids(self, task_type: str) -> List[int]:
        """Task ids currently QUEUED for ``task_type``, in submission order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT task_id FROM tasks WHERE task_type = ? AND state = 'queued'"
                " ORDER BY task_id",
                (task_type,),
            ).fetchall()
            return [int(r["task_id"]) for r in rows]

    def tasks_for_experiment(self, exp_id: str) -> List[Task]:
        """All tasks of one experiment, in submission order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM tasks WHERE exp_id = ? ORDER BY task_id", (exp_id,)
            ).fetchall()
            return [self._row_to_task(r) for r in rows]

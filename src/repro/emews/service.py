"""EMEWS service: queue setup and programmatic worker-pool start.

"The initialization code first sets up the EMEWS task queue used for the
task submissions, and then starts an EMEWS worker pool.  When this
initialization code is run in production on a compute node (as opposed to
locally when testing), the code starts a worker pool by submitting a job to
the compute resource scheduler (e.g., SLURM or PBS). ... Once all of the
MUSIC algorithms have finished, the finalization code closes the task queue,
and stops the worker pool." (§3.2)

:class:`EmewsService` is that initialization/finalization API, with both
modes:

- ``start_local_pool`` — threads in this process ("locally when testing");
- ``start_scheduled_pool`` — submits a batch job to a
  :class:`~repro.hpc.BatchScheduler`; the job's payload starts a
  :class:`~repro.emews.worker_pool.SimWorkerPool` sized to the allocated
  nodes, and stopping the pool completes the job ("in production on a
  compute node").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional, Union

from repro.common.errors import ValidationError
from repro.emews.db import TaskDatabase
from repro.emews.api import TaskQueue
from repro.emews.worker_pool import (
    BatchWorkerPool,
    EvalFn,
    SimWorkerPool,
    ThreadedWorkerPool,
)
from repro.hpc.scheduler import BatchScheduler, Job, JobRequest
from repro.perf.executor import ParallelEvaluator
from repro.perf.memo import MemoCache
from repro.sim import SimulationEnvironment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.state import RunCheckpointer


@dataclass
class PoolHandle:
    """Handle for a started worker pool (any mode)."""

    name: str
    pool: Union[ThreadedWorkerPool, BatchWorkerPool, SimWorkerPool]
    job: Optional[Job] = None  # the scheduler job, for scheduled pools

    def stop(self) -> None:
        """Stop the pool; for scheduled pools, also complete the batch job."""
        if isinstance(self.pool, (ThreadedWorkerPool, BatchWorkerPool)):
            self.pool.shutdown()
        else:
            self.pool.stop()
        if self.job is not None and not self.job.done:
            self.job.complete(result=f"pool {self.name} stopped")

    @property
    def tasks_processed(self) -> int:
        """Tasks evaluated by this pool so far."""
        return self.pool.tasks_processed


class EmewsService:
    """Queue creation plus worker-pool lifecycle management.

    With a :class:`~repro.state.RunCheckpointer` attached (``state=``),
    every evaluator handed to a local or parallel pool is wrapped so that
    completed task results land in the run journal, and journaled results
    are served without re-evaluation on resume.  The EMEWS path has no
    simulated clock, so the checkpointer runs clock-free here (its
    count-based :class:`~repro.state.KillSwitch` is the crash mechanism).
    """

    def __init__(
        self,
        db: Optional[TaskDatabase] = None,
        *,
        state: Optional["RunCheckpointer"] = None,
    ) -> None:
        self.db = db if db is not None else TaskDatabase()
        self.state = state
        self._pools: list[PoolHandle] = []

    # ------------------------------------------------------------------ queue
    def make_queue(self, exp_id: str) -> TaskQueue:
        """Set up a task queue for an experiment."""
        return TaskQueue(self.db, exp_id)

    # ------------------------------------------------------------- local pool
    def start_local_pool(
        self,
        task_type: str,
        fn: EvalFn,
        *,
        n_workers: int = 4,
        name: str = "local-pool",
    ) -> PoolHandle:
        """Start a threaded pool in this process (the testing mode)."""
        if self.state is not None:
            fn = self.state.wrap_evaluator(fn)
        pool = ThreadedWorkerPool(
            self.db, task_type, fn, n_workers=n_workers, name=name
        ).start()
        handle = PoolHandle(name=name, pool=pool)
        self._pools.append(handle)
        return handle

    # ---------------------------------------------------------- parallel pool
    def start_parallel_pool(
        self,
        task_type: str,
        fn: Optional[EvalFn] = None,
        *,
        batch_fn: Optional[Callable[[list], list]] = None,
        n_workers: int = 4,
        backend: str = "auto",
        cache: Optional[MemoCache] = None,
        coalesce_window: float = 0.025,
        max_coalesce: float = 0.25,
        max_batch: Optional[int] = None,
        name: str = "parallel-pool",
    ) -> PoolHandle:
        """Start a deterministic batch-evaluating pool in this process.

        Tasks are drained from the queue, merged in canonical ``task_id``
        order, and evaluated through a :class:`ParallelEvaluator` — so the
        results are bitwise identical to ``start_local_pool`` with one
        worker, while a vectorized ``batch_fn`` or memoization ``cache``
        can make them arrive much faster.
        """
        if self.state is not None:
            if fn is not None:
                fn = self.state.wrap_evaluator(fn)
            if batch_fn is not None:
                batch_fn = self.state.wrap_batch_evaluator(batch_fn)
        evaluator = ParallelEvaluator(
            fn, batch_fn=batch_fn, n_workers=n_workers, backend=backend, cache=cache
        )
        pool = BatchWorkerPool(
            self.db,
            task_type,
            evaluator,
            coalesce_window=coalesce_window,
            max_coalesce=max_coalesce,
            max_batch=max_batch,
            name=name,
        ).start()
        handle = PoolHandle(name=name, pool=pool)
        self._pools.append(handle)
        return handle

    # --------------------------------------------------------- scheduled pool
    def start_scheduled_pool(
        self,
        scheduler: BatchScheduler,
        env: SimulationEnvironment,
        task_type: str,
        *,
        n_nodes: int = 1,
        slots_per_node: Optional[int] = None,
        walltime: float = 2.0,
        fn: Optional[EvalFn] = None,
        duration_fn: Callable[[Any], float] = lambda payload: 1e-3,
        name: str = "scheduled-pool",
    ) -> PoolHandle:
        """Start a pool by submitting a job to the batch scheduler.

        The returned handle's pool only begins serving tasks once the job
        starts (i.e., after any queue wait), faithfully reproducing the
        production path.  ``slots_per_node`` defaults to the cluster's
        cores per node.
        """
        if slots_per_node is None:
            slots_per_node = scheduler.cluster.cores_per_node
        if slots_per_node < 1:
            raise ValidationError("slots_per_node must be >= 1")
        n_slots = n_nodes * slots_per_node
        pool = SimWorkerPool(
            env,
            self.db,
            task_type,
            fn=fn,
            duration_fn=duration_fn,
            n_slots=n_slots,
            name=name,
        )
        handle = PoolHandle(name=name, pool=pool)

        def payload(job: Job) -> str:
            pool.start()
            return f"worker pool {name} started on {n_nodes} node(s)"

        job = scheduler.submit(
            JobRequest(
                name=f"emews-pool:{name}",
                n_nodes=n_nodes,
                walltime=walltime,
                payload=payload,
                duration=None,  # service job: runs until stopped or walltime
            )
        )

        def on_job_done(finished: Job) -> None:
            pool.stop()

        job.on_complete.append(on_job_done)
        handle.job = job
        self._pools.append(handle)
        return handle

    # ------------------------------------------------------------ finalization
    def finalize(self, queue: Optional[TaskQueue] = None) -> None:
        """Close the task queue and stop every pool started by this service."""
        if queue is not None:
            queue.close()
        else:
            self.db.close()
        for handle in self._pools:
            handle.stop()

    @property
    def pools(self) -> list[PoolHandle]:
        """Handles of all pools started through this service."""
        return list(self._pools)

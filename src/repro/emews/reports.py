"""Experiment reports over the EMEWS task database.

Operational visibility for model-exploration runs: per-experiment
throughput, queue-wait and service-time statistics, worker load balance,
and failure summaries — computed from the task table either backend
records.  These are the numbers an EMEWS operator checks when deciding
whether a worker pool is sized correctly (the practical side of the paper's
utilization discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.common.errors import ValidationError
from repro.common.tabulate import format_table
from repro.emews.db import Task, TaskState


@dataclass(frozen=True)
class ExperimentReport:
    """Summary statistics for one experiment's tasks."""

    exp_id: str
    n_tasks: int
    n_complete: int
    n_failed: int
    n_cancelled: int
    n_outstanding: int
    mean_queue_wait: float
    max_queue_wait: float
    mean_service_time: float
    makespan: float
    worker_load: Dict[str, int]

    @property
    def success_rate(self) -> float:
        """Completed / finished (1.0 when nothing finished yet)."""
        finished = self.n_complete + self.n_failed
        return 1.0 if finished == 0 else self.n_complete / finished

    def load_imbalance(self) -> float:
        """max/mean tasks per worker (1.0 = perfectly balanced)."""
        if not self.worker_load:
            return 1.0
        loads = np.array(list(self.worker_load.values()), dtype=float)
        mean = loads.mean()
        return float(loads.max() / mean) if mean > 0 else 1.0


def experiment_report(db, exp_id: str) -> ExperimentReport:
    """Build an :class:`ExperimentReport` from either database backend."""
    tasks: List[Task] = db.tasks_for_experiment(exp_id)
    if not tasks:
        raise ValidationError(f"no tasks recorded for experiment {exp_id!r}")
    waits = []
    services = []
    worker_load: Dict[str, int] = {}
    n_complete = n_failed = n_cancelled = 0
    start = min(t.submitted_at for t in tasks)
    end = start
    for task in tasks:
        if task.started_at is not None:
            waits.append(task.started_at - task.submitted_at)
            if task.worker_id:
                worker_load[task.worker_id] = worker_load.get(task.worker_id, 0) + 1
        if task.completed_at is not None:
            end = max(end, task.completed_at)
            if task.started_at is not None:
                services.append(task.completed_at - task.started_at)
        if task.state is TaskState.COMPLETE:
            n_complete += 1
        elif task.state is TaskState.FAILED:
            n_failed += 1
        elif task.state is TaskState.CANCELLED:
            n_cancelled += 1
    return ExperimentReport(
        exp_id=exp_id,
        n_tasks=len(tasks),
        n_complete=n_complete,
        n_failed=n_failed,
        n_cancelled=n_cancelled,
        n_outstanding=len(tasks) - n_complete - n_failed - n_cancelled,
        mean_queue_wait=float(np.mean(waits)) if waits else 0.0,
        max_queue_wait=float(np.max(waits)) if waits else 0.0,
        mean_service_time=float(np.mean(services)) if services else 0.0,
        makespan=end - start,
        worker_load=worker_load,
    )


def render_report(report: ExperimentReport) -> str:
    """Monospace rendering of an experiment report."""
    rows = [
        ["tasks", report.n_tasks],
        ["complete", report.n_complete],
        ["failed", report.n_failed],
        ["cancelled", report.n_cancelled],
        ["outstanding", report.n_outstanding],
        ["success rate", round(report.success_rate, 4)],
        ["mean queue wait", round(report.mean_queue_wait, 6)],
        ["max queue wait", round(report.max_queue_wait, 6)],
        ["mean service time", round(report.mean_service_time, 6)],
        ["makespan", round(report.makespan, 6)],
        ["workers", len(report.worker_load)],
        ["load imbalance (max/mean)", round(report.load_imbalance(), 3)],
    ]
    return format_table(
        ["metric", "value"], rows, title=f"experiment {report.exp_id!r}"
    )

"""The EMEWS task database.

In EMEWS proper this is EQ-SQL: a PostgreSQL/SQLite database holding task
input and output queues, with worker pools popping work by type and priority
and algorithms querying results asynchronously.  This module is a faithful
in-process equivalent:

- tasks carry an experiment id, a task *type* (worker pools serve one type),
  a JSON payload, and an integer priority (higher pops first; FIFO within a
  priority level);
- submission and completion are thread-safe — the threaded worker pool and
  the submitting algorithm genuinely race, as in a real deployment;
- blocking pops support timeouts, and completion signals wake blocked
  ``result()`` calls on futures;
- submit/complete listeners let the *simulated* worker pool react to
  arrivals without polling (the discrete-event analogue of EQ-SQL's
  notification channel).

Payloads and results must be JSON-serializable: the database stores the
serialized text, exactly like EQ-SQL, which keeps algorithm and worker
processes decoupled (nothing object-shaped sneaks through).
"""

from __future__ import annotations

import heapq
import itertools
import json
import threading
import time
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.common.errors import NotFoundError, StateError, ValidationError

#: Tombstone compaction threshold: a queue's heap is rebuilt once it carries
#: more than this many stale entries *and* more stale than live entries.
_COMPACT_MIN_STALE = 64


class TaskState(Enum):
    """Task lifecycle in the database."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETE = "complete"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass
class Task:
    """One row of the task table."""

    task_id: int
    exp_id: str
    task_type: str
    payload: str  # JSON text
    priority: int
    state: TaskState = TaskState.QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    worker_id: Optional[str] = None
    result: Optional[str] = None  # JSON text
    error: Optional[str] = None
    cancel_reason: Optional[str] = None

    def payload_obj(self) -> Any:
        """Deserialize the payload."""
        return json.loads(self.payload)

    def result_obj(self) -> Any:
        """Deserialize the result (None if not complete)."""
        return None if self.result is None else json.loads(self.result)


class TaskDatabase:
    """Thread-safe task store with priority queues per task type.

    Parameters
    ----------
    clock:
        Time source for the timestamp columns.  Real deployments use wall
        time (default); simulated worker pools pass ``lambda: env.now`` so
        queue-wait statistics are in simulated days.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.RLock()
        self._cv = threading.Condition(self._lock)
        self._tasks: Dict[int, Task] = {}
        # Lazy-deletion heaps, one per task type.  Each entry is
        # (-priority, seq, task_id); an entry is *live* iff the task is
        # still QUEUED and its seq matches _entry_seq[task_id] (re-priority
        # pushes a fresh entry and bumps the seq, tombstoning the old one).
        self._queues: Dict[str, List[Tuple[int, int, int]]] = {}
        self._entry_seq: Dict[int, int] = {}
        self._stale: Dict[str, int] = {}
        self._queued_counts: Dict[str, int] = {}
        self._sequence = itertools.count()
        self._ids = itertools.count(1)
        self._submit_listeners: List[Callable[[Task], None]] = []
        self._complete_listeners: List[Callable[[Task], None]] = []
        self._closed = False

    # ------------------------------------------------------------- listeners
    def add_submit_listener(self, callback: Callable[[Task], None]) -> None:
        """Invoke ``callback(task)`` after each submission (sim pools)."""
        with self._lock:
            self._submit_listeners.append(callback)

    def add_complete_listener(self, callback: Callable[[Task], None]) -> None:
        """Invoke ``callback(task)`` after each completion/failure."""
        with self._lock:
            self._complete_listeners.append(callback)

    # ----------------------------------------------------------------- submit
    def submit(
        self,
        exp_id: str,
        task_type: str,
        payload: Any,
        *,
        priority: int = 0,
    ) -> int:
        """Insert a task; returns its task id.

        ``payload`` is JSON-serialized here; non-serializable payloads are a
        caller error.
        """
        try:
            payload_text = json.dumps(payload)
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"task payload is not JSON-serializable: {exc}") from exc
        with self._cv:
            if self._closed:
                raise StateError("task database is closed to new submissions")
            task = Task(
                task_id=next(self._ids),
                exp_id=str(exp_id),
                task_type=str(task_type),
                payload=payload_text,
                priority=int(priority),
                submitted_at=self._clock(),
            )
            self._tasks[task.task_id] = task
            self._push(task)
            self._queued_counts[task.task_type] = (
                self._queued_counts.get(task.task_type, 0) + 1
            )
            listeners = list(self._submit_listeners)
            self._cv.notify_all()
        for callback in listeners:
            callback(task)
        return task.task_id

    def _push(self, task: Task) -> None:
        """Push a fresh heap entry for ``task`` (callers hold the lock).

        The sequence counter is monotonic across *all* pushes, so FIFO
        within a priority level is by insertion order — a re-prioritized
        task joins the back of its new level, never the front.
        """
        seq = next(self._sequence)
        self._entry_seq[task.task_id] = seq
        queue = self._queues.setdefault(task.task_type, [])
        heapq.heappush(queue, (-task.priority, seq, task.task_id))

    def _entry_live(self, entry: Tuple[int, int, int]) -> bool:
        _, seq, task_id = entry
        if self._entry_seq.get(task_id) != seq:
            return False
        task = self._tasks.get(task_id)
        return task is not None and task.state is TaskState.QUEUED

    def _tombstone(self, task_type: str, count: int = 1) -> None:
        """Account ``count`` newly-stale entries and compact if worthwhile."""
        stale = self._stale.get(task_type, 0) + count
        self._stale[task_type] = stale
        queue = self._queues.get(task_type)
        if (
            queue is not None
            and stale > _COMPACT_MIN_STALE
            and stale > len(queue) - stale
        ):
            live = [entry for entry in queue if self._entry_live(entry)]
            heapq.heapify(live)
            self._queues[task_type] = live
            self._stale[task_type] = 0

    # -------------------------------------------------------------------- pop
    def pop_task(
        self,
        task_type: str,
        worker_id: str,
        *,
        timeout: Optional[float] = 0.0,
    ) -> Optional[Task]:
        """Claim the highest-priority queued task of ``task_type``.

        ``timeout`` semantics: ``0.0`` (default) returns immediately;
        ``None`` blocks until a task arrives or the database closes; a
        positive value blocks up to that many wall seconds.

        Returns ``None`` when nothing is available.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            while True:
                queue = self._queues.get(task_type)
                while queue:
                    entry = heapq.heappop(queue)
                    if not self._entry_live(entry):
                        stale = self._stale.get(task_type, 0)
                        if stale:
                            self._stale[task_type] = stale - 1
                        continue
                    task = self._tasks[entry[2]]
                    del self._entry_seq[task.task_id]
                    self._queued_counts[task_type] -= 1
                    task.state = TaskState.RUNNING
                    task.started_at = self._clock()
                    task.worker_id = worker_id
                    return task
                if self._closed:
                    return None
                if deadline is None:
                    self._cv.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cv.wait(remaining)

    # --------------------------------------------------------------- complete
    def complete_task(self, task_id: int, result: Any) -> None:
        """Record a successful result for a RUNNING task."""
        try:
            result_text = json.dumps(result)
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"task result is not JSON-serializable: {exc}") from exc
        self._finish(task_id, TaskState.COMPLETE, result=result_text)

    def fail_task(self, task_id: int, error: str) -> None:
        """Record a failure for a RUNNING task."""
        self._finish(task_id, TaskState.FAILED, error=error)

    def _finish(
        self,
        task_id: int,
        state: TaskState,
        *,
        result: Optional[str] = None,
        error: Optional[str] = None,
    ) -> None:
        with self._cv:
            task = self._get(task_id)
            if task.state is not TaskState.RUNNING:
                raise StateError(
                    f"task {task_id} is {task.state.value}, expected running"
                )
            task.state = state
            task.result = result
            task.error = error
            task.completed_at = self._clock()
            listeners = list(self._complete_listeners)
            self._cv.notify_all()
        for callback in listeners:
            callback(task)

    def cancel(self, task_id: int, *, reason: Optional[str] = None) -> bool:
        """Cancel a QUEUED task.  Returns False if it already started.

        ``reason`` is recorded on the task row (e.g. ``"steering"``) so
        futures can surface a typed cancellation result.
        """
        with self._cv:
            done = self._cancel_locked(task_id, reason)
            if done:
                self._cv.notify_all()
            return done

    def _cancel_locked(self, task_id: int, reason: Optional[str]) -> bool:
        task = self._get(task_id)
        if task.state is not TaskState.QUEUED:
            return False
        task.state = TaskState.CANCELLED
        task.cancel_reason = reason
        task.completed_at = self._clock()
        self._entry_seq.pop(task.task_id, None)
        self._queued_counts[task.task_type] -= 1
        self._tombstone(task.task_type)
        return True

    def cancel_queued(
        self, task_ids: Iterable[int], *, reason: Optional[str] = None
    ) -> Dict[int, bool]:
        """Cancel many QUEUED tasks under one lock acquisition.

        Returns ``{task_id: cancelled}`` — False where the task had
        already been claimed (or finished) when the cancel landed.
        """
        with self._cv:
            out = {
                task_id: self._cancel_locked(int(task_id), reason)
                for task_id in sorted(int(t) for t in task_ids)
            }
            if any(out.values()):
                self._cv.notify_all()
            return out

    def set_priority(self, task_id: int, priority: int) -> bool:
        """Re-prioritize a QUEUED task.  Returns False once it has started.

        O(log n): the old heap entry is tombstoned in place and a fresh
        entry (new sequence number) is pushed, so the task moves to the
        *back* of its new priority level.
        """
        with self._cv:
            done = self._set_priority_locked(task_id, priority)
            if done:
                self._cv.notify_all()
            return done

    def _set_priority_locked(self, task_id: int, priority: int) -> bool:
        task = self._get(task_id)
        if task.state is not TaskState.QUEUED:
            return False
        task.priority = int(priority)
        self._tombstone(task.task_type)
        self._push(task)
        return True

    def update_priorities(self, priorities: Mapping[int, int]) -> Dict[int, bool]:
        """Atomically re-prioritize many QUEUED tasks.

        The EQ-SQL ``update_priorities`` bulk op: all updates land under a
        single lock acquisition (workers observe either the old ranking or
        the new one, never a mix) with one wake-up at the end.  Returns
        ``{task_id: updated}`` — False for tasks already claimed.
        """
        with self._cv:
            out = {
                task_id: self._set_priority_locked(int(task_id), int(priority))
                for task_id, priority in sorted(
                    (int(k), int(v)) for k, v in priorities.items()
                )
            }
            if any(out.values()):
                self._cv.notify_all()
            return out

    # ------------------------------------------------------------------ close
    def close(self) -> None:
        """Refuse further submissions and wake all blocked pops.

        Worker pools treat a ``None`` pop after close as "drain finished".
        """
        with self._cv:
            self._closed = True
            self._cv.notify_all()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    # ------------------------------------------------------------------ query
    def _get(self, task_id: int) -> Task:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise NotFoundError(f"unknown task id {task_id}") from None

    def get_task(self, task_id: int) -> Task:
        """Fetch a task row (live object; do not mutate)."""
        with self._lock:
            return self._get(task_id)

    def wait_for(self, task_id: int, *, timeout: Optional[float] = None) -> Task:
        """Block until ``task_id`` reaches a terminal state.

        Only meaningful with real (threaded) worker pools; simulated pools
        complete tasks on the event loop instead.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            while True:
                task = self._get(task_id)
                if task.state in (TaskState.COMPLETE, TaskState.FAILED, TaskState.CANCELLED):
                    return task
                if deadline is None:
                    self._cv.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise StateError(f"timed out waiting for task {task_id}")
                    self._cv.wait(remaining)

    def counts(self) -> Dict[str, int]:
        """Task counts by state (reports)."""
        with self._lock:
            out: Dict[str, int] = {state.value: 0 for state in TaskState}
            for task in self._tasks.values():
                out[task.state.value] += 1
            return out

    def queue_length(self, task_type: str) -> int:
        """Number of queued tasks of ``task_type`` (O(1))."""
        with self._lock:
            return self._queued_counts.get(task_type, 0)

    def queued_ids(self, task_type: str) -> List[int]:
        """Task ids currently QUEUED for ``task_type``, in submission order."""
        with self._lock:
            return sorted(
                task_id
                for task_id, task in self._tasks.items()
                if task.task_type == task_type and task.state is TaskState.QUEUED
            )

    def tasks_for_experiment(self, exp_id: str) -> List[Task]:
        """All tasks of one experiment, in submission order."""
        with self._lock:
            return sorted(
                (t for t in self._tasks.values() if t.exp_id == exp_id),
                key=lambda t: t.task_id,
            )

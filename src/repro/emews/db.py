"""The EMEWS task database.

In EMEWS proper this is EQ-SQL: a PostgreSQL/SQLite database holding task
input and output queues, with worker pools popping work by type and priority
and algorithms querying results asynchronously.  This module is a faithful
in-process equivalent:

- tasks carry an experiment id, a task *type* (worker pools serve one type),
  a JSON payload, and an integer priority (higher pops first; FIFO within a
  priority level);
- submission and completion are thread-safe — the threaded worker pool and
  the submitting algorithm genuinely race, as in a real deployment;
- blocking pops support timeouts, and completion signals wake blocked
  ``result()`` calls on futures;
- submit/complete listeners let the *simulated* worker pool react to
  arrivals without polling (the discrete-event analogue of EQ-SQL's
  notification channel).

Payloads and results must be JSON-serializable: the database stores the
serialized text, exactly like EQ-SQL, which keeps algorithm and worker
processes decoupled (nothing object-shaped sneaks through).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import NotFoundError, StateError, ValidationError


class TaskState(Enum):
    """Task lifecycle in the database."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETE = "complete"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass
class Task:
    """One row of the task table."""

    task_id: int
    exp_id: str
    task_type: str
    payload: str  # JSON text
    priority: int
    state: TaskState = TaskState.QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    worker_id: Optional[str] = None
    result: Optional[str] = None  # JSON text
    error: Optional[str] = None

    def payload_obj(self) -> Any:
        """Deserialize the payload."""
        return json.loads(self.payload)

    def result_obj(self) -> Any:
        """Deserialize the result (None if not complete)."""
        return None if self.result is None else json.loads(self.result)


class TaskDatabase:
    """Thread-safe task store with priority queues per task type.

    Parameters
    ----------
    clock:
        Time source for the timestamp columns.  Real deployments use wall
        time (default); simulated worker pools pass ``lambda: env.now`` so
        queue-wait statistics are in simulated days.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.RLock()
        self._cv = threading.Condition(self._lock)
        self._tasks: Dict[int, Task] = {}
        self._queues: Dict[str, List[Tuple[int, int, int]]] = {}
        # each queue entry: (-priority, sequence, task_id) kept sorted
        self._sequence = itertools.count()
        self._ids = itertools.count(1)
        self._submit_listeners: List[Callable[[Task], None]] = []
        self._complete_listeners: List[Callable[[Task], None]] = []
        self._closed = False

    # ------------------------------------------------------------- listeners
    def add_submit_listener(self, callback: Callable[[Task], None]) -> None:
        """Invoke ``callback(task)`` after each submission (sim pools)."""
        with self._lock:
            self._submit_listeners.append(callback)

    def add_complete_listener(self, callback: Callable[[Task], None]) -> None:
        """Invoke ``callback(task)`` after each completion/failure."""
        with self._lock:
            self._complete_listeners.append(callback)

    # ----------------------------------------------------------------- submit
    def submit(
        self,
        exp_id: str,
        task_type: str,
        payload: Any,
        *,
        priority: int = 0,
    ) -> int:
        """Insert a task; returns its task id.

        ``payload`` is JSON-serialized here; non-serializable payloads are a
        caller error.
        """
        try:
            payload_text = json.dumps(payload)
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"task payload is not JSON-serializable: {exc}") from exc
        with self._cv:
            if self._closed:
                raise StateError("task database is closed to new submissions")
            task = Task(
                task_id=next(self._ids),
                exp_id=str(exp_id),
                task_type=str(task_type),
                payload=payload_text,
                priority=int(priority),
                submitted_at=self._clock(),
            )
            self._tasks[task.task_id] = task
            queue = self._queues.setdefault(task.task_type, [])
            self._insert_sorted(queue, task)
            listeners = list(self._submit_listeners)
            self._cv.notify_all()
        for callback in listeners:
            callback(task)
        return task.task_id

    @staticmethod
    def _insert_sorted(queue: List[Tuple[int, int, int]], task: Task) -> None:
        import bisect

        entry = (-task.priority, task.task_id, task.task_id)
        bisect.insort(queue, entry)

    # -------------------------------------------------------------------- pop
    def pop_task(
        self,
        task_type: str,
        worker_id: str,
        *,
        timeout: Optional[float] = 0.0,
    ) -> Optional[Task]:
        """Claim the highest-priority queued task of ``task_type``.

        ``timeout`` semantics: ``0.0`` (default) returns immediately;
        ``None`` blocks until a task arrives or the database closes; a
        positive value blocks up to that many wall seconds.

        Returns ``None`` when nothing is available.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            while True:
                queue = self._queues.get(task_type)
                while queue:
                    _, _, task_id = queue.pop(0)
                    task = self._tasks[task_id]
                    if task.state is TaskState.QUEUED:
                        task.state = TaskState.RUNNING
                        task.started_at = self._clock()
                        task.worker_id = worker_id
                        return task
                if self._closed:
                    return None
                if deadline is None:
                    self._cv.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cv.wait(remaining)

    # --------------------------------------------------------------- complete
    def complete_task(self, task_id: int, result: Any) -> None:
        """Record a successful result for a RUNNING task."""
        try:
            result_text = json.dumps(result)
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"task result is not JSON-serializable: {exc}") from exc
        self._finish(task_id, TaskState.COMPLETE, result=result_text)

    def fail_task(self, task_id: int, error: str) -> None:
        """Record a failure for a RUNNING task."""
        self._finish(task_id, TaskState.FAILED, error=error)

    def _finish(
        self,
        task_id: int,
        state: TaskState,
        *,
        result: Optional[str] = None,
        error: Optional[str] = None,
    ) -> None:
        with self._cv:
            task = self._get(task_id)
            if task.state is not TaskState.RUNNING:
                raise StateError(
                    f"task {task_id} is {task.state.value}, expected running"
                )
            task.state = state
            task.result = result
            task.error = error
            task.completed_at = self._clock()
            listeners = list(self._complete_listeners)
            self._cv.notify_all()
        for callback in listeners:
            callback(task)

    def cancel(self, task_id: int) -> bool:
        """Cancel a QUEUED task.  Returns False if it already started."""
        with self._cv:
            task = self._get(task_id)
            if task.state is not TaskState.QUEUED:
                return False
            task.state = TaskState.CANCELLED
            task.completed_at = self._clock()
            self._cv.notify_all()
            return True

    def set_priority(self, task_id: int, priority: int) -> bool:
        """Re-prioritize a QUEUED task.  Returns False once it has started."""
        with self._cv:
            task = self._get(task_id)
            if task.state is not TaskState.QUEUED:
                return False
            queue = self._queues.get(task.task_type, [])
            old = (-task.priority, task.task_id, task.task_id)
            if old in queue:
                queue.remove(old)
            task.priority = int(priority)
            self._insert_sorted(queue, task)
            self._cv.notify_all()
            return True

    # ------------------------------------------------------------------ close
    def close(self) -> None:
        """Refuse further submissions and wake all blocked pops.

        Worker pools treat a ``None`` pop after close as "drain finished".
        """
        with self._cv:
            self._closed = True
            self._cv.notify_all()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    # ------------------------------------------------------------------ query
    def _get(self, task_id: int) -> Task:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise NotFoundError(f"unknown task id {task_id}") from None

    def get_task(self, task_id: int) -> Task:
        """Fetch a task row (live object; do not mutate)."""
        with self._lock:
            return self._get(task_id)

    def wait_for(self, task_id: int, *, timeout: Optional[float] = None) -> Task:
        """Block until ``task_id`` reaches a terminal state.

        Only meaningful with real (threaded) worker pools; simulated pools
        complete tasks on the event loop instead.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            while True:
                task = self._get(task_id)
                if task.state in (TaskState.COMPLETE, TaskState.FAILED, TaskState.CANCELLED):
                    return task
                if deadline is None:
                    self._cv.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise StateError(f"timed out waiting for task {task_id}")
                    self._cv.wait(remaining)

    def counts(self) -> Dict[str, int]:
        """Task counts by state (reports)."""
        with self._lock:
            out: Dict[str, int] = {state.value: 0 for state in TaskState}
            for task in self._tasks.values():
                out[task.state.value] += 1
            return out

    def queue_length(self, task_type: str) -> int:
        """Number of queued tasks of ``task_type``."""
        with self._lock:
            return sum(
                1
                for _, _, task_id in self._queues.get(task_type, [])
                if self._tasks[task_id].state is TaskState.QUEUED
            )

    def tasks_for_experiment(self, exp_id: str) -> List[Task]:
        """All tasks of one experiment, in submission order."""
        with self._lock:
            return sorted(
                (t for t in self._tasks.values() if t.exp_id == exp_id),
                key=lambda t: t.task_id,
            )

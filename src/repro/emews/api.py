"""The EMEWS task API.

"EMEWS is based on a decoupled architecture consisting of a task database,
and a task API, with both Python and R implementations" (§3.2).  The primary
surface here is :class:`TaskQueue` (the Python task API).  The module also
exposes an R-flavoured alias surface (:class:`RTaskAPI`) with the naming
conventions of the ``emews`` R package (``eq_submit_task``,
``eq_query_result``, ...), demonstrating the multi-*client* design: two
independent API surfaces over one task database, the offline stand-in for
the paper's multi-language capability (its ME algorithm drives the workflow
from R).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.common.errors import ValidationError
from repro.emews.db import TaskDatabase
from repro.emews.futures import TaskFuture


def _task_id_of(ref: Union[int, TaskFuture]) -> int:
    return ref.task_id if isinstance(ref, TaskFuture) else int(ref)


class TaskQueue:
    """Python task API over one task database.

    All submissions through one queue share an experiment id, mirroring the
    EMEWS convention of scoping a model-exploration run.
    """

    def __init__(self, db: TaskDatabase, exp_id: str) -> None:
        if not exp_id:
            raise ValidationError("experiment id must be non-empty")
        self._db = db
        self.exp_id = exp_id

    @property
    def db(self) -> TaskDatabase:
        """The underlying task database."""
        return self._db

    # ----------------------------------------------------------------- submit
    def submit_task(
        self, task_type: str, payload: Any, *, priority: int = 0
    ) -> TaskFuture:
        """Insert one task; returns its Future immediately (no waiting)."""
        task_id = self._db.submit(self.exp_id, task_type, payload, priority=priority)
        return TaskFuture(self._db, task_id)

    def submit_tasks(
        self,
        task_type: str,
        payloads: Sequence[Any],
        *,
        priority: int = 0,
    ) -> List[TaskFuture]:
        """Insert a batch of tasks (an experiment design), one Future each."""
        return [
            self.submit_task(task_type, payload, priority=priority)
            for payload in payloads
        ]

    # ---------------------------------------------------------------- control
    def update_priorities(
        self, priorities: Mapping[Union[int, TaskFuture], int]
    ) -> Dict[int, bool]:
        """Atomically re-prioritize a batch of queued tasks.

        The OSPREY ``update_priorities`` primitive: one bulk operation,
        so a worker popping concurrently sees either the old ranking or
        the new one, never a partial mix.  Keys may be task ids or the
        futures returned at submission.  Returns ``{task_id: updated}``;
        False marks tasks a worker had already claimed.
        """
        return self._db.update_priorities(
            {_task_id_of(ref): int(p) for ref, p in priorities.items()}
        )

    def cancel_tasks(
        self,
        refs: Iterable[Union[int, TaskFuture]],
        *,
        reason: Optional[str] = None,
    ) -> Dict[int, bool]:
        """Cancel a batch of queued tasks under one lock acquisition.

        With ``reason`` set, the corresponding futures resolve with a
        typed :class:`~repro.emews.futures.CancelledByPolicy` result.
        """
        return self._db.cancel_queued(
            (_task_id_of(ref) for ref in refs), reason=reason
        )

    # ------------------------------------------------------------------ query
    def queued_count(self, task_type: str) -> int:
        """Tasks of ``task_type`` still waiting for a worker."""
        return self._db.queue_length(task_type)

    def counts(self) -> Dict[str, int]:
        """Database-wide task counts by state."""
        return self._db.counts()

    def close(self) -> None:
        """Close the queue: no further submissions, workers drain and exit."""
        self._db.close()


class RTaskAPI:
    """R-style alias surface over the same task database.

    The method names follow the EMEWS R task API (the paper's workflow "is
    driven by an R-based model exploration (ME) code" using "the EMEWS R
    task API").  Functionally identical to :class:`TaskQueue`; existing side
    by side it demonstrates — and the integration tests exercise — the
    decoupling property: clients written against different API surfaces
    interoperate through the shared database.
    """

    def __init__(self, db: TaskDatabase, exp_id: str) -> None:
        self._queue = TaskQueue(db, exp_id)

    def eq_submit_task(self, task_type: str, payload: Any, priority: int = 0) -> TaskFuture:
        """R API: submit one task, returning a Future."""
        return self._queue.submit_task(task_type, payload, priority=priority)

    def eq_submit_tasks(
        self, task_type: str, payloads: Sequence[Any], priority: int = 0
    ) -> List[TaskFuture]:
        """R API: submit a batch of tasks."""
        return self._queue.submit_tasks(task_type, payloads, priority=priority)

    def eq_query_result(self, future: TaskFuture, timeout: Optional[float] = None) -> Any:
        """R API: blocking result query."""
        return future.result(timeout=timeout)

    def eq_check(self, future: TaskFuture) -> bool:
        """R API: non-blocking completion check."""
        return future.check()

    def eq_stop(self) -> None:
        """R API: close the task queue."""
        self._queue.close()

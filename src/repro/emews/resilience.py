"""Deterministic fault injection for EMEWS worker-pool evaluators.

The sim-side fault injector (:mod:`repro.faults`) draws from named RNG
streams in event order — reproducible because the event loop is
single-threaded.  EMEWS :class:`~repro.emews.worker_pool.ThreadedWorkerPool`
workers are real OS threads, so stream *order* would depend on thread
scheduling.  Here the fail/pass decision is instead **payload-keyed**: a
stable hash of ``(payload, attempt, seed)`` is mapped to a uniform in
``[0, 1)`` and compared against the fault rate, so a chaos run makes exactly
the same decisions no matter how many workers there are or how the OS
interleaves them.

:class:`ResilientEvaluator` wraps any evaluator function with that
injection plus a synchronous :func:`~repro.common.retry.call_with_retries`
budget, and keeps thread-safe counters for workflow reports.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.events import EventBus

from repro.common.errors import (
    InjectedFaultError,
    RetryExhaustedError,
    ValidationError,
)
from repro.common.hashing import stable_digest
from repro.common.retry import RetryPolicy, call_with_retries
from repro.perf.executor import EvaluationFailure

__all__ = ["ResilientEvaluator"]

#: Hash-fraction denominator: the first 12 hex digits of the digest give a
#: 48-bit integer, mapped to a uniform in [0, 1).
_HASH_SPAN = float(1 << 48)


class ResilientEvaluator:
    """An evaluator wrapper: deterministic faults + a retry budget.

    Parameters
    ----------
    fn:
        The inner evaluator (payload in, JSON-serializable result out).
    fault_rate:
        Probability in ``[0, 1]`` that any single *attempt* raises
        :class:`~repro.common.errors.InjectedFaultError`.  The decision is a
        pure function of ``(payload, attempt, fault_seed)``.
    fault_seed:
        Salt for the per-attempt hash, so different chaos runs over the same
        payloads draw different fault patterns.
    retry:
        Attempt budget (synchronous — evaluator calls are instantaneous on
        the simulated clock).  Defaults to 4 attempts, which recovers every
        fault pattern at moderate rates; exhaustion surfaces as
        :class:`~repro.common.errors.RetryExhaustedError`, which the worker
        pool records as a FAILED task.

    Instances are safe to share across worker threads: counters are guarded
    by a lock and per-call attempt state lives on the stack.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        *,
        fault_rate: float = 0.0,
        fault_seed: int = 0,
        retry: Optional[RetryPolicy] = None,
        events: Optional["EventBus"] = None,
    ) -> None:
        if not 0.0 <= fault_rate <= 1.0:
            raise ValidationError(f"fault_rate must be in [0, 1], got {fault_rate}")
        self._fn = fn
        self.fault_rate = float(fault_rate)
        self.fault_seed = int(fault_seed)
        self.retry = retry if retry is not None else RetryPolicy(max_attempts=4)
        #: Optional event bus for ``retry.attempt`` events.  Lock-safe, but
        #: cross-thread event order follows the OS scheduler (see
        #: :mod:`repro.obs.events`).
        self.events = events
        self._lock = threading.Lock()
        self.faults_injected = 0
        self.retries_performed = 0
        self.exhaustions = 0
        self.calls = 0

    # -------------------------------------------------------------- decisions
    def _should_fault(self, payload: Any, attempt: int) -> bool:
        digest = stable_digest(
            {"payload": payload, "attempt": attempt, "seed": self.fault_seed}
        )
        return int(digest[:12], 16) / _HASH_SPAN < self.fault_rate

    # ------------------------------------------------------------------- call
    def __call__(self, payload: Any) -> Any:
        with self._lock:
            self.calls += 1
        attempt_counter = [0]

        def once() -> Any:
            attempt_counter[0] += 1
            if self.fault_rate > 0.0 and self._should_fault(
                payload, attempt_counter[0]
            ):
                with self._lock:
                    self.faults_injected += 1
                raise InjectedFaultError(
                    f"injected evaluator fault (attempt {attempt_counter[0]})"
                )
            return self._fn(payload)

        def on_retry(attempt: int, exc: BaseException) -> None:
            with self._lock:
                self.retries_performed += 1

        try:
            return call_with_retries(
                once, self.retry, on_retry=on_retry, events=self.events
            )
        except RetryExhaustedError:
            with self._lock:
                self.exhaustions += 1
            raise

    # ------------------------------------------------------------------ batch
    def wrap_batch(
        self, batch_fn: Callable[[Sequence[Any]], Sequence[Any]]
    ) -> Callable[[Sequence[Any]], List[Any]]:
        """Lift the fault/retry semantics onto a vectorized evaluator.

        Fault decisions are pure functions of ``(payload, attempt, seed)``,
        so the whole attempt sequence for a payload can be resolved *before*
        any evaluation happens: faulted attempts increment the fault/retry
        counters exactly as the per-call path would, payloads whose budget
        survives are evaluated once through ``batch_fn`` in a single
        vectorized call, and exhausted payloads come back as
        :class:`~repro.perf.executor.EvaluationFailure` sentinels (which a
        :class:`~repro.emews.worker_pool.BatchWorkerPool` records as FAILED
        tasks, mirroring the threaded pool).  Counters therefore match the
        threaded path payload-for-payload.
        """

        def resilient_batch(payloads: Sequence[Any]) -> List[Any]:
            survivors: List[int] = []
            results: List[Any] = [None] * len(payloads)
            max_attempts = self.retry.max_attempts
            for i, payload in enumerate(payloads):
                with self._lock:
                    self.calls += 1
                exhausted = True
                for attempt in range(1, max_attempts + 1):
                    if self.fault_rate > 0.0 and self._should_fault(payload, attempt):
                        with self._lock:
                            self.faults_injected += 1
                            if attempt < max_attempts:
                                self.retries_performed += 1
                    else:
                        exhausted = False
                        break
                if exhausted:
                    with self._lock:
                        self.exhaustions += 1
                    results[i] = EvaluationFailure(
                        payload,
                        RetryExhaustedError.__name__,
                        f"injected evaluator fault budget exhausted "
                        f"after {max_attempts} attempts",
                    )
                else:
                    survivors.append(i)
            if survivors:
                outs = list(batch_fn([payloads[i] for i in survivors]))
                if len(outs) != len(survivors):
                    raise ValidationError(
                        f"batch evaluator returned {len(outs)} results "
                        f"for {len(survivors)} payloads"
                    )
                for i, out in zip(survivors, outs):
                    results[i] = out
            return results

        return resilient_batch

    # ---------------------------------------------------------------- report
    def counters(self) -> Dict[str, int]:
        """Snapshot of the wrapper's recovery counters."""
        with self._lock:
            return {
                "evaluator_calls": self.calls,
                "evaluator_faults_injected": self.faults_injected,
                "evaluator_retries": self.retries_performed,
                "evaluator_exhaustions": self.exhaustions,
            }

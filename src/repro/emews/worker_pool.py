"""EMEWS worker pools.

"EMEWS worker pools running on those compute resources retrieve and evaluate
tasks submitted to the task database, e.g., the worker pools run models where
the tasks' data are model input parameters." (§3.2)

Two implementations with one contract (pop → evaluate → complete):

- :class:`ThreadedWorkerPool` — real OS threads for genuine wall-clock
  concurrency.  This is what the MUSIC use case runs on: MetaRVM evaluations
  are numpy-heavy and complete in milliseconds, so a handful of threads keeps
  the submitting algorithms saturated.
- :class:`SimWorkerPool` — a discrete-event pool with ``n_slots`` worker
  slots and a per-task simulated duration, completing tasks on the shared
  event loop with exact :class:`~repro.hpc.UtilizationTracker` accounting.
  This is the instrument for the paper's §3.2 utilization argument
  (sequential vs. interleaved MUSIC instances).
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Any, Callable, List, Optional

from repro.common.errors import StateError, ValidationError
from repro.emews.db import Task, TaskDatabase
from repro.obs.metrics import DEFAULT_SIZE_BOUNDS
from repro.hpc.utilization import UtilizationTracker
from repro.perf.executor import EvaluationFailure, ParallelEvaluator
from repro.sim import SimulationEnvironment

#: A task evaluator: payload object in, JSON-serializable result out.
EvalFn = Callable[[Any], Any]


class ThreadedWorkerPool:
    """A pool of worker threads serving one task type.

    Parameters
    ----------
    db:
        The task database to pop from.
    task_type:
        Which queue this pool serves.
    fn:
        Evaluator called with the deserialized payload.
    n_workers:
        Thread count.

    Use as a context manager, or call :meth:`start` / :meth:`shutdown`.
    Exceptions raised by ``fn`` fail the task (with a traceback string) but
    never kill the worker thread.
    """

    def __init__(
        self,
        db: TaskDatabase,
        task_type: str,
        fn: EvalFn,
        *,
        n_workers: int = 4,
        name: str = "pool",
    ) -> None:
        if n_workers < 1:
            raise ValidationError("worker pool needs at least one worker")
        self._db = db
        self._task_type = task_type
        self._fn = fn
        self._n_workers = n_workers
        self.name = name
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self.tasks_processed = 0
        self._count_lock = threading.Lock()
        self._obs = None

    def bind_observability(self, obs) -> None:
        """Mirror task tallies into an :class:`repro.obs.Observability`.

        Counters only: worker threads complete in nondeterministic order, so
        this pool records no spans (the registry is thread-safe; trace
        determinism is a property of the single-threaded simulated path).
        """
        self._obs = obs

    # ---------------------------------------------------------------- control
    def start(self) -> "ThreadedWorkerPool":
        """Launch the worker threads."""
        if self._threads:
            raise StateError(f"pool {self.name!r} is already started")
        for i in range(self._n_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(f"{self.name}-w{i}",),
                name=f"{self.name}-w{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def shutdown(self, *, timeout: float = 30.0) -> None:
        """Stop workers after the current task; join threads."""
        self._stop.set()
        # Wake any blocked pops: close the DB only if the caller hasn't; a
        # short pop timeout in the loop handles the still-open case.
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []

    def __enter__(self) -> "ThreadedWorkerPool":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------- loop
    def _worker_loop(self, worker_id: str) -> None:
        while not self._stop.is_set():
            task = self._db.pop_task(self._task_type, worker_id, timeout=0.05)
            if task is None:
                if self._db.closed:
                    return
                continue
            self._evaluate(task)

    def _evaluate(self, task: Task) -> None:
        try:
            result = self._fn(task.payload_obj())
        except Exception:
            self._db.fail_task(task.task_id, traceback.format_exc(limit=5))
            failed = True
        else:
            self._db.complete_task(task.task_id, result)
            failed = False
        with self._count_lock:
            self.tasks_processed += 1
        obs = self._obs
        if obs is not None:
            obs.inc("pool.tasks_processed")
            if failed:
                obs.inc("pool.task_failures")


class BatchWorkerPool:
    """A worker pool that drains the queue and evaluates tasks in batches.

    One dispatcher thread pops every queued task of the served type (one
    blocking pop, then a non-blocking drain), sorts the claim by
    ``task_id`` — the canonical submission order — and hands the payload
    batch to a :class:`~repro.perf.executor.ParallelEvaluator`.  Results are
    completed per task in that same canonical order, so the task database
    observes exactly the serial pool's outputs no matter how the evaluator
    parallelizes, chunks, or caches internally.

    Coalescing is *quiescence-based*: after the first pop, the dispatcher
    keeps collecting until the queue has stayed empty for a full
    ``coalesce_window`` (the deadline resets whenever a task arrives),
    bounded by ``max_coalesce`` so a steady submitter cannot starve the
    batch.  Interleaved algorithm instances that submit a few milliseconds
    apart — e.g. eight MUSIC replicates each proposing after a GP
    acquisition step — therefore land in one vectorized evaluation instead
    of trickling through as singletons.

    This is the pool behind ``EmewsService.start_parallel_pool`` and is the
    mechanism that lets a vectorized ``batch_fn`` (e.g. a stacked MetaRVM
    simulation) serve many submitters' tasks in one model call.
    """

    def __init__(
        self,
        db: TaskDatabase,
        task_type: str,
        evaluator: "ParallelEvaluator",
        *,
        coalesce_window: float = 0.025,
        max_coalesce: float = 0.25,
        max_batch: Optional[int] = None,
        name: str = "batch-pool",
    ) -> None:
        if coalesce_window < 0:
            raise ValidationError("coalesce_window must be >= 0")
        if max_coalesce < coalesce_window:
            raise ValidationError("max_coalesce must be >= coalesce_window")
        if max_batch is not None and max_batch < 1:
            raise ValidationError("max_batch must be >= 1")
        self._db = db
        self._task_type = task_type
        self._evaluator = evaluator
        self._coalesce_window = coalesce_window
        self._max_coalesce = max_coalesce
        self._max_batch = max_batch
        self.name = name
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.tasks_processed = 0
        self.batches_processed = 0
        self._count_lock = threading.Lock()
        self._obs = None

    def bind_observability(self, obs) -> None:
        """Mirror claim/batch tallies into an :class:`repro.obs.Observability`.

        Also binds the underlying evaluator so its batch-size histograms
        land in the same registry.  Counters and histograms only — the
        dispatcher thread runs on wall time, so no spans are recorded.
        """
        self._obs = obs
        self._evaluator.bind_observability(obs)

    # ---------------------------------------------------------------- control
    def start(self) -> "BatchWorkerPool":
        if self._thread is not None:
            raise StateError(f"pool {self.name!r} is already started")
        self._thread = threading.Thread(
            target=self._dispatch_loop, name=f"{self.name}-dispatch", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self, *, timeout: float = 30.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "BatchWorkerPool":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def counters(self) -> dict:
        """Evaluator counters plus pool-level batch accounting."""
        report = dict(self._evaluator.counters())
        with self._count_lock:
            report["pool_tasks_processed"] = self.tasks_processed
            report["pool_batches_processed"] = self.batches_processed
        return report

    # ------------------------------------------------------------------- loop
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            first = self._db.pop_task(self._task_type, self.name, timeout=0.05)
            if first is None:
                if self._db.closed:
                    return
                continue
            claim = [first]
            hard_deadline = time.monotonic() + self._max_coalesce
            deadline = min(time.monotonic() + self._coalesce_window, hard_deadline)
            while self._max_batch is None or len(claim) < self._max_batch:
                # max_batch bounds each claim to one evaluation *quantum*:
                # tasks a steering policy demotes or cancels while a quantum
                # runs are re-ranked before the next claim, instead of the
                # whole backlog being locked in up front.
                # Drain everything already queued; then keep collecting until
                # the queue has been quiet for a full coalesce window, so
                # concurrently-submitting algorithm instances coalesce into
                # one vectorized evaluation instead of many singletons.  Each
                # arrival pushes the quiet deadline out (never past
                # max_coalesce); the claim order (task_id) fixes the result
                # order, so batch composition never affects outputs.
                task = self._db.pop_task(self._task_type, self.name, timeout=0.0)
                if task is not None:
                    claim.append(task)
                    deadline = min(
                        time.monotonic() + self._coalesce_window, hard_deadline
                    )
                    continue
                if time.monotonic() >= deadline or self._stop.is_set():
                    break
                time.sleep(0.001)
            claim.sort(key=lambda task: task.task_id)
            self._evaluate_batch(claim)

    def _evaluate_batch(self, claim: List[Task]) -> None:
        payloads = [task.payload_obj() for task in claim]
        try:
            results = self._evaluator.map(payloads)
        except Exception:
            error = traceback.format_exc(limit=5)
            for task in claim:
                self._db.fail_task(task.task_id, error)
            results = None
        if results is not None:
            for task, result in zip(claim, results):
                if isinstance(result, EvaluationFailure):
                    self._db.fail_task(
                        task.task_id, f"{result.error_type}: {result.message}"
                    )
                else:
                    self._db.complete_task(task.task_id, result)
        with self._count_lock:
            self.tasks_processed += len(claim)
            self.batches_processed += 1
        obs = self._obs
        if obs is not None:
            obs.inc("pool.tasks_processed", len(claim))
            obs.inc("pool.batches_processed")
            obs.observe("pool.claim_size", len(claim), DEFAULT_SIZE_BOUNDS)


class SteppedWorkerPool:
    """A synchronous, caller-clocked worker pool for deterministic studies.

    No threads, no wall clock: each :meth:`step` claims up to ``n_slots``
    tasks in database priority order, evaluates them synchronously, and
    completes them in ``task_id`` order.  Between quanta the database is
    quiescent, so a steering policy's re-prioritizations and cancellations
    land at exact, reproducible points in the schedule — which is what
    makes evals-to-convergence comparisons (steering on vs off) and the
    bitwise-determinism tests exact rather than statistical.

    ``fn`` exceptions fail the task (traceback string), as in the
    threaded pools.
    """

    def __init__(
        self,
        db: TaskDatabase,
        task_type: str,
        fn: EvalFn,
        *,
        n_slots: int = 4,
        name: str = "stepped-pool",
    ) -> None:
        if n_slots < 1:
            raise ValidationError("stepped pool needs at least one slot")
        self._db = db
        self._task_type = task_type
        self._fn = fn
        self.n_slots = n_slots
        self.name = name
        self.tasks_processed = 0
        self.quanta = 0

    def step(self) -> int:
        """Run one quantum; returns how many tasks were evaluated."""
        claim: List[Task] = []
        while len(claim) < self.n_slots:
            task = self._db.pop_task(self._task_type, self.name, timeout=0.0)
            if task is None:
                break
            claim.append(task)
        claim.sort(key=lambda task: task.task_id)
        for task in claim:
            try:
                result = self._fn(task.payload_obj())
            except Exception:
                self._db.fail_task(task.task_id, traceback.format_exc(limit=5))
            else:
                self._db.complete_task(task.task_id, result)
        if claim:
            self.tasks_processed += len(claim)
            self.quanta += 1
        return len(claim)


class SimWorkerPool:
    """A discrete-event worker pool with exact utilization accounting.

    Parameters
    ----------
    env:
        Shared simulation environment.
    db:
        Task database (constructed with ``clock=lambda: env.now`` so queue
        timestamps are simulated days).
    task_type:
        Queue served.
    fn:
        Real evaluator (runs at task start on the simulated clock); may be
        ``None`` for pure timing studies, in which case the result echoes
        the payload.
    duration_fn:
        Simulated evaluation time in days, as a function of the payload.
    n_slots:
        Concurrent worker slots (cores × nodes of the hosting job).
    """

    def __init__(
        self,
        env: SimulationEnvironment,
        db: TaskDatabase,
        task_type: str,
        *,
        fn: Optional[EvalFn] = None,
        duration_fn: Callable[[Any], float] = lambda payload: 1e-3,
        n_slots: int = 8,
        name: str = "sim-pool",
    ) -> None:
        if n_slots < 1:
            raise ValidationError("sim pool needs at least one slot")
        self._env = env
        self._db = db
        self._task_type = task_type
        self._fn = fn
        self._duration_fn = duration_fn
        self.n_slots = n_slots
        self.name = name
        self._busy = 0
        self._active = False
        self.tasks_processed = 0
        self.tracker = UtilizationTracker(n_slots)
        db.add_submit_listener(self._on_submit)

    # ---------------------------------------------------------------- control
    def start(self) -> "SimWorkerPool":
        """Begin serving tasks (drains anything already queued)."""
        self._active = True
        self._env.schedule(0.0, self._drain, label=f"{self.name}:drain")
        return self

    def stop(self) -> None:
        """Stop claiming new tasks (in-flight tasks still complete)."""
        self._active = False

    @property
    def busy_slots(self) -> int:
        """Slots currently evaluating a task."""
        return self._busy

    # ------------------------------------------------------------------- flow
    def _on_submit(self, task: Task) -> None:
        if self._active and task.task_type == self._task_type:
            self._env.schedule(0.0, self._drain, label=f"{self.name}:drain")

    def _drain(self) -> None:
        while self._active and self._busy < self.n_slots:
            task = self._db.pop_task(self._task_type, f"{self.name}-slot", timeout=0.0)
            if task is None:
                return
            self._start_task(task)

    def _start_task(self, task: Task) -> None:
        self._busy += 1
        key = f"task-{task.task_id}"
        self.tracker.begin(key, self._env.now, 1)
        payload = task.payload_obj()
        duration = float(self._duration_fn(payload))
        if duration < 0:
            raise ValidationError(f"duration_fn returned {duration} < 0")
        obs = self._env.obs
        span = (
            obs.begin(
                f"{self.name}:{key}",
                "pool.task",
                attrs={"pool": self.name, "task_id": task.task_id},
            )
            if obs is not None
            else None
        )

        if self._fn is None:
            result: Any = payload
            error: Optional[str] = None
        else:
            try:
                result = self._fn(payload)
                error = None
            except Exception:
                result = None
                error = traceback.format_exc(limit=5)

        def _complete() -> None:
            self._busy -= 1
            self.tracker.end(key, self._env.now)
            self.tasks_processed += 1
            if span is not None:
                obs.inc("pool.tasks_processed")
                obs.observe("pool.task_duration_days", duration)
                obs.end(
                    span,
                    status="ok" if error is None else "error",
                    outcome="completed" if error is None else "failed",
                )
            if error is None:
                self._db.complete_task(task.task_id, result)
            else:
                self._db.fail_task(task.task_id, error)
            self._drain()

        self._env.schedule(duration, _complete, label=f"{self.name}:{key}")

"""EMEWS — Extreme-scale Model Exploration with Swift (task-database core).

Reimplementation of the EMEWS framework the paper's second use case runs on
(§3.2): "EMEWS is based on a decoupled architecture consisting of a task
database, and a task API, with both Python and R implementations, for
distributing tasks on heterogeneous compute resources.  EMEWS worker pools
running on those compute resources retrieve and evaluate tasks submitted to
the task database."

Pieces:

- :mod:`repro.emews.db` — the task database (thread-safe, priority-ordered).
- :mod:`repro.emews.futures` — *Futures*: "the submission returns a Future,
  which encapsulates the asynchronous execution of the task", including the
  single-future completion check used for interleaving.
- :mod:`repro.emews.worker_pool` — worker pools: a threaded pool for real
  parallel evaluation and a simulated pool for exact utilization accounting.
- :mod:`repro.emews.api` — the task API (Python surface plus an R-style
  alias surface demonstrating the multi-language task API design).
- :mod:`repro.emews.service` — initialization/finalization: create a task
  queue and "programmatically start a worker pool on a compute node via an
  API call", i.e. by submitting a scheduler job.
"""

from repro.emews.db import Task, TaskDatabase, TaskState
from repro.emews.sqlite_db import SqliteTaskDatabase
from repro.emews.futures import (
    CancelledByPolicy,
    TaskFuture,
    as_completed,
    pop_completed,
)
from repro.emews.worker_pool import (
    BatchWorkerPool,
    SimWorkerPool,
    SteppedWorkerPool,
    ThreadedWorkerPool,
)
from repro.emews.api import TaskQueue
from repro.emews.reports import ExperimentReport, experiment_report, render_report
from repro.emews.resilience import ResilientEvaluator
from repro.emews.service import EmewsService, PoolHandle

__all__ = [
    "Task",
    "TaskDatabase",
    "SqliteTaskDatabase",
    "TaskState",
    "CancelledByPolicy",
    "TaskFuture",
    "as_completed",
    "pop_completed",
    "BatchWorkerPool",
    "SimWorkerPool",
    "SteppedWorkerPool",
    "ThreadedWorkerPool",
    "TaskQueue",
    "ExperimentReport",
    "experiment_report",
    "render_report",
    "ResilientEvaluator",
    "EmewsService",
    "PoolHandle",
]

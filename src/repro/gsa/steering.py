"""Acquisition-driven work steering for the EMEWS/GSA loop.

OSPREY's ``asynch_repriority`` example exists because the biggest remaining
algorithmic lever in the ME→HPC loop is *steering in-flight work*: as
completed results stream back, the model-exploration algorithm knows more
than it did when it queued its lookahead window, so queued points should be
re-ranked — and the stalest ones cancelled and replaced — rather than
evaluated in submission order at submission-time value.

This module connects the two halves the stack already has:

- the EMEWS task database's dynamic priorities
  (:meth:`~repro.emews.db.TaskDatabase.update_priorities`,
  :meth:`~repro.emews.db.TaskDatabase.cancel_queued`), and
- the GSA acquisition functions (:meth:`~repro.gsa.music.MusicGSA
  .score_points`).

Determinism contract
--------------------
Every :class:`SteeringDecision` is a **pure function of completed-result
content**: the steered coroutine consumes results in submission order, so
the surrogate state at each decision point — and hence the scores, the
re-ranking, and the cancel set — is reproducible bit-for-bit from the
result stream alone.  Decisions address points by their per-instance
submission *ordinal* (not database task id), and are journaled write-ahead
(:meth:`~repro.state.RunCheckpointer.record_steering_decision`) with
divergence detection on replay.

Cancellation is inherently racy under threaded worker pools (a worker may
claim a point before the cancel lands).  The contract survives because a
*decided* cancellation **revokes** the point: its result — typed
:class:`~repro.emews.futures.CancelledByPolicy` when the cancel won the
race, a real evaluation when it lost — is discarded either way, never told
to the surrogate.  Only observability counters (reclaimed vs wasted) see
the race; Sobol outputs do not.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import StateError, ValidationError
from repro.common.validation import check_int
from repro.emews.futures import CancelledByPolicy, TaskFuture, pop_completed
from repro.emews.worker_pool import SteppedWorkerPool
from repro.gsa.music import MusicGSA

#: ``Task.cancel_reason`` / ``CancelledByPolicy.reason`` used for steering
#: cancellations.
STEER_CANCEL_REASON = "steering"

#: Steering modes: ``cancel`` reclaims the evaluation budget of dropped
#: points; ``park`` keeps them queued in a deep low-priority lane.
STEERING_MODES = ("cancel", "park")


@dataclass(frozen=True)
class SteeringConfig:
    """Tunables of the acquisition-driven steering loop.

    ``steer_every=0`` disables steering entirely while keeping the same
    windowed lookahead loop — the honest ablation baseline for the
    evals-to-convergence benchmark (equal staleness, no corrections).
    """

    steer_every: int = 2
    lookahead: int = 12
    cancel_fraction: float = 0.5
    min_keep: int = 2
    mode: str = "cancel"
    park_priority: int = -1000
    rank_by: str = "score"
    protect_head: bool = True
    cancel_guard: int = 4

    def __post_init__(self) -> None:
        check_int("steer_every", self.steer_every, minimum=0)
        check_int("lookahead", self.lookahead, minimum=1)
        check_int("min_keep", self.min_keep, minimum=0)
        if not 0.0 <= self.cancel_fraction <= 1.0:
            raise ValidationError("cancel_fraction must be in [0, 1]")
        if self.mode not in STEERING_MODES:
            raise ValidationError(
                f"unknown steering mode {self.mode!r}; choose from {STEERING_MODES}"
            )
        if self.rank_by not in ("score", "fifo"):
            raise ValidationError("rank_by must be 'score' or 'fifo'")
        check_int("cancel_guard", self.cancel_guard, minimum=0)

    @property
    def enabled(self) -> bool:
        """Whether decisions are actually issued."""
        return self.steer_every > 0

    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-JSON snapshot (what the run store persists)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_jsonable(cls, doc: Mapping[str, Any]) -> "SteeringConfig":
        """Rebuild a config from a stored snapshot."""
        return cls(**dict(doc))


@dataclass(frozen=True)
class SteeringDecision:
    """One batched steering decision over the pending window.

    ``ordinals``/``scores`` list the still-pending points (per-instance
    submission ordinals) and their acquisition scores at decision time;
    ``priorities`` maps ordinal → new queue priority; ``cancels`` are the
    ordinals dropped (or parked).  ``n_results`` pins where in the
    consumed-result stream the decision was taken.
    """

    step: int
    n_results: int
    ordinals: Tuple[int, ...]
    scores: Tuple[float, ...]
    priorities: Mapping[int, int]
    cancels: Tuple[int, ...]

    def to_jsonable(self) -> Dict[str, Any]:
        """Canonical JSON form — the write-ahead journal payload."""
        return {
            "step": self.step,
            "n_results": self.n_results,
            "ordinals": list(self.ordinals),
            "scores": [float(s) for s in self.scores],
            "priorities": {str(k): int(v) for k, v in sorted(self.priorities.items())},
            "cancels": list(self.cancels),
        }


class SteeringPolicy:
    """Deterministic acquisition-driven re-rank / cancel decisions.

    Given the pending window (points + ordinals), scores every point under
    the instance's current surrogate, ranks by ``(-score, ordinal)`` —
    the ordinal tie-break keeps equal-score decisions reproducible — and:

    - assigns descending queue priorities so the pool evaluates the most
      informative points first, and
    - marks the bottom ``cancel_fraction`` of the window (never cutting
      below ``min_keep`` survivors) for cancellation/parking.

    Also tracks per-point score churn across consecutive decisions (the
    observability histogram: how fast queued work's value decays).
    """

    def __init__(self, music: MusicGSA, config: SteeringConfig) -> None:
        self.music = music
        self.config = config
        self.decisions: List[SteeringDecision] = []
        self._last_scores: Dict[int, float] = {}

    def decide(
        self, points: np.ndarray, ordinals: Sequence[int], *, n_results: int
    ) -> Tuple[SteeringDecision, List[float]]:
        """One decision over the pending window.

        Returns ``(decision, churn)`` where ``churn`` lists the absolute
        score change of every point also present in the previous decision.
        """
        points = np.atleast_2d(points)
        if points.shape[0] != len(ordinals):
            raise ValidationError("points and ordinals disagree on window size")
        scores = self.music.score_points(points)
        order = sorted(
            range(len(ordinals)), key=lambda i: (-float(scores[i]), ordinals[i])
        )
        cfg = self.config
        n = len(ordinals)
        # The cancel guard exempts the oldest `cancel_guard` live points:
        # those are the ones a pool has plausibly already claimed, so
        # cancelling them would only waste the evaluation (the decision
        # still revokes, so a lost race discards a real result).  The
        # guard is a pure function of ordinals — no queue-state peeking.
        by_age = sorted(range(n), key=lambda i: ordinals[i])
        guarded = set(by_age[: cfg.cancel_guard])
        eligible = [i for i in order if i not in guarded]
        n_cancel = min(
            int(n * cfg.cancel_fraction), len(eligible), max(0, n - cfg.min_keep)
        )
        cancel_idx = set(eligible[len(eligible) - n_cancel :]) if n_cancel else set()
        cancels = tuple(ordinals[i] for i in order if i in cancel_idx)
        survivors = [i for i in order if i not in cancel_idx]
        if cfg.rank_by == "fifo":
            # Cancels are score-driven but survivors keep submission order:
            # the pool then clears the consumption head promptly instead of
            # stalling it behind fresher-scored work.
            survivors = sorted(survivors, key=lambda i: ordinals[i])
        elif cfg.protect_head and survivors:
            # Score ranking, but the head-of-line survivor (what the tell
            # stream is waiting on) is promoted to the front so demotion
            # never starves consumption.
            head = min(survivors, key=lambda i: ordinals[i])
            survivors = [head] + [i for i in survivors if i != head]
        priorities = {
            ordinals[i]: len(survivors) - rank for rank, i in enumerate(survivors)
        }
        decision = SteeringDecision(
            step=len(self.decisions),
            n_results=int(n_results),
            ordinals=tuple(ordinals),
            scores=tuple(float(s) for s in scores),
            priorities=priorities,
            cancels=cancels,
        )
        churn = [
            abs(float(scores[i]) - self._last_scores[ordinals[i]])
            for i in range(n)
            if ordinals[i] in self._last_scores
        ]
        self._last_scores = {
            ordinals[i]: float(scores[i]) for i in range(n)
        }
        self.decisions.append(decision)
        return decision, churn

    def decision_journal(self) -> List[Dict[str, Any]]:
        """All decisions in canonical JSON form (byte-comparable)."""
        return [decision.to_jsonable() for decision in self.decisions]


@dataclass
class SteeringReport:
    """Counters of one steered run (mirrored into ``repro.obs``)."""

    decisions: int = 0
    reranks: int = 0
    cancels: int = 0
    parked: int = 0
    reclaimed_evals: int = 0
    wasted_evals: int = 0
    score_churn: List[float] = field(default_factory=list)

    def as_dict(self) -> Dict[str, int]:
        """Integer counters only (the ``steering_report`` dict)."""
        return {
            "steering_decisions": self.decisions,
            "steering_reranks": self.reranks,
            "steering_cancels": self.cancels,
            "steering_parked": self.parked,
            "steering_reclaimed_evals": self.reclaimed_evals,
            "steering_wasted_evals": self.wasted_evals,
        }


@dataclass
class _Pending:
    """One submitted-but-unconsumed point of the steered window."""

    ordinal: int
    point: np.ndarray  # (1, dim) natural units
    future: TaskFuture
    revoked: bool = False


def steered_music_coroutine(
    music: MusicGSA,
    queue,
    seed: int,
    budget: int,
    steering: SteeringConfig,
    *,
    task_type: str = "metarvm",
    policy: Optional[SteeringPolicy] = None,
    state=None,
    obs=None,
    report: Optional[SteeringReport] = None,
) -> Iterator[bool]:
    """A windowed MUSIC instance with acquisition-driven steering.

    Same yield protocol as :func:`~repro.workflows.music_gsa
    .music_coroutine` (truthy = progress, falsy = checked-still-pending),
    but instead of the strict propose→wait→tell cycle it keeps a
    ``steering.lookahead``-deep window of proposals in flight and, every
    ``steering.steer_every`` consumed results, issues one batched
    :class:`SteeringDecision` through the queue's bulk ops.

    Results are consumed in submission order (head-of-line), so the
    surrogate's tell stream — and every decision — is a pure function of
    result content regardless of worker scheduling.  Revoked points are
    consumed but never told.  With ``steering.steer_every == 0`` this is
    the unsteered windowed baseline: identical loop, no decisions.

    ``state`` (a :class:`~repro.state.RunCheckpointer`) journals each
    decision write-ahead; ``obs``/``report`` collect steering counters.
    """
    if report is None:
        report = SteeringReport()
    if policy is None:
        policy = SteeringPolicy(music, steering)

    def _submit(points: np.ndarray, *, priority: int = 0) -> List[TaskFuture]:
        payloads = [
            {"point": row.tolist(), "seed": int(seed)}
            for row in np.atleast_2d(points)
        ]
        return queue.submit_tasks(task_type, payloads, priority=priority)

    # Phase 1: the initial design, exactly as the unsteered coroutine.
    design = music.initial_design()
    futures = _submit(design)
    pending_init = list(futures)
    results: Dict[int, float] = {}
    yield True

    while pending_init:
        done = pop_completed(pending_init)
        if done is None:
            yield False
            continue
        results[done.task_id] = done.result_nowait()["hospitalizations"]
        yield True
    ordered = np.array([results[f.task_id] for f in futures])
    music.tell(design, ordered)
    yield True

    # Phase 2: windowed lookahead with steering.
    window: List[_Pending] = []
    next_ordinal = 0
    consumed_since_steer = 0
    refill_credit = steering.lookahead

    def _live() -> int:
        return sum(1 for p in window if not p.revoked)

    while music.n_evaluations < budget:
        # Top up the in-flight window.  Beyond the initial fill, refill
        # credits are granted by *told* results only, so proposals stay
        # interleaved one-per-tell: a cancelled batch is never re-proposed
        # wholesale against a frozen surrogate (mass re-proposal just
        # clusters points at the current acquisition peak).  Reclaimed
        # budget is instead spent later, against fresher surrogate states.
        while (
            refill_credit > 0
            and _live() < steering.lookahead
            and music.n_evaluations + _live() < budget
        ):
            refill_credit -= 1
            point = music.propose()
            future = _submit(point)[0]
            window.append(_Pending(next_ordinal, point, future))
            next_ordinal += 1
            yield True
        if not window:
            if music.n_evaluations >= budget:
                break
            # Everything in flight was revoked before any refill credit
            # accrued (tiny guard/min_keep); restart the pipeline.
            refill_credit = max(refill_credit, 1)
            continue

        # Consume strictly head-of-line: the tell stream is submission-
        # ordered no matter how the pool schedules, which is what makes
        # every downstream decision replayable from result content.
        head = window[0]
        if not head.future.check():
            yield False
            continue
        window.pop(0)
        value = head.future.result_nowait()
        if head.revoked:
            if isinstance(value, CancelledByPolicy):
                report.reclaimed_evals += 1
                if obs is not None:
                    obs.inc("steering.reclaimed_evals")
            else:
                # A worker won the race and evaluated it anyway; the
                # decision stands and the result is discarded.
                report.wasted_evals += 1
                if obs is not None:
                    obs.inc("steering.wasted_evals")
            yield True
            continue
        music.tell(head.point, np.array([value["hospitalizations"]]))
        consumed_since_steer += 1
        refill_credit += 1
        yield True

        if (
            steering.enabled
            and consumed_since_steer >= steering.steer_every
            and any(not p.revoked for p in window)
        ):
            consumed_since_steer = 0
            live = [p for p in window if not p.revoked]
            points = np.vstack([p.point for p in live])
            decision, churn = policy.decide(
                points, [p.ordinal for p in live], n_results=music.n_evaluations
            )
            if state is not None:
                state.record_steering_decision(decision.step, decision.to_jsonable())
            if obs is not None:
                obs.emit(
                    "steer.decision",
                    f"step-{decision.step}",
                    step=decision.step,
                    n_results=decision.n_results,
                    n_window=len(live),
                    n_cancels=len(decision.cancels),
                )
            _apply_decision(decision, live, queue, steering, report, obs)
            for delta in churn:
                report.score_churn.append(delta)
                if obs is not None:
                    from repro.obs import SCORE_CHURN_BOUNDS

                    obs.observe("steering.score_churn", delta, SCORE_CHURN_BOUNDS)
            yield True


def _apply_decision(
    decision: SteeringDecision,
    live: Sequence[_Pending],
    queue,
    steering: SteeringConfig,
    report: SteeringReport,
    obs,
) -> None:
    """Issue one decision's bulk ops and mark revocations."""
    by_ordinal = {p.ordinal: p for p in live}
    priorities = {
        by_ordinal[o].future: prio for o, prio in decision.priorities.items()
    }
    if steering.mode == "park":
        for ordinal in decision.cancels:
            priorities[by_ordinal[ordinal].future] = steering.park_priority
    if priorities:
        outcome = queue.update_priorities(priorities)
        report.reranks += sum(1 for ok in outcome.values() if ok)
        if obs is not None:
            obs.inc("steering.reranks", sum(1 for ok in outcome.values() if ok))
    if steering.mode == "cancel" and decision.cancels:
        queue.cancel_tasks(
            [by_ordinal[o].future for o in decision.cancels],
            reason=STEER_CANCEL_REASON,
        )
        for ordinal in decision.cancels:
            by_ordinal[ordinal].revoked = True
        report.cancels += len(decision.cancels)
        if obs is not None:
            obs.inc("steering.cancels", len(decision.cancels))
    elif steering.mode == "park" and decision.cancels:
        report.parked += len(decision.cancels)
        if obs is not None:
            obs.inc("steering.parked", len(decision.cancels))
    report.decisions += 1
    if obs is not None:
        obs.inc("steering.decisions")


def run_stepped(
    coroutines: Sequence[Iterator[bool]],
    pool: SteppedWorkerPool,
    *,
    max_quanta: int = 1_000_000,
) -> Dict[str, int]:
    """Drive coroutines against a :class:`SteppedWorkerPool` to completion.

    The deterministic driver for steering studies: advance every coroutine
    until none makes progress, then run exactly one pool quantum, repeat.
    No wall clock anywhere, so two same-seed runs take bitwise-identical
    trajectories — which is what lets the benchmark assert an exact
    evals-to-convergence reduction instead of a statistical one.
    """
    active = list(coroutines)
    turns = 0
    quanta = 0
    while active:
        progress = False
        for coroutine in list(active):
            turns += 1
            try:
                if next(coroutine):
                    progress = True
            except StopIteration:
                active.remove(coroutine)
                progress = True
        if progress or not active:
            continue
        if quanta >= max_quanta:
            raise StateError(f"stepped driver exceeded {max_quanta} quanta")
        quanta += 1
        if pool.step() == 0:
            raise StateError(
                "stepped driver deadlocked: coroutines pending, queue empty"
            )
    return {"turns": turns, "quanta": quanta, "tasks": pool.tasks_processed}


def evals_to_convergence(
    history: Sequence[Tuple[int, np.ndarray]],
    reference: np.ndarray,
    *,
    tol: float = 0.05,
) -> float:
    """Evaluations needed for the index estimates to stay within ``tol``.

    The benchmark's figure of merit: the smallest ``n_evaluations`` after
    which every snapshot's max-abs error against ``reference`` stays at or
    under ``tol`` for the rest of the run; ``inf`` if never.
    """
    if not history:
        raise ValidationError("empty convergence history")
    reference = np.asarray(reference, dtype=float)
    stable_from: float = np.inf
    for n, values in history:
        if float(np.max(np.abs(np.asarray(values) - reference))) <= tol:
            if not np.isfinite(stable_from):
                stable_from = float(n)
        else:
            stable_from = np.inf
    return stable_from

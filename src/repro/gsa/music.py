"""The MUSIC active-learning GSA algorithm.

"We adopt the active learning-based GSA algorithm introduced by Chauhan et
al., which uses a Gaussian process surrogate model trained on a limited
number of simulations to efficiently estimate first order Sobol sensitivity
indices.  Unlike conventional sampling strategies that may require a large
number of simulations ... this method actively selects new input locations
to improve the surrogate model where it matters most for estimating
sensitivity indices." (§3.1.2)

Algorithm (one instance):

1. evaluate an initial Latin-hypercube design;
2. fit a GP surrogate; estimate first-order Sobol indices *on the
   surrogate* (pick-freeze Monte Carlo over the GP mean, on a design held
   fixed across iterations so convergence curves are not jittered by
   re-sampling);
3. propose the candidate maximizing the MUSIC acquisition (EIGF × D1);
4. evaluate it, augment the GP (hyperparameters refit periodically),
   re-estimate indices, record the convergence history; repeat.

The class exposes *stepwise* methods (``initial_design`` / ``tell`` /
``propose``) rather than a closed loop, because the paper's workflow
interleaves ten instances through EMEWS futures — the driver owns the loop
(:mod:`repro.gsa.interleave`), each instance just answers "what next?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import StateError, ValidationError
from repro.common.rng import generator_from_seed
from repro.common.validation import check_array, check_int
from repro.models.parameters import ParameterSpace
from repro.gsa.acquisition import (
    eigf_scores,
    expected_improvement,
    music_scores,
    upper_confidence_bound,
)
from repro.gsa.gp import GaussianProcess
from repro.gsa.lhs import latin_hypercube, maximin_latin_hypercube
from repro.gsa.sobol import first_order_indices, saltelli_design

#: Acquisition strategies selectable in :class:`MusicConfig`.
ACQUISITIONS = ("music", "eigf", "ei", "ucb", "random")


@dataclass(frozen=True)
class MusicConfig:
    """Tunables of one MUSIC instance.

    ``surrogate_mc`` is the pick-freeze base size used to read Sobol
    indices off the surrogate; it is surrogate-mean evaluations only (no
    simulator runs), so it can be generous.
    """

    n_initial: int = 30
    acquisition: str = "music"
    n_candidates: int = 256
    surrogate_mc: int = 1024
    refit_every: int = 5
    ucb_kappa: float = 2.0

    def __post_init__(self) -> None:
        check_int("n_initial", self.n_initial, minimum=4)
        check_int("n_candidates", self.n_candidates, minimum=8)
        check_int("surrogate_mc", self.surrogate_mc, minimum=64)
        check_int("refit_every", self.refit_every, minimum=1)
        if self.acquisition not in ACQUISITIONS:
            raise ValidationError(
                f"unknown acquisition {self.acquisition!r}; choose from {ACQUISITIONS}"
            )


@dataclass
class HistoryEntry:
    """Sobol-index snapshot after ``n_evaluations`` simulator runs."""

    n_evaluations: int
    first_order: np.ndarray


class MusicGSA:
    """One instance of the MUSIC active-learning GSA loop.

    Parameters
    ----------
    space:
        The uncertain-parameter space (Table 1 for the paper's experiment).
    config:
        Algorithm settings.
    seed:
        Seed for designs, candidate pools, and surrogate-MC noise.  Two
        instances with different seeds explore independently.
    """

    def __init__(
        self,
        space: ParameterSpace,
        config: Optional[MusicConfig] = None,
        *,
        seed: int = 0,
    ) -> None:
        self.space = space
        self.config = config if config is not None else MusicConfig()
        self._seed = int(seed)
        self._rng = generator_from_seed(seed)
        self._gp = GaussianProcess(dim=space.dim)
        self._x_unit: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._since_refit = 0
        self.history: List[HistoryEntry] = []
        # Fixed pick-freeze design for surrogate index reads: holding it
        # constant makes the Figure 4 convergence curves reflect surrogate
        # improvement, not Monte Carlo re-sampling jitter.
        self._index_design = saltelli_design(
            self.config.surrogate_mc, space.dim, seed=int(self._rng.integers(2**31))
        )

    # ----------------------------------------------------------------- design
    def initial_design(self) -> np.ndarray:
        """The initial LHS design, in natural units (evaluate these first)."""
        unit = maximin_latin_hypercube(self.config.n_initial, self.space.dim, self._rng)
        return self.space.scale(unit)

    # ------------------------------------------------------------------- tell
    def tell(self, x_natural: np.ndarray, y: np.ndarray) -> HistoryEntry:
        """Incorporate evaluated points; returns the new index snapshot."""
        x_natural = np.atleast_2d(check_array("x_natural", x_natural, finite=True))
        y = np.atleast_1d(check_array("y", y, ndim=1, finite=True))
        if x_natural.shape[0] != y.size:
            raise ValidationError("x and y row counts differ")
        x_unit = self.space.unscale(x_natural)
        if self._x_unit is None:
            self._x_unit = x_unit
            self._y = y.copy()
            self._gp.fit(self._x_unit, self._y)
            self._since_refit = 0
        else:
            self._x_unit = np.vstack([self._x_unit, x_unit])
            self._y = np.concatenate([self._y, y])
            self._since_refit += x_unit.shape[0]
            if self._since_refit >= self.config.refit_every:
                self._gp.fit(self._x_unit, self._y)
                self._since_refit = 0
            else:
                self._gp.add_points(x_unit, y)
        entry = HistoryEntry(
            n_evaluations=int(self._y.size), first_order=self.first_order()
        )
        self.history.append(entry)
        return entry

    # ---------------------------------------------------------------- propose
    def propose(self) -> np.ndarray:
        """The next point to evaluate (natural units, shape (1, dim))."""
        if self._x_unit is None:
            raise StateError("tell() the initial design before proposing")
        cfg = self.config
        candidates = latin_hypercube(cfg.n_candidates, self.space.dim, self._rng)
        if cfg.acquisition == "random":
            choice = candidates[int(self._rng.integers(cfg.n_candidates))]
            return self.space.scale(choice[None, :])
        if cfg.acquisition == "music":
            scores = music_scores(
                self._gp, candidates, self._x_unit, self._y, rng=self._rng
            )
        elif cfg.acquisition == "eigf":
            scores = eigf_scores(self._gp, candidates, self._x_unit, self._y)
        elif cfg.acquisition == "ei":
            mean, var = self._gp.predict(candidates)
            scores = expected_improvement(mean, var, best=float(self._y.max()))
        else:  # ucb
            mean, var = self._gp.predict(candidates)
            scores = upper_confidence_bound(mean, var, kappa=cfg.ucb_kappa)
        best = candidates[int(np.argmax(scores))]
        return self.space.scale(best[None, :])

    # ------------------------------------------------------------------ score
    def score_points(self, x_natural: np.ndarray) -> np.ndarray:
        """Acquisition scores of arbitrary points under the current surrogate.

        The steering primitive: re-scores *already proposed* (queued)
        points against the GP as it stands now, so a policy can demote or
        cancel points whose information value has decayed.  Pure function
        of the surrogate state and the points — it draws from a dedicated
        generator reseeded per call, never from the proposal stream, so
        scoring queued work perturbs neither :meth:`propose` nor the
        surrogate-MC noise (the determinism contract for steering
        decisions).
        """
        if self._x_unit is None:
            raise StateError("tell() the initial design before scoring")
        x_natural = np.atleast_2d(check_array("x_natural", x_natural, finite=True))
        x_unit = self.space.unscale(x_natural)
        cfg = self.config
        if cfg.acquisition == "random":
            return np.zeros(x_unit.shape[0])
        if cfg.acquisition == "music":
            score_rng = generator_from_seed((self._seed * 2654435761 + 97) % 2**31)
            return music_scores(self._gp, x_unit, self._x_unit, self._y, rng=score_rng)
        if cfg.acquisition == "eigf":
            return eigf_scores(self._gp, x_unit, self._x_unit, self._y)
        if cfg.acquisition == "ei":
            mean, var = self._gp.predict(x_unit)
            return expected_improvement(mean, var, best=float(self._y.max()))
        mean, var = self._gp.predict(x_unit)
        return upper_confidence_bound(mean, var, kappa=cfg.ucb_kappa)

    # ---------------------------------------------------------------- indices
    def first_order(self) -> np.ndarray:
        """First-order Sobol indices read off the current surrogate."""
        if self._x_unit is None:
            raise StateError("no data yet")
        design = self._index_design
        y_all = self._gp.predict_mean(design.all_points)
        y_a, y_b, y_ab = design.split(y_all)
        return np.clip(first_order_indices(y_a, y_b, y_ab), -0.2, 1.2)

    def total_order(self) -> np.ndarray:
        """Total-order Sobol indices read off the current surrogate.

        Same fixed pick-freeze design as :meth:`first_order`, Jansen
        estimator; the gap ``total − first`` flags interaction effects.
        """
        if self._x_unit is None:
            raise StateError("no data yet")
        from repro.gsa.sobol import total_order_indices

        design = self._index_design
        y_all = self._gp.predict_mean(design.all_points)
        y_a, y_b, y_ab = design.split(y_all)
        return np.clip(total_order_indices(y_a, y_b, y_ab), 0.0, 1.5)

    # ------------------------------------------------------------------ state
    @property
    def n_evaluations(self) -> int:
        """Simulator evaluations consumed so far."""
        return 0 if self._y is None else int(self._y.size)

    @property
    def surrogate(self) -> GaussianProcess:
        """The underlying GP (diagnostics, ablations)."""
        return self._gp

    def has_converged(self, *, tol: float = 0.01, window: int = 10) -> bool:
        """Convergence-based stopping rule (the "C" in MUSIC).

        True when every first-order index has moved less than ``tol`` over
        the last ``window`` history entries — the practical budget-saving
        criterion: stop evaluating once the indices have stabilized.
        """
        if tol <= 0:
            raise ValidationError("tol must be positive")
        if window < 2:
            raise ValidationError("window must be >= 2")
        if len(self.history) < window:
            return False
        recent = np.stack([e.first_order for e in self.history[-window:]])
        movement = recent.max(axis=0) - recent.min(axis=0)
        return bool(np.all(movement < tol))

    def convergence_table(self) -> List[Tuple[int, Dict[str, float]]]:
        """History as (n_evaluations, {parameter: index}) rows."""
        return [
            (
                entry.n_evaluations,
                dict(zip(self.space.names, entry.first_order.tolist())),
            )
            for entry in self.history
        ]

"""Latin hypercube sampling.

"Each MUSIC algorithm begins by producing multiple parameter sets (i.e., an
initial experiment design) ... from a latin hypercube sample (LHS)." (§3.2)
"""

from __future__ import annotations

import numpy as np

from repro.common.validation import check_int


def latin_hypercube(n: int, dim: int, rng: np.random.Generator) -> np.ndarray:
    """Standard LHS in the unit cube: one point per stratum per dimension.

    Returns shape (n, dim); every column has exactly one sample in each of
    the ``n`` equal-width strata (the defining LHS property, which the test
    suite asserts).
    """
    n = check_int("n", n, minimum=1)
    dim = check_int("dim", dim, minimum=1)
    jitter = rng.random((n, dim))
    strata = np.empty((n, dim))
    for j in range(dim):
        strata[:, j] = rng.permutation(n)
    return (strata + jitter) / n


def _min_pairwise_distance(points: np.ndarray) -> float:
    diff = points[:, None, :] - points[None, :, :]
    dist2 = np.einsum("ijk,ijk->ij", diff, diff)
    np.fill_diagonal(dist2, np.inf)
    return float(np.sqrt(dist2.min()))


def maximin_latin_hypercube(
    n: int,
    dim: int,
    rng: np.random.Generator,
    *,
    n_candidates: int = 20,
) -> np.ndarray:
    """Best-of-``n_candidates`` LHS by the maximin pairwise-distance criterion.

    Space-filling designs improve GP surrogate conditioning; 20 candidates
    is the usual cheap compromise (full maximin optimization buys little at
    these sizes).
    """
    n_candidates = check_int("n_candidates", n_candidates, minimum=1)
    if n == 1:
        return latin_hypercube(1, dim, rng)
    best = None
    best_score = -np.inf
    for _ in range(n_candidates):
        candidate = latin_hypercube(n, dim, rng)
        score = _min_pairwise_distance(candidate)
        if score > best_score:
            best, best_score = candidate, score
    assert best is not None
    return best

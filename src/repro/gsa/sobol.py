"""Variance-based Sobol sensitivity analysis (Saltelli pick-freeze).

"Sobol sensitivity analysis is a variance-based GSA method that decomposes
the total variance of the model output into contributions from individual
input parameters and their higher-order interactions.  ... the first-order
index reflects the main effect of a single parameter, while total-order
indices capture both main and interaction effects." (§3.1.1)

This module provides the sampling-based reference estimators:

- :func:`saltelli_design` — the A/B/AB_i pick-freeze design on a scrambled
  Sobol low-discrepancy sequence;
- :func:`first_order_indices` — the Saltelli-2010 first-order estimator
  ``S_i = mean(y_B (y_{AB_i} − y_A)) / Var(y)``;
- :func:`total_order_indices` — the Jansen estimator
  ``T_i = mean((y_A − y_{AB_i})²) / (2 Var(y))``;
- :func:`sobol_indices` — end-to-end convenience with bootstrap CIs.

These are what the GP surrogate and PCE approaches approximate, and the
ground truth the Figure 4 benchmark compares both against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np
from scipy.stats import qmc

from repro.common.errors import ValidationError
from repro.common.validation import check_array, check_int


@dataclass(frozen=True)
class SaltelliDesign:
    """The pick-freeze evaluation design.

    ``all_points`` stacks A, B, then AB_1..AB_d (each ``n`` rows), so a
    model that evaluates batches needs one call of ``n (d + 2)`` rows.
    """

    a: np.ndarray  # (n, d)
    b: np.ndarray  # (n, d)
    ab: np.ndarray  # (d, n, d): ab[i] = A with column i from B

    @property
    def n(self) -> int:
        """Base sample size."""
        return self.a.shape[0]

    @property
    def dim(self) -> int:
        """Input dimension."""
        return self.a.shape[1]

    @property
    def n_evaluations(self) -> int:
        """Total model evaluations required: n (d + 2)."""
        return self.n * (self.dim + 2)

    @property
    def all_points(self) -> np.ndarray:
        """Stacked design, shape (n (d + 2), d)."""
        return np.concatenate([self.a, self.b, self.ab.reshape(-1, self.dim)])

    def split(self, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split stacked outputs back into (y_A, y_B, y_AB[(d, n)])."""
        y = check_array("y", y, ndim=1)
        if y.size != self.n_evaluations:
            raise ValidationError(
                f"expected {self.n_evaluations} outputs, got {y.size}"
            )
        y_a = y[: self.n]
        y_b = y[self.n : 2 * self.n]
        y_ab = y[2 * self.n :].reshape(self.dim, self.n)
        return y_a, y_b, y_ab


def saltelli_design(n: int, dim: int, *, seed: int = 0) -> SaltelliDesign:
    """Build a pick-freeze design in the unit cube.

    Uses a scrambled Sobol sequence of ``2 dim`` columns (A from the first
    ``dim``, B from the rest) — the standard low-discrepancy construction.
    """
    n = check_int("n", n, minimum=2)
    dim = check_int("dim", dim, minimum=1)
    sampler = qmc.Sobol(d=2 * dim, scramble=True, seed=seed)
    # Draw a power-of-two block (the Sobol balance property) and slice.
    n_pow2 = 1 << (n - 1).bit_length()
    base = sampler.random(n_pow2)[:n]
    a = base[:, :dim].copy()
    b = base[:, dim:].copy()
    ab = np.repeat(a[None, :, :], dim, axis=0)
    for i in range(dim):
        ab[i, :, i] = b[:, i]
    return SaltelliDesign(a=a, b=b, ab=ab)


def first_order_indices(y_a: np.ndarray, y_b: np.ndarray, y_ab: np.ndarray) -> np.ndarray:
    """Saltelli-2010 first-order estimator from pick-freeze outputs.

    Parameters
    ----------
    y_a, y_b:
        Shape (n,).
    y_ab:
        Shape (d, n); row i from the AB_i matrix.
    """
    y_a = check_array("y_a", y_a, ndim=1, finite=True)
    y_b = check_array("y_b", y_b, ndim=1, finite=True)
    y_ab = check_array("y_ab", y_ab, ndim=2, finite=True)
    if y_ab.shape[1] != y_a.size or y_b.size != y_a.size:
        raise ValidationError("output blocks have inconsistent sizes")
    variance = np.var(np.concatenate([y_a, y_b]), ddof=0)
    if variance <= 0:
        return np.zeros(y_ab.shape[0])
    return np.mean(y_b[None, :] * (y_ab - y_a[None, :]), axis=1) / variance


def total_order_indices(y_a: np.ndarray, y_b: np.ndarray, y_ab: np.ndarray) -> np.ndarray:
    """Jansen total-order estimator from pick-freeze outputs."""
    y_a = check_array("y_a", y_a, ndim=1, finite=True)
    y_b = check_array("y_b", y_b, ndim=1, finite=True)
    y_ab = check_array("y_ab", y_ab, ndim=2, finite=True)
    if y_ab.shape[1] != y_a.size or y_b.size != y_a.size:
        raise ValidationError("output blocks have inconsistent sizes")
    variance = np.var(np.concatenate([y_a, y_b]), ddof=0)
    if variance <= 0:
        return np.zeros(y_ab.shape[0])
    return np.mean((y_a[None, :] - y_ab) ** 2, axis=1) / (2.0 * variance)


def sobol_indices(
    fn: Callable[[np.ndarray], np.ndarray],
    dim: int,
    n: int,
    *,
    seed: int = 0,
    bootstrap: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, np.ndarray]:
    """End-to-end Sobol analysis of a batch-evaluable function on [0,1]^d.

    Returns a dict with ``first`` and ``total`` index arrays and, when
    ``bootstrap > 0``, 95% bootstrap confidence bounds ``first_lo`` /
    ``first_hi`` (resampling the pick-freeze rows).
    """
    design = saltelli_design(n, dim, seed=seed)
    y = np.asarray(fn(design.all_points), dtype=float).ravel()
    y_a, y_b, y_ab = design.split(y)
    out: Dict[str, np.ndarray] = {
        "first": first_order_indices(y_a, y_b, y_ab),
        "total": total_order_indices(y_a, y_b, y_ab),
    }
    if bootstrap > 0:
        if rng is None:
            rng = np.random.default_rng(seed)
        draws = np.empty((bootstrap, dim))
        for b_i in range(bootstrap):
            idx = rng.integers(0, design.n, size=design.n)
            draws[b_i] = first_order_indices(y_a[idx], y_b[idx], y_ab[:, idx])
        out["first_lo"] = np.percentile(draws, 2.5, axis=0)
        out["first_hi"] = np.percentile(draws, 97.5, axis=0)
    return out


def second_order_design(n: int, dim: int, *, seed: int = 0) -> Tuple[SaltelliDesign, np.ndarray]:
    """Extend the pick-freeze design with BA_i matrices for second-order terms.

    Returns the base design plus ``ba`` of shape (dim, n, dim): ``ba[i]`` is
    B with column i taken from A.  Together with the base design this
    supports the Saltelli-2002 second-order estimator implemented by
    :func:`second_order_indices`; total cost is ``n (2 dim + 2)``
    evaluations.
    """
    design = saltelli_design(n, dim, seed=seed)
    ba = np.repeat(design.b[None, :, :], dim, axis=0)
    for i in range(dim):
        ba[i, :, i] = design.a[:, i]
    return design, ba


def second_order_indices(
    y_a: np.ndarray,
    y_b: np.ndarray,
    y_ab: np.ndarray,
    y_ba: np.ndarray,
) -> np.ndarray:
    """Closed (i, j) second-order Sobol indices, shape (dim, dim).

    Saltelli-2002: ``V_ij^closed = mean(y_{BA_i} · y_{AB_j}) − mean(y_A)
    mean(y_B)`` estimates ``V_i + V_j + V_ij``; subtracting the first-order
    terms leaves the pure interaction ``S_ij``.  Only the upper triangle is
    populated (``i < j``); diagonal and lower entries are zero.
    """
    y_a = check_array("y_a", y_a, ndim=1, finite=True)
    y_b = check_array("y_b", y_b, ndim=1, finite=True)
    y_ab = check_array("y_ab", y_ab, ndim=2, finite=True)
    y_ba = check_array("y_ba", y_ba, ndim=2, finite=True)
    if y_ab.shape != y_ba.shape or y_ab.shape[1] != y_a.size:
        raise ValidationError("output blocks have inconsistent sizes")
    dim = y_ab.shape[0]
    variance = np.var(np.concatenate([y_a, y_b]), ddof=0)
    out = np.zeros((dim, dim))
    if variance <= 0:
        return out
    first = first_order_indices(y_a, y_b, y_ab)
    mean_sq = y_a.mean() * y_b.mean()
    for i in range(dim):
        for j in range(i + 1, dim):
            closed = (np.mean(y_ba[i] * y_ab[j]) - mean_sq) / variance
            out[i, j] = closed - first[i] - first[j]
    return out


def sobol_indices_with_second_order(
    fn: Callable[[np.ndarray], np.ndarray],
    dim: int,
    n: int,
    *,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """First-, second-, and total-order Sobol analysis in one batch call."""
    design, ba = second_order_design(n, dim, seed=seed)
    batch = np.concatenate([design.all_points, ba.reshape(-1, dim)])
    y = np.asarray(fn(batch), dtype=float).ravel()
    base = design.n_evaluations
    y_a, y_b, y_ab = design.split(y[:base])
    y_ba = y[base:].reshape(dim, design.n)
    return {
        "first": first_order_indices(y_a, y_b, y_ab),
        "total": total_order_indices(y_a, y_b, y_ab),
        "second": second_order_indices(y_a, y_b, y_ab, y_ba),
    }

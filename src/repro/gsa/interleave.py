"""Cooperative interleaving of algorithm instances over EMEWS futures.

§3.2 of the paper: "Our solution was to interleave the 10 MUSIC instances
such that the compute resource is kept fully utilized. ... During each step,
each algorithm performs a submission of tasks, and gets the Futures for
those task evaluations back in return.  Then, in turn, each algorithm checks
for the completion of a single Future, ceding control to the next instance
after this check.  When all the Futures from an instance's submission have
completed, that instance can continue to its next step."

The drivers here implement exactly that protocol over Python generators:
an *algorithm coroutine* yields whenever it is waiting on futures (ceding
control); the :class:`InterleavedDriver` round-robins the coroutines, and
the :class:`SequentialDriver` runs them one at a time (the baseline whose
poor utilization motivates interleaving — quantified by the A1 ablation).

A coroutine's ``yield`` protocol: yield a truthy value after making progress
(submitting, consuming a result), and a falsy value when it merely checked a
still-pending future.  When every live coroutine reports "no progress"
through a full cycle, the driver sleeps briefly so threaded worker pools get
CPU time instead of a busy spin.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.common.errors import ValidationError


class InterleavedDriver:
    """Round-robin driver over algorithm coroutines.

    Parameters
    ----------
    coroutines:
        Generators following the yield protocol above.
    idle_sleep:
        Wall-clock sleep (seconds) after a full no-progress cycle.
    """

    def __init__(
        self,
        coroutines: Sequence[Iterator[Any]],
        *,
        idle_sleep: float = 0.002,
    ) -> None:
        if not coroutines:
            raise ValidationError("driver needs at least one coroutine")
        if idle_sleep < 0:
            raise ValidationError("idle_sleep must be >= 0")
        self._coroutines: List[Optional[Iterator[Any]]] = list(coroutines)
        self._idle_sleep = idle_sleep
        self.cycles = 0
        self.switches = 0

    def run(self, *, max_cycles: Optional[int] = None) -> Dict[str, int]:
        """Drive all coroutines to completion; returns driver statistics."""
        live = sum(1 for c in self._coroutines if c is not None)
        while live > 0:
            if max_cycles is not None and self.cycles >= max_cycles:
                raise ValidationError(
                    f"interleaved driver exceeded max_cycles={max_cycles}"
                )
            self.cycles += 1
            progressed = False
            for i, coroutine in enumerate(self._coroutines):
                if coroutine is None:
                    continue
                self.switches += 1
                try:
                    result = next(coroutine)
                except StopIteration:
                    self._coroutines[i] = None
                    live -= 1
                    progressed = True
                    continue
                if result:
                    progressed = True
            if not progressed and self._idle_sleep > 0:
                time.sleep(self._idle_sleep)
        return {"cycles": self.cycles, "switches": self.switches}


class SequentialDriver:
    """Run each coroutine to completion before starting the next.

    The baseline the paper argues against: while one instance waits on a
    single in-flight evaluation, every other worker slot idles.
    """

    def __init__(
        self,
        coroutines: Sequence[Iterator[Any]],
        *,
        idle_sleep: float = 0.002,
    ) -> None:
        if not coroutines:
            raise ValidationError("driver needs at least one coroutine")
        self._coroutines = list(coroutines)
        self._idle_sleep = idle_sleep
        self.steps = 0

    def run(self) -> Dict[str, int]:
        """Drive coroutines sequentially; returns driver statistics."""
        for coroutine in self._coroutines:
            while True:
                self.steps += 1
                try:
                    result = next(coroutine)
                except StopIteration:
                    break
                if not result and self._idle_sleep > 0:
                    time.sleep(self._idle_sleep)
        return {"steps": self.steps}

"""Polynomial chaos expansion (PCE) Sobol analysis.

"The PCE-based method is included to highlight the limitations of one-shot
approaches, as PCE uses a single experimental design to produce Sobol
sensitivity indices ... We chose a degree 3 PCE as it performed the best
among the PCE degrees we examined." (§3.3)

For inputs uniform on the unit cube, the orthonormal basis is the tensor
product of normalized Legendre polynomials ``P̃_k(2u − 1) = √(2k+1) P_k``.
Coefficients are fit by least squares on the design; Sobol indices then
fall out of the coefficient partition analytically:

    Var = Σ_{α ≠ 0} c_α²,   S_i = Σ_{α: α_i > 0, α_j = 0 ∀ j≠i} c_α² / Var.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import StateError, ValidationError
from repro.common.validation import check_array, check_int


def total_degree_multi_indices(dim: int, degree: int) -> np.ndarray:
    """All multi-indices α with |α| ≤ degree, shape (n_terms, dim).

    The zero index comes first; ordering is by total degree then
    lexicographic (stable across calls — coefficient positions matter).
    """
    dim = check_int("dim", dim, minimum=1)
    degree = check_int("degree", degree, minimum=0)
    indices: List[Tuple[int, ...]] = []
    for total in range(degree + 1):
        for combo in itertools.product(range(total + 1), repeat=dim):
            if sum(combo) == total:
                indices.append(combo)
    return np.asarray(indices, dtype=int)


def _legendre_normalized(u: np.ndarray, max_degree: int) -> np.ndarray:
    """Orthonormal Legendre values: shape (n, max_degree + 1).

    Orthonormal w.r.t. U(0,1) inputs via ``z = 2u − 1`` and the √(2k+1)
    normalization (∫₀¹ P̃_j P̃_k du = δ_jk).
    """
    z = 2.0 * u - 1.0
    out = np.empty((u.size, max_degree + 1))
    out[:, 0] = 1.0
    if max_degree >= 1:
        out[:, 1] = z
    for k in range(1, max_degree):
        out[:, k + 1] = ((2 * k + 1) * z * out[:, k] - k * out[:, k - 1]) / (k + 1)
    for k in range(max_degree + 1):
        out[:, k] *= np.sqrt(2 * k + 1)
    return out


class PCEModel:
    """A least-squares PCE on the unit cube.

    Parameters
    ----------
    dim:
        Input dimension.
    degree:
        Total polynomial degree (the paper uses 3).
    """

    def __init__(self, dim: int, degree: int = 3) -> None:
        self.dim = check_int("dim", dim, minimum=1)
        self.degree = check_int("degree", degree, minimum=1)
        self.multi_indices = total_degree_multi_indices(dim, degree)
        self.coefficients: Optional[np.ndarray] = None
        self._condition: Optional[float] = None

    @property
    def n_terms(self) -> int:
        """Number of basis terms."""
        return self.multi_indices.shape[0]

    # ---------------------------------------------------------------- fitting
    def _design_matrix(self, x_unit: np.ndarray) -> np.ndarray:
        x_unit = np.atleast_2d(check_array("x_unit", x_unit, finite=True))
        if x_unit.shape[1] != self.dim:
            raise ValidationError(f"x must have {self.dim} columns")
        if x_unit.min() < -1e-9 or x_unit.max() > 1 + 1e-9:
            raise ValidationError("PCE inputs must lie in the unit cube")
        per_dim = [
            _legendre_normalized(x_unit[:, j], self.degree) for j in range(self.dim)
        ]
        psi = np.ones((x_unit.shape[0], self.n_terms))
        for t, alpha in enumerate(self.multi_indices):
            for j, order in enumerate(alpha):
                if order > 0:
                    psi[:, t] *= per_dim[j][:, order]
        return psi

    def fit(self, x_unit: np.ndarray, y: np.ndarray) -> "PCEModel":
        """Least-squares fit of the coefficients.

        Underdetermined systems (n < n_terms) are allowed — ``lstsq``
        returns the minimum-norm solution — because the paper's Figure 4
        evaluates PCE at small sample sizes precisely to show that regime's
        instability.
        """
        y = check_array("y", y, ndim=1, finite=True)
        psi = self._design_matrix(x_unit)
        if psi.shape[0] != y.size:
            raise ValidationError("x and y row counts differ")
        coeffs, _, _, singular_values = np.linalg.lstsq(psi, y, rcond=None)
        self.coefficients = coeffs
        if singular_values.size and singular_values[-1] > 0:
            self._condition = float(singular_values[0] / singular_values[-1])
        else:
            self._condition = np.inf
        return self

    # -------------------------------------------------------------- prediction
    def predict(self, x_unit: np.ndarray) -> np.ndarray:
        """Evaluate the fitted expansion."""
        if self.coefficients is None:
            raise StateError("fit() the PCE first")
        return self._design_matrix(x_unit) @ self.coefficients

    @property
    def condition_number(self) -> float:
        """Condition number of the last design matrix (instability signal)."""
        if self._condition is None:
            raise StateError("fit() the PCE first")
        return self._condition

    # ----------------------------------------------------------------- indices
    def variance(self) -> float:
        """Total output variance implied by the expansion."""
        if self.coefficients is None:
            raise StateError("fit() the PCE first")
        return float(np.sum(self.coefficients[1:] ** 2))

    def first_order(self) -> np.ndarray:
        """Analytic first-order Sobol indices from the coefficients."""
        if self.coefficients is None:
            raise StateError("fit() the PCE first")
        var = self.variance()
        indices = np.zeros(self.dim)
        if var <= 0:
            return indices
        alphas = self.multi_indices
        for i in range(self.dim):
            only_i = (alphas[:, i] > 0) & (
                np.sum(alphas > 0, axis=1) == 1
            )
            indices[i] = np.sum(self.coefficients[only_i] ** 2) / var
        return indices

    def total_order(self) -> np.ndarray:
        """Analytic total-order Sobol indices from the coefficients."""
        if self.coefficients is None:
            raise StateError("fit() the PCE first")
        var = self.variance()
        indices = np.zeros(self.dim)
        if var <= 0:
            return indices
        for i in range(self.dim):
            involves_i = self.multi_indices[:, i] > 0
            indices[i] = np.sum(self.coefficients[involves_i] ** 2) / var
        return indices


def pce_sobol_indices(
    x_unit: np.ndarray, y: np.ndarray, *, degree: int = 3
) -> Dict[str, np.ndarray]:
    """One-shot PCE Sobol analysis of a dataset on the unit cube."""
    x_unit = np.atleast_2d(np.asarray(x_unit, dtype=float))
    model = PCEModel(dim=x_unit.shape[1], degree=degree).fit(x_unit, y)
    return {"first": model.first_order(), "total": model.total_order()}

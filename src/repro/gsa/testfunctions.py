"""Analytic benchmark functions with known Sobol indices.

Every sensitivity estimator in this package (Saltelli, GP-surrogate, PCE)
is validated against these closed-form references before being trusted on
the epidemiological model.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.common.errors import ValidationError
from repro.common.validation import check_array

#: Ishigami constants (the standard a=7, b=0.1 configuration).
_ISHIGAMI_A = 7.0
_ISHIGAMI_B = 0.1


def ishigami(x: np.ndarray) -> np.ndarray:
    """The Ishigami function on inputs in [0, 1]^3 (mapped to [-π, π]^3).

    ``f = sin(z1) + a sin²(z2) + b z3⁴ sin(z1)`` with ``z = π(2x − 1)``.
    """
    x = np.atleast_2d(check_array("x", x, finite=True))
    if x.shape[1] != 3:
        raise ValidationError("ishigami expects 3 columns")
    z = np.pi * (2.0 * x - 1.0)
    return (
        np.sin(z[:, 0])
        + _ISHIGAMI_A * np.sin(z[:, 1]) ** 2
        + _ISHIGAMI_B * z[:, 2] ** 4 * np.sin(z[:, 0])
    )


def _ishigami_reference() -> Dict[str, float]:
    a, b = _ISHIGAMI_A, _ISHIGAMI_B
    v1 = 0.5 * (1.0 + b * np.pi**4 / 5.0) ** 2
    v2 = a**2 / 8.0
    v13 = b**2 * np.pi**8 * (1.0 / 18.0 - 1.0 / 50.0)
    total = v1 + v2 + v13
    return {"S1": v1 / total, "S2": v2 / total, "S3": 0.0, "V": total}


#: Analytic first-order Sobol indices of the Ishigami function.
ISHIGAMI_FIRST_ORDER = np.array(
    [_ishigami_reference()["S1"], _ishigami_reference()["S2"], 0.0]
)

#: Analytic total variance of the Ishigami function.
ISHIGAMI_VARIANCE = _ishigami_reference()["V"]


def sobol_g(x: np.ndarray, a: Sequence[float] = (0.0, 1.0, 4.5, 9.0, 99.0)) -> np.ndarray:
    """The Sobol g-function on [0, 1]^d: ``Π_i (|4x_i − 2| + a_i)/(1 + a_i)``.

    Small ``a_i`` means an influential input; analytic indices come from
    :func:`sobol_g_first_order`.
    """
    x = np.atleast_2d(check_array("x", x, finite=True))
    a_arr = np.asarray(a, dtype=float)
    if x.shape[1] != a_arr.size:
        raise ValidationError(f"x must have {a_arr.size} columns to match a")
    if np.any(a_arr < 0):
        raise ValidationError("g-function coefficients must be non-negative")
    terms = (np.abs(4.0 * x - 2.0) + a_arr) / (1.0 + a_arr)
    return np.prod(terms, axis=1)


def sobol_g_first_order(a: Sequence[float] = (0.0, 1.0, 4.5, 9.0, 99.0)) -> np.ndarray:
    """Analytic first-order Sobol indices of the g-function."""
    a_arr = np.asarray(a, dtype=float)
    vi = 1.0 / (3.0 * (1.0 + a_arr) ** 2)
    total = np.prod(1.0 + vi) - 1.0
    return vi / total


def linear_additive(x: np.ndarray, coefficients: Sequence[float]) -> np.ndarray:
    """``f = Σ c_i x_i`` on the unit cube — the simplest closed-form case.

    First-order index of input i is ``c_i² / Σ c_j²`` (all variances equal
    under U(0,1)); interactions are exactly zero.
    """
    x = np.atleast_2d(check_array("x", x, finite=True))
    c = np.asarray(coefficients, dtype=float)
    if x.shape[1] != c.size:
        raise ValidationError(f"x must have {c.size} columns")
    return x @ c


def linear_first_order(coefficients: Sequence[float]) -> np.ndarray:
    """Analytic first-order indices of :func:`linear_additive`."""
    c = np.asarray(coefficients, dtype=float)
    weights = c**2
    return weights / weights.sum()

"""Gaussian-process surrogate regression.

Plays the role the hetGP R package plays in the paper's MUSIC workflow: "It
relies on a GP surrogate model constructed using the hetGP package" (§3.1.2).

Implementation notes
--------------------
- Separable (anisotropic) squared-exponential kernel with a nugget:
  ``k(x, x') = σ² exp(−½ Σ_i (x_i − x'_i)²/ℓ_i²) + g·δ``.
- Inputs are expected in the unit cube (callers scale through their
  :class:`~repro.models.parameters.ParameterSpace`); outputs are
  standardized internally.
- Hyperparameters (log ℓ, log σ², log g) are fit by maximizing the marginal
  likelihood with analytic gradients (L-BFGS-B, warm-started multi-start) —
  the active-learning loop refits repeatedly, so gradient quality matters
  more than optimizer sophistication.
- :meth:`add_points` appends data and re-factorizes without refitting
  hyperparameters, so the MUSIC loop can refit only every few acquisitions.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import linalg, optimize

from repro.common.errors import StateError, ValidationError
from repro.common.validation import check_array

_LOG_LENGTH_BOUNDS = (np.log(0.03), np.log(10.0))
_LOG_SIGNAL_BOUNDS = (np.log(1e-4), np.log(1e4))
_LOG_NUGGET_BOUNDS = (np.log(1e-8), np.log(2.0))
_JITTER = 1e-10


class GaussianProcess:
    """GP regression with anisotropic SE kernel and MLE hyperparameters.

    Parameters
    ----------
    dim:
        Input dimension.
    nugget:
        Initial nugget variance (standardized-output units).  The nugget is
        itself optimized during :meth:`fit`; for common-random-number
        simulator outputs it typically shrinks toward the lower bound.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> X = rng.random((40, 2))
    >>> y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2
    >>> gp = GaussianProcess(dim=2).fit(X, y)
    >>> mean, var = gp.predict(X[:3])
    >>> bool(np.allclose(mean, y[:3], atol=0.1))
    True
    """

    def __init__(self, dim: int, *, nugget: float = 1e-4) -> None:
        if dim < 1:
            raise ValidationError("dim must be >= 1")
        if nugget <= 0:
            raise ValidationError("nugget must be positive")
        self.dim = dim
        self._theta = np.concatenate(
            [np.zeros(dim) + np.log(0.5), [np.log(1.0)], [np.log(nugget)]]
        )
        self._x: Optional[np.ndarray] = None
        self._y_raw: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._chol: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._noise_std: Optional[np.ndarray] = None  # standardized units
        #: How factorizations were obtained: incremental rank updates vs
        #: full O(n³) refactorizations (perf diagnostics, see benchmarks).
        self.update_stats = {"incremental_updates": 0, "full_refactors": 0}

    # -------------------------------------------------------------- utilities
    @property
    def n_train(self) -> int:
        """Number of training points."""
        return 0 if self._x is None else self._x.shape[0]

    @property
    def lengthscales(self) -> np.ndarray:
        """Fitted per-dimension lengthscales."""
        return np.exp(self._theta[: self.dim])

    @property
    def signal_variance(self) -> float:
        """Fitted signal variance (standardized-output units)."""
        return float(np.exp(self._theta[self.dim]))

    @property
    def nugget(self) -> float:
        """Fitted nugget variance (standardized-output units)."""
        return float(np.exp(self._theta[self.dim + 1]))

    def _scaled_sq_dists(self, a: np.ndarray, b: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        # ‖a−b‖² = ‖a‖² + ‖b‖² − 2ab expansion: one gemm instead of an
        # (m, n, d) difference tensor — the dominant cost of every kernel
        # evaluation in the MUSIC loop.  Clamp the cancellation error.
        a_scaled = a / lengths
        b_scaled = b / lengths
        sq = (
            np.sum(a_scaled**2, axis=1)[:, None]
            + np.sum(b_scaled**2, axis=1)[None, :]
            - 2.0 * (a_scaled @ b_scaled.T)
        )
        return np.maximum(sq, 0.0)

    def _kernel(self, a: np.ndarray, b: np.ndarray, theta: np.ndarray) -> np.ndarray:
        lengths = np.exp(theta[: self.dim])
        signal = np.exp(theta[self.dim])
        return signal * np.exp(-0.5 * self._scaled_sq_dists(a, b, lengths))

    # -------------------------------------------------------------------- fit
    def _nll_and_grad(self, theta: np.ndarray) -> Tuple[float, np.ndarray]:
        x, y = self._x, self._y_std_vec
        n = x.shape[0]
        lengths = np.exp(theta[: self.dim])
        nugget = np.exp(theta[self.dim + 1])
        k_se = self._kernel(x, x, theta)
        k = k_se + (nugget + _JITTER) * np.eye(n)
        if self._noise_std is not None:
            k = k + np.diag(self._noise_std)
        try:
            chol = linalg.cholesky(k, lower=True)
        except linalg.LinAlgError:
            return 1e10, np.zeros_like(theta)
        alpha = linalg.cho_solve((chol, True), y)
        nll = (
            0.5 * float(y @ alpha)
            + float(np.sum(np.log(np.diag(chol))))
            + 0.5 * n * np.log(2 * np.pi)
        )
        # trace term: W = alpha alpha^T - K^{-1}
        k_inv = linalg.cho_solve((chol, True), np.eye(n))
        w = np.outer(alpha, alpha) - k_inv
        grad = np.empty_like(theta)
        for i in range(self.dim):
            diff2 = (x[:, i][:, None] - x[:, i][None, :]) ** 2
            dk = k_se * diff2 / lengths[i] ** 2
            grad[i] = -0.5 * float(np.sum(w * dk))
        grad[self.dim] = -0.5 * float(np.sum(w * k_se))
        grad[self.dim + 1] = -0.5 * float(np.trace(w)) * nugget
        return nll, grad

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        noise_variances: Optional[np.ndarray] = None,
        n_restarts: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> "GaussianProcess":
        """Set training data and maximize the marginal likelihood.

        Warm-starts from the current hyperparameters and adds
        ``n_restarts`` random restarts; keeps the best optimum found.

        ``noise_variances`` enables the hetGP-style heteroskedastic mode:
        a known per-point observation-noise variance (original y units) is
        added to the kernel diagonal — this is how replicate-averaged
        responses carry their ``s²/r`` standard errors into the surrogate
        (see :func:`collapse_replicates`).  The global nugget is still
        optimized on top, absorbing any unmodelled residual noise.
        """
        x = np.atleast_2d(check_array("x", x, finite=True))
        y = check_array("y", y, ndim=1, finite=True)
        if x.shape != (y.size, self.dim):
            raise ValidationError(
                f"x must be ({y.size}, {self.dim}), got {x.shape}"
            )
        if y.size < 2:
            raise ValidationError("GP needs at least 2 training points")
        self._x = x.copy()
        self._y_raw = y.copy()
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        self._y_std_vec = (y - self._y_mean) / self._y_std
        if noise_variances is not None:
            noise = check_array("noise_variances", noise_variances, ndim=1, finite=True)
            if noise.size != y.size or np.any(noise < 0):
                raise ValidationError(
                    "noise_variances must be non-negative, one per observation"
                )
            self._noise_std = noise / self._y_std**2
        else:
            self._noise_std = None

        bounds = (
            [_LOG_LENGTH_BOUNDS] * self.dim + [_LOG_SIGNAL_BOUNDS] + [_LOG_NUGGET_BOUNDS]
        )
        starts = [np.clip(self._theta, [b[0] for b in bounds], [b[1] for b in bounds])]
        # A deliberately short-lengthscale start: wiggly responses (high-
        # frequency main effects) are a local optimum the smooth start misses.
        starts.append(
            np.concatenate([np.full(self.dim, np.log(0.15)), [0.0], [np.log(1e-4)]])
        )
        if rng is None:
            rng = np.random.default_rng(y.size)
        for _ in range(n_restarts):
            starts.append(
                np.concatenate(
                    [
                        rng.uniform(np.log(0.1), np.log(2.0), self.dim),
                        [rng.uniform(np.log(0.2), np.log(5.0))],
                        [rng.uniform(np.log(1e-6), np.log(1e-2))],
                    ]
                )
            )
        best_theta, best_nll = None, np.inf
        for start in starts:
            result = optimize.minimize(
                self._nll_and_grad,
                start,
                jac=True,
                method="L-BFGS-B",
                bounds=bounds,
                options={"maxiter": 100},
            )
            if result.fun < best_nll:
                best_nll = float(result.fun)
                best_theta = np.asarray(result.x)
        if best_theta is None:  # pragma: no cover - optimizer always returns
            raise StateError("hyperparameter optimization failed")
        self._theta = best_theta
        self._refactor()
        return self

    def add_points(self, x_new: np.ndarray, y_new: np.ndarray) -> "GaussianProcess":
        """Append training data and re-factorize with current hyperparameters.

        Used between hyperparameter refits in the active-learning loop.
        In the homoskedastic case the Cholesky factor is *extended* by a
        block rank update — O(n² m) instead of the full O(n³) rebuild.  The
        kernel matrix over the old points is unchanged (it depends only on
        X and the hyperparameters, which only :meth:`fit` moves), so only
        the new rows/columns need factoring; the weight vector ``alpha`` is
        then recomputed against the re-standardized targets in O(n²).
        Heteroskedastic fits re-standardize the *old* diagonal too, so they
        (and any numerically failed update) fall back to a full
        :meth:`_refactor`.
        """
        if self._x is None:
            raise StateError("call fit() before add_points()")
        x_new = np.atleast_2d(check_array("x_new", x_new, finite=True))
        y_new = np.atleast_1d(check_array("y_new", y_new, finite=True))
        old_std = self._y_std
        old_chol = self._chol
        n_old = self._x.shape[0]
        self._x = np.vstack([self._x, x_new])
        self._y_raw = np.concatenate([self._y_raw, y_new])
        self._y_mean = float(self._y_raw.mean())
        self._y_std = float(self._y_raw.std()) or 1.0
        self._y_std_vec = (self._y_raw - self._y_mean) / self._y_std
        if self._noise_std is not None:
            # re-standardize existing noise, assume noise-free new points
            rescaled = self._noise_std * old_std**2 / self._y_std**2
            self._noise_std = np.concatenate([rescaled, np.zeros(y_new.size)])
            self._refactor()
            return self
        if old_chol is None:
            self._refactor()
            return self
        try:
            self._extend_factor(old_chol, n_old, x_new)
        except linalg.LinAlgError:
            self._refactor()
            return self
        self._alpha = linalg.cho_solve(
            (self._chol, True), self._y_std_vec, check_finite=False
        )
        self.update_stats["incremental_updates"] += 1
        return self

    def _extend_factor(
        self, old_chol: np.ndarray, n_old: int, x_new: np.ndarray
    ) -> None:
        """Extend the lower Cholesky factor by the new points' block.

        With ``K = [[K11, K12], [K12ᵀ, K22]]`` and ``K11 = L L ᵀ`` already
        factored: ``L21 = (L⁻¹ K12)ᵀ`` and ``L22 L22ᵀ = K22 − L21 L21ᵀ``
        (the Schur complement).  Raises ``LinAlgError`` when the Schur
        complement is not positive definite, signalling the caller to fall
        back to a full refactorization.
        """
        m = x_new.shape[0]
        x_old = self._x[:n_old]
        k12 = self._kernel(x_old, x_new, self._theta)  # (n_old, m)
        k22 = self._kernel(x_new, x_new, self._theta) + (
            self.nugget + _JITTER
        ) * np.eye(m)
        l21 = linalg.solve_triangular(
            old_chol, k12, lower=True, check_finite=False
        )  # (n_old, m)
        schur = k22 - l21.T @ l21
        l22 = linalg.cholesky(schur, lower=True)
        chol = np.zeros((n_old + m, n_old + m))
        chol[:n_old, :n_old] = old_chol
        chol[n_old:, :n_old] = l21.T
        chol[n_old:, n_old:] = l22
        self._chol = chol

    def _refactor(self) -> None:
        n = self._x.shape[0]
        k = self._kernel(self._x, self._x, self._theta) + (
            self.nugget + _JITTER
        ) * np.eye(n)
        if self._noise_std is not None:
            k = k + np.diag(self._noise_std)
        self._chol = linalg.cholesky(k, lower=True)
        self._alpha = linalg.cho_solve((self._chol, True), self._y_std_vec)
        self.update_stats["full_refactors"] += 1

    # ---------------------------------------------------------------- predict
    def predict(
        self, x_star: np.ndarray, *, include_noise: bool = False
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance at query points (original y units).

        ``include_noise`` adds the nugget to the predictive variance
        (prediction of a new noisy observation rather than the latent
        surface).
        """
        if self._chol is None:
            raise StateError("the GP has not been fitted")
        x_star = np.atleast_2d(check_array("x_star", x_star, finite=True))
        if x_star.shape[1] != self.dim:
            raise ValidationError(f"query points must have {self.dim} columns")
        k_star = self._kernel(x_star, self._x, self._theta)  # (m, n)
        mean_std = k_star @ self._alpha
        v = linalg.solve_triangular(self._chol, k_star.T, lower=True)
        var_std = self.signal_variance - np.einsum("ij,ij->j", v, v)
        var_std = np.maximum(var_std, 1e-12)
        if include_noise:
            var_std = var_std + self.nugget
        mean = self._y_mean + self._y_std * mean_std
        var = self._y_std**2 * var_std
        return mean, var

    def predict_mean(self, x_star: np.ndarray) -> np.ndarray:
        """Posterior mean only (cheaper; used by surrogate Sobol MC)."""
        return self.predict(x_star)[0]

    # ------------------------------------------------------------- diagnostics
    @property
    def heteroskedastic(self) -> bool:
        """True when per-point noise variances are in effect."""
        return self._noise_std is not None

    def loo_rmse(self) -> float:
        """Leave-one-out RMSE via the closed-form LOO identities."""
        if self._chol is None:
            raise StateError("the GP has not been fitted")
        k_inv = linalg.cho_solve((self._chol, True), np.eye(self.n_train))
        diag = np.diag(k_inv)
        loo_resid_std = self._alpha / diag
        return float(np.sqrt(np.mean(loo_resid_std**2))) * self._y_std


def collapse_replicates(
    x: np.ndarray, y: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse replicated design points to means with standard errors.

    The hetGP workflow for stochastic simulators: repeated evaluations at
    the same input are summarized as the sample mean with observation-noise
    variance ``s² / r`` (zero where a point has a single replicate, letting
    the GP's nugget absorb it).  Returns ``(x_unique, y_mean,
    noise_variances)`` ready for :meth:`GaussianProcess.fit`.
    """
    x = np.atleast_2d(check_array("x", x, finite=True))
    y = check_array("y", y, ndim=1, finite=True)
    if x.shape[0] != y.size:
        raise ValidationError("x and y row counts differ")
    unique, inverse, counts = np.unique(
        x, axis=0, return_inverse=True, return_counts=True
    )
    means = np.zeros(unique.shape[0])
    np.add.at(means, inverse, y)
    means /= counts
    sq = np.zeros(unique.shape[0])
    np.add.at(sq, inverse, (y - means[inverse]) ** 2)
    noise = np.zeros(unique.shape[0])
    replicated = counts > 1
    # unbiased within-point variance of the mean: s^2 / r
    noise[replicated] = sq[replicated] / (counts[replicated] - 1) / counts[replicated]
    return unique, means, noise

"""Shapley effects: game-theoretic variance attribution.

The paper's Sobol reference is Owen's *"Sobol' Indices and Shapley Value"*
(SIAM/ASA JUQ 2014), which shows that attributing output variance by the
Shapley value of the "explanatory power" game ``val(u) = Var(E[Y | X_u])``
resolves the classic gap between first-order and total-order indices:
Shapley effects are non-negative, sum exactly to the total variance, and
split interaction/duplication effects fairly between the inputs involved.

This module implements exact-subset-enumeration Shapley effects (feasible
for the d ≤ ~12 regime of epidemiological GSA; the paper's space has d=5,
i.e. 32 subsets):

- :func:`subset_variances` — pick-freeze Monte Carlo estimates of
  ``Var(E[Y | X_u])`` for every subset u, sharing one (A, B) sample pair
  so the whole table costs ``n · 2^d`` function evaluations (vectorizable
  in a single batch call);
- :func:`shapley_from_subset_variances` — the exact Shapley combination
  ``Sh_i = Σ_{u ∌ i} |u|!(d−1−|u|)!/d! · (val(u ∪ {i}) − val(u))``;
- :func:`shapley_effects` — end-to-end convenience returning normalized
  effects (summing to 1).

The A7 ablation benchmark compares Shapley, first-order, and total-order
attributions on the MetaRVM QoI.
"""

from __future__ import annotations

from math import factorial
from typing import Callable

import numpy as np

from repro.common.errors import ValidationError
from repro.common.validation import check_array, check_int
from repro.gsa.sobol import saltelli_design


def _all_subsets(dim: int) -> np.ndarray:
    """Boolean membership matrix of all 2^dim subsets, shape (2^dim, dim).

    Subset ``s`` contains input ``i`` iff bit ``i`` of ``s`` is set; index 0
    is the empty set, index 2^dim - 1 the full set.
    """
    masks = np.arange(2**dim, dtype=np.int64)
    return (masks[:, None] >> np.arange(dim)) & 1 == 1


def subset_variances(
    fn: Callable[[np.ndarray], np.ndarray],
    dim: int,
    n: int,
    *,
    seed: int = 0,
) -> np.ndarray:
    """Estimate ``val(u) = Var(E[Y | X_u])`` for every subset u.

    Uses the pick-freeze identity ``Var(E[Y|X_u]) = Cov(Y(A), Y(A_u, B_-u))``
    on a shared scrambled-Sobol (A, B) pair.  ``fn`` must accept a batch of
    points in the unit cube; the full table is evaluated in **one** call of
    ``n · 2^dim`` rows, so a vectorized model pays no per-subset overhead.

    Returns an array of length ``2^dim`` (index = subset bitmask), with
    ``val(∅) = 0`` and ``val(full) = Var(Y)`` by construction.
    """
    dim = check_int("dim", dim, minimum=1)
    n = check_int("n", n, minimum=8)
    if dim > 16:
        raise ValidationError("exact subset enumeration is limited to dim <= 16")
    design = saltelli_design(n, dim, seed=seed)
    a, b = design.a, design.b
    subsets = _all_subsets(dim)  # (2^d, d)
    n_subsets = subsets.shape[0]

    # Build the mixed matrices: rows from A where the subset holds the
    # column, from B elsewhere. Stack everything into one batch call.
    mixed = np.where(subsets[:, None, :], a[None, :, :], b[None, :, :])
    batch = np.concatenate([a, b, mixed.reshape(-1, dim)])
    y = np.asarray(fn(batch), dtype=float).ravel()
    if y.size != batch.shape[0]:
        raise ValidationError(
            f"fn returned {y.size} outputs for {batch.shape[0]} points"
        )
    y_a = y[:n]
    y_b = y[n : 2 * n]
    y_mixed = y[2 * n :].reshape(n_subsets, n)

    # The mixed rows share exactly the subset-u columns with A, so
    # Cov(Y(A), Y(A_u, B_-u)) = Var(E[Y | X_u]).
    mean = 0.5 * (y_a.mean() + y_b.mean())
    values = (y_a[None, :] * y_mixed).mean(axis=1) - mean**2
    values[0] = 0.0  # val(∅) is exactly zero
    # val(full): the mixed matrix equals A, so the estimator reduces to
    # Cov(y_A, y_B-mixed...) noise; replace with the direct variance.
    values[-1] = float(np.var(np.concatenate([y_a, y_b]), ddof=0))
    return values


def shapley_from_subset_variances(values: np.ndarray, dim: int) -> np.ndarray:
    """Exact Shapley combination of a full subset-value table.

    ``values[mask]`` is ``val(u)`` for the subset with that bitmask.
    Returns the unnormalized Shapley effects (they sum to ``values[-1]``).
    """
    values = check_array("values", values, ndim=1, finite=True)
    if values.size != 2**dim:
        raise ValidationError(f"expected {2 ** dim} subset values, got {values.size}")
    weights = [
        factorial(s) * factorial(dim - 1 - s) / factorial(dim) for s in range(dim)
    ]
    effects = np.zeros(dim)
    sizes = np.array([bin(mask).count("1") for mask in range(2**dim)])
    for i in range(dim):
        bit = 1 << i
        for mask in range(2**dim):
            if mask & bit:
                continue
            marginal = values[mask | bit] - values[mask]
            effects[i] += weights[sizes[mask]] * marginal
    return effects


def shapley_effects(
    fn: Callable[[np.ndarray], np.ndarray],
    dim: int,
    n: int = 512,
    *,
    seed: int = 0,
    normalize: bool = True,
) -> np.ndarray:
    """End-to-end Shapley effects of a batch-evaluable function on [0,1]^d.

    With ``normalize=True`` (default) the effects sum to 1 — directly
    comparable to first-order Sobol indices (which sum to ≤ 1 in the
    presence of interactions, the gap Shapley closes).
    """
    values = subset_variances(fn, dim, n, seed=seed)
    effects = shapley_from_subset_variances(values, dim)
    if not normalize:
        return effects
    total = values[-1]
    if total <= 0:
        return np.zeros(dim)
    return effects / total

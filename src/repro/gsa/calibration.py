"""Surrogate-accelerated model calibration.

The paper motivates GSA as a precursor to calibration: it "identif[ies] the
most influential parameters, facilitates dimensional reduction to aid in
model calibration efforts" (§3.1.1).  This module closes that loop: a
Bayesian-optimization-style calibrator that fits simulator parameters to
observed data by minimizing a distance function, using the same GP
surrogate and acquisition machinery as MUSIC — and the same stepwise
ask/tell API, so calibration instances interleave through EMEWS exactly
like GSA instances.

Algorithm: evaluate an initial LHS design of parameter points; fit a GP to
``log(distance)`` (log because distances span orders of magnitude near the
optimum); repeatedly propose the candidate maximizing expected improvement
*downward*; finish with the best evaluated point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.common.errors import StateError, ValidationError
from repro.common.rng import generator_from_seed
from repro.common.validation import check_array, check_int
from repro.models.parameters import ParameterSpace
from repro.gsa.acquisition import expected_improvement
from repro.gsa.gp import GaussianProcess
from repro.gsa.lhs import latin_hypercube, maximin_latin_hypercube

#: Distance function: parameter matrix (n, dim) -> non-negative distances (n,).
DistanceFn = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class CalibrationConfig:
    """Tunables of the surrogate calibrator."""

    n_initial: int = 25
    n_candidates: int = 256
    refit_every: int = 5
    exploration_fraction: float = 0.1  # occasional random points guard EI myopia

    def __post_init__(self) -> None:
        check_int("n_initial", self.n_initial, minimum=4)
        check_int("n_candidates", self.n_candidates, minimum=8)
        check_int("refit_every", self.refit_every, minimum=1)
        if not 0.0 <= self.exploration_fraction < 1.0:
            raise ValidationError("exploration_fraction must be in [0, 1)")


@dataclass
class CalibrationResult:
    """Outcome of a calibration run."""

    best_point: np.ndarray
    best_distance: float
    n_evaluations: int
    history: List[Tuple[int, float]]  # (n_evaluations, best-so-far distance)

    def improvement_over_initial(self) -> float:
        """Best distance after the initial design / final best (>= 1)."""
        initial_best = self.history[0][1]
        return initial_best / max(self.best_distance, 1e-300)


class SurrogateCalibrator:
    """Stepwise (ask/tell) surrogate calibrator over a parameter space.

    Mirrors :class:`~repro.gsa.music.MusicGSA`'s API so drivers can
    interleave calibration instances through EMEWS futures.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.models.parameters import ParameterSpace
    >>> space = ParameterSpace([("a", (0.0, 1.0)), ("b", (0.0, 1.0))])
    >>> target = np.array([0.3, 0.7])
    >>> distance = lambda x: np.linalg.norm(np.atleast_2d(x) - target, axis=1)
    >>> cal = SurrogateCalibrator(space, seed=0)
    >>> design = cal.initial_design()
    >>> _ = cal.tell(design, distance(design))
    >>> for _ in range(15):
    ...     point = cal.propose()
    ...     _ = cal.tell(point, distance(point))
    >>> bool(np.linalg.norm(cal.best_point() - target) < 0.15)
    True
    """

    def __init__(
        self,
        space: ParameterSpace,
        config: Optional[CalibrationConfig] = None,
        *,
        seed: int = 0,
    ) -> None:
        self.space = space
        self.config = config if config is not None else CalibrationConfig()
        self._rng = generator_from_seed(seed)
        self._gp = GaussianProcess(dim=space.dim)
        self._x_unit: Optional[np.ndarray] = None
        self._d: Optional[np.ndarray] = None
        self._since_refit = 0
        self.history: List[Tuple[int, float]] = []

    # ----------------------------------------------------------------- design
    def initial_design(self) -> np.ndarray:
        """The initial LHS design, in natural units."""
        unit = maximin_latin_hypercube(self.config.n_initial, self.space.dim, self._rng)
        return self.space.scale(unit)

    # ------------------------------------------------------------------- tell
    def tell(self, x_natural: np.ndarray, distances: np.ndarray) -> float:
        """Incorporate evaluated distances; returns the best so far."""
        x_natural = np.atleast_2d(check_array("x_natural", x_natural, finite=True))
        distances = np.atleast_1d(check_array("distances", distances, ndim=1, finite=True))
        if np.any(distances < 0):
            raise ValidationError("distances must be non-negative")
        if x_natural.shape[0] != distances.size:
            raise ValidationError("x and distance row counts differ")
        x_unit = self.space.unscale(x_natural)
        log_d = np.log(np.maximum(distances, 1e-12))
        if self._x_unit is None:
            self._x_unit = x_unit
            self._d = distances.copy()
            self._log_d = log_d
            self._gp.fit(self._x_unit, self._log_d)
            self._since_refit = 0
        else:
            self._x_unit = np.vstack([self._x_unit, x_unit])
            self._d = np.concatenate([self._d, distances])
            self._log_d = np.concatenate([self._log_d, log_d])
            self._since_refit += x_unit.shape[0]
            if self._since_refit >= self.config.refit_every:
                self._gp.fit(self._x_unit, self._log_d)
                self._since_refit = 0
            else:
                self._gp.add_points(x_unit, log_d)
        best = self.best_distance()
        self.history.append((int(self._d.size), best))
        return best

    # ---------------------------------------------------------------- propose
    def propose(self) -> np.ndarray:
        """The next parameter point to evaluate (natural units, (1, dim))."""
        if self._x_unit is None:
            raise StateError("tell() the initial design before proposing")
        cfg = self.config
        if self._rng.random() < cfg.exploration_fraction:
            unit = self._rng.random((1, self.space.dim))
            return self.space.scale(unit)
        candidates = latin_hypercube(cfg.n_candidates, self.space.dim, self._rng)
        mean, var = self._gp.predict(candidates)
        scores = expected_improvement(
            mean, var, best=float(self._log_d.min()), maximize=False
        )
        best = candidates[int(np.argmax(scores))]
        return self.space.scale(best[None, :])

    # ------------------------------------------------------------------ state
    @property
    def n_evaluations(self) -> int:
        """Simulator evaluations consumed so far."""
        return 0 if self._d is None else int(self._d.size)

    def best_point(self) -> np.ndarray:
        """Best evaluated parameter point (natural units)."""
        if self._d is None:
            raise StateError("no evaluations yet")
        idx = int(np.argmin(self._d))
        return self.space.scale(self._x_unit[idx][None, :])[0]

    def best_distance(self) -> float:
        """Smallest evaluated distance."""
        if self._d is None:
            raise StateError("no evaluations yet")
        return float(self._d.min())

    def result(self) -> CalibrationResult:
        """Summarize the run."""
        if self._d is None:
            raise StateError("no evaluations yet")
        return CalibrationResult(
            best_point=self.best_point(),
            best_distance=self.best_distance(),
            n_evaluations=self.n_evaluations,
            history=list(self.history),
        )


def calibrate(
    distance_fn: DistanceFn,
    space: ParameterSpace,
    *,
    budget: int = 80,
    config: Optional[CalibrationConfig] = None,
    seed: int = 0,
) -> CalibrationResult:
    """Closed-loop convenience wrapper around :class:`SurrogateCalibrator`."""
    check_int("budget", budget, minimum=8)
    calibrator = SurrogateCalibrator(space, config, seed=seed)
    design = calibrator.initial_design()
    if design.shape[0] > budget:
        raise ValidationError("budget smaller than the initial design")
    calibrator.tell(design, np.asarray(distance_fn(design), dtype=float))
    while calibrator.n_evaluations < budget:
        point = calibrator.propose()
        calibrator.tell(point, np.asarray(distance_fn(point), dtype=float))
    return calibrator.result()


def admissions_curve_distance(
    observed_daily_admissions: np.ndarray,
    model,
    *,
    stochastic: bool = False,
    seed: int = 0,
) -> DistanceFn:
    """Distance between MetaRVM's admission curve and observed data.

    Normalized RMSE of total daily hospital admissions.  By default the
    model is evaluated in expectation (deterministic) mode — the standard
    smooth-objective choice for calibration; pass ``stochastic=True`` with a
    fixed seed for a CRN stochastic objective.
    """
    observed = check_array(
        "observed_daily_admissions", observed_daily_admissions, ndim=1, finite=True
    )
    scale = max(float(observed.std()), 1e-9)

    def distance(x_natural: np.ndarray) -> np.ndarray:
        result = model.run_batch(
            np.atleast_2d(x_natural), seed=seed, stochastic=stochastic
        )
        curves = result.hospital_admissions.sum(axis=2)  # (batch, days)
        if curves.shape[1] != observed.size:
            raise ValidationError(
                f"model horizon {curves.shape[1]} != observed length {observed.size}"
            )
        return np.sqrt(np.mean((curves - observed) ** 2, axis=1)) / scale

    return distance

"""Global sensitivity analysis: Sobol indices, surrogates, active learning.

The paper's second use case (§3) performs a surrogate-based GSA of MetaRVM:

- :mod:`repro.gsa.lhs` — Latin hypercube designs ("an initial experiment
  design ... from a latin hypercube sample").
- :mod:`repro.gsa.sobol` — variance-based Sobol sensitivity analysis via
  Saltelli pick-freeze estimators (the reference method, and the index
  definitions everything else approximates).
- :mod:`repro.gsa.testfunctions` — analytic benchmark functions (Ishigami,
  Sobol g-function) with known indices, used to validate every estimator.
- :mod:`repro.gsa.gp` — the Gaussian-process surrogate (the role the hetGP
  R package plays in the paper).
- :mod:`repro.gsa.acquisition` — acquisition functions: EI, UCB, EIGF, and
  the MUSIC criterion (EIGF weighted by the D1 main-effect D-function).
- :mod:`repro.gsa.music` — the MUSIC active-learning GSA algorithm
  (Chauhan et al. 2024 / the activeSens R package), with a step-wise API
  designed for interleaving many instances.
- :mod:`repro.gsa.pce` — the polynomial chaos expansion baseline ("a degree
  3 PCE as it performed the best among the PCE degrees we examined").
- :mod:`repro.gsa.interleave` — the cooperative round-robin driver that
  interleaves N algorithm instances over EMEWS futures (§3.2).
- :mod:`repro.gsa.steering` — acquisition-driven steering of in-flight
  work: as results stream back, queued points are re-scored and re-ranked,
  and the lowest-value ones cancelled (budget reclaimed) or parked (the
  ``asynch_repriority`` pattern).
"""

from repro.gsa.lhs import latin_hypercube, maximin_latin_hypercube
from repro.gsa.sobol import (
    SaltelliDesign,
    first_order_indices,
    saltelli_design,
    second_order_design,
    second_order_indices,
    sobol_indices,
    sobol_indices_with_second_order,
    total_order_indices,
)
from repro.gsa.testfunctions import ishigami, ISHIGAMI_FIRST_ORDER, sobol_g, sobol_g_first_order
from repro.gsa.gp import GaussianProcess, collapse_replicates
from repro.gsa.acquisition import (
    eigf_scores,
    expected_improvement,
    music_scores,
    upper_confidence_bound,
)
from repro.gsa.music import MusicGSA, MusicConfig
from repro.gsa.pce import PCEModel, pce_sobol_indices
from repro.gsa.shapley import shapley_effects, shapley_from_subset_variances, subset_variances
from repro.gsa.calibration import (
    CalibrationConfig,
    CalibrationResult,
    SurrogateCalibrator,
    admissions_curve_distance,
    calibrate,
)
from repro.gsa.interleave import InterleavedDriver, SequentialDriver
from repro.gsa.steering import (
    STEER_CANCEL_REASON,
    SteeringConfig,
    SteeringDecision,
    SteeringPolicy,
    SteeringReport,
    evals_to_convergence,
    run_stepped,
    steered_music_coroutine,
)

__all__ = [
    "latin_hypercube",
    "maximin_latin_hypercube",
    "SaltelliDesign",
    "saltelli_design",
    "first_order_indices",
    "total_order_indices",
    "second_order_design",
    "second_order_indices",
    "sobol_indices",
    "sobol_indices_with_second_order",
    "ishigami",
    "ISHIGAMI_FIRST_ORDER",
    "sobol_g",
    "sobol_g_first_order",
    "GaussianProcess",
    "collapse_replicates",
    "expected_improvement",
    "upper_confidence_bound",
    "eigf_scores",
    "music_scores",
    "MusicGSA",
    "MusicConfig",
    "PCEModel",
    "pce_sobol_indices",
    "shapley_effects",
    "shapley_from_subset_variances",
    "subset_variances",
    "CalibrationConfig",
    "CalibrationResult",
    "SurrogateCalibrator",
    "admissions_curve_distance",
    "calibrate",
    "InterleavedDriver",
    "SequentialDriver",
    "STEER_CANCEL_REASON",
    "SteeringConfig",
    "SteeringDecision",
    "SteeringPolicy",
    "SteeringReport",
    "steered_music_coroutine",
    "run_stepped",
    "evals_to_convergence",
]

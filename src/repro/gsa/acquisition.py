"""Acquisition functions for active-learning GSA.

"Central to the method is the MUSIC (Minimize Uncertainty in Sobol Index
Convergence) acquisition function, which specifically targets the reduction
of uncertainty in the variance of the estimate in main-effects.  In
particular, the EIGF — Expected Improvement in Global Fit — acquisition
function is used ... with the D1 formulation as the D-function.  This
contrasts with more common acquisition functions like EI and UCB, which
focus on minimizing prediction error in global surrogate prediction."
(§3.1.2, citing Chauhan et al. 2024)

Implemented criteria (all *scores over a candidate pool* — the proposer
maximizes):

- :func:`expected_improvement` — classic EI (optimization-oriented).
- :func:`upper_confidence_bound` — UCB.
- :func:`eigf_scores` — Lam & Notz's Expected Improvement for Global Fit:
  ``EIGF(x) = (μ(x) − y(x_nn))² + s²(x)`` with ``x_nn`` the nearest
  training point.
- :func:`d1_weights` — the D1 D-function: the squared deviation of the
  GP-estimated *main effects* from the global mean, averaged over
  dimensions.  Regions where main effects deviate strongly contribute most
  to first-order variance, so weighting refinement there reduces the
  uncertainty of main-effect (first-order Sobol) estimates.  (Adapted from
  the D-function formulation of Chauhan et al.; exact constants differ but
  the targeting behaviour — goal-directed refinement for main effects — is
  preserved.)
- :func:`music_scores` — the MUSIC criterion: EIGF weighted by D1.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import stats

from repro.common.errors import ValidationError
from repro.common.validation import check_array
from repro.gsa.gp import GaussianProcess


def expected_improvement(
    mean: np.ndarray, var: np.ndarray, best: float, *, maximize: bool = True
) -> np.ndarray:
    """Classic expected improvement over the incumbent ``best``."""
    mean = check_array("mean", mean, ndim=1, finite=True)
    sd = np.sqrt(np.maximum(check_array("var", var, ndim=1), 1e-18))
    improvement = (mean - best) if maximize else (best - mean)
    z = improvement / sd
    return improvement * stats.norm.cdf(z) + sd * stats.norm.pdf(z)


def upper_confidence_bound(
    mean: np.ndarray, var: np.ndarray, *, kappa: float = 2.0
) -> np.ndarray:
    """UCB score ``μ + κ s``."""
    if kappa < 0:
        raise ValidationError("kappa must be non-negative")
    mean = check_array("mean", mean, ndim=1, finite=True)
    sd = np.sqrt(np.maximum(check_array("var", var, ndim=1), 0.0))
    return mean + kappa * sd


def eigf_scores(
    gp: GaussianProcess,
    candidates: np.ndarray,
    x_train: np.ndarray,
    y_train: np.ndarray,
) -> np.ndarray:
    """Expected Improvement for Global Fit at each candidate.

    ``EIGF(x) = (μ(x) − y(x_nn))² + s²(x)``: large where the surrogate
    disagrees with the nearest observation (local fit error) or is simply
    uncertain.
    """
    candidates = np.atleast_2d(check_array("candidates", candidates, finite=True))
    x_train = np.atleast_2d(check_array("x_train", x_train, finite=True))
    y_train = check_array("y_train", y_train, ndim=1, finite=True)
    if x_train.shape[0] != y_train.size:
        raise ValidationError("x_train and y_train sizes differ")
    mean, var = gp.predict(candidates)
    diff = candidates[:, None, :] - x_train[None, :, :]
    dist2 = np.einsum("ijk,ijk->ij", diff, diff)
    nearest = np.argmin(dist2, axis=1)
    return (mean - y_train[nearest]) ** 2 + var


def gp_main_effects(
    gp: GaussianProcess,
    dim: int,
    *,
    n_grid: int = 21,
    n_base: int = 128,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Estimated main-effect curves from the GP mean.

    Returns shape (dim, n_grid): ``m_i(g) = E_{x_{−i}}[μ(x) | x_i = g]``,
    the conditional expectation of the surrogate over the other inputs,
    estimated by Monte Carlo over ``n_base`` base points.  Main-effect
    variance ``Var_g(m_i)`` is the numerator of the first-order Sobol index.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    grid = np.linspace(0.0, 1.0, n_grid)
    base = rng.random((n_base, dim))
    effects = np.empty((dim, n_grid))
    for i in range(dim):
        # One batched predict per dimension: (n_grid * n_base, dim).
        tiled = np.repeat(base[None, :, :], n_grid, axis=0).reshape(-1, dim)
        tiled[:, i] = np.repeat(grid, n_base)
        mu = gp.predict_mean(tiled).reshape(n_grid, n_base)
        effects[i] = mu.mean(axis=1)
    return effects


def d1_weights(
    gp: GaussianProcess,
    candidates: np.ndarray,
    *,
    n_grid: int = 21,
    n_base: int = 128,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """D1 D-function values at each candidate.

    ``D1(x) = (1/d) Σ_i (m_i(x_i) − m̄)²`` — the average squared main-effect
    deviation at the candidate's coordinates.  Candidates sitting where main
    effects are far from the global mean carry the most first-order-variance
    information.
    """
    candidates = np.atleast_2d(check_array("candidates", candidates, finite=True))
    dim = candidates.shape[1]
    effects = gp_main_effects(gp, dim, n_grid=n_grid, n_base=n_base, rng=rng)
    grid = np.linspace(0.0, 1.0, effects.shape[1])
    overall = effects.mean()
    total = np.zeros(candidates.shape[0])
    for i in range(dim):
        m_i = np.interp(candidates[:, i], grid, effects[i])
        total += (m_i - overall) ** 2
    return total / dim


def music_scores(
    gp: GaussianProcess,
    candidates: np.ndarray,
    x_train: np.ndarray,
    y_train: np.ndarray,
    *,
    n_grid: int = 21,
    n_base: int = 128,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """The MUSIC acquisition: EIGF weighted by the D1 D-function.

    A small floor keeps exploration alive where main effects are flat
    (pure-interaction regions would otherwise never be refined).
    """
    eigf = eigf_scores(gp, candidates, x_train, y_train)
    d1 = d1_weights(gp, candidates, n_grid=n_grid, n_base=n_base, rng=rng)
    scale = d1.mean() if d1.mean() > 0 else 1.0
    return eigf * (d1 + 0.1 * scale)

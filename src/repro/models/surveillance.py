"""Observation models for traditional surveillance streams.

The paper's premise is that mandate-era surveillance has degraded: "many of
the datasets that had previously been used for inputs into the estimation
of R(t), such as COVID-19 cases and hospitalizations, are no longer
actively maintained" (§2.1).  This module models what such streams actually
look like so the estimator comparisons (A3 ablation, the method-comparison
example) run against realistic case data rather than perfect incidence:

- :func:`observe_cases` — underreporting (possibly decaying over time),
  day-of-week reporting artifacts, reporting delay, and count noise;
- :func:`observe_hospital_admissions` — severity-fraction thinning plus an
  infection-to-admission delay;
- :class:`SurveillanceScenario` — named presets from mandate-era to
  post-mandate surveillance quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.common.errors import ValidationError
from repro.common.validation import check_array, check_int, check_probability
from repro.models.seir import discretized_gamma


@dataclass(frozen=True)
class SurveillanceScenario:
    """Quality parameters of a case-reporting stream.

    Attributes
    ----------
    reporting_fraction:
        Mean fraction of infections that become reported cases.
    reporting_decay:
        Per-day multiplicative decay of the reporting fraction (post-mandate
        erosion; 0 = stable reporting).
    weekday_amplitude:
        Relative day-of-week modulation (0 = none; 0.3 = strong weekend dip).
    delay_mean, delay_sd:
        Infection-to-report delay distribution (days).
    """

    reporting_fraction: float = 0.3
    reporting_decay: float = 0.0
    weekday_amplitude: float = 0.2
    delay_mean: float = 5.0
    delay_sd: float = 2.0

    def __post_init__(self) -> None:
        check_probability("reporting_fraction", self.reporting_fraction)
        if not 0.0 <= self.reporting_decay < 0.1:
            raise ValidationError("reporting_decay must be in [0, 0.1) per day")
        if not 0.0 <= self.weekday_amplitude < 1.0:
            raise ValidationError("weekday_amplitude must be in [0, 1)")
        if self.delay_mean <= 0 or self.delay_sd <= 0:
            raise ValidationError("delay parameters must be positive")


#: Mandate-era surveillance: high, stable reporting with modest artifacts.
MANDATE_ERA = SurveillanceScenario(
    reporting_fraction=0.5, reporting_decay=0.0, weekday_amplitude=0.15
)

#: Post-mandate surveillance: low and eroding reporting, strong artifacts —
#: the regime that motivates wastewater-based estimation.
POST_MANDATE = SurveillanceScenario(
    reporting_fraction=0.15, reporting_decay=0.005, weekday_amplitude=0.35
)


def observe_cases(
    incidence: np.ndarray,
    scenario: SurveillanceScenario,
    rng: Optional[np.random.Generator] = None,
    *,
    delay_days: int = 15,
) -> np.ndarray:
    """Turn true infection incidence into a reported-case stream.

    Pipeline: delay convolution → time-varying reporting fraction with
    day-of-week modulation → binomial thinning (or expectation when ``rng``
    is ``None``).
    """
    incidence = check_array("incidence", incidence, ndim=1, finite=True)
    if np.any(incidence < 0):
        raise ValidationError("incidence must be non-negative")
    check_int("delay_days", delay_days, minimum=1)
    n_days = incidence.size
    delay = discretized_gamma(scenario.delay_mean, scenario.delay_sd, delay_days)
    delayed = np.convolve(incidence, delay)[:n_days]

    t = np.arange(n_days, dtype=float)
    fraction = scenario.reporting_fraction * np.exp(-scenario.reporting_decay * t)
    weekday = 1.0 + scenario.weekday_amplitude * np.sin(2.0 * np.pi * t / 7.0)
    probability = np.clip(fraction * weekday, 0.0, 1.0)

    expected = delayed * probability
    if rng is None:
        return expected
    return rng.binomial(np.round(delayed).astype(np.int64), probability).astype(float)


def observe_hospital_admissions(
    incidence: np.ndarray,
    *,
    severity_fraction: float = 0.03,
    delay_mean: float = 8.0,
    delay_sd: float = 3.0,
    delay_days: int = 21,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Turn infection incidence into a hospital-admission stream."""
    incidence = check_array("incidence", incidence, ndim=1, finite=True)
    check_probability("severity_fraction", severity_fraction)
    if severity_fraction == 0.0:
        raise ValidationError("severity_fraction must be positive")
    delay = discretized_gamma(delay_mean, delay_sd, delay_days)
    delayed = np.convolve(incidence, delay)[: incidence.size]
    expected = severity_fraction * delayed
    if rng is None:
        return expected
    return rng.poisson(np.maximum(expected, 0.0)).astype(float)


def effective_case_count(observed: np.ndarray) -> float:
    """Total reported cases (the headline count a dashboard would show)."""
    observed = check_array("observed", observed, ndim=1, finite=True)
    return float(observed.sum())

"""Contact/mixing matrices for demographic subgroups.

MetaRVM captures "heterogeneous mixing across demographic subgroups"
(§3.1.1).  A mixing matrix ``C`` has ``C[g, k]`` = relative rate at which a
member of group ``g`` contacts members of group ``k``; rows sum to 1 so the
transmission parameters ``ts``/``tv`` carry the overall contact scale.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.common.validation import check_int, check_probability


def uniform_mixing(n_groups: int) -> np.ndarray:
    """Every group contacts every group (including itself) equally."""
    n = check_int("n_groups", n_groups, minimum=1)
    return np.full((n, n), 1.0 / n)


def assortative_mixing(n_groups: int, assortativity: float = 0.5) -> np.ndarray:
    """Blend of within-group preference and uniform mixing.

    ``C = a * I + (1 - a) * U`` where ``a`` is the assortativity: ``a = 0``
    is uniform mixing, ``a = 1`` is fully isolated groups.  Rows sum to 1
    by construction.
    """
    n = check_int("n_groups", n_groups, minimum=1)
    a = check_probability("assortativity", assortativity)
    return a * np.eye(n) + (1.0 - a) * uniform_mixing(n)


def age_structured_mixing(n_groups: int = 4, assortativity: float = 0.4) -> np.ndarray:
    """A banded, age-structure-like matrix: contact decays with group distance.

    Off-diagonal weight between groups ``g`` and ``k`` is proportional to
    ``2^{-|g-k|}``, blended with the assortative diagonal; rows sum to 1.
    This mimics the qualitative shape of empirical age-contact matrices
    (strong diagonal, decaying off-diagonals) without importing survey data.
    """
    n = check_int("n_groups", n_groups, minimum=1)
    a = check_probability("assortativity", assortativity)
    idx = np.arange(n)
    band = np.power(2.0, -np.abs(idx[:, None] - idx[None, :]), dtype=float)
    band /= band.sum(axis=1, keepdims=True)
    matrix = a * np.eye(n) + (1.0 - a) * band
    return matrix / matrix.sum(axis=1, keepdims=True)


def validate_mixing(matrix: np.ndarray, n_groups: int) -> np.ndarray:
    """Check that ``matrix`` is a valid (n_groups × n_groups) mixing matrix."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.shape != (n_groups, n_groups):
        raise ValidationError(
            f"mixing matrix must be ({n_groups}, {n_groups}), got {matrix.shape}"
        )
    if np.any(matrix < 0):
        raise ValidationError("mixing matrix entries must be non-negative")
    if not np.allclose(matrix.sum(axis=1), 1.0, atol=1e-8):
        raise ValidationError("mixing matrix rows must sum to 1")
    return matrix

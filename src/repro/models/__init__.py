"""Epidemic models and synthetic surveillance data.

- :mod:`repro.models.parameters` — parameter spaces, including the paper's
  Table 1 (the five uncertain MetaRVM parameters and their GSA ranges), and
  the full MetaRVM parameter set with nominal values.
- :mod:`repro.models.mixing` — demographic-group contact matrices.
- :mod:`repro.models.seir` — SEIR substrate: deterministic ODE, stochastic
  chain-binomial, and renewal-equation incidence with time-varying R(t).
- :mod:`repro.models.metarvm` — the MetaRVM metapopulation model (Figure 3):
  compartments S, V, E, Ia, Ip, Is, H, R, D with vaccination, waning,
  hospitalization and death, heterogeneous mixing across subgroups, and a
  fully vectorized batch evaluator with common-random-number support.
- :mod:`repro.models.wastewater` — synthetic wastewater pathogen-
  concentration surveillance: latent epidemic with known R(t), shedding-load
  convolution, plant-level noise; the offline stand-in for the Illinois
  Wastewater Surveillance System feed.
"""

from repro.models.parameters import (
    GSA_PARAMETER_SPACE,
    MetaRVMParams,
    ParameterSpace,
    table1_rows,
)
from repro.models.interventions import InterventionSchedule, lockdown_scenario
from repro.models.mixing import assortative_mixing, uniform_mixing
from repro.models.surveillance import (
    MANDATE_ERA,
    POST_MANDATE,
    SurveillanceScenario,
    observe_cases,
    observe_hospital_admissions,
)
from repro.models.seir import (
    SEIRParams,
    discretized_gamma,
    renewal_incidence,
    seir_deterministic,
    seir_stochastic,
)
from repro.models.metarvm import (
    COMPARTMENTS,
    MetaRVM,
    MetaRVMConfig,
    MetaRVMResult,
    transition_graph,
)
from repro.models.wastewater import (
    CHICAGO_PLANTS,
    SyntheticIWSS,
    WastewaterPlant,
    default_rt_scenario,
    shedding_kernel,
)

__all__ = [
    "GSA_PARAMETER_SPACE",
    "MetaRVMParams",
    "ParameterSpace",
    "table1_rows",
    "InterventionSchedule",
    "lockdown_scenario",
    "assortative_mixing",
    "uniform_mixing",
    "MANDATE_ERA",
    "POST_MANDATE",
    "SurveillanceScenario",
    "observe_cases",
    "observe_hospital_admissions",
    "SEIRParams",
    "discretized_gamma",
    "renewal_incidence",
    "seir_deterministic",
    "seir_stochastic",
    "COMPARTMENTS",
    "MetaRVM",
    "MetaRVMConfig",
    "MetaRVMResult",
    "transition_graph",
    "CHICAGO_PLANTS",
    "SyntheticIWSS",
    "WastewaterPlant",
    "default_rt_scenario",
    "shedding_kernel",
]

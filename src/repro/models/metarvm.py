"""MetaRVM: a stochastic metapopulation respiratory-virus model.

Reimplementation of the MetaRVM model [Fadikar et al. 2025] as described in
§3.1.1 and Figure 3 of the paper.  The model "extends the SEIR framework by
introducing additional compartments to capture more detailed disease
progression and heterogeneous mixing across demographic subgroups", with
compartments

    S  Susceptible          Ip  Presymptomatic infectious
    V  Vaccinated           Is  Symptomatic infectious
    E  Exposed              H   Hospitalized
    Ia Asymptomatic         R   Recovered
                            D   Dead

and transitions (daily probabilities ``1 - exp(-rate)``):

- S → E at force of infection scaled by ``ts``; V → E scaled by ``tv``;
- S → V at the vaccination rate; V → S as immunity wanes (mean ``dv`` days);
- E exits after mean ``de`` days, a fraction ``pea`` to Ia, the rest to Ip;
- Ia → R after ``da`` days; Ip → Is after ``dp`` days;
- Is exits after ``ds`` days, fraction ``psh`` to H, rest (``psr``) to R;
- H exits after ``dh`` days, fraction ``phd`` to D, rest to R;
- R → S after mean ``dr`` days (reinfection).

Force of infection for group ``g``:
``λ_g = Σ_k C[g,k] (Ia_k + Ip_k + Is_k) / N_k`` with mixing matrix ``C``.

Performance and reproducibility design
--------------------------------------
The GSA workflows evaluate the model at hundreds of parameter sets **with a
fixed random seed per replicate** ("each replicate generated using a unique
random stream seed value", §3.1.2).  Two requirements follow:

1. *Common random numbers*: for one replicate seed, the stochastic
   realization must be a deterministic function of the parameters, and the
   *same* underlying noise must drive every parameter set, so the QoI is a
   (noisy-but-fixed) deterministic surface the GP surrogate can learn.
2. *Vectorized batches*: a Saltelli reference run needs thousands of
   evaluations.

Both are met by pre-drawing a uniform noise tensor ``U[day, transition,
group]`` from the replicate seed and converting each uniform into a binomial
draw by a hybrid inverse-CDF: a normal quantile approximation where counts
are large (vectorized, exact to ~1/sqrt(n)) and the exact binomial ppf where
counts are small.  A batch of parameter sets shares one ``U`` (common random
numbers) or takes independent slabs (independent replicates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import networkx as nx
import numpy as np
from scipy import special, stats

from repro.common.errors import ValidationError
from repro.common.rng import generator_from_seed
from repro.common.validation import check_array, check_int
from repro.models.interventions import InterventionSchedule
from repro.models.mixing import age_structured_mixing, validate_mixing
from repro.models.parameters import GSA_PARAMETER_SPACE, MetaRVMParams

#: Compartment order used in all state arrays.
COMPARTMENTS: Tuple[str, ...] = ("S", "V", "E", "Ia", "Ip", "Is", "H", "R", "D")
_IDX = {name: i for i, name in enumerate(COMPARTMENTS)}

#: Named noise channels — one uniform per (day, channel, group).
_TRANSITION_CHANNELS: Tuple[str, ...] = (
    "s_to_e",
    "v_to_e",
    "s_to_v",
    "v_to_s",
    "e_out",
    "e_split",
    "ia_to_r",
    "ip_to_is",
    "is_out",
    "is_split",
    "h_out",
    "h_split",
    "r_to_s",
)
N_CHANNELS = len(_TRANSITION_CHANNELS)

#: Threshold below which the exact binomial inverse CDF is used.
_EXACT_VARIANCE_CUTOFF = 25.0


@dataclass(frozen=True)
class MetaRVMConfig:
    """Population structure and horizon of a MetaRVM experiment.

    Attributes
    ----------
    population:
        Individuals per demographic group.
    initial_infections:
        Initially Exposed individuals per group.
    mixing:
        Row-stochastic contact matrix; defaults to an age-structured banded
        matrix over the given groups.
    n_days:
        Simulation horizon (the paper's GSA uses 90 days).
    initial_vaccinated_fraction:
        Fraction of each group starting in V.
    intervention:
        Optional piecewise-constant transmission-multiplier schedule
        (:class:`repro.models.interventions.InterventionSchedule`); scales
        both ``ts`` and ``tv`` day by day.
    """

    population: Tuple[int, ...] = (60_000, 80_000, 70_000, 40_000)
    initial_infections: Tuple[int, ...] = (20, 20, 20, 20)
    mixing: Optional[np.ndarray] = None
    n_days: int = 90
    initial_vaccinated_fraction: float = 0.1
    intervention: Optional["InterventionSchedule"] = None

    def __post_init__(self) -> None:
        pop = np.asarray(self.population, dtype=np.int64)
        if pop.ndim != 1 or pop.size < 1 or np.any(pop <= 0):
            raise ValidationError("population must be positive per group")
        init = np.asarray(self.initial_infections, dtype=np.int64)
        if init.shape != pop.shape or np.any(init < 0) or np.any(init > pop):
            raise ValidationError(
                "initial_infections must be non-negative and at most the population"
            )
        check_int("n_days", self.n_days, minimum=1)
        if not 0.0 <= self.initial_vaccinated_fraction <= 1.0:
            raise ValidationError("initial_vaccinated_fraction must be in [0, 1]")
        mixing = (
            age_structured_mixing(pop.size)
            if self.mixing is None
            else np.asarray(self.mixing, dtype=float)
        )
        validate_mixing(mixing, pop.size)
        object.__setattr__(self, "population", tuple(int(p) for p in pop))
        object.__setattr__(self, "initial_infections", tuple(int(i) for i in init))
        object.__setattr__(self, "mixing", mixing)

    @property
    def n_groups(self) -> int:
        """Number of demographic groups."""
        return len(self.population)

    @property
    def total_population(self) -> int:
        """Total individuals across groups."""
        return int(sum(self.population))


@dataclass
class MetaRVMResult:
    """Outputs of one (or a batch of) MetaRVM run(s).

    Attributes
    ----------
    trajectories:
        Shape (batch, n_days + 1, 9, n_groups): compartment counts per day.
    new_infections, hospital_admissions, deaths_per_day:
        Daily flows, shape (batch, n_days, n_groups).
    """

    config: MetaRVMConfig
    trajectories: np.ndarray
    new_infections: np.ndarray
    hospital_admissions: np.ndarray
    deaths_per_day: np.ndarray

    @property
    def batch_size(self) -> int:
        """Number of parameter sets in this result."""
        return self.trajectories.shape[0]

    def compartment(self, name: str, *, batch: int = 0) -> np.ndarray:
        """Per-day counts of one compartment, summed over groups."""
        if name not in _IDX:
            raise ValidationError(f"unknown compartment {name!r}")
        return self.trajectories[batch, :, _IDX[name], :].sum(axis=-1)

    def total_hospitalizations(self) -> np.ndarray:
        """The paper's GSA quantity of interest: cumulative hospital
        admissions over the horizon, per batch row."""
        return self.hospital_admissions.sum(axis=(1, 2))

    def total_deaths(self) -> np.ndarray:
        """Cumulative deaths per batch row."""
        return self.deaths_per_day.sum(axis=(1, 2))

    def attack_rate(self) -> np.ndarray:
        """Cumulative infections / total population, per batch row."""
        return self.new_infections.sum(axis=(1, 2)) / self.config.total_population

    def peak_hospital_occupancy(self) -> np.ndarray:
        """Maximum simultaneous H count over the horizon, per batch row."""
        h = self.trajectories[:, :, _IDX["H"], :].sum(axis=-1)
        return h.max(axis=1)


def _noise_tensor(seed: int, n_days: int, n_groups: int, batch: int) -> np.ndarray:
    """Uniform noise U of shape (batch, n_days, N_CHANNELS, n_groups).

    ``batch == 1`` with broadcasting gives common random numbers; larger
    batch sizes give independent noise per row.
    Uniforms are clipped away from {0, 1} so normal quantiles stay finite.
    """
    rng = generator_from_seed(seed)
    u = rng.random((batch, n_days, N_CHANNELS, n_groups))
    eps = 1e-12
    return np.clip(u, eps, 1.0 - eps)


def _crn_binomial(n: np.ndarray, p: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Binomial draw from a shared uniform (common-random-number scheme).

    Large-count entries use the normal-quantile approximation
    ``round(np + sqrt(np(1-p)) * Phi^{-1}(u))`` (clipped to [0, n]); entries
    with variance below ``_EXACT_VARIANCE_CUTOFF`` use the exact binomial
    inverse CDF.  Both paths are monotone in ``u``, so a fixed ``u``
    produces outcomes that vary smoothly with (n, p) — the property common
    random numbers exist to provide.
    """
    n_arr, p_arr, u_arr = np.broadcast_arrays(
        np.asarray(n, dtype=float), np.asarray(p, dtype=float), u
    )
    variance = n_arr * p_arr * (1.0 - p_arr)
    z = special.ndtri(u_arr)
    draws = np.rint(n_arr * p_arr + np.sqrt(np.maximum(variance, 0.0)) * z)
    small = variance < _EXACT_VARIANCE_CUTOFF
    if np.any(small):
        exact = stats.binom.ppf(u_arr[small], n_arr[small], p_arr[small])
        draws = draws.copy()
        draws[small] = exact
    return np.clip(draws, 0.0, n_arr)


def _expected_binomial(n: np.ndarray, p: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Deterministic (expected-value) stand-in for :func:`_crn_binomial`."""
    return np.asarray(n, dtype=float) * np.asarray(p, dtype=float)


class MetaRVM:
    """The MetaRVM simulator.

    Parameters
    ----------
    config:
        Population structure and horizon.
    base_params:
        Nominal values for parameters not varied per run.

    Examples
    --------
    >>> model = MetaRVM(MetaRVMConfig(n_days=30))
    >>> result = model.run(MetaRVMParams(), seed=1)
    >>> float(result.total_hospitalizations()[0]) >= 0
    True
    """

    def __init__(
        self,
        config: Optional[MetaRVMConfig] = None,
        base_params: Optional[MetaRVMParams] = None,
    ) -> None:
        self.config = config if config is not None else MetaRVMConfig()
        self.base_params = base_params if base_params is not None else MetaRVMParams()

    # -------------------------------------------------------------- single run
    def run(
        self,
        params: Optional[MetaRVMParams] = None,
        *,
        seed: int = 0,
        stochastic: bool = True,
    ) -> MetaRVMResult:
        """One full simulation with complete trajectories."""
        params = params if params is not None else self.base_params
        theta = {name: np.array([getattr(params, name)]) for name in params.as_dict()}
        return self._simulate(theta, seed=seed, stochastic=stochastic, common_noise=True)

    # --------------------------------------------------------------- batch run
    def run_batch(
        self,
        gsa_matrix: np.ndarray,
        *,
        seed: int = 0,
        stochastic: bool = True,
        common_noise: bool = True,
    ) -> MetaRVMResult:
        """Simulate a batch of Table 1 parameter sets.

        Parameters
        ----------
        gsa_matrix:
            Shape (batch, 5) in :data:`GSA_PARAMETER_SPACE` order
            (ts, tv, pea, psh, phd); remaining parameters come from
            ``base_params``.
        seed:
            Replicate seed.  With ``common_noise=True`` every row is driven
            by the same noise tensor (the fixed-seed GSA setting); with
            ``False`` each row gets independent noise derived from ``seed``.
        """
        gsa = np.atleast_2d(check_array("gsa_matrix", gsa_matrix, finite=True))
        if gsa.shape[1] != GSA_PARAMETER_SPACE.dim:
            raise ValidationError(
                f"gsa_matrix must have {GSA_PARAMETER_SPACE.dim} columns, got {gsa.shape[1]}"
            )
        base = self.base_params.as_dict()
        batch = gsa.shape[0]
        theta = {name: np.full(batch, value) for name, value in base.items()}
        for j, name in enumerate(GSA_PARAMETER_SPACE.names):
            theta[name] = gsa[:, j].astype(float)
        return self._simulate(
            theta, seed=seed, stochastic=stochastic, common_noise=common_noise
        )

    def run_batch_seeded(
        self,
        gsa_matrix: np.ndarray,
        seeds: Sequence[int],
        *,
        stochastic: bool = True,
    ) -> MetaRVMResult:
        """Simulate a batch where every row carries its own replicate seed.

        Row ``i`` is driven by exactly the common-random-number noise tensor
        of ``seed=seeds[i]``, so each output row is bitwise identical to a
        single-row :meth:`run_batch` call at that seed.  This is the batch
        entry point the :mod:`repro.perf` executor uses to evaluate tasks
        from *different* GSA replicates (different seeds) in one vectorized
        pass instead of one simulation per task.
        """
        gsa = np.atleast_2d(check_array("gsa_matrix", gsa_matrix, finite=True))
        if gsa.shape[1] != GSA_PARAMETER_SPACE.dim:
            raise ValidationError(
                f"gsa_matrix must have {GSA_PARAMETER_SPACE.dim} columns, got {gsa.shape[1]}"
            )
        seeds = [int(s) for s in seeds]
        if len(seeds) != gsa.shape[0]:
            raise ValidationError(
                f"need one seed per row: {gsa.shape[0]} rows, {len(seeds)} seeds"
            )
        base = self.base_params.as_dict()
        batch = gsa.shape[0]
        theta = {name: np.full(batch, value) for name, value in base.items()}
        for j, name in enumerate(GSA_PARAMETER_SPACE.names):
            theta[name] = gsa[:, j].astype(float)
        if stochastic:
            # One noise tensor per distinct seed, stacked per row.
            cfg = self.config
            cache: Dict[int, np.ndarray] = {}
            for s in seeds:
                if s not in cache:
                    cache[s] = _noise_tensor(s, cfg.n_days, cfg.n_groups, 1)
            u_tensor = np.concatenate([cache[s] for s in seeds], axis=0)
        else:
            u_tensor = None
        return self._simulate(
            theta, seed=seeds[0], stochastic=stochastic, common_noise=True,
            u_tensor=u_tensor,
        )

    def total_hospitalizations(
        self,
        gsa_matrix: np.ndarray,
        *,
        seed: int = 0,
        stochastic: bool = True,
        common_noise: bool = True,
    ) -> np.ndarray:
        """The GSA QoI for a batch of parameter sets (shape (batch,))."""
        result = self.run_batch(
            gsa_matrix, seed=seed, stochastic=stochastic, common_noise=common_noise
        )
        return result.total_hospitalizations()

    def total_hospitalizations_seeded(
        self, gsa_matrix: np.ndarray, seeds: Sequence[int]
    ) -> np.ndarray:
        """The GSA QoI for a per-row-seeded batch (shape (batch,))."""
        return self.run_batch_seeded(gsa_matrix, seeds).total_hospitalizations()

    # ----------------------------------------------------------------- engine
    def _simulate(
        self,
        theta: Dict[str, np.ndarray],
        *,
        seed: int,
        stochastic: bool,
        common_noise: bool,
        u_tensor: Optional[np.ndarray] = None,
    ) -> MetaRVMResult:
        cfg = self.config
        g = cfg.n_groups
        n_days = cfg.n_days
        batch = int(next(iter(theta.values())).shape[0])
        col = lambda name: theta[name].reshape(batch, 1)

        # Per-day transition probabilities (batch, 1), broadcast over groups.
        p_vax = -np.expm1(-col("vax_rate"))
        p_wane = -np.expm1(-1.0 / col("dv"))
        p_e_out = -np.expm1(-1.0 / col("de"))
        p_ia_out = -np.expm1(-1.0 / col("da"))
        p_ip_out = -np.expm1(-1.0 / col("dp"))
        p_is_out = -np.expm1(-1.0 / col("ds"))
        p_h_out = -np.expm1(-1.0 / col("dh"))
        p_r_out = -np.expm1(-1.0 / col("dr"))
        pea = col("pea")
        psh = col("psh")
        phd = col("phd")
        ts = col("ts")
        tv = col("tv")

        population = np.asarray(cfg.population, dtype=float)  # (g,)
        mixing_t = np.asarray(cfg.mixing, dtype=float).T  # (k, g) for frac @ C.T
        if cfg.intervention is not None:
            transmission_multiplier = cfg.intervention.multiplier_array(n_days)
        else:
            transmission_multiplier = np.ones(n_days)

        # Initial state.
        state = np.zeros((batch, len(COMPARTMENTS), g))
        init_e = np.asarray(cfg.initial_infections, dtype=float)
        init_v = np.floor(cfg.initial_vaccinated_fraction * population)
        init_v = np.minimum(init_v, population - init_e)
        state[:, _IDX["E"], :] = init_e
        state[:, _IDX["V"], :] = init_v
        state[:, _IDX["S"], :] = population - init_e - init_v

        noise_batch = 1 if common_noise else batch
        if stochastic:
            if u_tensor is None:
                u_tensor = _noise_tensor(seed, n_days, g, noise_batch)
            draw = _crn_binomial
        else:
            u_tensor = np.full((1, n_days, N_CHANNELS, g), 0.5)
            draw = _expected_binomial

        trajectories = np.empty((batch, n_days + 1, len(COMPARTMENTS), g))
        trajectories[:, 0] = state
        new_infections = np.empty((batch, n_days, g))
        hospital_admissions = np.empty((batch, n_days, g))
        deaths_per_day = np.empty((batch, n_days, g))

        s_i, v_i, e_i = _IDX["S"], _IDX["V"], _IDX["E"]
        ia_i, ip_i, is_i = _IDX["Ia"], _IDX["Ip"], _IDX["Is"]
        h_i, r_i, d_i = _IDX["H"], _IDX["R"], _IDX["D"]

        for day in range(n_days):
            u = u_tensor[:, day]  # (noise_batch, N_CHANNELS, g)
            S = state[:, s_i]
            V = state[:, v_i]
            E = state[:, e_i]
            Ia = state[:, ia_i]
            Ip = state[:, ip_i]
            Is = state[:, is_i]
            H = state[:, h_i]
            R = state[:, r_i]

            infectious_frac = (Ia + Ip + Is) / population  # (batch, g)
            lam = (infectious_frac @ mixing_t) * transmission_multiplier[day]
            p_se = -np.expm1(-ts * lam)
            p_ve = -np.expm1(-tv * lam)

            s_to_e = draw(S, p_se, u[:, 0])
            v_to_e = draw(V, p_ve, u[:, 1])
            s_to_v = draw(S - s_to_e, p_vax, u[:, 2])
            v_to_s = draw(V - v_to_e, p_wane, u[:, 3])
            e_out = draw(E, p_e_out, u[:, 4])
            e_to_ia = draw(e_out, pea, u[:, 5])
            e_to_ip = e_out - e_to_ia
            ia_to_r = draw(Ia, p_ia_out, u[:, 6])
            ip_to_is = draw(Ip, p_ip_out, u[:, 7])
            is_out = draw(Is, p_is_out, u[:, 8])
            is_to_h = draw(is_out, psh, u[:, 9])
            is_to_r = is_out - is_to_h
            h_out = draw(H, p_h_out, u[:, 10])
            h_to_d = draw(h_out, phd, u[:, 11])
            h_to_r = h_out - h_to_d
            r_to_s = draw(R, p_r_out, u[:, 12])

            state[:, s_i] = S - s_to_e - s_to_v + v_to_s + r_to_s
            state[:, v_i] = V - v_to_e - v_to_s + s_to_v
            state[:, e_i] = E + s_to_e + v_to_e - e_out
            state[:, ia_i] = Ia + e_to_ia - ia_to_r
            state[:, ip_i] = Ip + e_to_ip - ip_to_is
            state[:, is_i] = Is + ip_to_is - is_out
            state[:, h_i] = H + is_to_h - h_out
            state[:, r_i] = R + ia_to_r + is_to_r + h_to_r - r_to_s
            state[:, d_i] += h_to_d

            trajectories[:, day + 1] = state
            new_infections[:, day] = s_to_e + v_to_e
            hospital_admissions[:, day] = is_to_h
            deaths_per_day[:, day] = h_to_d

        return MetaRVMResult(
            config=cfg,
            trajectories=trajectories,
            new_infections=new_infections,
            hospital_admissions=hospital_admissions,
            deaths_per_day=deaths_per_day,
        )


def transition_graph() -> nx.DiGraph:
    """The Figure 3 compartment/transition graph, with parameter labels.

    Nodes are the nine compartments; each edge carries the parameters that
    govern it (rates and branch probabilities).  The Figure 3 benchmark
    asserts this structure matches the paper.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(COMPARTMENTS)
    edges = [
        ("S", "E", "ts"),
        ("V", "E", "tv"),
        ("S", "V", "vax_rate"),
        ("V", "S", "1/dv"),
        ("E", "Ia", "pea, 1/de"),
        ("E", "Ip", "1-pea, 1/de"),
        ("Ia", "R", "1/da"),
        ("Ip", "Is", "1/dp"),
        ("Is", "R", "psr, 1/ds"),
        ("Is", "H", "psh, 1/ds"),
        ("H", "R", "1-phd, 1/dh"),
        ("H", "D", "phd, 1/dh"),
        ("R", "S", "1/dr"),
    ]
    for src, dst, label in edges:
        graph.add_edge(src, dst, parameters=label)
    return graph

"""Parameter spaces and the MetaRVM parameter set.

Table 1 of the paper defines the GSA experiment's uncertain inputs:

=========  ==================================  ===========
Parameter  Description                         Range
=========  ==================================  ===========
ts         Transmission rate for susceptible   (0.1, 0.9)
tv         Transmission rate for vaccinated    (0.01, 0.5)
pea        Proportion of asymptomatic cases    (0.4, 0.9)
psh        Proportion of hospitalized          (0.1, 0.4)
phd        Proportion of dead                  (0, 0.3)
=========  ==================================  ===========

"Five of the MetaRVM model parameters are treated as uncertain within their
specified ranges, while the remaining parameters are fixed at nominal
values." (§3.1.2) — :data:`GSA_PARAMETER_SPACE` is that space and
:class:`MetaRVMParams` carries the full set with nominal values.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from repro.common.errors import ValidationError
from repro.common.validation import check_array, check_interval


class ParameterSpace:
    """An ordered box of named continuous parameters.

    Provides scaling between the unit hypercube (where designs and
    surrogates operate) and natural units (what the model consumes).
    """

    def __init__(
        self,
        parameters: Sequence[Tuple[str, Tuple[float, float]]],
        descriptions: Mapping[str, str] | None = None,
    ) -> None:
        if not parameters:
            raise ValidationError("a parameter space needs at least one parameter")
        names = [name for name, _ in parameters]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate parameter names: {names}")
        self._names: List[str] = names
        self._bounds = np.array(
            [check_interval(name, bounds) for name, bounds in parameters], dtype=float
        )
        self._descriptions = dict(descriptions or {})

    # ------------------------------------------------------------------ views
    @property
    def names(self) -> List[str]:
        """Parameter names, in order."""
        return list(self._names)

    @property
    def dim(self) -> int:
        """Number of parameters."""
        return len(self._names)

    @property
    def bounds(self) -> np.ndarray:
        """Array of shape (dim, 2): [low, high] per parameter."""
        return self._bounds.copy()

    def description(self, name: str) -> str:
        """Human-readable description of a parameter (may be empty)."""
        return self._descriptions.get(name, "")

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._names

    # -------------------------------------------------------------- transforms
    def scale(self, unit: np.ndarray) -> np.ndarray:
        """Map points from the unit cube to natural units.

        ``unit`` has shape (n, dim) or (dim,); values must be in [0, 1].
        """
        unit = np.atleast_2d(check_array("unit", unit, finite=True))
        if unit.shape[-1] != self.dim:
            raise ValidationError(f"expected {self.dim} columns, got {unit.shape[-1]}")
        if unit.min() < -1e-12 or unit.max() > 1 + 1e-12:
            raise ValidationError("unit-cube coordinates must lie in [0, 1]")
        low = self._bounds[:, 0]
        high = self._bounds[:, 1]
        return low + np.clip(unit, 0.0, 1.0) * (high - low)

    def unscale(self, natural: np.ndarray) -> np.ndarray:
        """Map points from natural units to the unit cube."""
        natural = np.atleast_2d(check_array("natural", natural, finite=True))
        if natural.shape[-1] != self.dim:
            raise ValidationError(f"expected {self.dim} columns, got {natural.shape[-1]}")
        low = self._bounds[:, 0]
        high = self._bounds[:, 1]
        unit = (natural - low) / (high - low)
        if unit.min() < -1e-9 or unit.max() > 1 + 1e-9:
            raise ValidationError("point lies outside the parameter space")
        return np.clip(unit, 0.0, 1.0)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform random sample of ``n`` points, in natural units."""
        if n < 1:
            raise ValidationError("sample size must be >= 1")
        return self.scale(rng.random((n, self.dim)))

    def to_dicts(self, natural: np.ndarray) -> List[Dict[str, float]]:
        """Rows of a design matrix as name→value dicts (task payloads)."""
        natural = np.atleast_2d(np.asarray(natural, dtype=float))
        return [dict(zip(self._names, row.tolist())) for row in natural]

    def from_dict(self, values: Mapping[str, float]) -> np.ndarray:
        """One point from a name→value mapping, in parameter order."""
        missing = set(self._names) - set(values)
        if missing:
            raise ValidationError(f"missing parameters: {sorted(missing)}")
        return np.array([float(values[name]) for name in self._names])


#: The paper's Table 1: the five uncertain MetaRVM parameters for GSA.
GSA_PARAMETER_SPACE = ParameterSpace(
    [
        ("ts", (0.1, 0.9)),
        ("tv", (0.01, 0.5)),
        ("pea", (0.4, 0.9)),
        ("psh", (0.1, 0.4)),
        ("phd", (0.0, 0.3)),
    ],
    descriptions={
        "ts": "Transmission rate for susceptible",
        "tv": "Transmission rate for vaccinated",
        "pea": "Proportion of asymptomatic cases",
        "psh": "Proportion of hospitalized",
        "phd": "Proportion of dead",
    },
)


def table1_rows() -> List[Tuple[str, str, str]]:
    """The rows of the paper's Table 1, as (parameter, description, range)."""
    rows = []
    for name in GSA_PARAMETER_SPACE:
        low, high = GSA_PARAMETER_SPACE.bounds[GSA_PARAMETER_SPACE.names.index(name)]
        fmt = lambda x: f"{x:g}"
        rows.append(
            (name, GSA_PARAMETER_SPACE.description(name), f"({fmt(low)}, {fmt(high)})")
        )
    return rows


@dataclass(frozen=True)
class MetaRVMParams:
    """Full MetaRVM parameter set (Figure 3 of the paper).

    Rates are per day; proportions are probabilities.  Nominal values are
    the fixed settings used when a parameter is *not* in the GSA space.

    Attributes
    ----------
    ts, tv:
        Transmission rates for Susceptible and Vaccinated individuals.
    ve:
        Vaccine efficacy — Vaccinated face "a reduced probability of
        infection"; the effective vaccinated exposure rate is
        ``tv * (1 - ve)`` when tv is interpreted as a base rate.  Following
        the paper's Table 1 (which varies ``tv`` directly), our force of
        infection for V uses ``tv`` alone and ``ve`` is retained for the
        vaccination-uptake pathway.
    dv:
        Mean days until vaccine-conferred immunity wanes (V → S).
    de:
        Mean days in Exposed before becoming infectious.
    pea:
        Proportion of exposed who become Asymptomatic (rest Presymptomatic).
    da, dp, ds:
        Mean days spent Asymptomatic, Presymptomatic, Symptomatic.
    psh:
        Proportion of symptomatic who are hospitalized (``1 - psr``).
    dh:
        Mean days hospitalized.
    phd:
        Proportion of hospitalized who die.
    dr:
        Mean days until Recovered return to Susceptible (reinfection).
    vax_rate:
        Daily per-capita vaccination rate (S → V).
    """

    ts: float = 0.5
    tv: float = 0.2
    ve: float = 0.6
    dv: float = 180.0
    de: float = 3.0
    pea: float = 0.6
    da: float = 5.0
    dp: float = 2.0
    ds: float = 5.0
    psh: float = 0.2
    dh: float = 7.0
    phd: float = 0.1
    dr: float = 120.0
    vax_rate: float = 0.002

    def __post_init__(self) -> None:
        for name in ("ts", "tv", "vax_rate"):
            value = getattr(self, name)
            if value < 0:
                raise ValidationError(f"{name} must be >= 0, got {value}")
        for name in ("pea", "psh", "phd", "ve"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValidationError(f"{name} must be in [0, 1], got {value}")
        for name in ("dv", "de", "da", "dp", "ds", "dh", "dr"):
            value = getattr(self, name)
            if value <= 0:
                raise ValidationError(f"{name} must be > 0 days, got {value}")

    def with_updates(self, **updates: float) -> "MetaRVMParams":
        """A copy with the given fields replaced (validated)."""
        valid = {f.name for f in fields(self)}
        unknown = set(updates) - valid
        if unknown:
            raise ValidationError(f"unknown MetaRVM parameters: {sorted(unknown)}")
        return replace(self, **updates)

    def with_gsa_values(self, values: Mapping[str, float] | np.ndarray) -> "MetaRVMParams":
        """A copy with the Table 1 parameters set from a GSA point.

        ``values`` is either a name→value mapping or an array in
        :data:`GSA_PARAMETER_SPACE` order.
        """
        if isinstance(values, Mapping):
            point = {name: float(values[name]) for name in GSA_PARAMETER_SPACE}
        else:
            arr = np.asarray(values, dtype=float).ravel()
            if arr.size != GSA_PARAMETER_SPACE.dim:
                raise ValidationError(
                    f"expected {GSA_PARAMETER_SPACE.dim} GSA values, got {arr.size}"
                )
            point = dict(zip(GSA_PARAMETER_SPACE.names, arr.tolist()))
        return self.with_updates(**point)

    def as_dict(self) -> Dict[str, float]:
        """All parameters as a plain dict (payloads, provenance)."""
        return {f.name: float(getattr(self, f.name)) for f in fields(self)}

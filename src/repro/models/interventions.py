"""Time-varying transmission: intervention schedules for MetaRVM.

The deployed MetaRVM framework tracks policy scenarios — the paper's
motivating use ("detecting trends in community disease transmission and
informing policy interventions").  An :class:`InterventionSchedule` is a
piecewise-constant multiplier on the transmission rates (ts and tv): 1.0 is
baseline, 0.6 models a mitigation period, 1.2 a relaxation rebound.  It
composes with the GSA machinery unchanged (the multiplier applies on top of
whatever ``ts``/``tv`` a parameter set carries) and is JSON-serializable so
schedules can travel through EMEWS task payloads and AERO artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.common.errors import ValidationError
from repro.common.validation import check_int


@dataclass(frozen=True)
class InterventionSchedule:
    """Piecewise-constant transmission multipliers.

    Attributes
    ----------
    phases:
        ``(start_day, multiplier)`` pairs; days before the first start use
        multiplier 1.0.  Starts must be strictly increasing and multipliers
        non-negative.

    Examples
    --------
    >>> schedule = InterventionSchedule(phases=((20, 0.6), (60, 1.1)))
    >>> schedule.multiplier(10), schedule.multiplier(30), schedule.multiplier(90)
    (1.0, 0.6, 1.1)
    """

    phases: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        phases = tuple((float(start), float(mult)) for start, mult in self.phases)
        starts = [start for start, _ in phases]
        if starts != sorted(starts) or len(set(starts)) != len(starts):
            raise ValidationError("intervention starts must be strictly increasing")
        if any(mult < 0 for _, mult in phases):
            raise ValidationError("transmission multipliers must be non-negative")
        object.__setattr__(self, "phases", phases)

    def multiplier(self, day: float) -> float:
        """The transmission multiplier in effect on ``day``."""
        current = 1.0
        for start, mult in self.phases:
            if day >= start:
                current = mult
            else:
                break
        return current

    def multiplier_array(self, n_days: int) -> np.ndarray:
        """Daily multipliers for days 0..n_days-1 (vectorized lookup)."""
        n_days = check_int("n_days", n_days, minimum=1)
        out = np.ones(n_days)
        for start, mult in self.phases:
            idx = int(np.ceil(start))
            if idx < n_days:
                out[max(idx, 0) :] = mult
        return out

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, List[List[float]]]:
        """JSON-serializable representation."""
        return {"phases": [[start, mult] for start, mult in self.phases]}

    @classmethod
    def from_dict(cls, payload: Dict[str, Sequence[Sequence[float]]]) -> "InterventionSchedule":
        """Inverse of :meth:`to_dict`."""
        return cls(phases=tuple((p[0], p[1]) for p in payload.get("phases", ())))


def lockdown_scenario(
    start: float = 30.0, duration: float = 30.0, strength: float = 0.5
) -> InterventionSchedule:
    """A single mitigation period followed by full relaxation."""
    if duration <= 0:
        raise ValidationError("lockdown duration must be positive")
    if not 0.0 <= strength <= 1.0:
        raise ValidationError("lockdown strength must be in [0, 1]")
    return InterventionSchedule(phases=((start, 1.0 - strength), (start + duration, 1.0)))

"""Synthetic wastewater pathogen-concentration surveillance.

The paper's first use case ingests "wastewater data from Chicago-area water
reclamation plants" via the Illinois Wastewater Surveillance System: the
O'Brien, Calumet, Stickney South, and Stickney North plants (§2.1–2.2).
That live feed is unavailable offline, so this module generates a synthetic
equivalent with *known ground truth*:

1. a regional ground-truth R(t) trajectory (:func:`default_rt_scenario`),
   slightly perturbed per plant;
2. latent infection incidence from the renewal equation with Poisson
   demographic noise, scaled to each plant's served population;
3. viral shedding: expected pathogen genome concentration is the
   incidence convolved with a gamma shedding-load kernel, per capita;
4. measurement: log-normal observation noise, sampling every few days, and
   occasional missing samples — the "noisy ... complicated dynamics" the
   paper highlights.

:class:`SyntheticIWSS` exposes the result as a *growing CSV feed*: content
up to simulated day ``t`` is a deterministic function of ``t``, so AERO's
checksum-based change detection works exactly as against the real IWSS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import NotFoundError, ValidationError
from repro.common.rng import RngRegistry
from repro.common.timeseries import TimeSeries
from repro.common.validation import check_int, check_positive
from repro.models.seir import discretized_gamma, renewal_incidence


@dataclass(frozen=True)
class WastewaterPlant:
    """One water reclamation plant.

    ``population`` is the population served (used for the paper's
    population-weighted ensemble); ``noise_sigma`` is the log-scale
    measurement noise; ``sample_interval`` the days between samples.
    """

    name: str
    population: int
    noise_sigma: float = 0.35
    sample_interval: int = 2
    missing_rate: float = 0.05

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("plant name must be non-empty")
        check_int("population", self.population, minimum=1)
        check_positive("noise_sigma", self.noise_sigma)
        check_int("sample_interval", self.sample_interval, minimum=1)
        if not 0.0 <= self.missing_rate < 1.0:
            raise ValidationError("missing_rate must be in [0, 1)")


#: The four Chicago-area plants of the paper, with approximate service
#: populations (synthetic values of realistic magnitude; the real MWRD
#: service areas are of this order).
CHICAGO_PLANTS: Tuple[WastewaterPlant, ...] = (
    WastewaterPlant("obrien", population=1_300_000),
    WastewaterPlant("calumet", population=1_000_000),
    WastewaterPlant("stickney-south", population=1_200_000, noise_sigma=0.4),
    WastewaterPlant("stickney-north", population=1_100_000, noise_sigma=0.4),
)


def shedding_kernel(
    mean: float = 9.0, sd: float = 4.0, n_days: int = 30
) -> np.ndarray:
    """Discretized gamma shedding-load profile over days since infection.

    An infected individual's expected contribution to wastewater viral load
    peaks about a week after infection and decays over ~a month, matching
    the shape used in wastewater R(t) models (e.g. Goldstein et al. 2024).
    """
    return discretized_gamma(mean, sd, n_days)


def default_rt_scenario(n_days: int = 150) -> np.ndarray:
    """Regional ground-truth R(t): an epidemic wave, control, and rebound.

    Smooth (sum-of-sigmoids) so the semiparametric estimator's smoothness
    prior is well-matched: starts near 1.4, is pushed below 1, rebounds
    above 1, and settles near 1 — crossing the R = 1 policy threshold twice.
    """
    n_days = check_int("n_days", n_days, minimum=10)
    t = np.arange(n_days, dtype=float)

    def sigmoid(center: float, scale: float) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-(t - center) / scale))

    rt = (
        1.4
        - 0.7 * sigmoid(0.30 * n_days, 0.04 * n_days)
        + 0.5 * sigmoid(0.60 * n_days, 0.05 * n_days)
        - 0.2 * sigmoid(0.85 * n_days, 0.04 * n_days)
    )
    return np.maximum(rt, 0.05)


@dataclass(frozen=True)
class PlantDataset:
    """The complete synthetic record for one plant.

    Attributes
    ----------
    concentrations:
        Observed log-concentration time series (NaN = missing sample).
    true_rt:
        The plant's ground-truth R(t), daily.
    true_incidence:
        The latent daily infection counts that generated the signal.
    """

    plant: WastewaterPlant
    concentrations: TimeSeries
    true_rt: TimeSeries
    true_incidence: np.ndarray


class SyntheticIWSS:
    """Synthetic Illinois Wastewater Surveillance System.

    Generates, at construction, the full-horizon dataset for each plant
    from a root seed (deterministic), then serves growing per-plant CSV
    feeds via :meth:`csv_feed` — the content visible at day ``t`` is all
    samples taken on or before ``t``.

    Parameters
    ----------
    plants:
        Plants to simulate (defaults to the paper's four Chicago plants).
    n_days:
        Full data horizon.
    seed:
        Root seed; every plant stream derives deterministically from it.
    incidence_scale:
        Fraction of the served population participating in transmission
        (keeps synthetic epidemics at realistic incidence magnitudes).
    concentration_scale:
        Copies shed per infection, converting per-capita infection load to
        a concentration-like unit.
    """

    def __init__(
        self,
        plants: Sequence[WastewaterPlant] = CHICAGO_PLANTS,
        *,
        n_days: int = 150,
        seed: int = 2024,
        incidence_scale: float = 0.01,
        concentration_scale: float = 1e5,
        rt_scenario: Optional[np.ndarray] = None,
    ) -> None:
        if not plants:
            raise ValidationError("at least one plant is required")
        self.n_days = check_int("n_days", n_days, minimum=10)
        self.plants: Tuple[WastewaterPlant, ...] = tuple(plants)
        names = [p.name for p in self.plants]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate plant names: {names}")
        check_positive("incidence_scale", incidence_scale)
        check_positive("concentration_scale", concentration_scale)
        regional_rt = (
            default_rt_scenario(n_days) if rt_scenario is None else np.asarray(rt_scenario, float)
        )
        if regional_rt.shape != (n_days,):
            raise ValidationError(f"rt_scenario must have length {n_days}")
        self.regional_rt = regional_rt
        self._registry = RngRegistry(seed)
        self._kernel = shedding_kernel()
        self._datasets: Dict[str, PlantDataset] = {
            plant.name: self._generate_plant(
                plant, incidence_scale, concentration_scale
            )
            for plant in self.plants
        }

    # -------------------------------------------------------------- generation
    def _generate_plant(
        self,
        plant: WastewaterPlant,
        incidence_scale: float,
        concentration_scale: float,
    ) -> PlantDataset:
        rng = self._registry.stream(f"iwss/{plant.name}")
        # Plant-specific smooth perturbation of the regional R(t).
        t = np.arange(self.n_days, dtype=float)
        phase = rng.uniform(0, 2 * np.pi)
        amp = rng.uniform(0.02, 0.06)
        rt = np.maximum(
            self.regional_rt * (1.0 + amp * np.sin(2 * np.pi * t / 60.0 + phase)), 0.05
        )
        # Latent incidence in the participating population.  Seeding is
        # large enough that demographic (Poisson) noise perturbs rather than
        # dominates the epidemic, so the realized R(t) tracks the scenario.
        effective_pop = plant.population * incidence_scale
        seed_incidence = max(50.0, effective_pop * 2e-3)
        incidence = renewal_incidence(
            rt, discretized_gamma(6.0, 3.0, 21), seed_incidence=seed_incidence, rng=rng
        )
        # Expected concentration: per-capita shedding load.
        load = np.convolve(incidence, self._kernel)[: self.n_days]
        expected = concentration_scale * load / plant.population
        # Observation: sample every `interval` days, lognormal noise, missing.
        sample_days = np.arange(1, self.n_days, plant.sample_interval, dtype=float)
        idx = sample_days.astype(int)
        noise = rng.normal(0.0, plant.noise_sigma, size=idx.size)
        observed = expected[idx] * np.exp(noise)
        missing = rng.random(idx.size) < plant.missing_rate
        observed = np.where(missing, np.nan, observed)
        # Floor so log transforms downstream never see exact zero.
        observed = np.where(np.isfinite(observed), np.maximum(observed, 1e-8), observed)
        concentrations = TimeSeries(
            sample_days,
            observed,
            name=f"{plant.name}-concentration",
            meta={
                "plant": plant.name,
                "population": plant.population,
                "units": "genome copies / person (synthetic)",
            },
        )
        true_rt = TimeSeries(t, rt, name=f"{plant.name}-true-rt")
        return PlantDataset(
            plant=plant,
            concentrations=concentrations,
            true_rt=true_rt,
            true_incidence=incidence,
        )

    # ------------------------------------------------------------------ access
    def plant_names(self) -> List[str]:
        """Names of the simulated plants."""
        return [p.name for p in self.plants]

    def dataset(self, plant_name: str) -> PlantDataset:
        """Full-horizon dataset for one plant."""
        try:
            return self._datasets[plant_name]
        except KeyError:
            raise NotFoundError(f"unknown plant {plant_name!r}") from None

    def observations_until(self, plant_name: str, day: float) -> TimeSeries:
        """Samples taken on or before ``day`` (what a poller would see)."""
        return self.dataset(plant_name).concentrations.slice(-np.inf, day)

    def csv_feed(self, plant_name: str, day: float) -> str:
        """The plant's CSV feed as visible at simulated ``day``.

        Format is the :meth:`repro.common.timeseries.TimeSeries.to_csv`
        two-column layout; missing samples have an empty value field, like
        real surveillance exports.
        """
        return self.observations_until(plant_name, day).to_csv()

    def population_weights(self) -> Dict[str, float]:
        """Normalized population weights (the ensemble weighting)."""
        total = float(sum(p.population for p in self.plants))
        return {p.name: p.population / total for p in self.plants}

"""SEIR substrate: compartmental dynamics and renewal-equation incidence.

Three tools the rest of the library builds on:

- :func:`seir_deterministic` / :func:`seir_stochastic` — the basic SEIR
  model the paper describes as the foundation MetaRVM extends.
- :func:`renewal_incidence` — infection incidence driven by a *time-varying
  reproduction number* through the renewal equation
  ``I_t = R_t * sum_s w_s I_{t-s}`` with generation-interval pmf ``w``.
  This is the latent-epidemic engine of the synthetic wastewater generator
  (known ground-truth R(t)) and the mechanistic core of the Goldstein
  estimator's forward model.
- :func:`discretized_gamma` — discretized gamma pmfs for generation
  intervals and shedding-load kernels.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
from scipy import stats

from repro.common.errors import ValidationError
from repro.common.validation import check_array, check_int, check_positive


@dataclass(frozen=True)
class SEIRParams:
    """Parameters of the basic SEIR model.

    ``beta`` is the transmission rate per day; ``de``/``di`` are mean days
    in the Exposed and Infectious compartments.  The basic reproduction
    number is ``R0 = beta * di``.
    """

    beta: float = 0.4
    de: float = 3.0
    di: float = 5.0

    def __post_init__(self) -> None:
        check_positive("beta", self.beta, strict=False)
        check_positive("de", self.de)
        check_positive("di", self.di)

    @property
    def r0(self) -> float:
        """Basic reproduction number ``beta * di``."""
        return self.beta * self.di


def seir_deterministic(
    params: SEIRParams,
    population: float,
    initial_infected: float,
    n_days: int,
    *,
    steps_per_day: int = 4,
) -> Dict[str, np.ndarray]:
    """Deterministic SEIR via fixed-step RK4-free Euler sub-stepping.

    Returns arrays of length ``n_days + 1`` for S, E, I, R and the daily
    new-infection incidence (length ``n_days``).
    """
    n_days = check_int("n_days", n_days, minimum=1)
    steps = check_int("steps_per_day", steps_per_day, minimum=1)
    population = check_positive("population", population)
    if not 0 <= initial_infected <= population:
        raise ValidationError("initial_infected must be in [0, population]")
    dt = 1.0 / steps
    s, e, i, r = population - initial_infected, 0.0, initial_infected, 0.0
    S = np.empty(n_days + 1)
    E = np.empty(n_days + 1)
    I = np.empty(n_days + 1)
    R = np.empty(n_days + 1)
    incidence = np.zeros(n_days)
    S[0], E[0], I[0], R[0] = s, e, i, r
    for day in range(n_days):
        new_inf_today = 0.0
        for _ in range(steps):
            foi = params.beta * i / population
            new_e = foi * s * dt
            new_i = e / params.de * dt
            new_r = i / params.di * dt
            s -= new_e
            e += new_e - new_i
            i += new_i - new_r
            r += new_r
            new_inf_today += new_e
        S[day + 1], E[day + 1], I[day + 1], R[day + 1] = s, e, i, r
        incidence[day] = new_inf_today
    return {"S": S, "E": E, "I": I, "R": R, "incidence": incidence}


def seir_stochastic(
    params: SEIRParams,
    population: int,
    initial_infected: int,
    n_days: int,
    rng: np.random.Generator,
) -> Dict[str, np.ndarray]:
    """Chain-binomial stochastic SEIR (daily time step).

    Transition probabilities are ``1 - exp(-rate)`` per day.  Returns
    integer compartment trajectories and daily new-infection counts.
    """
    n_days = check_int("n_days", n_days, minimum=1)
    population = check_int("population", population, minimum=1)
    initial_infected = check_int("initial_infected", initial_infected, minimum=0)
    if initial_infected > population:
        raise ValidationError("initial_infected exceeds population")
    s, e, i, r = population - initial_infected, 0, initial_infected, 0
    S = np.empty(n_days + 1, dtype=np.int64)
    E = np.empty(n_days + 1, dtype=np.int64)
    I = np.empty(n_days + 1, dtype=np.int64)
    R = np.empty(n_days + 1, dtype=np.int64)
    incidence = np.zeros(n_days, dtype=np.int64)
    S[0], E[0], I[0], R[0] = s, e, i, r
    p_ei = 1.0 - np.exp(-1.0 / params.de)
    p_ir = 1.0 - np.exp(-1.0 / params.di)
    for day in range(n_days):
        p_se = 1.0 - np.exp(-params.beta * i / population)
        new_e = rng.binomial(s, p_se)
        new_i = rng.binomial(e, p_ei)
        new_r = rng.binomial(i, p_ir)
        s -= new_e
        e += new_e - new_i
        i += new_i - new_r
        r += new_r
        S[day + 1], E[day + 1], I[day + 1], R[day + 1] = s, e, i, r
        incidence[day] = new_e
    return {"S": S, "E": E, "I": I, "R": R, "incidence": incidence}


@functools.lru_cache(maxsize=256)
def _discretized_gamma_cached(shape: float, scale: float, n_days: int) -> np.ndarray:
    """Shared read-only pmf keyed on the gamma's (shape, scale, length).

    Every estimator construction in the R(t) hot path (one per MCMC
    analysis, one per synthetic plant, ...) asks for the same handful of
    generation-interval and shedding kernels; the ``gamma.cdf`` evaluation
    dominates, so it is computed once per distinct key.  The cached array is
    frozen — callers receive copies.
    """
    edges = np.arange(0, n_days + 1, dtype=float)
    cdf = stats.gamma.cdf(edges, a=shape, scale=scale)
    pmf = np.diff(cdf)
    total = pmf.sum()
    if total <= 0:
        raise ValidationError("gamma discretization produced zero mass; widen n_days")
    pmf /= total
    pmf.setflags(write=False)
    return pmf


def discretized_gamma(mean: float, sd: float, n_days: int) -> np.ndarray:
    """Discretize a Gamma(mean, sd) density onto days 1..n_days.

    Day ``s`` carries the probability mass of the interval ``[s-1, s]``
    (shifted so no mass sits at lag zero — an individual cannot infect, or
    shed, before the day after infection).  The pmf is renormalized to sum
    to 1 over the window.  Results are memoized on the distribution's
    ``(shape, scale, n_days)`` key; each call returns a fresh writable copy.
    """
    mean = check_positive("mean", mean)
    sd = check_positive("sd", sd)
    n_days = check_int("n_days", n_days, minimum=1)
    shape = (mean / sd) ** 2
    scale = sd**2 / mean
    return _discretized_gamma_cached(float(shape), float(scale), int(n_days)).copy()


def renewal_incidence(
    rt: np.ndarray,
    generation_interval: np.ndarray,
    *,
    seed_incidence: float = 10.0,
    seed_days: int = 7,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Incidence from the renewal equation with time-varying R(t).

    ``I_t = R_t * sum_{s>=1} w_s I_{t-s}`` for ``t >= seed_days``, where the
    first ``seed_days`` days are seeded at ``seed_incidence``.  If ``rng``
    is given, each day's expected incidence is replaced by a Poisson draw
    (demographic stochasticity); otherwise the expectation is returned.

    Parameters
    ----------
    rt:
        R(t) values for every simulated day (length = horizon).
    generation_interval:
        Pmf over lags 1..len(w), as from :func:`discretized_gamma`.

    Returns
    -------
    ndarray
        Daily incidence, same length as ``rt``.
    """
    rt = check_array("rt", rt, ndim=1, finite=True)
    w = check_array("generation_interval", generation_interval, ndim=1, finite=True)
    if np.any(rt < 0):
        raise ValidationError("R(t) must be non-negative")
    if np.any(w < 0) or not np.isclose(w.sum(), 1.0, atol=1e-6):
        raise ValidationError("generation interval must be a pmf summing to 1")
    seed_days = check_int("seed_days", seed_days, minimum=1)
    seed_incidence = check_positive("seed_incidence", seed_incidence, strict=False)
    horizon = rt.size
    incidence = np.zeros(horizon)
    upto = min(seed_days, horizon)
    if rng is None:
        incidence[:upto] = seed_incidence
    else:
        incidence[:upto] = rng.poisson(seed_incidence, size=upto)
    max_lag = w.size
    for t in range(upto, horizon):
        lags = min(t, max_lag)
        pressure = float(incidence[t - lags : t] @ w[:lags][::-1])
        expected = rt[t] * pressure
        incidence[t] = expected if rng is None else rng.poisson(expected)
    return incidence


def case_reproduction_number(
    incidence: np.ndarray, generation_interval: np.ndarray
) -> np.ndarray:
    """Invert the renewal equation: the R(t) implied by an incidence curve.

    Returns NaN where the infection pressure is zero.  Used in tests to
    check that :func:`renewal_incidence` and estimation code agree.
    """
    incidence = check_array("incidence", incidence, ndim=1)
    w = check_array("generation_interval", generation_interval, ndim=1)
    horizon = incidence.size
    out = np.full(horizon, np.nan)
    max_lag = w.size
    for t in range(1, horizon):
        lags = min(t, max_lag)
        pressure = float(incidence[t - lags : t] @ w[:lags][::-1])
        if pressure > 0:
            out[t] = incidence[t] / pressure
    return out

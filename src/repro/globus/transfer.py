"""Simulated Globus Transfer: asynchronous copies between collections.

AERO ingestion flows upload raw and transformed data to Globus collections,
and analysis flows download inputs to compute staging areas (§2.2).  Those
movements are third-party transfers: a client asks the transfer service to
copy ``src_collection:path`` to ``dst_collection:path``, gets a task handle
back, and the copy completes later.

The simulation models latency as ``base_latency + size / bandwidth`` on the
shared simulated clock, which is enough to exercise the asynchrony (a flow
must not read its input before the staging transfer completes) and to make
transfer time visible in workflow timing reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional

from repro.common.errors import NotFoundError, ReproError, StateError, ValidationError
from repro.globus.auth import AuthService, Token
from repro.globus.collections import StorageService
from repro.sim import SimulationEnvironment


class TransferStatus(Enum):
    """Lifecycle states of a transfer task."""

    ACTIVE = "active"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


@dataclass
class TransferTask:
    """Handle for one submitted transfer."""

    task_id: str
    source_uri: str
    dest_uri: str
    size: int
    submitted_at: float
    status: TransferStatus = TransferStatus.ACTIVE
    completed_at: Optional[float] = None
    error: Optional[str] = None

    @property
    def done(self) -> bool:
        """True once the transfer succeeded or failed."""
        return self.status is not TransferStatus.ACTIVE


class TransferService:
    """In-process Globus Transfer replacement.

    Parameters
    ----------
    bandwidth_bytes_per_day:
        Simulated throughput.  The default (86.4 GB per simulated day, i.e.
        1 MB/s) makes the small surveillance files effectively instant while
        keeping latency strictly positive, preserving event ordering.
    base_latency_days:
        Fixed per-transfer setup latency (control-channel overhead).
    """

    def __init__(
        self,
        auth: AuthService,
        storage: StorageService,
        env: SimulationEnvironment,
        *,
        bandwidth_bytes_per_day: float = 86.4e9,
        base_latency_days: float = 1e-4,
    ) -> None:
        if bandwidth_bytes_per_day <= 0 or base_latency_days < 0:
            raise ValidationError("bandwidth must be > 0 and base latency >= 0")
        self._auth = auth
        self._storage = storage
        self._env = env
        self._bandwidth = float(bandwidth_bytes_per_day)
        self._base_latency = float(base_latency_days)
        self._tasks: Dict[str, TransferTask] = {}
        self._counter = 0
        self._bytes_moved = 0

    # ---------------------------------------------------------------- submit
    def submit(
        self,
        token: Token,
        source_uri: str,
        dest_uri: str,
        *,
        on_complete: Optional[Callable[[TransferTask], None]] = None,
    ) -> TransferTask:
        """Submit an asynchronous copy from ``source_uri`` to ``dest_uri``.

        The token must carry the ``transfer`` scope and grant read access on
        the source and write access on the destination collection.  The data
        itself is read at submission (the source version as of now is what
        gets copied, even if the source is later overwritten) and written at
        completion time — matching Globus checkpoint-restart semantics
        closely enough for the workflows here.
        """
        self._auth.validate(token, "transfer")
        src_collection, src_path = self._storage.resolve_uri(source_uri)
        dst_collection, dst_path = self._storage.resolve_uri(dest_uri)

        self._counter += 1
        task = TransferTask(
            task_id=f"transfer-{self._counter:08d}",
            source_uri=source_uri,
            dest_uri=dest_uri,
            size=0,
            submitted_at=self._env.now,
        )
        self._tasks[task.task_id] = task

        try:
            data = src_collection.get(token, src_path)
        except ReproError as exc:
            # Missing source or no read permission: the task exists, then
            # fails (failure is observed on the task, as with real Globus).
            task.status = TransferStatus.FAILED
            task.error = str(exc)
            task.completed_at = self._env.now
            return task

        task.size = len(data)
        delay = self._base_latency + len(data) / self._bandwidth

        def _complete() -> None:
            try:
                dst_collection.put(token, dst_path, data)
            except Exception as exc:  # authorization or validation failures
                task.status = TransferStatus.FAILED
                task.error = str(exc)
            else:
                task.status = TransferStatus.SUCCEEDED
                self._bytes_moved += task.size
            task.completed_at = self._env.now
            if on_complete is not None:
                on_complete(task)

        self._env.schedule(delay, _complete, label=f"{task.task_id}:{dest_uri}")
        return task

    # ----------------------------------------------------------------- query
    def get_task(self, task_id: str) -> TransferTask:
        """Look up a transfer task by id."""
        try:
            return self._tasks[task_id]
        except KeyError:
            raise NotFoundError(f"unknown transfer task {task_id!r}") from None

    def require_success(self, task: TransferTask) -> None:
        """Raise :class:`StateError` unless ``task`` has succeeded."""
        if task.status is TransferStatus.ACTIVE:
            raise StateError(f"transfer {task.task_id} has not completed yet")
        if task.status is TransferStatus.FAILED:
            raise StateError(f"transfer {task.task_id} failed: {task.error}")

    @property
    def bytes_moved(self) -> int:
        """Total payload bytes successfully transferred."""
        return self._bytes_moved

    def tasks(self) -> List[TransferTask]:
        """All transfer tasks, in submission order."""
        return [self._tasks[k] for k in sorted(self._tasks)]

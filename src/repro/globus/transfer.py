"""Simulated Globus Transfer: asynchronous copies between collections.

AERO ingestion flows upload raw and transformed data to Globus collections,
and analysis flows download inputs to compute staging areas (§2.2).  Those
movements are third-party transfers: a client asks the transfer service to
copy ``src_collection:path`` to ``dst_collection:path``, gets a task handle
back, and the copy completes later.

The simulation models latency as ``base_latency + size / bandwidth`` on the
shared simulated clock, which is enough to exercise the asynchrony (a flow
must not read its input before the staging transfer completes) and to make
transfer time visible in workflow timing reports.

Resilience: when constructed with a :class:`~repro.common.retry.RetryPolicy`
the service re-attempts transient attempt failures (injected faults at the
``transfer`` site, detected corruption) with exponential backoff before
marking the task FAILED.  Every attempt's payload is checksum-verified
against the bytes read at submission, so a ``transfer.corrupt`` fault is
*detected* — a corrupted attempt fails typed
(:class:`~repro.common.errors.TransferCorruptionError`) and the retry
re-sends the pristine snapshot, mirroring Globus checksum-verified
transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.common.errors import (
    NotFoundError,
    ReproError,
    StateError,
    TransferCorruptionError,
    ValidationError,
)
from repro.common.hashing import content_checksum
from repro.common.retry import CircuitBreaker, RetryPolicy
from repro.globus.auth import AuthService, Token
from repro.globus.collections import StorageService
from repro.sim import SimulationEnvironment


class TransferStatus(Enum):
    """Lifecycle states of a transfer task."""

    ACTIVE = "active"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


@dataclass
class TransferTask:
    """Handle for one submitted transfer."""

    task_id: str
    source_uri: str
    dest_uri: str
    size: int
    submitted_at: float
    status: TransferStatus = TransferStatus.ACTIVE
    completed_at: Optional[float] = None
    error: Optional[str] = None
    attempts: int = 0
    exception: Optional[BaseException] = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        """True once the transfer succeeded or failed."""
        return self.status is not TransferStatus.ACTIVE

    @property
    def retries(self) -> int:
        """Re-attempts beyond the first (0 on a clean transfer)."""
        return max(0, self.attempts - 1)


class TransferService:
    """In-process Globus Transfer replacement.

    Parameters
    ----------
    bandwidth_bytes_per_day:
        Simulated throughput.  The default (86.4 GB per simulated day, i.e.
        1 MB/s) makes the small surveillance files effectively instant while
        keeping latency strictly positive, preserving event ordering.
    base_latency_days:
        Fixed per-transfer setup latency (control-channel overhead).
    retry:
        Optional retry policy: transient attempt failures (injected faults,
        detected corruption) are re-attempted with backoff before the task
        is marked FAILED.
    rng:
        Generator for backoff jitter (``None`` = exact exponential delays).
    breaker:
        Optional circuit breaker guarding submission: when open, ``submit``
        raises :class:`~repro.common.errors.CircuitOpenError` immediately.
    verify_checksums:
        When true (default), each attempt's delivered payload is verified
        against the submission-time checksum, converting in-flight
        corruption into a typed, retryable failure.
    """

    def __init__(
        self,
        auth: AuthService,
        storage: StorageService,
        env: SimulationEnvironment,
        *,
        bandwidth_bytes_per_day: float = 86.4e9,
        base_latency_days: float = 1e-4,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[np.random.Generator] = None,
        breaker: Optional[CircuitBreaker] = None,
        verify_checksums: bool = True,
    ) -> None:
        if bandwidth_bytes_per_day <= 0 or base_latency_days < 0:
            raise ValidationError("bandwidth must be > 0 and base latency >= 0")
        self._auth = auth
        self._storage = storage
        self._env = env
        self._bandwidth = float(bandwidth_bytes_per_day)
        self._base_latency = float(base_latency_days)
        self._retry = retry
        self._rng = rng
        self._breaker = breaker
        self._verify = bool(verify_checksums)
        self._tasks: Dict[str, TransferTask] = {}
        self._counter = 0
        self._bytes_moved = 0
        self.retries_performed = 0
        self.corruptions_detected = 0

    # ---------------------------------------------------------------- submit
    def submit(
        self,
        token: Token,
        source_uri: str,
        dest_uri: str,
        *,
        on_complete: Optional[Callable[[TransferTask], None]] = None,
    ) -> TransferTask:
        """Submit an asynchronous copy from ``source_uri`` to ``dest_uri``.

        The token must carry the ``transfer`` scope and grant read access on
        the source and write access on the destination collection.  The data
        itself is read at submission (the source version as of now is what
        gets copied, even if the source is later overwritten) and written at
        completion time — matching Globus checkpoint-restart semantics
        closely enough for the workflows here.

        With a retry policy configured, transient attempt failures (injected
        ``transfer`` faults, detected corruption) re-schedule the attempt
        after a backoff delay plus the transfer latency; the task only turns
        FAILED once the attempt budget is exhausted (``task.exception`` then
        holds the last typed error).
        """
        if self._breaker is not None:
            self._breaker.check()
        self._auth.validate(token, "transfer")
        src_collection, src_path = self._storage.resolve_uri(source_uri)
        dst_collection, dst_path = self._storage.resolve_uri(dest_uri)

        self._counter += 1
        task = TransferTask(
            task_id=f"transfer-{self._counter:08d}",
            source_uri=source_uri,
            dest_uri=dest_uri,
            size=0,
            submitted_at=self._env.now,
        )
        self._tasks[task.task_id] = task
        obs = self._env.obs
        span = (
            obs.begin(
                task.task_id, "transfer", attrs={"dest": dest_uri, "src": source_uri}
            )
            if obs is not None
            else None
        )

        try:
            data = src_collection.get(token, src_path)
        except ReproError as exc:
            # Missing source or no read permission: the task exists, then
            # fails (failure is observed on the task, as with real Globus).
            task.status = TransferStatus.FAILED
            task.error = str(exc)
            task.completed_at = self._env.now
            if obs is not None:
                obs.end(span, status="error", error=type(exc).__name__)
            return task

        task.size = len(data)
        checksum = content_checksum(data)
        latency = self._base_latency + len(data) / self._bandwidth
        label = f"{task.task_id}:{dest_uri}"

        def _finish(error: Optional[BaseException]) -> None:
            if error is None:
                task.status = TransferStatus.SUCCEEDED
                self._bytes_moved += task.size
                if self._breaker is not None:
                    self._breaker.record_success()
            else:
                task.status = TransferStatus.FAILED
                task.error = f"{error} (after {task.attempts} attempt(s))"
                task.exception = error
            task.completed_at = self._env.now
            if obs is not None:
                obs.metrics.inc("transfer.bytes_moved", task.size if error is None else 0)
                obs.observe("transfer.latency_days", task.completed_at - task.submitted_at)
                obs.end(
                    span,
                    status="ok" if error is None else "error",
                    attempts=task.attempts,
                    size=task.size,
                )
            if on_complete is not None:
                on_complete(task)

        def _attempt_done() -> None:
            task.attempts += 1
            if obs is not None:
                attempt_span = obs.begin(
                    f"{task.task_id}#attempt-{task.attempts}",
                    "transfer.attempt",
                    parent=span,
                    attrs={"attempt": task.attempts},
                )
            error: Optional[BaseException] = None
            payload = data
            faults = self._env.faults
            if faults is not None:
                fault = faults.poll("transfer", label=label)
                if fault is not None:
                    error = fault
                else:
                    corrupt = faults.poll("transfer.corrupt", label=label)
                    if corrupt is not None:
                        # Flip the first byte (or fabricate one) so the
                        # delivered payload no longer matches the checksum.
                        payload = (
                            bytes([data[0] ^ 0xFF]) + data[1:] if data else b"\x00"
                        )
            if error is None and self._verify and content_checksum(payload) != checksum:
                self.corruptions_detected += 1
                if obs is not None:
                    obs.inc("resilience.transfer_corruptions_detected")
                error = TransferCorruptionError(
                    f"checksum mismatch on {label} (attempt {task.attempts})"
                )
            if error is None:
                try:
                    # The pristine submission-time snapshot is written, never
                    # the (possibly corrupted) wire payload.
                    dst_collection.put(token, dst_path, data)
                except Exception as exc:  # authorization or validation failures
                    if obs is not None:
                        obs.end(attempt_span, status="error", outcome="fatal")
                        obs.emit(
                            "retry.attempt",
                            label,
                            attempt=task.attempts,
                            outcome="fatal",
                            error=type(exc).__name__,
                        )
                    _finish(exc)
                    return
                if obs is not None:
                    obs.end(attempt_span, status="ok", outcome="success")
                    if task.attempts > 1:
                        obs.emit(
                            "retry.attempt",
                            label,
                            attempt=task.attempts,
                            outcome="success",
                        )
                _finish(None)
                return
            if self._breaker is not None:
                self._breaker.record_failure()
            policy = self._retry
            if (
                policy is not None
                and policy.retryable(error)
                and task.attempts < policy.max_attempts
            ):
                self.retries_performed += 1
                if obs is not None:
                    obs.inc("resilience.transfer_retries")
                    obs.end(
                        attempt_span,
                        status="error",
                        outcome="retried",
                        error=type(error).__name__,
                    )
                    obs.emit(
                        "retry.attempt",
                        label,
                        attempt=task.attempts,
                        outcome="retried",
                        error=type(error).__name__,
                    )
                backoff = policy.delay(task.attempts, rng=self._rng)
                self._env.schedule(backoff + latency, _attempt_done, label=label)
                return
            if obs is not None:
                obs.end(
                    attempt_span,
                    status="error",
                    outcome="exhausted",
                    error=type(error).__name__,
                )
                obs.emit(
                    "retry.attempt",
                    label,
                    attempt=task.attempts,
                    outcome="exhausted",
                    error=type(error).__name__,
                )
            _finish(error)

        self._env.schedule(latency, _attempt_done, label=label)
        return task

    # ----------------------------------------------------------------- query
    def get_task(self, task_id: str) -> TransferTask:
        """Look up a transfer task by id."""
        try:
            return self._tasks[task_id]
        except KeyError:
            raise NotFoundError(f"unknown transfer task {task_id!r}") from None

    def require_success(self, task: TransferTask) -> None:
        """Raise :class:`StateError` unless ``task`` has succeeded."""
        if task.status is TransferStatus.ACTIVE:
            raise StateError(f"transfer {task.task_id} has not completed yet")
        if task.status is TransferStatus.FAILED:
            raise StateError(f"transfer {task.task_id} failed: {task.error}")

    @property
    def bytes_moved(self) -> int:
        """Total payload bytes successfully transferred."""
        return self._bytes_moved

    def tasks(self) -> List[TransferTask]:
        """All transfer tasks, in submission order."""
        return [self._tasks[k] for k in sorted(self._tasks)]

"""Simulated Globus Timers: periodic scheduled actions.

AERO "will poll the wastewater data source at a user specifiable frequency,
in this case daily" (§2.2); in the real deployment that polling is a Globus
Timer firing a flow.  This module provides the periodic-action service on the
shared simulated clock.

Semantics (matching Globus Timers where it matters):

- a timer has an interval, an optional start offset, and an optional maximum
  number of firings;
- firings are *serialized per timer*: the next firing is scheduled only after
  the current callback returns, so a slow callback delays subsequent firings
  rather than stacking them;
- pausing and resuming preserves the phase of the schedule.

Resilience: each activation consults the fault injector's ``timer`` site; an
injected fault means the service *missed* that firing (the real backend was
briefly unavailable) — the callback is skipped, ``missed_firings`` is
incremented, and the schedule continues in phase, so a daily poll that
misses a day simply picks up the next day (the workflow sees a data gap,
not a crash).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.errors import StateError, ValidationError
from repro.globus.auth import AuthService, Token
from repro.sim import Event, SimulationEnvironment


class Timer:
    """A periodic timer.  Create through :meth:`TimerService.create_timer`."""

    def __init__(
        self,
        timer_id: str,
        env: SimulationEnvironment,
        callback: Callable[[], None],
        interval: float,
        start_delay: float,
        max_firings: Optional[int],
        label: str,
    ) -> None:
        self.timer_id = timer_id
        self.label = label
        self.interval = interval
        self.max_firings = max_firings
        self._env = env
        self._callback = callback
        self._firings = 0
        self.missed_firings = 0
        self._active = True
        self._pending: Optional[Event] = None
        self._schedule(start_delay)

    # ---------------------------------------------------------------- state
    @property
    def firings(self) -> int:
        """Number of times the callback has run."""
        return self._firings

    @property
    def active(self) -> bool:
        """True while the timer will continue to fire."""
        return self._active

    def _schedule(self, delay: float) -> None:
        self._pending = self._env.schedule(
            delay, self._fire, label=f"timer:{self.label}"
        )

    def _fire(self) -> None:
        if not self._active:
            return
        self._pending = None
        obs = self._env.obs
        faults = self._env.faults
        if faults is not None:
            fault = faults.poll("timer", label=f"timer:{self.label}")
            if fault is not None:
                # Missed firing: skip the callback but stay in phase.
                self.missed_firings += 1
                if obs is not None:
                    obs.inc("resilience.timer_missed_firings")
                    obs.instant(
                        f"timer:{self.label} missed",
                        "timer.missed",
                        attrs={"timer_id": self.timer_id},
                    )
                if self.max_firings is None or self._firings < self.max_firings:
                    self._schedule(self.interval)
                else:
                    self._active = False
                return
        self._firings += 1
        state = self._env.state
        if state is not None:
            # Write-ahead: the firing is journaled before its callback runs,
            # so a crash mid-callback replays the same firing on resume
            # (idempotent append; the callback itself always re-runs, since
            # re-firing is how replay rebuilds downstream service state).
            state.record_timer_firing(self.label, self._firings, t=self._env.now)
        span = (
            obs.begin(
                f"timer:{self.label}#{self._firings}",
                "timer.fire",
                attrs={"timer_id": self.timer_id},
            )
            if obs is not None
            else None
        )
        try:
            if obs is None:
                self._callback()
            else:
                obs.inc("timer.firings")
                with obs.activate(span):
                    self._callback()
                obs.end(span)
        finally:
            if self._active and (
                self.max_firings is None or self._firings < self.max_firings
            ):
                self._schedule(self.interval)
            else:
                self._active = False

    # -------------------------------------------------------------- control
    def cancel(self) -> None:
        """Stop the timer permanently."""
        self._active = False
        if self._pending is not None and self._pending.pending:
            self._pending.cancel()
        self._pending = None

    def fire_now(self) -> None:
        """Run the callback immediately, out of schedule (manual trigger).

        Does not perturb the periodic schedule; counts as a firing.
        """
        if not self._active:
            raise StateError(f"timer {self.timer_id} is no longer active")
        self._firings += 1
        self._callback()


class TimerService:
    """In-process Globus Timers replacement."""

    def __init__(self, auth: AuthService, env: SimulationEnvironment) -> None:
        self._auth = auth
        self._env = env
        self._timers: Dict[str, Timer] = {}
        self._counter = 0

    def create_timer(
        self,
        token: Token,
        callback: Callable[[], None],
        *,
        interval: float,
        start_delay: float = 0.0,
        max_firings: Optional[int] = None,
        label: str = "timer",
    ) -> Timer:
        """Register a periodic ``callback`` every ``interval`` days.

        ``start_delay`` offsets the first firing; ``max_firings`` bounds the
        total count (``None`` = unbounded, until cancelled).
        """
        self._auth.validate(token, "timers")
        if interval <= 0:
            raise ValidationError(f"timer interval must be > 0, got {interval}")
        if start_delay < 0:
            raise ValidationError("timer start delay must be >= 0")
        if max_firings is not None and max_firings < 1:
            raise ValidationError("max_firings must be >= 1 when given")
        self._counter += 1
        timer = Timer(
            timer_id=f"timer-{self._counter:06d}",
            env=self._env,
            callback=callback,
            interval=float(interval),
            start_delay=float(start_delay),
            max_firings=max_firings,
            label=label,
        )
        self._timers[timer.timer_id] = timer
        return timer

    def cancel_all(self) -> None:
        """Cancel every registered timer (workflow teardown)."""
        for timer in self._timers.values():
            if timer.active:
                timer.cancel()

    def active_timers(self) -> List[Timer]:
        """Timers that will still fire."""
        return [t for t in self._timers.values() if t.active]

    def total_missed_firings(self) -> int:
        """Firings skipped by injected ``timer`` faults, across all timers."""
        return sum(t.missed_firings for t in self._timers.values())

"""Simulated Globus Flows: multi-step orchestration with run logs.

Globus Flows [Chard et al. 2023] executes declarative state machines whose
states invoke action providers (transfer, compute, ...).  AERO composes its
ingestion and analysis behaviour from such steps ("the AERO API wraps the
function call with additional code that 1) performs the data retrieval ...
2) calls the user-specified function ... 3) uploads any outputs ... and
4) updates the AERO database", §2.2).

This module provides the orchestration slice AERO needs: a
:class:`FlowDefinition` is an ordered list of named steps, each a callable
taking and returning a context dict; running a flow produces a
:class:`FlowRun` that logs per-step start/stop times and status on the
simulated clock.  Steps execute synchronously within the simulated instant in
which the run is started — asynchrony between flows comes from the services
the steps call (transfers, compute tasks, timers), exactly as in AERO.

Resilience: each step attempt first consults the fault injector's
``flows.step`` site (an action-provider failure), then runs the step
callable.  With a ``step_retry`` policy configured the service re-attempts
transient step failures immediately — steps are synchronous within one
simulated instant, so backoff here is a budget, not a delay — and records
the attempt count on the :class:`StepRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import NotFoundError, ValidationError, WorkflowKilledError
from repro.common.retry import RetryPolicy
from repro.globus.auth import AuthService, Token
from repro.sim import SimulationEnvironment
from repro.state.checkpoint import REPLAY_SAFE_ATTR

#: A flow step: takes the mutable run context, returns updates to merge in.
StepFn = Callable[[Dict[str, Any]], Optional[Dict[str, Any]]]


class RunStatus(Enum):
    """Lifecycle states of a flow run."""

    ACTIVE = "active"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


@dataclass
class StepRecord:
    """Log entry for one executed step of a run."""

    name: str
    started_at: float
    completed_at: Optional[float] = None
    status: RunStatus = RunStatus.ACTIVE
    error: Optional[str] = None
    attempts: int = 0

    @property
    def retries(self) -> int:
        """Attempts beyond the first (0 on a clean step)."""
        return max(0, self.attempts - 1)


@dataclass(frozen=True)
class FlowDefinition:
    """An ordered, named sequence of steps.

    Attributes
    ----------
    flow_id:
        Unique id assigned at registration.
    title:
        Human-readable name shown in run logs.
    steps:
        ``(name, callable)`` pairs executed in order.
    """

    flow_id: str
    title: str
    steps: Tuple[Tuple[str, StepFn], ...]

    def step_names(self) -> List[str]:
        """Names of the steps in execution order."""
        return [name for name, _ in self.steps]


@dataclass
class FlowRun:
    """One execution of a flow definition."""

    run_id: str
    flow_id: str
    started_at: float
    context: Dict[str, Any] = field(default_factory=dict)
    step_log: List[StepRecord] = field(default_factory=list)
    status: RunStatus = RunStatus.ACTIVE
    completed_at: Optional[float] = None
    error: Optional[str] = None

    @property
    def done(self) -> bool:
        """True once the run has succeeded or failed."""
        return self.status is not RunStatus.ACTIVE


class FlowsService:
    """In-process Globus Flows replacement.

    Parameters
    ----------
    step_retry:
        Optional policy bounding immediate re-attempts of transient step
        failures (its ``max_attempts`` is the budget; delays do not apply to
        synchronous steps).
    """

    def __init__(
        self,
        auth: AuthService,
        env: SimulationEnvironment,
        *,
        step_retry: Optional[RetryPolicy] = None,
    ) -> None:
        self._auth = auth
        self._env = env
        self._step_retry = step_retry
        self._flows: Dict[str, FlowDefinition] = {}
        self._runs: Dict[str, FlowRun] = {}
        self._flow_counter = 0
        self._run_counter = 0
        self.step_retries_performed = 0

    # -------------------------------------------------------------- register
    def register_flow(
        self,
        token: Token,
        title: str,
        steps: Sequence[Tuple[str, StepFn]],
    ) -> FlowDefinition:
        """Register a flow definition and return it."""
        self._auth.validate(token, "flows")
        if not steps:
            raise ValidationError("a flow must have at least one step")
        names = [name for name, _ in steps]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate step names in flow {title!r}: {names}")
        for name, fn in steps:
            if not callable(fn):
                raise ValidationError(f"step {name!r} of flow {title!r} is not callable")
        self._flow_counter += 1
        flow = FlowDefinition(
            flow_id=f"flow-{self._flow_counter:06d}",
            title=title,
            steps=tuple((name, fn) for name, fn in steps),
        )
        self._flows[flow.flow_id] = flow
        return flow

    def get_flow(self, flow_id: str) -> FlowDefinition:
        """Look up a registered flow."""
        try:
            return self._flows[flow_id]
        except KeyError:
            raise NotFoundError(f"unknown flow {flow_id!r}") from None

    # ------------------------------------------------------------------ run
    def run_flow(
        self,
        token: Token,
        flow: FlowDefinition,
        initial_context: Optional[Dict[str, Any]] = None,
    ) -> FlowRun:
        """Execute ``flow`` now, step by step, and return its run record.

        A step failure marks the run FAILED, records the exception message,
        and skips remaining steps; it never propagates out of the service
        (runs are observed through their logs, as with real Flows).
        """
        self._auth.validate(token, "flows")
        if flow.flow_id not in self._flows:
            raise NotFoundError(f"flow {flow.flow_id!r} is not registered")
        self._run_counter += 1
        run = FlowRun(
            run_id=f"run-{self._run_counter:08d}",
            flow_id=flow.flow_id,
            started_at=self._env.now,
            context=dict(initial_context or {}),
        )
        self._runs[run.run_id] = run
        obs = self._env.obs
        if obs is None:
            return self._execute_steps(run, flow, None)
        with obs.span(
            f"{flow.title}#{run.run_id}", "flows.run", attrs={"flow_id": flow.flow_id}
        ) as span:
            self._execute_steps(run, flow, obs)
            span.annotate(run_status=run.status.value, steps=len(run.step_log))
        return run

    def _step_key(self, flow: FlowDefinition, run: FlowRun, name: str) -> str:
        return f"{flow.flow_id}:{run.run_id}:{name}"

    def _execute_steps(self, run: FlowRun, flow: FlowDefinition, obs) -> FlowRun:
        state = self._env.state
        for name, fn in flow.steps:
            record = StepRecord(name=name, started_at=self._env.now)
            run.step_log.append(record)
            if state is not None and getattr(fn, REPLAY_SAFE_ATTR, False):
                # A replay-safe step's only effect is the context updates it
                # returns, so a journaled completion can stand in for
                # re-execution on resume.  Side-effectful steps always
                # re-run — re-executing them is how replay reconstructs
                # downstream service state.
                journaled = state.lookup_flow_step(self._step_key(flow, run, name))
                if journaled is not None:
                    if obs is not None:
                        obs.instant(
                            f"{name}#replayed",
                            "flows.step.replayed",
                            attrs={"step": name, "run_id": run.run_id},
                        )
                    updates = journaled.get("updates")
                    if updates:
                        run.context.update(updates)
                    record.status = RunStatus.SUCCEEDED
                    record.completed_at = self._env.now
                    continue
            while True:
                record.attempts += 1
                step_span = (
                    obs.begin(
                        f"{name}#attempt-{record.attempts}",
                        "flows.step",
                        attrs={"attempt": record.attempts, "step": name},
                    )
                    if obs is not None
                    else None
                )
                try:
                    faults = self._env.faults
                    if faults is not None:
                        faults.check("flows.step", label=f"{flow.title}:{name}")
                    updates = fn(run.context)
                except WorkflowKilledError:
                    # A deliberate crash is never a step failure; let it
                    # take the run (and the process) down.
                    raise
                except Exception as exc:
                    policy = self._step_retry
                    if (
                        policy is not None
                        and policy.retryable(exc)
                        and record.attempts < policy.max_attempts
                    ):
                        self.step_retries_performed += 1
                        if obs is not None:
                            obs.inc("resilience.flow_step_retries")
                            obs.end(
                                step_span,
                                status="error",
                                outcome="retried",
                                error=type(exc).__name__,
                            )
                        continue
                    if obs is not None:
                        obs.end(
                            step_span,
                            status="error",
                            outcome="fatal",
                            error=type(exc).__name__,
                        )
                    record.status = RunStatus.FAILED
                    record.error = f"{type(exc).__name__}: {exc}"
                    record.completed_at = self._env.now
                    run.status = RunStatus.FAILED
                    run.error = f"step {name!r} failed: {record.error}"
                    run.completed_at = self._env.now
                    return run
                if obs is not None:
                    obs.end(step_span, status="ok", outcome="success")
                break
            if updates:
                run.context.update(updates)
            record.status = RunStatus.SUCCEEDED
            record.completed_at = self._env.now
            if state is not None:
                replayable = bool(getattr(fn, REPLAY_SAFE_ATTR, False))
                state.record_flow_step(
                    self._step_key(flow, run, name),
                    {
                        "step": name,
                        "updates": updates if replayable else None,
                        "replayable": replayable,
                    },
                    t=self._env.now,
                )
        run.status = RunStatus.SUCCEEDED
        run.completed_at = self._env.now
        return run

    # ---------------------------------------------------------------- query
    def get_run(self, run_id: str) -> FlowRun:
        """Look up a run by id."""
        try:
            return self._runs[run_id]
        except KeyError:
            raise NotFoundError(f"unknown flow run {run_id!r}") from None

    def runs_for(self, flow: FlowDefinition) -> List[FlowRun]:
        """All runs of ``flow``, in start order."""
        return [r for r in self._runs.values() if r.flow_id == flow.flow_id]

    def run_counts(self) -> Dict[str, int]:
        """Mapping of flow title → number of runs (workflow reports)."""
        counts: Dict[str, int] = {}
        for run in self._runs.values():
            title = self._flows[run.flow_id].title
            counts[title] = counts.get(title, 0) + 1
        return counts

"""Simulated Globus storage collections.

The wastewater workflow stores every raw, transformed, and derived artifact
on "the ALCF Eagle Globus endpoint" and shares results with stakeholders
"through standard Globus Collection permissions" (§2.2).  A collection here
is a named, permissioned, in-memory object store: path → bytes, with
per-identity read/write grants enforced on every operation.

Two deliberate fidelity points:

- **Data never passes through the AERO server.**  AERO (see
  :mod:`repro.aero`) holds only collection/path URIs and checksums; flows
  read and write collections directly, as in the paper.
- **Versioned paths are immutable by convention, not by mechanism** — the
  store allows overwrite (like a real POSIX-backed collection), and AERO's
  metadata layer is what provides versioning on top.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.common.errors import (
    AuthorizationError,
    NotFoundError,
    ValidationError,
)
from repro.common.hashing import content_checksum
from repro.globus.auth import AuthService, Identity, Token
from repro.sim import SimulationEnvironment


class Permission(Enum):
    """Access levels grantable on a collection."""

    READ = "read"
    WRITE = "write"  # implies read, as in Globus ACLs


def _normalize_path(path: str) -> str:
    """Normalize a collection path: forward slashes, no leading slash, no '..'."""
    if not path or path.startswith("/") or ".." in path.split("/"):
        raise ValidationError(f"invalid collection path {path!r}")
    parts = [p for p in path.split("/") if p not in ("", ".")]
    if not parts:
        raise ValidationError(f"invalid collection path {path!r}")
    return "/".join(parts)


@dataclass(frozen=True)
class FileRecord:
    """Metadata for one stored object."""

    path: str
    size: int
    checksum: str
    modified_at: float


class Collection:
    """A named storage collection with identity-based access control.

    Created through :meth:`StorageService.create_collection`; not meant to be
    instantiated directly.
    """

    def __init__(
        self,
        name: str,
        owner: Identity,
        auth: AuthService,
        env: SimulationEnvironment,
    ) -> None:
        self.name = name
        self.owner = owner
        self._auth = auth
        self._env = env
        self._objects: Dict[str, bytes] = {}
        self._records: Dict[str, FileRecord] = {}
        self._acl: Dict[str, Permission] = {owner.identity_id: Permission.WRITE}

    # ------------------------------------------------------------------- acl
    def grant(self, granting_token: Token, identity: Identity, permission: Permission) -> None:
        """Grant ``identity`` access.  Only the owner may change the ACL."""
        grantor = self._auth.validate(granting_token, "transfer")
        if grantor.identity_id != self.owner.identity_id:
            raise AuthorizationError(
                f"only the owner of collection {self.name!r} may modify its ACL"
            )
        self._acl[identity.identity_id] = permission

    def permissions_for(self, identity: Identity) -> Optional[Permission]:
        """The permission currently granted to ``identity``, if any."""
        return self._acl.get(identity.identity_id)

    def _check(self, token: Token, needed: Permission) -> Identity:
        identity = self._auth.validate(token, "transfer")
        granted = self._acl.get(identity.identity_id)
        if granted is None:
            raise AuthorizationError(
                f"identity {identity.username!r} has no access to collection {self.name!r}"
            )
        if needed is Permission.WRITE and granted is not Permission.WRITE:
            raise AuthorizationError(
                f"identity {identity.username!r} has read-only access to {self.name!r}"
            )
        return identity

    # ------------------------------------------------------------------- i/o
    def put(self, token: Token, path: str, data: bytes | str) -> FileRecord:
        """Store ``data`` at ``path`` (overwriting), returning its record."""
        self._check(token, Permission.WRITE)
        path = _normalize_path(path)
        if isinstance(data, str):
            data = data.encode("utf-8")
        self._objects[path] = bytes(data)
        record = FileRecord(
            path=path,
            size=len(data),
            checksum=content_checksum(data),
            modified_at=self._env.now,
        )
        self._records[path] = record
        return record

    def get(self, token: Token, path: str) -> bytes:
        """Fetch the bytes stored at ``path``."""
        self._check(token, Permission.READ)
        path = _normalize_path(path)
        try:
            return self._objects[path]
        except KeyError:
            raise NotFoundError(f"{self.name}:{path} does not exist") from None

    def get_text(self, token: Token, path: str) -> str:
        """Fetch ``path`` and decode as UTF-8."""
        return self.get(token, path).decode("utf-8")

    def stat(self, token: Token, path: str) -> FileRecord:
        """Metadata for ``path``."""
        self._check(token, Permission.READ)
        path = _normalize_path(path)
        try:
            return self._records[path]
        except KeyError:
            raise NotFoundError(f"{self.name}:{path} does not exist") from None

    def exists(self, token: Token, path: str) -> bool:
        """True if an object is stored at ``path``."""
        self._check(token, Permission.READ)
        return _normalize_path(path) in self._objects

    def delete(self, token: Token, path: str) -> None:
        """Remove the object at ``path``."""
        self._check(token, Permission.WRITE)
        path = _normalize_path(path)
        if path not in self._objects:
            raise NotFoundError(f"{self.name}:{path} does not exist")
        del self._objects[path]
        del self._records[path]

    def ls(self, token: Token, pattern: str = "*") -> List[FileRecord]:
        """Records for all paths matching a glob ``pattern``, sorted by path."""
        self._check(token, Permission.READ)
        return [
            self._records[p]
            for p in sorted(self._objects)
            if fnmatch.fnmatch(p, pattern)
        ]

    @property
    def total_bytes(self) -> int:
        """Total stored bytes (for transfer-latency modelling and reports)."""
        return sum(len(v) for v in self._objects.values())


class StorageService:
    """Registry of collections, addressed by name.

    URIs of the form ``collection_name:path`` (as stored in AERO metadata)
    are resolved through :meth:`resolve_uri`.
    """

    def __init__(self, auth: AuthService, env: SimulationEnvironment) -> None:
        self._auth = auth
        self._env = env
        self._collections: Dict[str, Collection] = {}

    def create_collection(self, name: str, owner_token: Token) -> Collection:
        """Create a collection owned by the token's identity."""
        if not name or ":" in name:
            raise ValidationError(f"invalid collection name {name!r}")
        if name in self._collections:
            raise ValidationError(f"collection {name!r} already exists")
        owner = self._auth.validate(owner_token, "transfer")
        collection = Collection(name, owner, self._auth, self._env)
        self._collections[name] = collection
        return collection

    def get_collection(self, name: str) -> Collection:
        """Look up a collection by name."""
        try:
            return self._collections[name]
        except KeyError:
            raise NotFoundError(f"unknown collection {name!r}") from None

    def resolve_uri(self, uri: str) -> Tuple[Collection, str]:
        """Split ``collection:path`` into (collection, normalized path)."""
        if ":" not in uri:
            raise ValidationError(f"malformed storage URI {uri!r}")
        name, _, path = uri.partition(":")
        return self.get_collection(name), _normalize_path(path)

    def make_uri(self, collection: Collection, path: str) -> str:
        """Canonical URI for (collection, path)."""
        return f"{collection.name}:{_normalize_path(path)}"

"""Simulated Globus services.

The paper's AERO deployment "relies on the security and robustness of Globus
technologies such as Globus Auth, Flows, and Timers" (§2.2), stores data on
the ALCF Eagle Globus collection, and executes functions through Globus
Compute endpoints on the LCRC Bebop cluster.  None of those services are
reachable offline, so this subpackage reimplements each of them in-process
with the same API shapes and the semantics the paper depends on:

- :mod:`repro.globus.auth` — identities, scoped access tokens (Globus Auth).
- :mod:`repro.globus.collections` — named storage collections with per-
  identity permissions (Globus Collections / Transfer endpoints).
- :mod:`repro.globus.transfer` — asynchronous third-party transfers between
  collections (Globus Transfer).
- :mod:`repro.globus.compute` — registered functions executed on remote
  endpoints, either on a shared login node or through a batch scheduler
  (Globus Compute / funcX).
- :mod:`repro.globus.flows` — multi-step flow definitions and run logs
  (Globus Flows).
- :mod:`repro.globus.timers` — periodic scheduled actions (Globus Timers).

All services share one :class:`repro.sim.SimulationEnvironment` so that
polling intervals, queue waits, and transfer latencies compose into a single
deterministic timeline.
"""

from repro.globus.auth import AuthService, Identity, Token
from repro.globus.collections import Collection, Permission, StorageService
from repro.globus.transfer import TransferService, TransferTask
from repro.globus.timers import Timer, TimerService
from repro.globus.flows import FlowDefinition, FlowRun, FlowsService
from repro.globus.compute import (
    ComputeEndpoint,
    ComputeFuture,
    ComputeService,
    GlobusComputeEngine,
    JournalingEngine,
    LoginNodeEngine,
    MemoizingEngine,
    RetryingEngine,
    simulated_cost,
)

__all__ = [
    "AuthService",
    "Identity",
    "Token",
    "Collection",
    "Permission",
    "StorageService",
    "TransferService",
    "TransferTask",
    "Timer",
    "TimerService",
    "FlowDefinition",
    "FlowRun",
    "FlowsService",
    "ComputeEndpoint",
    "ComputeFuture",
    "ComputeService",
    "GlobusComputeEngine",
    "JournalingEngine",
    "LoginNodeEngine",
    "MemoizingEngine",
    "RetryingEngine",
    "simulated_cost",
]
